"""Tests for the NDCG-style list similarity H."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import ndcg_similarity


class TestNdcgSimilarity:
    def test_identical_lists_score_one(self):
        ids = [f"v{i}" for i in range(5)]
        assert ndcg_similarity(ids, ids) == pytest.approx(1.0)

    def test_disjoint_lists_score_zero(self):
        assert ndcg_similarity(["a", "b"], ["c", "d"]) == 0.0

    def test_empty_lists(self):
        assert ndcg_similarity([], ["a"]) == 0.0
        assert ndcg_similarity(["a"], []) == 0.0

    def test_rank_sensitivity(self):
        # Swapping two items reduces similarity below 1 even though
        # membership is unchanged (the query attack's fine signal).
        a = ["x", "y", "z"]
        swapped = ["y", "x", "z"]
        assert ndcg_similarity(a, swapped) < 1.0

    def test_early_overlap_beats_late_overlap(self):
        reference = ["a", "b", "c", "d"]
        early = ["a", "q", "r", "s"]
        late = ["q", "r", "s", "a"]
        assert ndcg_similarity(early, reference) > \
            ndcg_similarity(late, reference)

    def test_symmetric_for_identical_membership(self):
        a = ["a", "b", "c"]
        b = ["c", "a", "b"]
        assert ndcg_similarity(a, b) == pytest.approx(ndcg_similarity(b, a))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=8,
                    unique=True),
           st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=8,
                    unique=True))
    def test_bounds(self, list_a, list_b):
        value = ndcg_similarity(list_a, list_b)
        assert 0.0 <= value <= 1.0 + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=8,
                    unique=True))
    def test_self_similarity_is_one(self, ids):
        assert ndcg_similarity(ids, ids) == pytest.approx(1.0)
