"""Tests for mAP and AP@m."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import ap_at_m, average_precision, mean_average_precision


class TestAveragePrecision:
    def test_all_relevant(self):
        assert average_precision([True] * 5) == pytest.approx(1.0)

    def test_none_relevant(self):
        assert average_precision([False] * 5) == 0.0

    def test_paper_formula_by_hand(self):
        # relevance [1, 0, 1]: (1/1 + 1/2 + 2/3) / 3
        expected = (1.0 + 0.5 + 2.0 / 3.0) / 3.0
        assert average_precision([True, False, True]) == pytest.approx(expected)

    def test_empty_list(self):
        assert average_precision([]) == 0.0

    def test_front_loading_scores_higher(self):
        assert average_precision([True, False]) > average_precision([False, True])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=20))
    def test_bounds(self, relevance):
        value = average_precision(relevance)
        assert 0.0 <= value <= 1.0


class TestMeanAveragePrecision:
    def test_average_of_queries(self):
        value = mean_average_precision([[True], [False]])
        assert value == pytest.approx(0.5)

    def test_empty(self):
        assert mean_average_precision([]) == 0.0


class TestApAtM:
    def test_identical_lists(self):
        ids = [f"v{i}" for i in range(6)]
        assert ap_at_m(ids, ids) == pytest.approx(1.0)

    def test_disjoint_lists(self):
        assert ap_at_m(["a", "b"], ["c", "d"]) == 0.0

    def test_permuted_lists_below_one(self):
        ids = [f"v{i}" for i in range(6)]
        permuted = ids[::-1]
        value = ap_at_m(ids, permuted)
        assert 0.0 < value < 1.0

    def test_paper_example_by_hand(self):
        # lists: a=[x,y], b=[x,z]; prec_1=1, prec_2=1/2 → AP = 0.75
        assert ap_at_m(["x", "y"], ["x", "z"]) == pytest.approx(0.75)

    def test_truncates_to_shorter(self):
        assert ap_at_m(["a"], ["a", "b", "c"]) == pytest.approx(1.0)

    def test_empty(self):
        assert ap_at_m([], ["a"]) == 0.0

    def test_symmetry(self):
        a = ["a", "b", "c", "d"]
        b = ["b", "a", "e", "c"]
        assert ap_at_m(a, b) == pytest.approx(ap_at_m(b, a))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=8,
                    unique=True),
           st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=8,
                    unique=True))
    def test_bounds_property(self, list_a, list_b):
        value = ap_at_m(list_a, list_b)
        assert 0.0 <= value <= 1.0
