"""Tests for Spa, PScore, frame count, and ℓ∞."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import (
    linf_norm,
    perturbation_summary,
    perturbed_frames,
    pscore,
    sparsity,
)


class TestSparsity:
    def test_zero_perturbation(self):
        assert sparsity(np.zeros((4, 3, 3, 3))) == 0

    def test_counts_values_not_pixels(self):
        phi = np.zeros((2, 2, 2, 3))
        phi[0, 0, 0, :] = 0.5  # one pixel, three channel values
        assert sparsity(phi) == 3

    def test_dense_matches_paper_accounting(self):
        # A dense 16×112×112×3 perturbation reports Spa = 602,112.
        phi = np.ones((16, 14, 14, 3)) * 0.1  # scaled-down dense
        assert sparsity(phi) == 16 * 14 * 14 * 3

    def test_tolerance_absorbs_fuzz(self):
        phi = np.full((1, 2, 2, 3), 1e-15)
        assert sparsity(phi) == 0


class TestPScore:
    def test_zero(self):
        assert pscore(np.zeros((2, 2, 2, 3))) == 0.0

    def test_dense_uniform(self):
        phi = np.full((2, 4, 4, 3), 10.0 / 255.0)
        assert pscore(phi) == pytest.approx(10.0)

    def test_scale_override(self):
        phi = np.full((1, 1, 1, 3), 0.5)
        assert pscore(phi, scale=1.0) == pytest.approx(0.5)


class TestPerturbedFrames:
    def test_counts_frames(self):
        phi = np.zeros((8, 2, 2, 3))
        phi[1] = 0.1
        phi[5, 0, 0, 0] = -0.2
        assert perturbed_frames(phi) == 2

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            perturbed_frames(np.zeros((2, 2)))


class TestLinf:
    def test_value(self):
        phi = np.array([[[[0.1, -0.4, 0.2]]]])
        assert linf_norm(phi) == pytest.approx(0.4)

    def test_empty(self):
        assert linf_norm(np.zeros((0,))) == 0.0


class TestSummary:
    def test_bundle(self):
        phi = np.zeros((4, 2, 2, 3))
        phi[0, 0, 0, 0] = 30.0 / 255.0
        stats = perturbation_summary(phi)
        assert stats.spa == 1
        assert stats.frames == 1
        assert stats.linf == pytest.approx(30.0 / 255.0)
        assert stats.pscore == pytest.approx(30.0 / phi.size)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (3, 2, 2, 3),
              elements=st.floats(-1.0, 1.0, allow_nan=False)))
def test_sparsity_upper_bound(phi):
    assert 0 <= sparsity(phi) <= phi.size


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (3, 2, 2, 3),
              elements=st.floats(-1.0, 1.0, allow_nan=False)))
def test_frames_bounded_by_spa(phi):
    frames = perturbed_frames(phi)
    assert frames <= 3
    if sparsity(phi) == 0:
        assert frames == 0
