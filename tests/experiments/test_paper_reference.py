"""Sanity tests over the transcribed paper numbers and their shape claims."""

import pytest

from repro.experiments import paper_reference as ref


class TestTranscription:
    def test_table2_complete_grid(self):
        victims = {"tpn", "slowfast", "i3d", "resnet34"}
        for attack, cells in ref.PAPER_TABLE2_UCF101.items():
            assert set(cells) == victims, attack

    def test_dense_timi_spa_matches_video_volume(self):
        # 16 × 112 × 112 × 3 = 602,112 values; TPN cell reports 602,100.
        spa = ref.PAPER_TABLE2_UCF101["timi-c3d"]["tpn"][1]
        assert abs(spa - 16 * 112 * 112 * 3) < 100

    def test_ap_values_are_percentages(self):
        for cells in ref.PAPER_TABLE2_UCF101.values():
            for ap, _, _ in cells.values():
                assert 0.0 <= ap <= 100.0


class TestPaperShapeClaims:
    def test_duo_wins_table2(self):
        assert ref.duo_beats_every_baseline_in_paper()

    def test_sparsity_factor_exceeds_100x(self):
        # The abstract's "reducing adversarial perturbations by more
        # than ×100 than the state-of-the-art" claim, from the data.
        assert ref.paper_sparsity_factor("i3d") > 100.0

    def test_k_curve_saturates(self):
        assert ref.paper_k_curve_saturates()

    def test_n_curve_rises_then_flattens(self):
        values = [ref.PAPER_TABLE6_DUO_C3D[n]
                  for n in sorted(ref.PAPER_TABLE6_DUO_C3D)]
        assert values[2] > values[0]            # rises
        assert abs(values[3] - values[2]) < 1.0  # flattens

    def test_tau_raises_ap_and_pscore(self):
        taus = sorted(ref.PAPER_TABLE7_DUO_C3D)
        aps = [ref.PAPER_TABLE7_DUO_C3D[t][0] for t in taus]
        pscores = [ref.PAPER_TABLE7_DUO_C3D[t][1] for t in taus]
        assert aps == sorted(aps)
        assert pscores == sorted(pscores)

    def test_iternumh_grows_spa(self):
        loops = sorted(ref.PAPER_TABLE8_DUO_C3D)
        spas = [ref.PAPER_TABLE8_DUO_C3D[h][1] for h in loops]
        assert spas == sorted(spas)

    def test_surrogate_size_flat(self):
        aps = [ap for ap, _ in ref.PAPER_TABLE3_DUO_C3D.values()]
        assert max(aps) - min(aps) < 5.0

    def test_duo_evades_squeezing_better_than_vanilla(self):
        assert ref.PAPER_TABLE10_UCF101["duo-c3d"][0] < \
            ref.PAPER_TABLE10_UCF101["vanilla"][0]

    def test_timi_evades_noise2self_best(self):
        timi = ref.PAPER_TABLE10_UCF101["timi-c3d"][1]
        assert all(timi <= other[1]
                   for name, other in ref.PAPER_TABLE10_UCF101.items()
                   if not name.startswith("timi"))
