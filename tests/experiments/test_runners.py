"""Smoke tests: every table/figure runner executes at micro scale.

These use an even smaller configuration than QUICK_SCALE and a tmp cache
so they are hermetic; they assert structure, not attack quality.
"""

import pytest

from repro.experiments import ExperimentScale
from repro.experiments import (
    fig3_victim_maps,
    fig4_surrogate_maps,
    fig5_query_curves,
    table2_attack_comparison,
    table3_surrogate_size,
    table4_victim_loss,
    table5_k_sweep,
    table6_n_sweep,
    table7_tau_sweep,
    table8_iternumh,
    table9_transferability,
    table10_defenses,
)

MICRO = ExperimentScale(
    height=12, width=12, num_frames=4,
    dataset_sizes=(("ucf101", 4, 16, 6), ("hmdb51", 3, 12, 5)),
    feature_dim=12, model_width=2, victim_epochs=1, m=6, num_nodes=2,
    surrogate_rounds=1, surrogate_branch=1, surrogate_epochs=1,
    surrogate_feature_dim=12,
    n=2, k_fraction=0.2, iter_num_q=4, iter_num_h=1,
    transfer_outer_iters=1, theta_steps=1, timi_iterations=1,
    nes_iterations=1, nes_samples=1, query_iterations=4, pairs=1,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))


def test_fig3(capsys):
    table = fig3_victim_maps.run(MICRO, datasets=("ucf101",),
                                 backbones=("c3d",), losses=("arcface",),
                                 max_queries=3)
    assert table.headers == ["dataset", "backbone", "loss", "mAP"]
    assert len(table.rows) == 1
    assert 0.0 <= table.rows[0][-1] <= 1.0


def test_fig4():
    table = fig4_surrogate_maps.run(MICRO, datasets=("ucf101",),
                                    rounds_sweep=(1,), feature_sweep=(12,),
                                    victim_backbone="c3d", max_queries=2)
    assert len(table.rows) == 1


def test_table2():
    table = table2_attack_comparison.run(
        MICRO, datasets=("ucf101",), victims=("c3d",),
        attacks=("vanilla", "duo-c3d"),
    )
    attack_column = table.column("attack")
    assert "w/o attack" in attack_column
    assert "duo-c3d" in attack_column


def test_table3():
    table = table3_surrogate_size.run(
        MICRO, datasets=("ucf101",), attacks=("duo-c3d",), rounds_sweep=(1,),
        victim_backbone="c3d",
    )
    assert table.column("rounds") == [1]


def test_table4():
    table = table4_victim_loss.run(
        MICRO, datasets=("ucf101",), attacks=("duo-c3d",),
        losses=("arcface", "lifted"), victim_backbone="c3d",
    )
    assert set(table.column("victim_loss")) == {"arcface", "lifted"}


def test_table5():
    table = table5_k_sweep.run(
        MICRO, datasets=("ucf101",), attacks=("duo-c3d",),
        k_fractions=(0.1, 0.2), victim_backbone="c3d",
    )
    ks = table.column("k")
    assert ks[0] < ks[1]


def test_table6():
    table = table6_n_sweep.run(
        MICRO, datasets=("ucf101",), attacks=("duo-c3d",), n_sweep=(1, 2),
        victim_backbone="c3d",
    )
    assert table.column("n") == [1, 2]


def test_fig5():
    table = fig5_query_curves.run(
        MICRO, datasets=("ucf101",), attacks=("vanilla",),
        victim_backbone="c3d", checkpoints=3,
    )
    row = table.rows[0]
    # min-so-far series is non-increasing
    series = row[3:]
    assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))


def test_table7():
    table = table7_tau_sweep.run(
        MICRO, datasets=("ucf101",), attacks=("duo-c3d",),
        tau_sweep=(15.0, 30.0), victim_backbone="c3d",
    )
    assert table.column("tau") == [15.0, 30.0]


def test_table8():
    table = table8_iternumh.run(
        MICRO, datasets=("ucf101",), attacks=("duo-c3d",), sweep=(1, 2),
        victim_backbone="c3d",
    )
    queries = table.column("queries")
    assert queries[1] >= queries[0]  # more loops, more queries


def test_table9():
    table = table9_transferability.run(
        MICRO, victims=("c3d",), surrogate_backbones=("c3d",),
        constraints=("linf",),
    )
    assert set(table.column("constraint")) == {"linf"}
    spas = dict(zip(table.column("attack"), table.column("Spa")))
    assert spas["duo-c3d"] <= spas["timi-c3d"]


def test_table10():
    table = table10_defenses.run(
        MICRO, datasets=("ucf101",), attacks=("vanilla",),
        victim_backbone="c3d", calibration_queries=4,
    )
    assert all(0.0 <= value <= 100.0
               for value in table.column("feature_squeezing"))


def test_victim_cache_roundtrip(tmp_path, monkeypatch):
    from repro.experiments import fixtures

    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "c2"))
    dataset = fixtures.dataset_for("ucf101", MICRO)
    first = fixtures.victim_for(dataset, "c3d", "arcface", MICRO)
    second = fixtures.victim_for(dataset, "c3d", "arcface", MICRO)
    query = dataset.test[0]
    assert first.service.query(query).ids == second.service.query(query).ids
