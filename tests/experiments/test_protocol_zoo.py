"""Tests for the shared evaluation protocol and attack factory."""

import numpy as np
import pytest

from repro.attacks.base import Attack, AttackResult
from repro.experiments import QUICK_SCALE
from repro.experiments.attack_zoo import ATTACK_ROWS, attack_factory
from repro.experiments.protocol import (
    attack_pairs,
    evaluate_attack,
    without_attack_ap,
)
from repro.video import Video


class NullAttack(Attack):
    """Returns the original unchanged — a do-nothing reference."""

    def run(self, original, target):
        return AttackResult(
            adversarial=original.copy(),
            perturbation=np.zeros_like(original.pixels),
            queries_used=0,
        )


class TestProtocol:
    def test_attack_pairs_deterministic(self, tiny_dataset):
        scale = QUICK_SCALE.replace(pairs=2)
        a = attack_pairs(tiny_dataset, scale)
        b = attack_pairs(tiny_dataset, scale)
        assert [p[0].video_id for p in a] == [p[0].video_id for p in b]

    def test_without_attack_ap_bounds(self, tiny_victim, tiny_dataset):
        pairs = attack_pairs(tiny_dataset, QUICK_SCALE.replace(pairs=2))
        value = without_attack_ap(tiny_victim, pairs)
        assert 0.0 <= value <= 1.0

    def test_evaluate_null_attack_matches_baseline(self, tiny_victim,
                                                   tiny_dataset):
        pairs = attack_pairs(tiny_dataset, QUICK_SCALE.replace(pairs=2))
        outcome = evaluate_attack(lambda i: NullAttack(), tiny_victim, pairs)
        baseline = without_attack_ap(tiny_victim, pairs)
        assert outcome.ap_at_m == pytest.approx(baseline)
        assert outcome.spa == 0
        assert outcome.queries == 0

    def test_evaluate_keeps_results_when_asked(self, tiny_victim,
                                               tiny_dataset):
        pairs = attack_pairs(tiny_dataset, QUICK_SCALE.replace(pairs=2))
        outcome = evaluate_attack(lambda i: NullAttack(), tiny_victim, pairs,
                                  keep_results=True)
        assert len(outcome.results) == 2
        assert len(outcome.per_pair_ap) == 2


class TestAttackZoo:
    @pytest.fixture(scope="class")
    def surrogates(self, tiny_surrogate):
        return {"c3d": tiny_surrogate, "resnet18": tiny_surrogate}

    @pytest.mark.parametrize("name", ATTACK_ROWS)
    def test_every_row_buildable(self, name, tiny_victim, surrogates):
        factory = attack_factory(name, tiny_victim, surrogates, QUICK_SCALE,
                                 k=40)
        attack = factory(0)
        assert isinstance(attack, Attack)

    def test_unknown_attack(self, tiny_victim, surrogates):
        with pytest.raises(KeyError):
            attack_factory("fgsm", tiny_victim, surrogates, QUICK_SCALE, k=10)

    def test_overrides_applied(self, tiny_victim, surrogates):
        factory = attack_factory("duo-c3d", tiny_victim, surrogates,
                                 QUICK_SCALE, k=40, n=2, tau=50.0,
                                 iter_num_h=3)
        attack = factory(0)
        assert attack.config.n == 2
        assert attack.config.tau == pytest.approx(50.0)
        assert attack.config.tau_unit() == pytest.approx(50.0 / 255.0)
        assert attack.config.rounds == 3

    def test_factories_vary_rng_per_pair(self, tiny_victim, surrogates,
                                         attack_pair, tiny_dataset):
        factory = attack_factory("vanilla", tiny_victim, surrogates,
                                 QUICK_SCALE.replace(query_iterations=3),
                                 k=30)
        result_a = factory(0).run(*attack_pair)
        result_b = factory(1).run(*attack_pair)
        # Different per-pair seeds explore different coordinates.
        assert not np.array_equal(result_a.perturbation,
                                  result_b.perturbation) or \
            result_a.perturbation.any() == False  # noqa: E712 — both zero is OK
