"""Tests for the run_all CLI."""

import pytest

from repro.experiments import run_all


def test_unknown_experiment_rejected(tmp_path, capsys):
    with pytest.raises(SystemExit):
        run_all.main(["definitely-not-a-table", "--out", str(tmp_path)])


def test_runner_registry_complete():
    expected = {"fig3", "fig4", "fig5", "table2", "table3", "table4",
                "table5", "table6", "table7", "table8", "table9", "table10"}
    assert set(run_all.RUNNERS) == expected


def test_cli_runs_subset_quick(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
    exit_code = run_all.main(["fig3", "--quick", "--out",
                              str(tmp_path / "out")])
    assert exit_code == 0
    assert (tmp_path / "out" / "fig3.txt").exists()
    output = capsys.readouterr().out
    assert "Figure 3" in output


def test_cli_writes_obs_sidecars(tmp_path, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
    out = tmp_path / "out"
    exit_code = run_all.main(["fig3", "--quick", "--out", str(out)])
    assert exit_code == 0
    metrics_path = out / "obs" / "fig3.metrics.json"
    trace_path = out / "obs" / "fig3.trace.json"
    assert metrics_path.exists() and trace_path.exists()
    metrics = json.loads(metrics_path.read_text())
    assert metrics["extra"]["experiment"] == "fig3"
    assert metrics["extra"]["elapsed_s"] > 0
    assert metrics["metrics"]["counters"]  # attack/retrieval counters present
    trace = json.loads(trace_path.read_text())
    assert any(e["name"] == "experiment.fig3" for e in trace["traceEvents"])


def test_cli_no_obs_flag_suppresses_sidecars(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
    out = tmp_path / "out"
    exit_code = run_all.main(["fig3", "--quick", "--no-obs", "--out",
                              str(out)])
    assert exit_code == 0
    assert not (out / "obs").exists()
