"""Tests for the run_all CLI."""

import pytest

from repro.experiments import run_all


def test_unknown_experiment_rejected(tmp_path, capsys):
    with pytest.raises(SystemExit):
        run_all.main(["definitely-not-a-table", "--out", str(tmp_path)])


def test_runner_registry_complete():
    expected = {"fig3", "fig4", "fig5", "table2", "table3", "table4",
                "table5", "table6", "table7", "table8", "table9", "table10"}
    assert set(run_all.RUNNERS) == expected


def test_cli_runs_subset_quick(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
    exit_code = run_all.main(["fig3", "--quick", "--out",
                              str(tmp_path / "out")])
    assert exit_code == 0
    assert (tmp_path / "out" / "fig3.txt").exists()
    output = capsys.readouterr().out
    assert "Figure 3" in output
