"""Tests for the ASCII plotting helpers."""

import pytest

from repro.experiments.plotting import ascii_bar_chart, ascii_line_chart


class TestBarChart:
    def test_renders_all_rows(self):
        text = ascii_bar_chart(["a", "bb"], [1.0, 0.5], title="demo")
        assert "demo" in text
        assert "a " in text and "bb" in text
        assert "1.000" in text and "0.500" in text

    def test_bar_lengths_proportional(self):
        text = ascii_bar_chart(["x", "y"], [1.0, 0.5], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert ascii_bar_chart([], [], title="t") == "t"


class TestLineChart:
    def test_contains_legend_and_axis(self):
        text = ascii_line_chart({"duo": [2.0, 1.5, 1.0]}, title="T")
        assert "o=duo" in text
        assert "2.000" in text and "1.000" in text

    def test_multiple_series_distinct_glyphs(self):
        text = ascii_line_chart({"a": [1.0, 0.0], "b": [0.0, 1.0]})
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text

    def test_flat_series_does_not_crash(self):
        text = ascii_line_chart({"flat": [1.0, 1.0, 1.0]})
        assert "flat" in text

    def test_empty_series(self):
        assert ascii_line_chart({}, title="t") == "t"

    def test_width_respected(self):
        text = ascii_line_chart({"s": list(range(100))}, width=30, height=5)
        grid_lines = [line for line in text.splitlines() if "│" in line or "┤" in line]
        assert all(len(line) <= 10 + 1 + 30 for line in grid_lines)
