"""Tests for the experiment configuration and table formatting."""

import pytest

from repro.experiments import DEFAULT_SCALE, QUICK_SCALE, ExperimentScale, TableResult


class TestExperimentScale:
    def test_dataset_size_lookup(self):
        classes, train, test = DEFAULT_SCALE.dataset_size("ucf101")
        assert classes > 0 and train > test

    def test_ucf_larger_than_hmdb(self):
        # Preserves the paper's dataset-size ordering.
        _, ucf_train, _ = DEFAULT_SCALE.dataset_size("ucf101")
        _, hmdb_train, _ = DEFAULT_SCALE.dataset_size("hmdb51")
        assert ucf_train > hmdb_train

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            DEFAULT_SCALE.dataset_size("kinetics")

    def test_k_for(self):
        scale = DEFAULT_SCALE.replace(k_fraction=0.5)
        assert scale.k_for(1000) == 500
        assert scale.k_for(1) == 1

    def test_replace_returns_copy(self):
        other = DEFAULT_SCALE.replace(tau=50.0)
        assert other.tau == 50.0
        assert DEFAULT_SCALE.tau == 30.0

    def test_cache_key_stable_and_sensitive(self):
        assert DEFAULT_SCALE.cache_key("x") == DEFAULT_SCALE.cache_key("x")
        assert DEFAULT_SCALE.cache_key("x") != DEFAULT_SCALE.cache_key("y")
        assert DEFAULT_SCALE.cache_key("x") != \
            DEFAULT_SCALE.replace(tau=31.0).cache_key("x")

    def test_quick_scale_is_smaller(self):
        assert QUICK_SCALE.iter_num_q < DEFAULT_SCALE.iter_num_q
        assert QUICK_SCALE.dataset_size("ucf101")[1] < \
            DEFAULT_SCALE.dataset_size("ucf101")[1]


class TestTableResult:
    def test_add_row_validates_width(self):
        table = TableResult("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = TableResult("t", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_format_contains_everything(self):
        table = TableResult("My Table", ["name", "value"])
        table.add_row("x", 0.12345)
        table.notes.append("a note")
        text = table.format()
        assert "My Table" in text
        assert "0.123" in text
        assert "note: a note" in text

    def test_str_matches_format(self):
        table = TableResult("t", ["a"])
        table.add_row(1)
        assert str(table) == table.format()
