"""Batched search equivalence: index, gallery, service, and engine layers."""

import numpy as np
import pytest

from repro.qa.world import build_world
from repro.resilience import FaultPlan
from repro.retrieval import (
    FeatureIndex,
    QueryBudgetExceeded,
    RetrievalService,
    RetrievalUnavailable,
    ShardedGallery,
    cosine,
    negative_l2,
)
from repro.retrieval.similarity import batched_similarity, hamming


def _fill(index_or_gallery, rng, rows=20, dim=6):
    features = rng.normal(size=(rows, dim))
    for i, feature in enumerate(features):
        index_or_gallery.add(f"v{i}", i % 4, feature)
    return features


class TestFeatureIndexBatch:
    @pytest.mark.parametrize("similarity", [negative_l2, cosine, hamming])
    def test_matches_sequential_search(self, rng, similarity):
        index = FeatureIndex(similarity)
        _fill(index, rng)
        queries = rng.normal(size=(5, 6))
        batched = index.search_batch(queries, k=4)
        for query, batch_result in zip(queries, batched):
            sequential = index.search(query, k=4)
            assert [e.video_id for e in batch_result] == \
                [e.video_id for e in sequential]
            # Only l2 promises bit-identical scores (same reduction order);
            # cosine/hamming run one GEMM instead of B matvecs.
            if similarity is negative_l2:
                assert [e.score for e in batch_result] == \
                    [e.score for e in sequential]
            else:
                np.testing.assert_allclose(
                    [e.score for e in batch_result],
                    [e.score for e in sequential], rtol=1e-12)

    def test_custom_similarity_fallback(self, rng):
        def inverted(query, gallery):
            return -np.abs(gallery - query[None, :]).sum(axis=1)

        index = FeatureIndex(inverted)
        _fill(index, rng)
        queries = rng.normal(size=(3, 6))
        batched = index.search_batch(queries, k=3)
        for query, batch_result in zip(queries, batched):
            sequential = index.search(query, k=3)
            assert [e.video_id for e in batch_result] == \
                [e.video_id for e in sequential]

    def test_empty_index_returns_empty_lists(self):
        index = FeatureIndex()
        assert index.search(np.zeros(4), k=3) == []
        assert index.search_batch(np.zeros((3, 4)), k=2) == [[], [], []]

    def test_empty_feature_matrix_is_an_error(self):
        index = FeatureIndex()
        with pytest.raises(RuntimeError, match="empty index"):
            index._feature_matrix()

    def test_add_batch_matches_sequential_add(self, rng):
        features = rng.normal(size=(7, 5))
        one_by_one = FeatureIndex()
        batched = FeatureIndex()
        for i, feature in enumerate(features):
            one_by_one.add(f"v{i}", i, feature)
        batched.add_batch([f"v{i}" for i in range(7)], list(range(7)),
                          features)
        np.testing.assert_array_equal(one_by_one._feature_matrix(),
                                      batched._feature_matrix())
        assert one_by_one.labels_of() == batched.labels_of()

    def test_add_batch_zip_truncation(self, rng):
        index = FeatureIndex()
        index.add_batch(["a", "b", "c"], [0, 1], rng.normal(size=(3, 4)))
        assert len(index) == 2

    def test_add_batch_dim_mismatch(self, rng):
        index = FeatureIndex()
        index.add("v0", 0, rng.normal(size=4))
        with pytest.raises(ValueError, match="feature dim mismatch"):
            index.add_batch(["a"], [1], rng.normal(size=(1, 5)))


class TestShardedGalleryBatch:
    def test_add_batch_preserves_round_robin(self, rng):
        features = rng.normal(size=(11, 5))
        sequential = ShardedGallery(num_nodes=3)
        batched = ShardedGallery(num_nodes=3)
        # Start both cursors off zero to exercise cursor continuity.
        sequential.add("seed", 0, features[0])
        batched.add("seed", 0, features[0])
        for i, feature in enumerate(features[1:]):
            sequential.add(f"v{i}", i, feature)
        batched.add_batch([f"v{i}" for i in range(10)], list(range(10)),
                          features[1:])
        assert batched._next_shard == sequential._next_shard
        for node_a, node_b in zip(sequential.nodes, batched.nodes):
            assert node_a.index._ids == node_b.index._ids
            np.testing.assert_array_equal(node_a.index._feature_matrix(),
                                          node_b.index._feature_matrix())

    def test_search_batch_matches_sequential(self, rng):
        gallery = ShardedGallery(num_nodes=3)
        _fill(gallery, rng)
        queries = rng.normal(size=(4, 6))
        batched = gallery.search_batch(queries, k=5)
        for query, batch_result in zip(queries, batched):
            sequential = gallery.search(query, k=5)
            assert [e.video_id for e in batch_result] == \
                [e.video_id for e in sequential]
            assert [e.score for e in batch_result] == \
                [e.score for e in sequential]

    def test_search_batch_skips_downed_node(self, rng):
        gallery = ShardedGallery(num_nodes=3)
        _fill(gallery, rng)
        gallery.nodes[1].take_down()
        queries = rng.normal(size=(3, 6))
        batched = gallery.search_batch(queries, k=4)
        for query, batch_result in zip(queries, batched):
            sequential = gallery.search(query, k=4)
            assert [e.video_id for e in batch_result] == \
                [e.video_id for e in sequential]
            assert all(e.video_id not in gallery.nodes[1].index._ids
                       for e in batch_result)


class TestBatchedSimilarity:
    @pytest.mark.parametrize("similarity", [negative_l2, cosine, hamming])
    def test_rows_bitwise_or_close(self, rng, similarity):
        gallery = rng.normal(size=(15, 8))
        queries = rng.normal(size=(4, 8))
        batch = batched_similarity(similarity)(queries, gallery)
        for row, query in zip(batch, queries):
            reference = similarity(query, gallery)
            if similarity is negative_l2:
                np.testing.assert_array_equal(row, reference)
            else:
                np.testing.assert_allclose(row, reference, rtol=1e-12)

    def test_l2_rows_bit_identical(self, rng):
        # The batched l2 must preserve the scalar reduction order exactly;
        # batched rankings (and therefore attack traces) depend on it.
        gallery = rng.normal(size=(50, 16))
        queries = rng.normal(size=(8, 16))
        batch = batched_similarity(negative_l2)(queries, gallery)
        for row, query in zip(batch, queries):
            np.testing.assert_array_equal(row, negative_l2(query, gallery))


class TestServiceAndEngineBatch:
    def test_query_batch_matches_sequential(self, tiny_victim, tiny_dataset):
        videos = tiny_dataset.test[:4]
        service_a = RetrievalService(tiny_victim.engine, m=5)
        service_b = RetrievalService(tiny_victim.engine, m=5)
        sequential = [service_a.query(video) for video in videos]
        batched = service_b.query_batch(videos)
        assert service_b.query_count == service_a.query_count == len(videos)
        for seq, bat in zip(sequential, batched):
            assert seq.ids == bat.ids

    def test_query_batch_budget_stops_mid_batch(self, tiny_victim,
                                                tiny_dataset):
        service = RetrievalService(tiny_victim.engine, m=4, query_budget=2)
        with pytest.raises(QueryBudgetExceeded):
            service.query_batch(tiny_dataset.test[:4])
        assert service.query_count == 2

    def test_mid_batch_outage_matches_sequential_accounting(self):
        # Regression: a mid-batch RetrievalUnavailable used to refund the
        # *entire* batch; a sequential loop serves the prefix, refunds
        # exactly the failing query, and never issues the suffix.
        batched_world = build_world(83, num_nodes=1)
        with FaultPlan().outage("node-0", 2, 5).install(
                batched_world.engine.gallery):
            with pytest.raises(RetrievalUnavailable) as excinfo:
                batched_world.service.query_batch(
                    batched_world.gallery_videos[:4])
        assert excinfo.value.served_count == 2

        sequential_world = build_world(83, num_nodes=1)
        sequential_results = []
        with FaultPlan().outage("node-0", 2, 5).install(
                sequential_world.engine.gallery):
            with pytest.raises(RetrievalUnavailable):
                for video in sequential_world.gallery_videos[:4]:
                    sequential_results.append(
                        sequential_world.service.query(video))

        for attr in ("query_count", "queries_issued", "queries_refunded"):
            assert getattr(batched_world.service, attr) == \
                getattr(sequential_world.service, attr), attr
        assert batched_world.service.query_count == 2
        assert batched_world.service.queries_issued == 3
        assert batched_world.service.queries_refunded == 1
        # The exception carries the served prefix, bit-identical to the
        # lists the sequential loop received before the outage.
        assert [r.ids for r in excinfo.value.served] == \
            [r.ids for r in sequential_results]

    def test_whole_batch_outage_counts_like_a_first_query_failure(self):
        world = build_world(83, num_nodes=2)
        for node in world.engine.gallery.nodes:
            node.take_down()
        with pytest.raises(RetrievalUnavailable):
            world.service.query_batch(world.gallery_videos[:3])
        # Sequential semantics: the first query fails (issued + refunded),
        # the rest are never sent.
        assert world.service.query_count == 0
        assert world.service.queries_issued == 1
        assert world.service.queries_refunded == 1

    def test_retrieve_batch_matches_retrieve(self, tiny_victim, tiny_dataset):
        videos = tiny_dataset.test[:3]
        sequential = [tiny_victim.engine.retrieve(v, m=4) for v in videos]
        batched = tiny_victim.engine.retrieve_batch(videos, m=4)
        for seq, bat in zip(sequential, batched):
            assert seq.ids == bat.ids
            assert [e.score for e in seq] == [e.score for e in bat]

    def test_retrieve_batch_empty(self, tiny_victim):
        assert tiny_victim.engine.retrieve_batch([], m=4) == []

    def test_speculate_requires_stateless_service(self, tiny_victim,
                                                  tiny_dataset):
        service = RetrievalService(tiny_victim.engine, m=4,
                                   preprocessor=lambda video: video)
        assert not service.speculation_safe
        with pytest.raises(RuntimeError, match="stateless"):
            service.speculate(tiny_dataset.test[:2])

    def test_instrumented_query_is_not_bypassed(self, tiny_victim,
                                                tiny_dataset):
        # Wrapping the instance's query (as a stateful detector would)
        # must disable speculation and route query_batch through the wrapper.
        service = RetrievalService(tiny_victim.engine, m=4)
        original = service.query
        calls = []

        def spy(video, m=None):
            calls.append(video.video_id)
            return original(video, m)

        service.query = spy
        assert not service.speculation_safe
        service.query_batch(tiny_dataset.test[:3])
        assert len(calls) == 3
        assert service.query_count == 3

    def test_speculate_then_commit_counts(self, tiny_victim, tiny_dataset):
        service = RetrievalService(tiny_victim.engine, m=4)
        results = service.speculate(tiny_dataset.test[:2])
        assert service.query_count == 0
        assert len(results) == 2
        service.commit_speculated(1)
        assert service.query_count == 1
