"""Tests for the flat feature index."""

import numpy as np
import pytest

from repro.retrieval import FeatureIndex, cosine, negative_l2, create_similarity


class TestFeatureIndex:
    @pytest.fixture
    def index(self, rng):
        index = FeatureIndex()
        for i in range(10):
            index.add(f"v{i}", i % 3, np.full(4, float(i)))
        return index

    def test_len(self, index):
        assert len(index) == 10

    def test_search_orders_by_similarity(self, index):
        entries = index.search(np.full(4, 2.2), k=3)
        assert [e.video_id for e in entries] == ["v2", "v3", "v1"]

    def test_scores_descending(self, index):
        entries = index.search(np.zeros(4), k=5)
        scores = [e.score for e in entries]
        assert scores == sorted(scores, reverse=True)

    def test_k_clamped_to_size(self, index):
        assert len(index.search(np.zeros(4), k=50)) == 10

    def test_empty_index(self):
        assert FeatureIndex().search(np.zeros(4), k=3) == []

    def test_labels_preserved(self, index):
        entries = index.search(np.zeros(4), k=3)
        assert entries[0].label == 0

    def test_dim_mismatch_rejected(self, index):
        with pytest.raises(ValueError):
            index.add("bad", 0, np.zeros(7))

    def test_add_batch(self, rng):
        index = FeatureIndex()
        index.add_batch(["a", "b"], [0, 1], rng.normal(size=(2, 3)))
        assert len(index) == 2

    def test_labels_of(self, index):
        assert sorted(set(index.labels_of())) == [0, 1, 2]

    def test_cosine_similarity_variant(self, rng):
        index = FeatureIndex(similarity=cosine)
        index.add("x", 0, np.array([1.0, 0.0]))
        index.add("y", 1, np.array([0.0, 1.0]))
        top = index.search(np.array([0.9, 0.1]), k=1)[0]
        assert top.video_id == "x"


class TestSimilarities:
    def test_negative_l2_identity_best(self, rng):
        gallery = rng.normal(size=(5, 3))
        scores = negative_l2(gallery[2], gallery)
        assert scores.argmax() == 2
        assert scores[2] == pytest.approx(0.0)

    def test_cosine_bounds(self, rng):
        gallery = rng.normal(size=(10, 4))
        scores = cosine(rng.normal(size=4), gallery)
        assert np.all(scores <= 1.0 + 1e-9)
        assert np.all(scores >= -1.0 - 1e-9)

    def test_create_similarity(self):
        assert create_similarity("l2") is negative_l2
        assert create_similarity("COSINE") is cosine
        with pytest.raises(KeyError):
            create_similarity("dot")
