"""Back-compat surface of the errors consolidation and the service
constructor redesign: legacy import paths must alias the canonical
``repro.errors`` classes, and legacy ``RetrievalService(...)`` kwargs
must keep working behind a :class:`DeprecationWarning`."""

import pytest

import repro.errors as errors
import repro.retrieval as retrieval
import repro.retrieval.nodes as nodes
import repro.retrieval.service as service_module
from repro.retrieval.config import ServiceConfig
from repro.retrieval.service import RetrievalService


class TestErrorAliases:
    def test_service_module_aliases_canonical_errors(self):
        assert service_module.QueryBudgetExceeded is errors.QueryBudgetExceeded
        assert service_module.RetrievalUnavailable is errors.RetrievalUnavailable

    def test_nodes_module_aliases_canonical_errors(self):
        assert nodes.NodeDownError is errors.NodeDownError
        assert nodes.DeadlineExceeded is errors.DeadlineExceeded
        assert nodes.RetrievalUnavailable is errors.RetrievalUnavailable

    def test_package_reexports_canonical_errors(self):
        for name in ("DeadlineExceeded", "NodeDownError",
                     "QueryBudgetExceeded", "RetrievalError",
                     "RetrievalUnavailable"):
            assert getattr(retrieval, name) is getattr(errors, name), name

    def test_hierarchy_is_catchable_at_every_level(self):
        # Callers written against any era of the API keep catching.
        assert issubclass(errors.QueryBudgetExceeded, errors.RetrievalError)
        assert issubclass(errors.NodeDownError, errors.RetrievalError)
        assert issubclass(errors.DeadlineExceeded,
                          errors.RetrievalUnavailable)
        assert issubclass(errors.RetrievalError, errors.ReproError)
        assert issubclass(errors.ReproError, RuntimeError)


class TestLegacyServiceConstructor:
    def test_legacy_kwargs_warn_but_work(self):
        engine = object()
        with pytest.warns(DeprecationWarning,
                          match="RetrievalService.build"):
            service = RetrievalService(engine, m=4, query_budget=9)
        assert service.m == 4
        assert service.query_budget == 9
        assert service.config == ServiceConfig(m=4, query_budget=9)

    def test_each_legacy_kwarg_triggers_the_warning(self):
        for kwargs in ({"m": 3}, {"query_budget": 5},
                       {"preprocessor": None}, {"quantize_queries": True}):
            with pytest.warns(DeprecationWarning):
                RetrievalService(object(), **kwargs)

    def test_config_path_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            service = RetrievalService(object(),
                                       config=ServiceConfig(m=6))
        assert service.m == 6

    def test_mixing_config_and_legacy_kwargs_raises(self):
        with pytest.raises(TypeError, match="not both"):
            RetrievalService(object(), m=4, config=ServiceConfig())

    def test_build_rejects_unknown_override(self):
        with pytest.raises(TypeError, match="unknown ServiceConfig"):
            RetrievalService.build(object(), nonsense=1)
