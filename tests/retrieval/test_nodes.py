"""Tests for the distributed sharded gallery (incl. failure injection)."""

import numpy as np
import pytest

from repro.retrieval import (
    DataNode,
    FeatureIndex,
    NodeDownError,
    ShardedGallery,
)


@pytest.fixture
def gallery(rng):
    gallery = ShardedGallery(num_nodes=3)
    for i in range(12):
        gallery.add(f"v{i}", i % 4, rng.normal(size=5))
    return gallery


class TestSharding:
    def test_round_robin_placement(self, gallery):
        sizes = [len(node) for node in gallery.nodes]
        assert sizes == [4, 4, 4]

    def test_total_length(self, gallery):
        assert len(gallery) == 12

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            ShardedGallery(num_nodes=0)

    def test_topology_is_star(self, gallery):
        assert gallery.topology.number_of_nodes() == 4
        assert gallery.topology.degree("coordinator") == 3


class TestScatterGather:
    def test_merge_matches_flat_index(self, rng):
        gallery = ShardedGallery(num_nodes=4)
        flat = FeatureIndex()
        features = rng.normal(size=(20, 6))
        for i, feature in enumerate(features):
            gallery.add(f"v{i}", 0, feature)
            flat.add(f"v{i}", 0, feature)
        query = rng.normal(size=6)
        merged = [e.video_id for e in gallery.search(query, k=7)]
        reference = [e.video_id for e in flat.search(query, k=7)]
        assert merged == reference

    def test_search_scores_descending(self, gallery, rng):
        entries = gallery.search(rng.normal(size=5), k=8)
        scores = [e.score for e in entries]
        assert scores == sorted(scores, reverse=True)

    def test_labels_of_spans_shards(self, gallery):
        assert len(gallery.labels_of()) == 12


class TestFailureInjection:
    def test_downed_node_raises_on_direct_search(self, rng):
        node = DataNode("n0")
        node.add("v", 0, rng.normal(size=3))
        node.take_down()
        with pytest.raises(NodeDownError):
            node.search(rng.normal(size=3), 1)

    def test_gallery_degrades_gracefully(self, gallery, rng):
        query = rng.normal(size=5)
        full = gallery.search(query, k=12)
        gallery.nodes[0].take_down()
        degraded = gallery.search(query, k=12)
        assert len(degraded) == 8  # one shard of 4 missing
        surviving = {e.video_id for e in degraded}
        assert surviving.issubset({e.video_id for e in full})

    def test_recovery(self, gallery, rng):
        gallery.nodes[1].take_down()
        gallery.nodes[1].bring_up()
        assert len(gallery.search(rng.normal(size=5), k=12)) == 12

    def test_all_nodes_down_returns_empty(self, gallery, rng):
        for node in gallery.nodes:
            node.take_down()
        assert gallery.search(rng.normal(size=5), k=5) == []
        assert gallery.live_nodes == []

    def test_search_counts(self, gallery, rng):
        gallery.search(rng.normal(size=5), k=3)
        assert all(node.search_count == 1 for node in gallery.nodes)
