"""Tests for the distributed sharded gallery (incl. failure injection)."""

import numpy as np
import pytest

from repro.obs import counter, get_registry
from repro.resilience import ResilienceConfig
from repro.retrieval import (
    DataNode,
    FeatureIndex,
    NodeDownError,
    RetrievalUnavailable,
    ShardedGallery,
)


@pytest.fixture
def gallery(rng):
    gallery = ShardedGallery(num_nodes=3)
    for i in range(12):
        gallery.add(f"v{i}", i % 4, rng.normal(size=5))
    return gallery


class TestSharding:
    def test_round_robin_placement(self, gallery):
        sizes = [len(node) for node in gallery.nodes]
        assert sizes == [4, 4, 4]

    def test_total_length(self, gallery):
        assert len(gallery) == 12

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            ShardedGallery(num_nodes=0)

    def test_topology_is_star(self, gallery):
        assert gallery.topology.number_of_nodes() == 4
        assert gallery.topology.degree("coordinator") == 3


class TestScatterGather:
    def test_merge_matches_flat_index(self, rng):
        gallery = ShardedGallery(num_nodes=4)
        flat = FeatureIndex()
        features = rng.normal(size=(20, 6))
        for i, feature in enumerate(features):
            gallery.add(f"v{i}", 0, feature)
            flat.add(f"v{i}", 0, feature)
        query = rng.normal(size=6)
        merged = [e.video_id for e in gallery.search(query, k=7)]
        reference = [e.video_id for e in flat.search(query, k=7)]
        assert merged == reference

    def test_search_scores_descending(self, gallery, rng):
        entries = gallery.search(rng.normal(size=5), k=8)
        scores = [e.score for e in entries]
        assert scores == sorted(scores, reverse=True)

    def test_labels_of_spans_shards(self, gallery):
        assert len(gallery.labels_of()) == 12


class TestFailureInjection:
    def test_downed_node_raises_on_direct_search(self, rng):
        node = DataNode("n0")
        node.add("v", 0, rng.normal(size=3))
        node.take_down()
        with pytest.raises(NodeDownError):
            node.search(rng.normal(size=3), 1)

    def test_gallery_degrades_gracefully(self, gallery, rng):
        query = rng.normal(size=5)
        full = gallery.search(query, k=12)
        gallery.nodes[0].take_down()
        degraded = gallery.search(query, k=12)
        assert len(degraded) == 8  # one shard of 4 missing
        surviving = {e.video_id for e in degraded}
        assert surviving.issubset({e.video_id for e in full})

    def test_recovery(self, gallery, rng):
        gallery.nodes[1].take_down()
        gallery.nodes[1].bring_up()
        assert len(gallery.search(rng.normal(size=5), k=12)) == 12

    def test_all_nodes_down_raises_unavailable(self, gallery, rng):
        # Regression: the plain scatter used to return empty partials —
        # and thus an empty retrieval list, as if the gallery held no
        # videos — when zero nodes were live.
        for node in gallery.nodes:
            node.take_down()
        assert gallery.live_nodes == []
        with pytest.raises(RetrievalUnavailable):
            gallery.search(rng.normal(size=5), k=5)

    def test_all_nodes_down_raises_unavailable_batched(self, gallery, rng):
        for node in gallery.nodes:
            node.take_down()
        with pytest.raises(RetrievalUnavailable):
            gallery.search_batch(rng.normal(size=(3, 5)), k=5)

    def test_all_nodes_down_raises_on_resilient_scatter_too(self, rng):
        gallery = ShardedGallery(num_nodes=3,
                                 resilience=ResilienceConfig(replication=1))
        gallery.add_batch([f"v{i}" for i in range(6)], [0] * 6,
                          rng.normal(size=(6, 5)))
        for node in gallery.nodes:
            node.take_down()
        with pytest.raises(RetrievalUnavailable):
            gallery.search(rng.normal(size=5), k=4)

    def test_all_nodes_down_on_an_empty_gallery_is_still_empty(self, rng):
        # No rows stored → an empty list is the *correct* answer, not an
        # outage, whichever scatter strategy runs.
        plain = ShardedGallery(num_nodes=2)
        resilient = ShardedGallery(num_nodes=2,
                                   resilience=ResilienceConfig(replication=1))
        for gallery in (plain, resilient):
            for node in gallery.nodes:
                node.take_down()
            assert gallery.search(rng.normal(size=5), k=3) == []

    def test_search_counts(self, gallery, rng):
        gallery.search(rng.normal(size=5), k=3)
        assert all(node.search_count == 1 for node in gallery.nodes)


class TestDegradedObservability:
    """Degraded retrieval stays correct and shows up in the obs counters."""

    def test_merge_still_correct_with_node_down(self, rng):
        gallery = ShardedGallery(num_nodes=4)
        flat_surviving = FeatureIndex()
        features = rng.normal(size=(20, 6))
        downed_shard = 2
        for i, feature in enumerate(features):
            gallery.add(f"v{i}", 0, feature)
            if i % 4 != downed_shard:  # rows land round-robin on shard i%4
                flat_surviving.add(f"v{i}", 0, feature)
        gallery.nodes[downed_shard].take_down()
        query = rng.normal(size=6)
        merged = [e.video_id for e in gallery.search(query, k=7)]
        reference = [e.video_id for e in flat_surviving.search(query, k=7)]
        assert merged == reference

    def test_node_skipped_counter_increments(self, gallery, rng):
        downed = gallery.nodes[0]
        before = counter("gallery.node_skipped", node=downed.node_id).value
        downed.take_down()
        gallery.search(rng.normal(size=5), k=3)
        gallery.search(rng.normal(size=5), k=3)
        after = counter("gallery.node_skipped", node=downed.node_id).value
        assert after - before == 2

    def test_degraded_searches_counter(self, gallery, rng):
        searches_before = counter("gallery.searches").value
        degraded_before = counter("gallery.degraded_searches").value
        gallery.search(rng.normal(size=5), k=3)  # healthy
        gallery.nodes[1].take_down()
        gallery.search(rng.normal(size=5), k=3)  # degraded
        assert counter("gallery.searches").value - searches_before == 2
        assert counter("gallery.degraded_searches").value \
            - degraded_before == 1

    def test_direct_search_on_down_node_counted(self, rng):
        node = DataNode("obs-test-node")
        node.add("v", 0, rng.normal(size=3))
        node.take_down()
        key = "gallery.node_down_errors"
        before = counter(key, node=node.node_id).value
        with pytest.raises(NodeDownError):
            node.search(rng.normal(size=3), 1)
        assert counter(key, node=node.node_id).value - before == 1

    def test_node_latency_histogram_observed(self, gallery, rng):
        registry = get_registry()
        node_id = gallery.nodes[0].node_id
        hist = registry.histogram("gallery.node_latency_s", node=node_id)
        before = hist.count
        gallery.search(rng.normal(size=5), k=3)
        assert hist.count == before + 1
        assert hist.maximum >= 0.0
