"""Tests for the content-hash embedding cache on the retrieval engine."""

import sys
import time

import numpy as np
import pytest

from repro.perf.cache import EmbeddingCache, content_key, default_capacity
from repro.qa.concurrency import BarrierHarness
from repro.retrieval import RetrievalEngine
from repro.video import Video


class TestContentKey:
    def test_single_value_change_misses(self, rng):
        pixels = rng.random((2, 4, 4, 3))
        changed = pixels.copy()
        changed[0, 0, 0, 0] += 1e-9
        assert content_key(pixels) != content_key(changed)
        assert content_key(pixels) == content_key(pixels.copy())

    def test_shape_disambiguates(self):
        flat = np.zeros(12)
        assert content_key(flat) != content_key(flat.reshape(3, 4))


class TestEmbeddingCache:
    def test_lru_eviction(self, rng):
        cache = EmbeddingCache(capacity=2)
        keys = [content_key(rng.random(3)) for _ in range(3)]
        for key in keys:
            cache.put(key, rng.random(4))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(keys[0]) is None  # oldest was evicted
        assert cache.get(keys[2]) is not None

    def test_zero_capacity_disables(self, rng):
        cache = EmbeddingCache(capacity=0)
        key = content_key(rng.random(3))
        cache.put(key, rng.random(4))
        assert not cache.enabled
        assert len(cache) == 0
        assert cache.get(key) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingCache(capacity=-1)

    def test_stats_and_counters(self, rng):
        cache = EmbeddingCache(capacity=4)
        key = content_key(rng.random(3))
        cache.get(key)
        cache.put(key, rng.random(4))
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_stored_features_frozen(self, rng):
        cache = EmbeddingCache(capacity=4)
        key = content_key(rng.random(3))
        cache.put(key, rng.random(4))
        entry = cache.get(key)
        with pytest.raises(ValueError):
            entry[0] = 0.0

    def test_put_neither_freezes_nor_aliases_caller_array(self, rng):
        # Regression: ``put`` used to freeze the caller's ndarray in
        # place (asarray returns it unchanged), so mutating the source
        # afterwards either raised ValueError or corrupted the cache.
        cache = EmbeddingCache(capacity=4)
        key = content_key(rng.random(3))
        feature = rng.random(4)
        cache.put(key, feature)
        snapshot = np.array(cache.get(key))
        feature[0] += 123.0  # caller reuses its buffer; must not raise
        entry = cache.get(key)
        assert not np.shares_memory(entry, feature)
        np.testing.assert_array_equal(entry, snapshot)
        assert feature.flags.writeable

    def test_counter_accounting_exact_under_free_threads(self, rng):
        # Regression: hit/miss bookkeeping used to run outside the
        # cache's lock, so racing lookups lost read-modify-write updates
        # and ``hits + misses`` drifted below the lookup count.  On a
        # GIL interpreter a plain ``self.hits += 1`` is never preempted
        # mid-increment, so the race window is widened with a descriptor
        # that yields between the read and the write — counting stays
        # exact only if the increment runs under the cache's lock.
        class YieldingCounter:
            def __set_name__(self, owner, name):
                self.slot = "_yielding_" + name

            def __get__(self, obj, objtype=None):
                if obj is None:
                    return self
                value = obj.__dict__.get(self.slot, 0)
                time.sleep(0)  # offer the scheduler a switch point
                return value

            def __set__(self, obj, value):
                obj.__dict__[self.slot] = value

        class InstrumentedCache(EmbeddingCache):
            hits = YieldingCounter()
            misses = YieldingCounter()

        cache = InstrumentedCache(capacity=8)
        present = [content_key(np.array([float(i)])) for i in range(3)]
        absent = content_key(np.array([99.0]))
        for key in present:
            cache.put(key, rng.random(4))
        threads, steps, burst = 4, 60, 10
        keys = present + [absent]
        harness = BarrierHarness(threads=threads, steps=steps, seed=3)

        def worker(thread_id, step, _rng):
            for i in range(burst):
                cache.get(keys[(thread_id + step + i) % len(keys)])

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            harness.run_free(worker)
        finally:
            sys.setswitchinterval(old_interval)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == threads * steps * burst

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMBED_CACHE", "7")
        assert default_capacity() == 7
        assert EmbeddingCache().capacity == 7
        monkeypatch.setenv("REPRO_EMBED_CACHE", "many")
        with pytest.raises(ValueError):
            default_capacity()


class TestEngineCache:
    def test_hits_are_bit_identical(self, tiny_victim, tiny_dataset):
        engine = tiny_victim.engine
        video = tiny_dataset.test[0]
        engine.clear_embedding_cache()
        first = engine.embed_queries([video])
        hits_before = engine.embedding_cache.hits
        second = engine.embed_queries([video])
        assert engine.embedding_cache.hits == hits_before + 1
        np.testing.assert_array_equal(first, second)

    def test_mixed_hit_miss_batch(self, tiny_victim, tiny_dataset):
        engine = tiny_victim.engine
        engine.clear_embedding_cache()
        cold = engine.embed_queries(tiny_dataset.test[:3])
        mixed = engine.embed_queries(tiny_dataset.test[:4])
        np.testing.assert_array_equal(mixed[:3], cold)

    def test_gallery_mutation_keeps_query_cache_valid(self, tiny_victim,
                                                      tiny_dataset):
        # The cache keys on query *pixels*; gallery inserts change search
        # results but never the embedding of an unchanged query.
        extractor = tiny_victim.engine.extractor
        engine = RetrievalEngine(extractor, num_nodes=2)
        engine.index_videos(tiny_dataset.train[:6])
        video = tiny_dataset.test[0]
        before = engine.embed_queries([video])[0]
        engine.retrieve(video, m=3)
        engine.index_videos(tiny_dataset.train[6:10])
        hits_before = engine.embedding_cache.hits
        after_feature = engine.embed_queries([video])[0]
        assert engine.embedding_cache.hits > hits_before
        np.testing.assert_array_equal(after_feature, before)
        # And the search itself reflects the mutated gallery.
        assert engine.gallery_size == 10

    def test_cache_disabled_engine(self, tiny_victim, tiny_dataset):
        engine = RetrievalEngine(tiny_victim.engine.extractor, num_nodes=2,
                                 cache_size=0)
        engine.index_videos(tiny_dataset.train[:4])
        engine.retrieve(tiny_dataset.test[0], m=2)
        engine.retrieve(tiny_dataset.test[0], m=2)
        assert engine.embedding_cache.hits == 0
        assert len(engine.embedding_cache) == 0

    def test_perturbed_video_misses(self, tiny_victim, tiny_dataset):
        engine = tiny_victim.engine
        engine.clear_embedding_cache()
        video = tiny_dataset.test[0]
        engine.embed_queries([video])
        misses_before = engine.embedding_cache.misses
        perturbation = np.zeros_like(video.pixels)
        perturbation[0, 0, 0, 0] = 1e-6
        engine.embed_queries([video.perturbed(perturbation)])
        assert engine.embedding_cache.misses == misses_before + 1
