"""Property tests for consistent-hash shard placement.

Driven by the qa :class:`~repro.qa.generators.Strategy` machinery rather
than example cases: each property samples seeded ``(nodes, keys)``
configurations, and a violation is shrunk to a locally-minimal
counterexample before the assertion fires, so a failure reads
"nodes=2, keys=50" instead of "nodes=7, keys=613".
"""

import numpy as np
import pytest

from repro.qa.generators import (
    Strategy,
    shrink_int,
    shrink_to_minimal,
)
from repro.retrieval import ConsistentHashRing, stable_hash

#: Empirical worst cases over wide sweeps are ~1.31x mean load and
#: ~1.25/(n+1) relocated; the bounds leave slack without hiding a
#: regression to round-robin-style full reshuffles.
BALANCE_BOUND = 1.75
RELOCATION_BOUND = 2.0

CASES = Strategy(
    "placement",
    lambda rng: {"nodes": int(rng.integers(2, 9)),
                 "count": int(rng.integers(200, 800)),
                 "salt_seed": int(rng.integers(0, 1000))},
    {"nodes": shrink_int(2), "count": shrink_int(50),
     "salt_seed": shrink_int(0)},
)


def _keys(case: dict) -> list[str]:
    return [f"video-{case['salt_seed']}-{i}" for i in range(case["count"])]


def _assert_property(violates, seeds=range(8)) -> None:
    """Sample cases; on violation, shrink and fail with the minimum."""
    for seed in seeds:
        case = CASES.sample(np.random.default_rng(seed))
        if violates(case):
            minimal = shrink_to_minimal(CASES, case, violates)
            raise AssertionError(
                f"placement property violated; minimal case: {minimal}")


class TestDeterminism:
    def test_same_parameters_agree_bitwise(self):
        keys = [f"k{i}" for i in range(300)]
        first = ConsistentHashRing(5, vnodes=64, salt="s")
        second = ConsistentHashRing(5, vnodes=64, salt="s")
        assert first.assign_many(keys) == second.assign_many(keys)

    def test_stable_hash_is_process_stable(self):
        # blake2b is stable across processes and Python versions; pin
        # one value so an accidental switch to builtin hash() fails.
        assert stable_hash("repro") == 0x7429539CEDB5B21F

    def test_salt_changes_every_assignment_stream(self):
        keys = [f"k{i}" for i in range(300)]
        plain = ConsistentHashRing(5, salt="a").assign_many(keys)
        salted = ConsistentHashRing(5, salt="b").assign_many(keys)
        assert plain != salted

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)
        with pytest.raises(ValueError):
            ConsistentHashRing(3, vnodes=0)


class TestBalance:
    def test_max_load_stays_near_mean(self):
        def violates(case):
            ring = ConsistentHashRing(case["nodes"])
            loads = np.bincount(ring.assign_many(_keys(case)),
                                minlength=case["nodes"])
            return loads.max() > BALANCE_BOUND * (case["count"]
                                                  / case["nodes"])
        _assert_property(violates)

    def test_every_node_owns_keys(self):
        def violates(case):
            ring = ConsistentHashRing(case["nodes"])
            owners = set(ring.assign_many(_keys(case)))
            return owners != set(range(case["nodes"]))
        _assert_property(violates)


class TestRelocation:
    def test_grow_by_one_relocates_about_one_nth(self):
        """n -> n+1 must move ~1/(n+1) of the keys, never a reshuffle."""
        def violates(case):
            ring = ConsistentHashRing(case["nodes"])
            grown = ring.with_nodes(case["nodes"] + 1)
            moved = ring.moved_fraction(grown, _keys(case))
            return not 0.0 < moved <= RELOCATION_BOUND / (case["nodes"] + 1)
        _assert_property(violates)

    def test_moved_keys_land_only_on_the_new_node(self):
        """Growth is *minimal*: surviving nodes never trade keys."""
        def violates(case):
            ring = ConsistentHashRing(case["nodes"])
            grown = ring.with_nodes(case["nodes"] + 1)
            return any(
                grown.assign(key) != case["nodes"]
                for key in _keys(case)
                if ring.assign(key) != grown.assign(key))
        _assert_property(violates)

    def test_shrink_then_grow_round_trips(self):
        ring = ConsistentHashRing(6)
        keys = [f"k{i}" for i in range(400)]
        back = ring.with_nodes(3).with_nodes(6)
        assert ring.assign_many(keys) == back.assign_many(keys)
