"""Online-gallery semantics: add/delete/re-embed, snapshots, compaction.

The churn contract under test: every mutation bumps the gallery
version, readers pin an immutable snapshot and keep seeing exactly that
version while writers race ahead, tombstones never resurrect, and
compaction/rebalancing are invisible to retrieval results.
"""

import numpy as np
import pytest

from repro.hashindex import CompactionPolicy
from repro.qa.generators import draw_clustered_gallery
from repro.qa.invariants import check_snapshot_consistency
from repro.retrieval import ShardedGallery


def build_gallery(seed=0, rows=24, nodes=3, dim=8, placement="round-robin",
                  churn_first=False):
    rng = np.random.default_rng(seed)
    ids, labels, features = draw_clustered_gallery(rng, rows, dim)
    gallery = ShardedGallery(num_nodes=nodes, placement=placement)
    if churn_first:
        gallery.enable_churn()
    for video_id, label, feature in zip(ids, labels, features):
        gallery.add(video_id, label, feature)
    return gallery, ids, features, rng


class TestMutationBasics:
    def test_enable_churn_on_populated_round_robin(self):
        gallery, ids, features, _ = build_gallery()
        gallery.enable_churn()
        assert gallery.mutable
        assert gallery.live_ids() == list(ids)
        assert gallery.version == 0

    def test_delete_hides_logically_keeps_physically(self):
        gallery, ids, features, _ = build_gallery()
        gallery.enable_churn()
        before = gallery.physical_rows
        gallery.delete(ids[3])
        assert len(gallery) == len(ids) - 1
        assert gallery.physical_rows == before
        assert ids[3] not in gallery.live_ids()
        assert gallery.version == 1
        hits = gallery.search(features[3], k=len(ids))
        assert ids[3] not in {entry.video_id for entry in hits}

    def test_delete_then_readd_same_id(self):
        gallery, ids, features, _ = build_gallery()
        gallery.enable_churn()
        gallery.delete(ids[0])
        gallery.add(ids[0], 7, features[0] + 1.0)
        assert ids[0] in gallery.live_ids()
        hits = gallery.search(features[0] + 1.0, k=3)
        assert hits[0].video_id == ids[0]
        assert hits[0].label == 7

    def test_reembed_is_one_atomic_version_step(self):
        gallery, ids, features, _ = build_gallery()
        gallery.enable_churn()
        old_snap = gallery.snapshot()
        moved = features[5] + 10.0
        gallery.reembed(ids[5], 99, moved)
        assert gallery.version == 1
        assert len(gallery) == len(ids)
        # New readers see only the new feature, under the public id.
        hits = gallery.search(moved, k=2)
        assert hits[0].video_id == ids[5] and hits[0].label == 99
        # Readers pinned before the re-embed see only the old row.
        old_hits = gallery.search(features[5], k=1, snapshot=old_snap)
        assert old_hits[0].video_id == ids[5]
        assert old_hits[0].label != 99

    def test_mutation_error_paths(self):
        gallery, ids, features, _ = build_gallery()
        with pytest.raises(RuntimeError, match="enable_churn"):
            gallery.delete(ids[0])
        gallery.enable_churn()
        with pytest.raises(KeyError):
            gallery.delete("no-such-video")
        with pytest.raises(KeyError):
            gallery.reembed("no-such-video", 0, features[0])
        with pytest.raises(ValueError, match="already live"):
            gallery.add(ids[0], 1, features[0])
        gallery.delete(ids[0])
        with pytest.raises(KeyError):
            gallery.delete(ids[0])  # tombstones do not delete twice


class TestSnapshotConsistency:
    def test_pinned_snapshot_survives_later_mutations(self):
        gallery, ids, features, rng = build_gallery(rows=18)
        gallery.enable_churn()
        snap = gallery.snapshot()
        query = features[2]
        pinned_before = gallery.search(query, k=6, snapshot=snap)
        gallery.delete(ids[2])
        gallery.add("late-arrival", 50, query + 0.001)
        gallery.reembed(ids[4], 51, rng.normal(size=query.shape))
        pinned_after = gallery.search(query, k=6, snapshot=snap)
        assert [(e.video_id, e.score) for e in pinned_before] == \
            [(e.video_id, e.score) for e in pinned_after]
        check_snapshot_consistency(gallery, snap, pinned_after, k=6)
        fresh = gallery.search(query, k=6)
        fresh_ids = {entry.video_id for entry in fresh}
        assert ids[2] not in fresh_ids
        assert "late-arrival" in fresh_ids
        check_snapshot_consistency(gallery, gallery.snapshot(), fresh, k=6)

    def test_snapshot_never_shows_rows_from_the_future(self):
        gallery, ids, features, _ = build_gallery(rows=10)
        gallery.enable_churn()
        snap = gallery.snapshot()
        probe = features[0] + 0.0005
        gallery.add("future-row", 60, probe)
        hits = gallery.search(probe, k=4, snapshot=snap)
        assert "future-row" not in {entry.video_id for entry in hits}
        check_snapshot_consistency(gallery, snap, hits, k=4)


class TestCompaction:
    def test_compact_drops_tombstones_without_changing_results(self):
        gallery, ids, features, _ = build_gallery(rows=20)
        gallery.enable_churn()
        for victim in ids[:6]:
            gallery.delete(victim)
        query = features[10]
        before = gallery.search(query, k=8)
        physical = gallery.physical_rows
        dropped = gallery.compact()
        assert dropped == 6
        assert gallery.physical_rows == physical - 6
        after = gallery.search(query, k=8)
        assert [(e.video_id, e.score) for e in before] == \
            [(e.video_id, e.score) for e in after]

    def test_maybe_compact_respects_policy_thresholds(self):
        gallery, ids, _, _ = build_gallery(rows=20)
        gallery.enable_churn()
        strict = CompactionPolicy(min_dead_fraction=0.9, min_dead_rows=50)
        gallery.delete(ids[0])
        assert gallery.maybe_compact(strict) == 0
        eager = CompactionPolicy(min_dead_fraction=0.01, min_dead_rows=1)
        assert gallery.maybe_compact(eager) == 1
        assert gallery.maybe_compact(eager) == 0  # nothing left to drop

    def test_old_snapshot_still_reads_after_compaction(self):
        gallery, ids, features, _ = build_gallery(rows=16)
        gallery.enable_churn()
        snap = gallery.snapshot()
        for victim in ids[:5]:
            gallery.delete(victim)
        gallery.compact()
        hits = gallery.search(features[1], k=5, snapshot=snap)
        # The pinned snapshot predates the deletes: the victims are
        # still visible through the old index objects it captured.
        assert ids[1] in {entry.video_id for entry in hits}
        check_snapshot_consistency(gallery, snap, hits, k=5)


class TestRebalance:
    def test_rebalance_moves_a_bounded_slice(self):
        gallery, ids, features, _ = build_gallery(
            rows=40, nodes=4, placement="hash")
        query = features[7]
        before = gallery.search(query, k=10)
        moved = gallery.rebalance(5)
        assert 0 < moved <= len(ids) // 2
        assert gallery.num_nodes == 5
        after = gallery.search(query, k=10)
        assert [(e.video_id, e.score) for e in before] == \
            [(e.video_id, e.score) for e in after]

    def test_rebalance_requires_hash_placement(self):
        gallery, _, _, _ = build_gallery()
        gallery.enable_churn()
        with pytest.raises(RuntimeError, match="hash"):
            gallery.rebalance(5)
