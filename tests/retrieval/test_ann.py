"""Tests for the IVF approximate nearest-neighbour index."""

import numpy as np
import pytest

from repro.retrieval import FeatureIndex
from repro.retrieval.ann import (
    IVFIndex,
    _kmeans,
    assign_clusters,
    squared_distances,
)


@pytest.fixture
def clustered_features(rng):
    """Three well-separated feature clusters with ids/labels."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    features, ids, labels = [], [], []
    for c, center in enumerate(centers):
        for i in range(10):
            features.append(center + rng.normal(scale=0.3, size=2))
            ids.append(f"c{c}-{i}")
            labels.append(c)
    return np.asarray(features), ids, labels


class TestKMeans:
    def test_centroid_count(self, rng):
        points = rng.normal(size=(30, 4))
        centroids = _kmeans(points, 5, rng=rng)
        assert centroids.shape == (5, 4)

    def test_recovers_separated_clusters(self, clustered_features, rng):
        features, _, _ = clustered_features
        centroids = _kmeans(features, 3, rng=rng)
        # Each true centre should have one centroid nearby.
        for center in ([0, 0], [10, 0], [0, 10]):
            distances = np.linalg.norm(centroids - np.asarray(center), axis=1)
            assert distances.min() < 1.5


def _broadcast_kmeans(points, num_clusters, iterations=15, rng=None):
    """The seed implementation: (n, k, d) broadcast distance cube."""
    from repro.utils.seeding import seeded_rng

    rng = seeded_rng(rng)
    chosen = rng.choice(points.shape[0],
                        size=min(num_clusters, points.shape[0]),
                        replace=False)
    centroids = points[chosen].copy()
    for _ in range(iterations):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2
                     ).sum(axis=2)
        assignment = distances.argmin(axis=1)
        for cluster in range(centroids.shape[0]):
            members = points[assignment == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return centroids


class TestChunkedDistances:
    def test_squared_distances_match_broadcast(self, rng):
        points = rng.normal(size=(40, 6))
        centroids = rng.normal(size=(5, 6))
        naive = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(squared_distances(points, centroids),
                                   naive, rtol=1e-10, atol=1e-10)

    def test_assign_clusters_chunking_invariant(self, rng):
        points = rng.normal(size=(100, 5))
        centroids = rng.normal(size=(7, 5))
        full = assign_clusters(points, centroids)
        tiny_chunks = assign_clusters(points, centroids, chunk_elems=8)
        np.testing.assert_array_equal(full, tiny_chunks)

    def test_kmeans_bit_identical_to_broadcast_seed(self, clustered_features):
        """The expansion form must reproduce the seed clustering exactly
        on the seeded test galleries (same rng draws, same assignments,
        therefore the same per-cluster means)."""
        features, _, _ = clustered_features
        ours = _kmeans(features, 3, rng=7)
        seed_impl = _broadcast_kmeans(features, 3, rng=7)
        np.testing.assert_array_equal(ours, seed_impl)

    def test_kmeans_bit_identical_on_random_gallery(self, rng):
        points = rng.normal(size=(80, 6))
        np.testing.assert_array_equal(
            _kmeans(points, 6, rng=13), _broadcast_kmeans(points, 6, rng=13))


class TestIVFIndex:
    def test_basic_search(self, clustered_features, rng):
        features, ids, labels = clustered_features
        index = IVFIndex(num_cells=3, nprobe=1, rng=rng)
        index.add_batch(ids, labels, features)
        result = index.search(np.array([0.1, -0.1]), k=5)
        assert len(result) == 5
        assert all(entry.video_id.startswith("c0") for entry in result)

    def test_empty_index(self):
        assert IVFIndex().search(np.zeros(2), k=3) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IVFIndex(num_cells=0)
        with pytest.raises(ValueError):
            IVFIndex(nprobe=0)

    def test_scores_descending(self, clustered_features, rng):
        features, ids, labels = clustered_features
        index = IVFIndex(num_cells=3, nprobe=3, rng=rng)
        index.add_batch(ids, labels, features)
        scores = [e.score for e in index.search(np.zeros(2), k=8)]
        assert scores == sorted(scores, reverse=True)

    def test_full_probe_matches_exact(self, clustered_features, rng):
        features, ids, labels = clustered_features
        approx = IVFIndex(num_cells=3, nprobe=3, rng=rng)
        exact = FeatureIndex()
        approx.add_batch(ids, labels, features)
        exact.add_batch(ids, labels, features)
        query = rng.normal(size=2)
        assert [e.video_id for e in approx.search(query, k=6)] == \
            [e.video_id for e in exact.search(query, k=6)]

    def test_recall_monotone_in_nprobe(self, rng):
        features = rng.normal(size=(120, 8))
        ids = [f"v{i}" for i in range(120)]
        labels = [0] * 120
        exact = FeatureIndex()
        exact.add_batch(ids, labels, features)
        queries = rng.normal(size=(10, 8))
        recalls = []
        for nprobe in (1, 2, 6):
            index = IVFIndex(num_cells=6, nprobe=nprobe, rng=7)
            index.add_batch(ids, labels, features)
            recalls.append(index.recall_at_k(exact, queries, k=10))
        assert recalls[0] <= recalls[-1]
        assert recalls[-1] == pytest.approx(1.0)

    def test_rebuild_after_adds(self, clustered_features, rng):
        features, ids, labels = clustered_features
        index = IVFIndex(num_cells=3, nprobe=3, rng=rng)
        index.add_batch(ids[:15], labels[:15], features[:15])
        index.search(np.zeros(2), k=3)  # builds
        index.add_batch(ids[15:], labels[15:], features[15:])
        result = index.search(np.array([0.0, 10.0]), k=3)
        assert any(entry.video_id.startswith("c2") for entry in result)

    def test_labels_of(self, clustered_features, rng):
        features, ids, labels = clustered_features
        index = IVFIndex(rng=rng)
        index.add_batch(ids, labels, features)
        assert sorted(set(index.labels_of())) == [0, 1, 2]

    def test_one_stack_per_build(self, clustered_features, rng, monkeypatch):
        """The gallery matrix is stacked once per build, not per query
        (the seed re-ran ``np.stack`` on every ``search`` call)."""
        features, ids, labels = clustered_features
        index = IVFIndex(num_cells=3, nprobe=2, rng=rng)
        index.add_batch(ids, labels, features)

        calls = {"stack": 0}
        real_stack = np.stack

        def counting_stack(*args, **kwargs):
            calls["stack"] += 1
            return real_stack(*args, **kwargs)

        monkeypatch.setattr(np, "stack", counting_stack)
        index.build()
        for _ in range(5):
            index.search(np.zeros(2), k=3)
        index.search_batch(rng.normal(size=(4, 2)), k=3)
        assert calls["stack"] == 1
        # A new add invalidates the cache; the next search restacks once.
        index.add("late", 0, np.zeros(2))
        index.search(np.zeros(2), k=3)
        index.search(np.zeros(2), k=3)
        assert calls["stack"] == 2

    def test_search_batch_bit_identical_to_sequential(self, rng):
        """Vectorized batch (grouped by probe set) must match per-query
        search exactly, including partial-probe configurations."""
        features = rng.normal(size=(90, 6))
        ids = [f"v{i}" for i in range(90)]
        labels = [i % 4 for i in range(90)]
        index = IVFIndex(num_cells=6, nprobe=2, rng=5)
        index.add_batch(ids, labels, features)
        # Mix of spread-out queries and near-duplicates that share a
        # probe set (exercising the grouped fast path).
        queries = np.concatenate([
            rng.normal(size=(5, 6)),
            np.tile(rng.normal(size=(1, 6)), (3, 1)) + 1e-9,
        ])
        batched = index.search_batch(queries, k=7)
        sequential = [index.search(query, k=7) for query in queries]
        assert batched == sequential

    def test_usable_inside_data_node(self, clustered_features, rng):
        from repro.retrieval import DataNode

        features, ids, labels = clustered_features
        node = DataNode("ann-node")
        node.index = IVFIndex(num_cells=3, nprobe=3, rng=rng)
        for video_id, label, feature in zip(ids, labels, features):
            node.add(video_id, label, feature)
        assert len(node.search(np.zeros(2), k=4)) == 4
