"""Tests for the IVF approximate nearest-neighbour index."""

import numpy as np
import pytest

from repro.retrieval import FeatureIndex
from repro.retrieval.ann import IVFIndex, _kmeans


@pytest.fixture
def clustered_features(rng):
    """Three well-separated feature clusters with ids/labels."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    features, ids, labels = [], [], []
    for c, center in enumerate(centers):
        for i in range(10):
            features.append(center + rng.normal(scale=0.3, size=2))
            ids.append(f"c{c}-{i}")
            labels.append(c)
    return np.asarray(features), ids, labels


class TestKMeans:
    def test_centroid_count(self, rng):
        points = rng.normal(size=(30, 4))
        centroids = _kmeans(points, 5, rng=rng)
        assert centroids.shape == (5, 4)

    def test_recovers_separated_clusters(self, clustered_features, rng):
        features, _, _ = clustered_features
        centroids = _kmeans(features, 3, rng=rng)
        # Each true centre should have one centroid nearby.
        for center in ([0, 0], [10, 0], [0, 10]):
            distances = np.linalg.norm(centroids - np.asarray(center), axis=1)
            assert distances.min() < 1.5


class TestIVFIndex:
    def test_basic_search(self, clustered_features, rng):
        features, ids, labels = clustered_features
        index = IVFIndex(num_cells=3, nprobe=1, rng=rng)
        index.add_batch(ids, labels, features)
        result = index.search(np.array([0.1, -0.1]), k=5)
        assert len(result) == 5
        assert all(entry.video_id.startswith("c0") for entry in result)

    def test_empty_index(self):
        assert IVFIndex().search(np.zeros(2), k=3) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IVFIndex(num_cells=0)
        with pytest.raises(ValueError):
            IVFIndex(nprobe=0)

    def test_scores_descending(self, clustered_features, rng):
        features, ids, labels = clustered_features
        index = IVFIndex(num_cells=3, nprobe=3, rng=rng)
        index.add_batch(ids, labels, features)
        scores = [e.score for e in index.search(np.zeros(2), k=8)]
        assert scores == sorted(scores, reverse=True)

    def test_full_probe_matches_exact(self, clustered_features, rng):
        features, ids, labels = clustered_features
        approx = IVFIndex(num_cells=3, nprobe=3, rng=rng)
        exact = FeatureIndex()
        approx.add_batch(ids, labels, features)
        exact.add_batch(ids, labels, features)
        query = rng.normal(size=2)
        assert [e.video_id for e in approx.search(query, k=6)] == \
            [e.video_id for e in exact.search(query, k=6)]

    def test_recall_monotone_in_nprobe(self, rng):
        features = rng.normal(size=(120, 8))
        ids = [f"v{i}" for i in range(120)]
        labels = [0] * 120
        exact = FeatureIndex()
        exact.add_batch(ids, labels, features)
        queries = rng.normal(size=(10, 8))
        recalls = []
        for nprobe in (1, 2, 6):
            index = IVFIndex(num_cells=6, nprobe=nprobe, rng=7)
            index.add_batch(ids, labels, features)
            recalls.append(index.recall_at_k(exact, queries, k=10))
        assert recalls[0] <= recalls[-1]
        assert recalls[-1] == pytest.approx(1.0)

    def test_rebuild_after_adds(self, clustered_features, rng):
        features, ids, labels = clustered_features
        index = IVFIndex(num_cells=3, nprobe=3, rng=rng)
        index.add_batch(ids[:15], labels[:15], features[:15])
        index.search(np.zeros(2), k=3)  # builds
        index.add_batch(ids[15:], labels[15:], features[15:])
        result = index.search(np.array([0.0, 10.0]), k=3)
        assert any(entry.video_id.startswith("c2") for entry in result)

    def test_labels_of(self, clustered_features, rng):
        features, ids, labels = clustered_features
        index = IVFIndex(rng=rng)
        index.add_batch(ids, labels, features)
        assert sorted(set(index.labels_of())) == [0, 1, 2]

    def test_usable_inside_data_node(self, clustered_features, rng):
        from repro.retrieval import DataNode

        features, ids, labels = clustered_features
        node = DataNode("ann-node")
        node.index = IVFIndex(num_cells=3, nprobe=3, rng=rng)
        for video_id, label, feature in zip(ids, labels, features):
            node.add(video_id, label, feature)
        assert len(node.search(np.zeros(2), k=4)) == 4
