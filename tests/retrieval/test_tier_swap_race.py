"""Regression: a tier swap landing mid-scatter must stay invisible.

``ShardedGallery.set_index_tier`` used to re-index node by node, so a
``search_batch`` already in flight could read node-0 from the old tier
and node-1 from the half-installed new one (or from an index still
being built).  The fix pins the complete index set at scatter start
(``gallery._pinned``) and builds every replacement index fully before
swapping any node's reference — these tests drive a swap at the exact
mid-scatter instant through a fault-injector hook and fail against the
pre-fix behaviour.
"""

import numpy as np

from repro.qa.generators import draw_clustered_gallery
from repro.qa.invariants import check_snapshot_consistency
from repro.retrieval import ShardedGallery


def build_gallery(seed=3, rows=30, nodes=3, dim=8):
    rng = np.random.default_rng(seed)
    ids, labels, features = draw_clustered_gallery(rng, rows, dim)
    gallery = ShardedGallery(num_nodes=nodes)
    for video_id, label, feature in zip(ids, labels, features):
        gallery.add(video_id, label, feature)
    return gallery, ids, features


class MidScatterSwap:
    """Fault injector that swaps the index tier on node-1's scatter leg.

    By the time node-1 is searched, node-0's leg has already run — so
    the swap lands *inside* one scatter, after some legs and before
    others, exactly the interleaving the pinned-tuple fix exists for.
    """

    def __init__(self, gallery: ShardedGallery, tier: str) -> None:
        self.gallery = gallery
        self.tier = tier
        self.fired = False
        self.pinned_rows_at_swap: list[int] | None = None
        self.pinned_is_new: bool | None = None

    def on_attempt(self, node_id: str) -> float:
        if node_id == "node-1" and not self.fired:
            self.fired = True
            old = self.gallery._pinned
            self.gallery.set_index_tier(self.tier)
            # Observed at the first instant the swap is visible: the
            # whole tuple must already be new, fully-built indexes.
            self.pinned_is_new = all(
                new is not previous
                for new, previous in zip(self.gallery._pinned, old))
            self.pinned_rows_at_swap = [len(index)
                                        for index in self.gallery._pinned]
        return 0.0

    def transform(self, node_id, entries):
        return entries


def install(gallery: ShardedGallery, injector) -> None:
    for node in gallery.nodes:
        node.fault_injector = injector


class TestTierSwapDuringScatter:
    def test_inflight_search_batch_uses_the_pinned_tier(self, monkeypatch):
        gallery, ids, features = build_gallery()
        queries = np.stack([features[0], features[9], features[17]])
        baseline = gallery.search_batch(queries, k=8)
        old_pinned = gallery._pinned

        from repro.retrieval.nodes import DataNode
        seen_indexes = []
        original = DataNode.search_batch

        def recording(self, batch, k, index=None):
            seen_indexes.append(index)
            return original(self, batch, k, index=index)

        monkeypatch.setattr(DataNode, "search_batch", recording)
        injector = MidScatterSwap(gallery, "hamming")
        install(gallery, injector)
        raced = gallery.search_batch(queries, k=8)
        install(gallery, None)

        assert injector.fired
        assert gallery.index_tier == "hamming"
        # Every scatter leg — including the ones after the swap landed —
        # searched the index set pinned at scatter start.
        assert len(seen_indexes) == len(gallery.nodes)
        for position, index in enumerate(seen_indexes):
            assert index is old_pinned[position]
        for before, after in zip(baseline, raced):
            assert [(e.video_id, e.score) for e in before] == \
                [(e.video_id, e.score) for e in after]

    def test_swap_becomes_visible_only_fully_built(self):
        gallery, ids, features = build_gallery()
        rows_per_shard = [len(node) for node in gallery.nodes]
        injector = MidScatterSwap(gallery, "hamming")
        install(gallery, injector)
        gallery.search_batch(np.stack([features[0], features[4]]), k=5)
        install(gallery, None)
        assert injector.pinned_is_new is True
        assert injector.pinned_rows_at_swap == rows_per_shard

    def test_next_search_adopts_the_new_tier(self):
        gallery, ids, features = build_gallery()
        injector = MidScatterSwap(gallery, "hamming")
        install(gallery, injector)
        gallery.search_batch(np.stack([features[0]]), k=4)
        install(gallery, None)
        fresh = gallery.search(features[2], k=4)
        assert gallery._pinned == tuple(node.index for node in gallery.nodes)
        assert fresh[0].video_id == ids[2]

    def test_snapshot_readers_keep_the_old_tier(self):
        gallery, ids, features = build_gallery()
        gallery.enable_churn()
        gallery.delete(ids[0])  # version 1, so snapshots engage
        snap = gallery.snapshot()
        before = gallery.search(features[3], k=6, snapshot=snap)
        gallery.set_index_tier("hamming")
        assert gallery.version == 2  # mutable swaps bump the version
        after = gallery.search(features[3], k=6, snapshot=snap)
        assert snap.indexes == tuple(
            index for index in snap.indexes)  # tuple identity retained
        assert [(e.video_id, e.score) for e in before] == \
            [(e.video_id, e.score) for e in after]
        check_snapshot_consistency(gallery, snap, after, k=6)
