"""Tests for the 8-bit query-quantization service option."""

import numpy as np

from repro.retrieval import RetrievalService
from repro.video import Video


def test_quantized_service_returns_lists(tiny_victim, tiny_dataset):
    service = RetrievalService(tiny_victim.engine, m=5, quantize_queries=True)
    result = service.query(tiny_dataset.test[0])
    assert len(result) == 5


def test_quantization_preserves_video_metadata(tiny_victim, tiny_dataset):
    """Regression: ``_prepare``'s quantize round trip dropped metadata,
    so a defense preprocessor downstream saw an empty dict."""
    seen = []

    def spy(video):
        seen.append(dict(video.metadata))
        return video

    service = RetrievalService(tiny_victim.engine, m=5, quantize_queries=True,
                               preprocessor=spy)
    video = tiny_dataset.test[0].copy()
    video.metadata["tenant"] = "benign-0"
    service.query(video)
    assert seen == [{"tenant": "benign-0"}]


def test_sub_quantum_perturbations_are_erased(tiny_victim, tiny_dataset):
    """Perturbations below half an 8-bit step cannot affect the service."""
    service = RetrievalService(tiny_victim.engine, m=6, quantize_queries=True)
    video = tiny_dataset.test[0]
    # Snap the base video onto the 8-bit lattice first so that a tiny
    # extra perturbation is guaranteed to round back to the same lattice.
    lattice = Video(np.round(video.pixels * 255.0) / 255.0, video.label,
                    video.video_id)
    tiny_phi = np.full(video.pixels.shape, 0.4 / 255.0)
    perturbed = lattice.perturbed(tiny_phi)
    assert service.query(lattice).ids == service.query(perturbed).ids


def test_tau_scale_perturbations_survive_quantization(tiny_victim,
                                                      tiny_dataset, rng):
    """τ=30/255 perturbations are far above the quantum and persist."""
    service = RetrievalService(tiny_victim.engine, m=6, quantize_queries=True)
    video = tiny_dataset.test[0]
    phi = rng.choice([-30.0 / 255.0, 30.0 / 255.0], size=video.pixels.shape)
    perturbed = video.perturbed(phi)
    # The embedded (quantized) video differs from the clean one.
    assert service.query(video).ids != service.query(perturbed).ids or \
        np.abs(phi).max() == 0.0
