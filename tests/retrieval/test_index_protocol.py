"""Parametrized ``Index``-protocol conformance suite.

Every searchable container — the exact index, the IVF-flat index, and
both compressed tiers — must satisfy the same structural protocol and
the same edge-case semantics: empty-index searches, ``add_batch`` zip
semantics, scalar/batched search parity, ``labels_of`` length, and
``k > n`` clamping.  New index implementations get coverage by adding
one factory here.
"""

import numpy as np
import pytest

from repro.hashindex import BinaryHashIndex, IVFPQIndex
from repro.retrieval import FeatureIndex, IVFIndex
from repro.retrieval.protocol import Index

FACTORIES = {
    "feature": lambda: FeatureIndex(),
    "ivf": lambda: IVFIndex(num_cells=4, nprobe=4, rng=3),
    "hamming": lambda: BinaryHashIndex(nbits=64, rerank=16, rng=3),
    "ivfpq": lambda: IVFPQIndex(num_cells=4, nprobe=4, num_subvectors=4,
                                rerank=16, rng=3),
}


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def index(request):
    return FACTORIES[request.param]()


def _rows(count: int, dim: int = 6, seed: int = 0):
    rng = np.random.default_rng(seed)
    ids = [f"v{i}" for i in range(count)]
    labels = [i % 3 for i in range(count)]
    return ids, labels, rng.normal(size=(count, dim))


def test_satisfies_protocol(index):
    assert isinstance(index, Index)


def test_empty_index_searches(index):
    assert len(index) == 0
    assert index.search(np.zeros(6), k=3) == []
    assert index.search_batch(np.zeros((4, 6)), k=3) == [[], [], [], []]


def test_add_then_len_and_labels(index):
    ids, labels, features = _rows(10)
    index.add_batch(ids, labels, features)
    index.add("extra", 7, np.zeros(6))
    assert len(index) == 11
    assert len(index.labels_of()) == 11
    assert index.labels_of()[-1] == 7


def test_add_batch_zip_semantics(index):
    ids, labels, features = _rows(8)
    # Extra entries in any argument are ignored (row count = min length).
    index.add_batch(ids, labels[:5], features)
    assert len(index) == 5
    index.add_batch([], [], np.zeros((0, 6)))
    assert len(index) == 5


def test_search_batch_matches_sequential_search(index):
    ids, labels, features = _rows(30)
    index.add_batch(ids, labels, features)
    queries = np.random.default_rng(1).normal(size=(7, 6))
    batched = index.search_batch(queries, k=5)
    sequential = [index.search(query, k=5) for query in queries]
    assert batched == sequential


def test_k_larger_than_n_is_clamped(index):
    ids, labels, features = _rows(4)
    index.add_batch(ids, labels, features)
    result = index.search(features[0], k=50)
    assert len(result) == 4
    for per_query in index.search_batch(features[:2], k=50):
        assert len(per_query) == 4


def test_results_are_sorted_best_first(index):
    ids, labels, features = _rows(25)
    index.add_batch(ids, labels, features)
    result = index.search(features[3], k=10)
    scores = [entry.score for entry in result]
    assert scores == sorted(scores, reverse=True)
    # The query coincides with a gallery row, so that row must lead.
    assert result[0].video_id == "v3"


def test_search_does_not_mutate_labels(index):
    ids, labels, features = _rows(12)
    index.add_batch(ids, labels, features)
    before = index.labels_of()
    index.search(features[0], k=3)
    index.search_batch(features[:4], k=3)
    assert index.labels_of() == before
