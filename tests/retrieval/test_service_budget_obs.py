"""Query-budget accounting with a defense preprocessor installed.

Satellite of the obs PR: the budget must fire *exactly* at the
configured limit — defense preprocessing must not consume extra budget —
and the ``repro.obs`` counters must agree with the service's own
``query_count``.
"""

import pytest

from repro.obs import counter, gauge
from repro.retrieval import QueryBudgetExceeded, RetrievalService


def _blur_like(video):
    """A cheap stand-in defense preprocessor (identity-shaped transform)."""
    pixels = video.pixels * 0.5 + 0.25
    return video.perturbed(pixels - video.pixels)


class TestBudgetWithDefense:
    def test_budget_fires_exactly_at_limit(self, tiny_victim, tiny_dataset):
        budget = 3
        service = RetrievalService(tiny_victim.engine, m=4,
                                   query_budget=budget,
                                   preprocessor=_blur_like)
        for _ in range(budget):
            service.query(tiny_dataset.test[0])
        assert service.query_count == budget
        with pytest.raises(QueryBudgetExceeded):
            service.query(tiny_dataset.test[0])
        # The rejected query must not advance the counter.
        assert service.query_count == budget

    def test_counters_match_service_accounting(self, tiny_victim,
                                               tiny_dataset):
        queries_before = counter("retrieval.queries").value
        preprocessed_before = counter("retrieval.defense.preprocessed").value
        exceeded_before = counter("retrieval.budget_exceeded").value

        service = RetrievalService(tiny_victim.engine, m=4, query_budget=2,
                                   preprocessor=_blur_like)
        service.query(tiny_dataset.test[0])
        service.query(tiny_dataset.test[1])
        with pytest.raises(QueryBudgetExceeded):
            service.query(tiny_dataset.test[0])

        assert counter("retrieval.queries").value - queries_before == 2
        assert counter("retrieval.defense.preprocessed").value \
            - preprocessed_before == 2
        assert counter("retrieval.budget_exceeded").value \
            - exceeded_before == 1

    def test_budget_remaining_gauge_tracks(self, tiny_victim, tiny_dataset):
        service = RetrievalService(tiny_victim.engine, m=4, query_budget=5)
        service.query(tiny_dataset.test[0])
        assert gauge("retrieval.budget_remaining").value == 4
        service.query(tiny_dataset.test[0])
        assert gauge("retrieval.budget_remaining").value == 3

    def test_preprocessor_runs_inside_budgeted_query(self, tiny_victim,
                                                     tiny_dataset):
        calls = []

        def preprocessor(video):
            calls.append(video.video_id)
            return video

        service = RetrievalService(tiny_victim.engine, m=4, query_budget=1,
                                   preprocessor=preprocessor)
        service.query(tiny_dataset.test[0])
        with pytest.raises(QueryBudgetExceeded):
            service.query(tiny_dataset.test[1])
        # The defense never saw the over-budget query.
        assert calls == [tiny_dataset.test[0].video_id]

    def test_defense_changes_results_not_accounting(self, tiny_victim,
                                                    tiny_dataset):
        plain = RetrievalService(tiny_victim.engine, m=4)
        defended = RetrievalService(tiny_victim.engine, m=4,
                                    preprocessor=_blur_like)
        video = tiny_dataset.test[0]
        plain.query(video)
        defended.query(video)
        assert plain.query_count == defended.query_count == 1
