"""Tests for the retrieval engine and black-box service facade."""

import numpy as np
import pytest

from repro.retrieval import (
    QueryBudgetExceeded,
    RetrievalEngine,
    RetrievalList,
    RetrievalService,
)
from repro.retrieval.lists import RetrievalEntry


class TestRetrievalEngine:
    def test_index_and_retrieve(self, tiny_victim, tiny_dataset):
        result = tiny_victim.engine.retrieve(tiny_dataset.test[0], m=5)
        assert isinstance(result, RetrievalList)
        assert len(result) == 5

    def test_gallery_size(self, tiny_victim, tiny_dataset):
        assert tiny_victim.engine.gallery_size == len(tiny_dataset.train)

    def test_retrieve_by_feature(self, tiny_victim):
        feature = np.zeros(tiny_victim.engine.extractor.feature_dim)
        result = tiny_victim.engine.retrieve_by_feature(feature, m=3)
        assert len(result) == 3

    def test_query_video_retrieves_itself_first(self, tiny_victim,
                                                tiny_dataset):
        gallery_video = tiny_dataset.train[0]
        result = tiny_victim.engine.retrieve(gallery_video, m=3)
        assert result.ids[0] == gallery_video.video_id

    def test_string_similarity_accepted(self, tiny_victim):
        engine = RetrievalEngine(tiny_victim.engine.extractor,
                                 similarity="cosine", num_nodes=2)
        assert engine.gallery.num_nodes == 2


class TestRetrievalService:
    def test_query_counting(self, tiny_victim, tiny_dataset):
        service = RetrievalService(tiny_victim.engine, m=4)
        service.query(tiny_dataset.test[0])
        service.query(tiny_dataset.test[1])
        assert service.query_count == 2
        service.reset_query_count()
        assert service.query_count == 0

    def test_m_override(self, tiny_victim, tiny_dataset):
        service = RetrievalService(tiny_victim.engine, m=4)
        assert len(service.query(tiny_dataset.test[0], m=2)) == 2

    def test_invalid_m(self, tiny_victim):
        with pytest.raises(ValueError):
            RetrievalService(tiny_victim.engine, m=0)

    def test_query_budget(self, tiny_victim, tiny_dataset):
        service = RetrievalService(tiny_victim.engine, m=4, query_budget=2)
        service.query(tiny_dataset.test[0])
        service.query(tiny_dataset.test[0])
        with pytest.raises(QueryBudgetExceeded):
            service.query(tiny_dataset.test[0])

    def test_preprocessor_applied(self, tiny_victim, tiny_dataset):
        calls = []

        def preprocessor(video):
            calls.append(video.video_id)
            return video

        service = RetrievalService(tiny_victim.engine, m=4,
                                   preprocessor=preprocessor)
        service.query(tiny_dataset.test[0])
        assert calls == [tiny_dataset.test[0].video_id]


class TestRetrievalList:
    def test_accessors(self):
        entries = [RetrievalEntry(f"v{i}", i, -float(i)) for i in range(4)]
        result = RetrievalList(entries)
        assert result.ids == ["v0", "v1", "v2", "v3"]
        assert result.labels == [0, 1, 2, 3]
        assert len(result.top(2)) == 2
        assert result[0].video_id == "v0"
        assert "v0" in repr(result)
