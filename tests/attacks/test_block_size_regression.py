"""Regression: the SimBA direction width survives checkpoint/resume.

``simba_search`` derives its direction width from ``√|support|`` when
``block_size`` is not given.  Before the fix the width was re-derived on
*every* (re)start from whatever support the resuming caller passed, so
a crash-resume cycle in which the support had been regrown (DUO reruns
its transfer stage after a restart; an RL sampler redraws frames) would
silently continue the search with a different block width — different
rng consumption, different probes, a drifted trace.  The width is now
checkpointed with the rest of the search state and restored on resume.
"""

import numpy as np

from repro.attacks.objective import RetrievalObjective
from repro.attacks.search import default_block_size, simba_search
from repro.errors import RetrievalUnavailable
from repro.resilience import FaultPlan, ResilienceConfig
from repro.resilience.checkpoint import load_checkpoint

from tests.resilience.conftest import build_service, make_videos


def _supports(shape, small=64, extra=192):
    """A support and a strict superset with a different √-derived width."""
    rng = np.random.default_rng(5)
    flat = rng.choice(int(np.prod(shape)), size=small + extra, replace=False)
    grown = np.zeros(shape, dtype=bool)
    grown.reshape(-1)[flat] = True
    original = np.zeros(shape, dtype=bool)
    original.reshape(-1)[flat[:small]] = True
    assert default_block_size(small) != default_block_size(small + extra)
    return original, grown


def _twin_setup():
    resilience = ResilienceConfig(replication=1, retry=None, breaker=None,
                                  on_data_loss="raise")
    original, target = make_videos(2, seed=99)
    services = {label: build_service(num_nodes=2, resilience=resilience)
                for label in ("clean", "faulted")}
    objectives = {label: RetrievalObjective(service, original, target)
                  for label, service in services.items()}
    return original, services, objectives


class TestBlockWidthCheckpointed:
    def test_checkpoint_payload_records_the_block(self, tmp_path):
        original, services, objectives = _twin_setup()
        support, _ = _supports(original.pixels.shape)
        path = tmp_path / "simba.pkl"
        plan = FaultPlan(seed=1).outage("node-0", 4, 20)
        with plan.install(services["faulted"].engine.gallery):
            try:
                simba_search(original, objectives["faulted"], support,
                             tau=0.1, iterations=6, rng=0,
                             checkpoint_path=path)
            except RetrievalUnavailable:
                pass
        checkpoint = load_checkpoint(path)
        assert checkpoint is not None
        assert checkpoint.payload["block"] == default_block_size(64)

    def test_resume_with_grown_support_keeps_the_width(self, tmp_path):
        """Pre-fix this drifts: the resumed run re-derived the width
        from the grown support and consumed rng/coordinates at a
        different granularity than the interrupted run."""
        original, services, objectives = _twin_setup()
        support, grown = _supports(original.pixels.shape)
        path = tmp_path / "simba.pkl"

        # 6 iterations × block 8 = 48 < 64 coordinates: the clean run
        # never re-permutes, so the only resume-visible difference a
        # grown support *may* introduce is the block width itself.
        clean = simba_search(original, objectives["clean"], support,
                             tau=0.1, iterations=6, rng=0)

        plan = FaultPlan(seed=1).outage("node-0", 4, 8)
        failures = 0
        with plan.install(services["faulted"].engine.gallery):
            current_support = support
            while True:
                try:
                    resumed = simba_search(
                        original, objectives["faulted"], current_support,
                        tau=0.1, iterations=6, rng=0, checkpoint_path=path)
                    break
                except RetrievalUnavailable:
                    failures += 1
                    assert failures < 50
                    # The caller regrows its support before retrying.
                    current_support = grown

        assert failures >= 1, "the outage never interrupted the attack"
        assert resumed.trace == clean.trace
        np.testing.assert_array_equal(resumed.perturbation,
                                      clean.perturbation)
        np.testing.assert_array_equal(resumed.adversarial.pixels,
                                      clean.adversarial.pixels)
        assert services["faulted"].query_count == \
            services["clean"].query_count
