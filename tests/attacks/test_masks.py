"""Tests for the lp-box ADMM pixel selector and frame selector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.duo import lp_box_admm_select, select_top_frames


class TestLpBoxAdmm:
    def test_exact_cardinality(self, rng):
        utility = rng.normal(size=(4, 5))
        mask = lp_box_admm_select(utility, k=7)
        assert mask.sum() == 7
        assert set(np.unique(mask)).issubset({0.0, 1.0})

    def test_selects_top_utilities_linear_case(self, rng):
        utility = np.arange(20.0)
        mask = lp_box_admm_select(utility, k=5)
        assert set(np.flatnonzero(mask)) == {15, 16, 17, 18, 19}

    def test_k_zero(self):
        assert lp_box_admm_select(np.ones(10), k=0).sum() == 0

    def test_k_full(self):
        assert lp_box_admm_select(np.ones(10), k=10).sum() == 10

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            lp_box_admm_select(np.ones(5), k=6)

    def test_shape_preserved(self, rng):
        utility = rng.normal(size=(2, 3, 4))
        assert lp_box_admm_select(utility, k=5).shape == (2, 3, 4)

    def test_all_equal_utilities_still_valid(self):
        mask = lp_box_admm_select(np.zeros(12), k=4)
        assert mask.sum() == 4

    def test_negative_utilities(self, rng):
        utility = -np.abs(rng.normal(size=30)) - 1.0
        mask = lp_box_admm_select(utility, k=3)
        assert mask.sum() == 3
        # Should still prefer the least-negative entries.
        chosen = np.flatnonzero(mask)
        threshold = np.sort(utility)[-3]
        assert np.all(utility[chosen] >= threshold - 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 30), st.integers(0, 30), st.integers(0, 10_000))
    def test_cardinality_property(self, size, k, seed):
        k = min(k, size)
        utility = np.random.default_rng(seed).normal(size=size)
        mask = lp_box_admm_select(utility, k=k)
        assert int(mask.sum()) == k


class TestSelectTopFrames:
    def test_scalar_scores(self):
        mask = select_top_frames(np.array([0.1, 0.9, 0.5, 0.2]), n=2)
        np.testing.assert_array_equal(mask, [0, 1, 1, 0])

    def test_row_scores_by_l2(self, rng):
        scores = np.zeros((3, 4))
        scores[2] = 5.0
        scores[0] = 1.0
        mask = select_top_frames(scores, n=1)
        np.testing.assert_array_equal(mask, [0, 0, 1])

    def test_n_out_of_range(self):
        with pytest.raises(ValueError):
            select_top_frames(np.ones(4), n=5)
        with pytest.raises(ValueError):
            select_top_frames(np.ones(4), n=0)

    def test_n_equals_frames(self):
        assert select_top_frames(np.ones(4), n=4).sum() == 4

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 10_000))
    def test_mask_cardinality(self, frames, seed):
        rng = np.random.default_rng(seed)
        n = rng.integers(1, frames + 1)
        mask = select_top_frames(rng.normal(size=(frames, 5)), n=int(n))
        assert int(mask.sum()) == n
