"""Batched candidate evaluation must be indistinguishable from sequential.

The fast paths (``RetrievalObjective.values``, speculative ±ε pairs in
SparseQuery/SimBA, probe batching in NES) promise *exact* sequential
semantics: same rng consumption, same query counts, same traces, same
accepted perturbations.  These tests run each attack twice — batching
forced off, then on — against the same victim and assert the observable
state is identical.
"""

import numpy as np
import pytest

from repro.attacks.duo import SparseQuery, TransferPriors
from repro.attacks.objective import (
    RetrievalObjective,
    UntargetedRetrievalObjective,
)
from repro.attacks.search import nes_search, simba_search
from repro.retrieval import RetrievalEngine, RetrievalService


@pytest.fixture(scope="module")
def cacheless_engine(tiny_victim):
    """The victim's model + gallery behind a cache-free engine.

    Disabling the embedding cache keeps the equivalence runs honest: the
    second run must reproduce the first through an actual batched model
    forward, not by replaying cached embeddings.
    """
    engine = RetrievalEngine(tiny_victim.engine.extractor, num_nodes=3,
                             cache_size=0)
    engine.gallery = tiny_victim.engine.gallery
    return engine


def fresh_service(engine, **kwargs):
    return RetrievalService(engine, m=8, **kwargs)


def make_priors(original, rng, k=60):
    """Synthetic transfer priors over ``k`` random support coordinates."""
    shape = original.pixels.shape
    per_frame = int(np.prod(shape[1:]))
    # Support confined to the first two frames so the frame mask bites.
    flat_support = np.zeros(int(np.prod(shape)), dtype=bool)
    flat_support[rng.choice(2 * per_frame, size=k, replace=False)] = True
    pixel_mask = flat_support.reshape(shape)
    theta = np.zeros(shape)
    theta.reshape(-1)[flat_support] = rng.uniform(-0.1, 0.1, size=k)
    frame_mask = np.zeros(shape[0])
    frame_mask[:2] = 1.0
    return TransferPriors(pixel_mask=pixel_mask, frame_mask=frame_mask,
                          theta=theta)


class TestSparseQueryEquivalence:
    def test_trace_and_result_identical(self, cacheless_engine, attack_pair,
                                        rng):
        original, target = attack_pair
        priors = make_priors(original, rng)
        runs = {}
        for batched in (False, True):
            service = fresh_service(cacheless_engine)
            objective = RetrievalObjective(service, original, target)
            query = SparseQuery(iter_num_q=6, tau=30, rng=123,
                                batched=batched)
            adversarial, trace = query.run(original, priors, objective)
            runs[batched] = (adversarial, trace, objective.queries,
                             list(objective.trace), service.query_count)
        seq, bat = runs[False], runs[True]
        np.testing.assert_array_equal(bat[0].pixels, seq[0].pixels)
        assert bat[1] == seq[1]          # attack trace, bit-identical
        assert bat[2] == seq[2]          # objective query count
        assert bat[3] == seq[3]          # objective trace
        assert bat[4] == seq[4]          # service query count

    def test_auto_mode_disables_under_preprocessor(self, cacheless_engine,
                                                   attack_pair, rng):
        original, target = attack_pair
        priors = make_priors(original, rng)
        calls = []

        def preprocessor(video):
            calls.append(video.video_id)
            return video

        service = fresh_service(cacheless_engine, preprocessor=preprocessor)
        objective = RetrievalObjective(service, original, target)
        query = SparseQuery(iter_num_q=3, tau=30, rng=1)  # batched=None
        query.run(original, priors, objective)
        # Every preprocessor call corresponds to a counted query: no
        # phantom evaluations leaked through speculation.
        assert len(calls) == service.query_count

    def test_budget_exhaustion_identical(self, cacheless_engine, attack_pair,
                                         rng):
        from repro.retrieval import QueryBudgetExceeded

        original, target = attack_pair
        priors = make_priors(original, rng)
        counts = {}
        for batched in (False, True):
            service = fresh_service(cacheless_engine, query_budget=7)
            objective = RetrievalObjective(service, original, target)
            query = SparseQuery(iter_num_q=50, tau=30, rng=123,
                                batched=batched)
            with pytest.raises(QueryBudgetExceeded):
                query.run(original, priors, objective)
            counts[batched] = (service.query_count, list(objective.trace))
        assert counts[True] == counts[False]


class TestSimbaEquivalence:
    def test_trace_identical(self, cacheless_engine, attack_pair, rng):
        original, target = attack_pair
        support = np.zeros(original.pixels.shape, dtype=bool)
        support[:2] = True
        runs = {}
        for batched in (False, True):
            service = fresh_service(cacheless_engine)
            objective = RetrievalObjective(service, original, target)
            adversarial, perturbation, trace = simba_search(
                original, objective, support, tau=0.1, iterations=6,
                rng=np.random.default_rng(7), batched=batched,
            )
            runs[batched] = (perturbation, trace, objective.queries,
                             service.query_count)
        seq, bat = runs[False], runs[True]
        np.testing.assert_array_equal(bat[0], seq[0])
        assert bat[1:] == seq[1:]


class TestNesEquivalence:
    def test_trace_identical(self, cacheless_engine, attack_pair):
        original, target = attack_pair
        support = np.zeros(original.pixels.shape, dtype=bool)
        support[:2] = True
        runs = {}
        for batched in (False, True):
            service = fresh_service(cacheless_engine)
            objective = RetrievalObjective(service, original, target)
            adversarial, perturbation, trace = nes_search(
                original, objective, support, tau=0.06, iterations=2,
                samples=2, rng=np.random.default_rng(11), batched=batched,
            )
            runs[batched] = (perturbation, trace, objective.queries,
                             list(objective.trace), service.query_count)
        seq, bat = runs[False], runs[True]
        np.testing.assert_array_equal(bat[0], seq[0])
        assert bat[1:] == seq[1:]


class TestObjectiveValues:
    def test_values_matches_value_loop(self, cacheless_engine, attack_pair,
                                       rng):
        original, target = attack_pair
        candidates = [
            original.perturbed(rng.uniform(-0.05, 0.05,
                                           size=original.pixels.shape))
            for _ in range(4)
        ]
        service_a = fresh_service(cacheless_engine)
        sequential = RetrievalObjective(service_a, original, target)
        expected = [sequential.value(c) for c in candidates]

        service_b = fresh_service(cacheless_engine)
        batched = RetrievalObjective(service_b, original, target)
        got = batched.values(candidates)

        assert got == expected
        assert batched.queries == sequential.queries
        assert batched.trace == sequential.trace
        assert service_b.query_count == service_a.query_count

    def test_untargeted_values_and_speculate(self, cacheless_engine,
                                             attack_pair, rng):
        original, _ = attack_pair
        candidates = [
            original.perturbed(rng.uniform(-0.05, 0.05,
                                           size=original.pixels.shape))
            for _ in range(3)
        ]
        service_a = fresh_service(cacheless_engine)
        sequential = UntargetedRetrievalObjective(service_a, original)
        expected = [sequential.value(c) for c in candidates]

        service_b = fresh_service(cacheless_engine)
        batched = UntargetedRetrievalObjective(service_b, original)
        assert batched.values(candidates) == expected

        service_c = fresh_service(cacheless_engine)
        speculating = UntargetedRetrievalObjective(service_c, original)
        speculated = speculating.speculate(candidates)
        assert speculated == expected
        assert speculating.queries == 1  # nothing committed yet
        assert speculating.trace == []
        speculating.commit(speculated[0])
        assert speculating.queries == 2
        assert speculating.trace == [expected[0]]
