"""Integration tests for the baseline attacks on the tiny victim system."""

import numpy as np
import pytest

from repro.attacks import (
    HeuNesAttack,
    HeuSimAttack,
    TIMIAttack,
    VanillaAttack,
    motion_saliency,
)
from repro.attacks.heu import saliency_support
from repro.attacks.vanilla import random_support


class TestRandomSupport:
    def test_budgets_respected(self, rng):
        support = random_support((8, 4, 4, 3), k=20, n=3, rng=rng)
        assert support.sum() == 20
        frames_touched = support.reshape(8, -1).any(axis=1).sum()
        assert frames_touched <= 3

    def test_budget_clamped_to_capacity(self, rng):
        support = random_support((4, 2, 2, 3), k=1000, n=2, rng=rng)
        assert support.sum() == 2 * 12  # n frames × per-frame values

    def test_deterministic_given_rng(self):
        a = random_support((4, 4, 4, 3), 10, 2, rng=7)
        b = random_support((4, 4, 4, 3), 10, 2, rng=7)
        np.testing.assert_array_equal(a, b)


class TestMotionSaliency:
    def test_shapes(self, attack_pair):
        original, _ = attack_pair
        frame_scores, pixel_saliency = motion_saliency(original)
        assert frame_scores.shape == (original.num_frames,)
        assert pixel_saliency.shape == original.pixels.shape

    def test_static_video_zero_saliency(self):
        from repro.video import Video

        static = Video(np.full((4, 4, 4, 3), 0.5))
        frame_scores, pixel_saliency = motion_saliency(static)
        np.testing.assert_allclose(frame_scores, 0.0)
        np.testing.assert_allclose(pixel_saliency, 0.0)

    def test_saliency_support_budgets(self, attack_pair, rng):
        original, _ = attack_pair
        support = saliency_support(original, k=50, n=3, rng=rng)
        assert support.sum() == 50
        assert support.reshape(original.num_frames, -1).any(axis=1).sum() <= 3

    def test_salient_pixels_prefer_motion(self, attack_pair, rng):
        original, _ = attack_pair
        _, pixel_saliency = motion_saliency(original)
        support = saliency_support(original, k=30, n=2, random_pixels=False,
                                   rng=rng)
        chosen_saliency = pixel_saliency[support].mean()
        assert chosen_saliency >= pixel_saliency.mean()


class TestVanillaAttack:
    def test_run_produces_valid_ae(self, tiny_victim, attack_pair):
        original, target = attack_pair
        attack = VanillaAttack(tiny_victim.service, k=60, n=3, tau=30,
                               iterations=10, rng=1)
        result = attack.run(original, target)
        assert result.adversarial.pixels.min() >= 0.0
        assert result.adversarial.pixels.max() <= 1.0
        assert result.stats.linf <= 30.0 / 255.0 + 1e-9
        assert result.stats.frames <= 3
        assert result.queries_used >= 3
        assert result.stats.spa <= 60

    def test_objective_trace_recorded(self, tiny_victim, attack_pair):
        attack = VanillaAttack(tiny_victim.service, k=40, n=2, tau=30,
                               iterations=5, rng=2)
        result = attack.run(*attack_pair)
        assert len(result.objective_trace) >= 1


class TestTimiAttack:
    def test_dense_transfer(self, tiny_surrogate, attack_pair):
        original, target = attack_pair
        attack = TIMIAttack(tiny_surrogate, tau=30, iterations=3)
        result = attack.run(original, target)
        assert result.queries_used == 0
        assert result.stats.linf <= 30.0 / 255.0 + 1e-9
        # TIMI is dense: it touches (almost) every frame.
        assert result.stats.frames == original.num_frames

    def test_even_kernel_rejected(self, tiny_surrogate):
        with pytest.raises(ValueError):
            TIMIAttack(tiny_surrogate, kernel_size=4)

    def test_reduces_surrogate_distance(self, tiny_surrogate, attack_pair):
        original, target = attack_pair
        attack = TIMIAttack(tiny_surrogate, tau=50, iterations=5)
        result = attack.run(original, target)
        f = tiny_surrogate.embed_videos
        before = np.linalg.norm(f(original)[0] - f(target)[0])
        after = np.linalg.norm(f(result.adversarial)[0] - f(target)[0])
        assert after <= before + 1e-6


class TestHeuAttacks:
    def test_heu_nes_runs(self, tiny_victim, attack_pair):
        attack = HeuNesAttack(tiny_victim.service, k=60, n=3, tau=30,
                              iterations=2, samples=2, rng=3)
        result = attack.run(*attack_pair)
        assert result.stats.linf <= 30.0 / 255.0 + 1e-9
        assert result.queries_used >= 2 + 2 * (2 * 2 + 1)

    def test_heu_sim_runs(self, tiny_victim, attack_pair):
        attack = HeuSimAttack(tiny_victim.service, k=60, n=3, tau=30,
                              iterations=8, rng=4)
        result = attack.run(*attack_pair)
        assert result.stats.frames <= 3
        assert result.stats.spa <= 60
