"""The consolidated result type keeps every legacy shape importable."""

import numpy as np
import pytest

from repro.video.types import Video


class TestImportability:
    def test_legacy_alias_is_the_same_class(self):
        from repro.attacks import AttackReport, AttackResult
        from repro.attacks.base import AttackResult as base_result
        from repro.attacks.report import AttackReport as report_class

        assert AttackResult is AttackReport
        assert base_result is AttackReport
        assert report_class is AttackReport

    def test_package_exports(self):
        import repro.attacks as attacks

        for name in ("AttackReport", "AttackResult", "AttackConfig",
                     "build_attack", "ComposedAttack", "ATTACK_STRATEGIES"):
            assert hasattr(attacks, name), name


class TestAliases:
    def make_report(self, **kwargs):
        from repro.attacks.report import AttackReport

        video = Video(np.zeros((2, 4, 4, 3)))
        return AttackReport(adversarial=video,
                            perturbation=np.zeros((2, 4, 4, 3)), **kwargs)

    def test_canonical_and_alias_kwargs_agree(self):
        by_canonical = self.make_report(queries=7, trace=[3.0, 2.0])
        by_alias = self.make_report(queries_used=7,
                                    objective_trace=[3.0, 2.0])
        assert by_canonical.queries == by_alias.queries == 7
        assert by_canonical.trace == by_alias.trace == [3.0, 2.0]

    def test_alias_properties_mirror_fields(self):
        report = self.make_report(queries=5, trace=[1.0])
        assert report.queries_used == report.queries
        assert report.objective_trace is report.trace

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError):
            self.make_report(queries=1, queries_used=1)
        with pytest.raises(TypeError):
            self.make_report(trace=[], objective_trace=[])

    def test_unpacks_as_the_legacy_search_tuple(self):
        report = self.make_report(queries=2, trace=[9.0])
        adversarial, perturbation, trace = report
        assert adversarial is report.adversarial
        assert perturbation is report.perturbation
        assert trace is report.trace

    def test_stats_summarize_the_perturbation(self):
        report = self.make_report()
        stats = report.stats
        assert stats.linf == 0.0


class TestSearchPrimitivesReturnReports:
    def test_simba_returns_report_not_tuple(self):
        from repro.attacks.objective import RetrievalObjective
        from repro.attacks.report import AttackReport
        from repro.attacks.search import simba_search
        from repro.attacks.vanilla import random_support
        from repro.qa.world import build_world

        world = build_world(54, cache_size=0)
        objective = RetrievalObjective(world.service, world.original,
                                       world.target)
        support = random_support(world.original.pixels.shape, 20, 2, rng=3)
        report = simba_search(world.original, objective, support, tau=0.1,
                              iterations=2, rng=3)
        assert isinstance(report, AttackReport)
        assert report.queries == len(report.trace)
