"""Property-based tests for the perturbation projection helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attacks.base import clip_video_range, project_l2, project_linf

perturbations = arrays(
    np.float64, (2, 3, 3, 3),
    elements=st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False),
)
pixels = arrays(
    np.float64, (2, 3, 3, 3),
    elements=st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=40, deadline=None)
@given(perturbations, st.floats(0.01, 1.0))
def test_linf_projection_bound(phi, tau):
    projected = project_linf(phi, tau)
    assert np.abs(projected).max() <= tau + 1e-12


@settings(max_examples=40, deadline=None)
@given(perturbations, st.floats(0.01, 1.0))
def test_linf_projection_idempotent(phi, tau):
    once = project_linf(phi, tau)
    np.testing.assert_array_equal(project_linf(once, tau), once)


@settings(max_examples=40, deadline=None)
@given(perturbations, st.floats(0.01, 5.0))
def test_l2_projection_bound(phi, radius):
    projected = project_l2(phi, radius)
    assert np.linalg.norm(projected) <= radius + 1e-9


@settings(max_examples=40, deadline=None)
@given(perturbations, st.floats(0.01, 5.0))
def test_l2_projection_preserves_direction(phi, radius):
    projected = project_l2(phi, radius)
    # Colinear: cross terms match norms product.
    dot = float((phi * projected).sum())
    assert dot >= -1e-9  # never flips sign


@settings(max_examples=40, deadline=None)
@given(pixels, perturbations)
def test_clip_video_range_validity(base, phi):
    clipped = clip_video_range(base, phi)
    result = base + clipped
    assert result.min() >= -1e-12
    assert result.max() <= 1.0 + 1e-12


@settings(max_examples=40, deadline=None)
@given(pixels, perturbations)
def test_clip_video_range_never_grows(base, phi):
    clipped = clip_video_range(base, phi)
    assert np.all(np.abs(clipped) <= np.abs(phi) + 1e-12)


@settings(max_examples=40, deadline=None)
@given(pixels, perturbations)
def test_clip_video_range_noop_when_valid(base, phi):
    scaled = phi * 0.0
    np.testing.assert_array_equal(clip_video_range(base, scaled), scaled)