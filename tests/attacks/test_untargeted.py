"""Tests for the untargeted attack extension."""

import numpy as np
import pytest

from repro.attacks import DUOAttack, UntargetedRetrievalObjective
from repro.attacks.duo import SparseTransfer


class TestUntargetedObjective:
    def test_value_range(self, tiny_victim, attack_pair):
        original, _ = attack_pair
        objective = UntargetedRetrievalObjective(tiny_victim.service,
                                                 original, eta=1.0)
        value = objective.value(original)
        assert value == pytest.approx(2.0)  # identical list: H = 1, + eta

    def test_reference_costs_one_query(self, tiny_victim, attack_pair):
        original, _ = attack_pair
        before = tiny_victim.service.query_count
        objective = UntargetedRetrievalObjective(tiny_victim.service, original)
        assert tiny_victim.service.query_count == before + 1
        assert objective.queries == 1

    def test_escape_rate_bounds(self, tiny_victim, attack_pair):
        original, _ = attack_pair
        objective = UntargetedRetrievalObjective(tiny_victim.service, original)
        assert objective.escape_rate(original) == 0.0


class TestUntargetedTransfer:
    def test_increases_surrogate_distance(self, tiny_surrogate, attack_pair):
        original, _ = attack_pair
        transfer = SparseTransfer(tiny_surrogate, k=200, n=4, tau=40,
                                  outer_iters=1, theta_steps=4,
                                  targeted=False, rng=0)
        priors = transfer.run(original, None)
        adversarial = original.perturbed(priors.perturbation())
        f = tiny_surrogate.embed_videos
        moved = np.linalg.norm(f(adversarial)[0] - f(original)[0])
        assert moved > 0.0

    def test_budgets_still_hold(self, tiny_surrogate, attack_pair):
        original, _ = attack_pair
        transfer = SparseTransfer(tiny_surrogate, k=100, n=3, tau=30,
                                  outer_iters=1, theta_steps=2,
                                  targeted=False, rng=1)
        priors = transfer.run(original, None)
        assert priors.pixel_mask.sum() == 100
        assert priors.frame_mask.sum() == 3
        assert np.abs(priors.theta).max() <= 30.0 / 255.0 + 1e-9


class TestUntargetedDUO:
    def test_run_untargeted(self, tiny_victim, tiny_surrogate, attack_pair):
        original, _ = attack_pair
        attack = DUOAttack(tiny_surrogate, tiny_victim.service, k=150, n=3,
                           tau=30, iter_num_q=10, iter_num_h=1,
                           transfer_outer_iters=1, theta_steps=2, rng=2)
        result = attack.run_untargeted(original)
        assert result.metadata["mode"] == "untargeted"
        assert 0.0 <= result.metadata["escape_rate"] <= 1.0
        assert result.queries_used > 0
        assert result.stats.frames <= original.num_frames
        assert result.adversarial.pixels.min() >= 0.0
        assert result.adversarial.pixels.max() <= 1.0
