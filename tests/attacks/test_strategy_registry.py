"""Conformance suite: every registered strategy composition behaves.

For each entry in :data:`repro.attacks.registry.ATTACK_STRATEGIES` the
suite builds the attack from its name alone, runs a few steps on the
tiny qa world, and checks the shared contracts: valid pixel ranges, an
ℓ∞-bounded perturbation, a conserved query ledger, an honored budget
cap, and bit-identical checkpoint/resume across a mid-attack outage.
"""

import numpy as np
import pytest

from repro.attacks.config import AttackConfig
from repro.attacks.registry import (
    ATTACK_ENV,
    ATTACK_STRATEGIES,
    DEFAULT_STRATEGY,
    build_attack,
    default_strategy,
    main as registry_main,
    resolve_strategy,
)
from repro.attacks.strategy import (
    ComposedAttack,
    FeedbackModel,
    PerturbationBasis,
    SupportSampler,
)
from repro.errors import RetrievalUnavailable
from repro.qa.invariants import check_budget_conservation
from repro.qa.world import build_world, tiny_extractor
from repro.resilience import FaultPlan, ResilienceConfig

from tests.resilience.conftest import build_service, make_videos

#: ``duo-query`` needs externally computed transfer priors injected via
#: ``config.sampler`` — exercised separately, not grid-buildable.
GRID = sorted(set(ATTACK_STRATEGIES) - {"duo-query"})

#: Compositions that consume service queries (outage-resumable).
QUERYING = [name for name in GRID
            if ATTACK_STRATEGIES[name].needs_service]


def make_config(name: str, iterations: int = 3, **overrides) -> AttackConfig:
    extras: dict = {"k": 40, "n": 2, "tau": 30.0, "iterations": iterations}
    if name == "duo":
        extras.update(rounds=2, sampler={"outer_iters": 1, "theta_steps": 2})
    elif name == "heu-nes":
        extras.update(feedback={"samples": 2})
    extras.update(overrides)
    return AttackConfig(strategy=name, **extras)


def make_attack(name: str, service, seed: int = 51, **overrides):
    entry = ATTACK_STRATEGIES[name]
    surrogate = tiny_extractor(seed + 23) if entry.needs_surrogate else None
    return build_attack(make_config(name, **overrides),
                        service=service if entry.needs_service else None,
                        surrogate=surrogate,
                        rng=np.random.default_rng(seed + 17))


class TestRegistry:
    def test_every_entry_satisfies_the_protocols(self):
        for name, entry in ATTACK_STRATEGIES.items():
            if name == "duo-query":
                continue  # needs priors to construct
            config = make_config(name)
            sampler = entry.sampler(**dict(config.sampler))
            basis = entry.basis(**dict(config.basis))
            feedback = entry.feedback(**dict(config.feedback))
            assert isinstance(sampler, SupportSampler), name
            assert isinstance(basis, PerturbationBasis), name
            assert isinstance(feedback, FeedbackModel), name

    def test_resolve_is_case_insensitive(self):
        assert resolve_strategy("DUO") is ATTACK_STRATEGIES["duo"]

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="vanilla"):
            resolve_strategy("definitely-not-an-attack")

    def test_default_strategy_reads_env(self, monkeypatch):
        monkeypatch.delenv(ATTACK_ENV, raising=False)
        assert default_strategy() == DEFAULT_STRATEGY
        monkeypatch.setenv(ATTACK_ENV, "qair")
        assert default_strategy() == "qair"

    def test_cli_list_prints_every_strategy(self, capsys):
        assert registry_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ATTACK_STRATEGIES:
            assert name in out

    def test_build_rejects_missing_service(self):
        with pytest.raises(ValueError, match="service"):
            build_attack(make_config("vanilla"))

    def test_build_rejects_missing_surrogate(self):
        with pytest.raises(ValueError, match="surrogate"):
            build_attack(make_config("timi"))


class TestConformance:
    @pytest.mark.parametrize("name", GRID)
    def test_runs_and_conserves_the_ledger(self, name):
        world = build_world(51, cache_size=0)
        attack = make_attack(name, world.service)
        assert isinstance(attack, ComposedAttack)
        assert attack.name == name

        report = attack.run(world.original, world.target)

        assert report.adversarial.pixels.min() >= 0.0
        assert report.adversarial.pixels.max() <= 1.0
        # Each round is ℓ∞-bounded by τ; multi-round strategies (duo)
        # re-anchor per round, so the total bound scales with rounds.
        rounds = report.metadata["rounds"]
        assert np.abs(report.perturbation).max() <= \
            rounds * 30.0 / 255.0 + 1e-9
        assert report.queries == world.service.query_count
        assert len(report.trace) > 0 or not \
            ATTACK_STRATEGIES[name].needs_service
        assert report.metadata["strategy"] == name
        check_budget_conservation(world.service)

    @pytest.mark.parametrize("name", QUERYING)
    def test_budget_caps_queries(self, name):
        world = build_world(52, cache_size=0)
        attack = make_attack(name, world.service, iterations=50, budget=12)
        report = attack.run(world.original, world.target)
        assert 0 < report.queries <= 12
        check_budget_conservation(world.service)

    def test_deterministic_given_seed(self):
        digests = []
        for _ in range(2):
            world = build_world(53, cache_size=0)
            report = make_attack("rl-sparse", world.service, seed=9).run(
                world.original, world.target)
            digests.append((report.adversarial.pixels.tobytes(),
                            tuple(report.trace), report.queries))
        assert digests[0] == digests[1]


class TestCheckpointResume:
    @pytest.mark.parametrize("name", QUERYING)
    def test_bit_identical_after_outage(self, name, tmp_path):
        original, target = make_videos(2, seed=99)
        resilience = ResilienceConfig(replication=1, retry=None,
                                      breaker=None, on_data_loss="raise")
        services = {label: build_service(num_nodes=2, resilience=resilience)
                    for label in ("clean", "faulted")}
        plan = FaultPlan(seed=1).outage("node-0", 3, 6)
        path = tmp_path / f"{name}.pkl"

        def run(label, checkpoint_path=None):
            attack = make_attack(name, services[label], seed=51)
            return attack.run(original, target,
                              checkpoint_path=checkpoint_path)

        clean = run("clean")

        failures = 0
        with plan.install(services["faulted"].engine.gallery):
            while True:
                try:
                    resumed = run("faulted", checkpoint_path=str(path))
                    break
                except RetrievalUnavailable:
                    failures += 1
                    assert path.exists() or (tmp_path / f"{name}.pkl.round0"
                                             ).exists()
                    assert failures < 50

        assert failures >= 1, "the outage never interrupted the attack"
        assert resumed.trace == clean.trace
        np.testing.assert_array_equal(resumed.adversarial.pixels,
                                      clean.adversarial.pixels)
        assert resumed.queries == clean.queries
        assert services["faulted"].query_count == \
            services["clean"].query_count
        assert not path.exists(), "completion must delete the checkpoint"
