"""Checkpoint/resume of composed attacks across live gallery mutation.

The registry conformance suite already proves resume is bit-identical
when the world stands still.  Here the gallery *mutates between the
outage and the resume* — videos deleted, re-embedded, and added while
the attack loop is parked on its checkpoint — and the contracts that
must survive are the accounting ones:

* the query ledger stays exactly conserved (every issued query charged
  or refunded, nothing double-counted across the interruption);
* the resumed loop runs to completion inside its budget;
* tombstoned videos never resurrect in post-resume retrieval lists.

Bit-identity with an uninterrupted run is deliberately *not* asserted:
the mutated gallery changes retrieval feedback, so traces legitimately
diverge after the resume point.
"""

import numpy as np
import pytest

from repro.errors import RetrievalUnavailable
from repro.qa.invariants import check_budget_conservation
from repro.resilience import FaultPlan, ResilienceConfig
from repro.video.types import Video

from tests.attacks.test_strategy_registry import QUERYING, make_attack
from tests.resilience.conftest import build_service, make_videos

#: Composed strategies that both query the service and checkpoint.
CHURN_STRATEGIES = [name for name in QUERYING
                    if name in ("rl-sparse", "qair", "heu-rand")] or QUERYING


def fresh_video(seed: int, video_id: str, label: int = 4) -> Video:
    rng = np.random.default_rng(seed)
    return Video(rng.random((4, 12, 12, 3)), label=label, video_id=video_id)


@pytest.mark.parametrize("name", CHURN_STRATEGIES)
def test_resume_across_gallery_mutation(name, tmp_path):
    original, target = make_videos(2, seed=99)
    resilience = ResilienceConfig(replication=1, retry=None, breaker=None,
                                  on_data_loss="raise")
    service = build_service(num_nodes=2, resilience=resilience)
    engine = service.engine
    plan = FaultPlan(seed=1).outage("node-0", 3, 6)
    path = tmp_path / f"{name}.pkl"

    failures = 0
    mutated = False
    deleted_id = None
    with plan.install(engine.gallery):
        while True:
            try:
                report = make_attack(name, service, seed=51).run(
                    original, target, checkpoint_path=str(path))
                break
            except RetrievalUnavailable:
                failures += 1
                assert failures < 50
                # The interrupted iteration's in-flight queries are
                # rolled back at *resume* (the mark restores the
                # counts), so conservation is checked after completion,
                # not at this instant.
                if not mutated:
                    # Mutate the gallery while the attack sits parked
                    # on its checkpoint, as live traffic would.
                    engine.enable_churn()
                    live = engine.gallery.live_ids()
                    deleted_id = live[0]
                    engine.remove_video(deleted_id)
                    engine.reembed_video(fresh_video(7, live[1]))
                    engine.add_video(fresh_video(8, "churn-add", label=2))
                    mutated = True

    assert failures >= 1, "the outage never interrupted the attack"
    assert mutated, "the mutation window never opened"
    # Exact refunds across interruption + mutation + resume.
    check_budget_conservation(service)
    assert report.queries == service.query_count
    assert not path.exists(), "completion must delete the checkpoint"

    # No tombstone resurrection: the deleted video must be gone from
    # full-gallery retrieval of the adversarial example.
    retrieval = engine.retrieve(report.adversarial,
                                m=len(engine.gallery) + 2)
    returned = {entry.video_id for entry in retrieval.entries}
    assert deleted_id not in returned
    assert deleted_id not in engine.gallery.live_ids()
    assert "churn-add" in engine.gallery.live_ids()


def test_resume_budget_is_exact_across_mutation(tmp_path):
    """The budget cap counts queries across interruption and churn."""
    original, target = make_videos(2, seed=31)
    resilience = ResilienceConfig(replication=1, retry=None, breaker=None,
                                  on_data_loss="raise")
    service = build_service(num_nodes=2, resilience=resilience)
    plan = FaultPlan(seed=2).outage("node-1", 4, 7)
    path = tmp_path / "budget.pkl"

    budget = 14
    with plan.install(service.engine.gallery):
        while True:
            try:
                report = make_attack("rl-sparse", service, seed=8,
                                     iterations=30, budget=budget).run(
                    original, target, checkpoint_path=str(path))
                break
            except RetrievalUnavailable:
                service.engine.enable_churn()
                live = service.engine.gallery.live_ids()
                service.engine.remove_video(live[-1])
    assert 0 < report.queries <= budget
    assert service.query_count <= budget
    check_budget_conservation(service)
