"""Integration tests for the DUO attack pipeline."""

import numpy as np
import pytest

from repro.attacks import DUOAttack, SparseQuery, SparseTransfer
from repro.attacks.objective import RetrievalObjective


@pytest.fixture(scope="module")
def transfer_priors(tiny_surrogate, attack_pair):
    original, target = attack_pair
    transfer = SparseTransfer(tiny_surrogate, k=100, n=3, tau=30,
                              outer_iters=1, theta_steps=3)
    return transfer.run(original, target)


class TestSparseTransfer:
    def test_masks_respect_budgets(self, transfer_priors):
        assert transfer_priors.pixel_mask.sum() == 100
        assert transfer_priors.frame_mask.sum() == 3

    def test_theta_within_budget(self, transfer_priors):
        assert np.abs(transfer_priors.theta).max() <= 30.0 / 255.0 + 1e-9

    def test_perturbation_sparsity(self, transfer_priors, attack_pair):
        phi = transfer_priors.perturbation()
        assert (np.abs(phi) > 0).sum() <= 100

    def test_invalid_constraint(self, tiny_surrogate):
        with pytest.raises(ValueError):
            SparseTransfer(tiny_surrogate, k=10, n=2, constraint="l1")

    def test_l2_constraint_budget(self, tiny_surrogate, attack_pair):
        original, target = attack_pair
        transfer = SparseTransfer(tiny_surrogate, k=50, n=2, tau=30,
                                  constraint="l2", outer_iters=1,
                                  theta_steps=2)
        priors = transfer.run(original, target)
        radius = (30.0 / 255.0) * np.sqrt(50)
        assert np.linalg.norm(priors.theta) <= radius + 1e-6

    def test_target_init_seeds_theta(self, tiny_surrogate, attack_pair):
        original, target = attack_pair
        transfer = SparseTransfer(tiny_surrogate, k=50, n=2, tau=30,
                                  outer_iters=0, theta_steps=0,
                                  target_init=True)
        priors = transfer.run(original, target)
        expected = np.clip(target.pixels - original.pixels,
                           -30.0 / 255.0, 30.0 / 255.0)
        np.testing.assert_allclose(priors.theta, expected)

    def test_reduces_surrogate_loss(self, tiny_surrogate, attack_pair):
        original, target = attack_pair
        transfer = SparseTransfer(tiny_surrogate, k=150, n=4, tau=40,
                                  outer_iters=1, theta_steps=4)
        priors = transfer.run(original, target)
        adversarial = original.perturbed(priors.perturbation())
        f = tiny_surrogate.embed_videos
        before = np.linalg.norm(f(original)[0] - f(target)[0])
        after = np.linalg.norm(f(adversarial)[0] - f(target)[0])
        assert after <= before + 1e-6


class TestSparseQuery:
    def test_preserves_support(self, tiny_victim, attack_pair,
                               transfer_priors):
        original, target = attack_pair
        objective = RetrievalObjective(tiny_victim.service, original, target)
        query = SparseQuery(iter_num_q=6, tau=30, rng=0)
        adversarial, trace = query.run(original, transfer_priors, objective)
        phi = adversarial.pixels - original.pixels
        outside = ~transfer_priors.support()
        np.testing.assert_allclose(phi[outside], 0.0, atol=1e-12)
        assert len(trace) >= 1

    def test_respects_tau(self, tiny_victim, attack_pair, transfer_priors):
        original, target = attack_pair
        objective = RetrievalObjective(tiny_victim.service, original, target)
        query = SparseQuery(iter_num_q=6, tau=30, rng=0)
        adversarial, _ = query.run(original, transfer_priors, objective)
        phi = adversarial.pixels - original.pixels
        assert np.abs(phi).max() <= 30.0 / 255.0 + 1e-9

    def test_empty_support_noop(self, tiny_victim, attack_pair):
        from repro.attacks.duo import TransferPriors

        original, target = attack_pair
        priors = TransferPriors.fresh(original.pixels.shape)  # theta = 0
        objective = RetrievalObjective(tiny_victim.service, original, target)
        query = SparseQuery(iter_num_q=3, tau=30, rng=0)
        adversarial, trace = query.run(original, priors, objective)
        np.testing.assert_allclose(adversarial.pixels, original.pixels)
        assert trace == []

    def test_invalid_tie_rule(self):
        with pytest.raises(ValueError):
            SparseQuery(tie_rule="maybe")


class TestDUOPipeline:
    def test_full_attack(self, tiny_victim, tiny_surrogate, attack_pair):
        original, target = attack_pair
        attack = DUOAttack(
            tiny_surrogate, tiny_victim.service, k=120, n=3, tau=30,
            iter_num_q=8, iter_num_h=2, transfer_outer_iters=1,
            theta_steps=2, rng=9,
        )
        result = attack.run(original, target)
        assert result.queries_used > 0
        assert result.stats.frames <= result.perturbation.shape[0]
        # Two loops, each bounded by τ, so total drift is at most 2τ.
        assert result.stats.linf <= 2 * 30.0 / 255.0 + 1e-9
        assert result.metadata["iter_num_h"] == 2
        assert result.metadata["k"] == 120

    def test_transfer_only_no_queries(self, tiny_victim, tiny_surrogate,
                                      attack_pair):
        attack = DUOAttack(
            tiny_surrogate, tiny_victim.service, k=80, n=2, tau=30,
            transfer_outer_iters=1, theta_steps=2, rng=1,
        )
        before = tiny_victim.service.query_count
        result = attack.transfer_only(*attack_pair)
        assert result.queries_used == 0
        assert tiny_victim.service.query_count == before
        assert result.stats.spa <= 80

    def test_single_loop_respects_tau_strictly(self, tiny_victim,
                                               tiny_surrogate, attack_pair):
        attack = DUOAttack(
            tiny_surrogate, tiny_victim.service, k=80, n=2, tau=30,
            iter_num_q=4, iter_num_h=1, transfer_outer_iters=1,
            theta_steps=2, rng=1,
        )
        result = attack.run(*attack_pair)
        assert result.stats.linf <= 30.0 / 255.0 + 1e-9
