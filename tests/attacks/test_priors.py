"""Tests for the TransferPriors container."""

import numpy as np
import pytest

from repro.attacks.duo import TransferPriors


def test_fresh_initialization():
    priors = TransferPriors.fresh((4, 3, 3, 3))
    assert priors.pixel_mask.sum() == 4 * 27
    assert priors.frame_mask.sum() == 4
    assert np.all(priors.theta == 0.0)


def test_perturbation_composition(rng):
    theta = rng.normal(size=(4, 2, 2, 3))
    pixel_mask = (rng.random((4, 2, 2, 3)) > 0.5).astype(float)
    frame_mask = np.array([1.0, 0.0, 1.0, 0.0])
    priors = TransferPriors(pixel_mask, frame_mask, theta)
    phi = priors.perturbation()
    np.testing.assert_array_equal(phi[1], 0.0)
    np.testing.assert_array_equal(phi[3], 0.0)
    np.testing.assert_allclose(phi[0], pixel_mask[0] * theta[0])


def test_support_matches_nonzero(rng):
    priors = TransferPriors(
        np.ones((2, 2, 2, 3)), np.array([1.0, 0.0]),
        rng.normal(size=(2, 2, 2, 3)),
    )
    support = priors.support()
    assert support[0].all()
    assert not support[1].any()


def test_shape_validation(rng):
    with pytest.raises(ValueError):
        TransferPriors(np.ones((2, 2, 2, 3)), np.ones(2),
                       np.zeros((3, 2, 2, 3)))
    with pytest.raises(ValueError):
        TransferPriors(np.ones((2, 2, 2, 3)), np.ones(5),
                       np.zeros((2, 2, 2, 3)))


def test_broadcast_frame_mask_shape():
    priors = TransferPriors.fresh((5, 2, 2, 3))
    assert priors.broadcast_frame_mask.shape == (5, 1, 1, 1)
