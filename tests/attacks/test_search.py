"""Tests for the SimBA and NES black-box search primitives."""

import numpy as np
import pytest

from repro.attacks.search import default_block_size, nes_search, simba_search
from repro.video import Video
from tests.attacks.test_objective import FakeService, make_video
from repro.attacks.objective import RetrievalObjective


class CountingObjective:
    """A synthetic objective: T = distance of perturbation to a target φ*.

    Gives the searches a smooth signal without any model, so their
    mechanics (support restriction, budgets, acceptance) can be tested
    deterministically.
    """

    def __init__(self, original, target_phi):
        self.original = original
        self.target_phi = target_phi
        self.queries = 0
        self.trace = []

    def value(self, candidate):
        self.queries += 1
        phi = candidate.pixels - self.original.pixels
        value = float(np.abs(phi - self.target_phi).sum())
        self.trace.append(value)
        return value


@pytest.fixture
def original(rng):
    return Video(np.full((2, 4, 4, 3), 0.5), video_id="orig")


@pytest.fixture
def support(original):
    support = np.zeros(original.pixels.shape, dtype=bool)
    support[0] = True  # only frame 0 may be perturbed
    return support


class TestSimbaSearch:
    def test_respects_support(self, original, support, rng):
        target_phi = np.full(original.pixels.shape, 0.05)
        objective = CountingObjective(original, target_phi)
        _, perturbation, _ = simba_search(
            original, objective, support, tau=0.1, iterations=30, rng=rng,
        )
        assert np.all(perturbation[1] == 0.0)

    def test_respects_tau(self, original, support, rng):
        objective = CountingObjective(original,
                                      np.full(original.pixels.shape, 1.0))
        _, perturbation, _ = simba_search(
            original, objective, support, tau=0.05, iterations=30, rng=rng,
        )
        assert np.abs(perturbation).max() <= 0.05 + 1e-12

    def test_decreases_smooth_objective(self, original, support, rng):
        target_phi = np.zeros(original.pixels.shape)
        target_phi[0] = 0.08
        objective = CountingObjective(original, target_phi)
        _, _, trace = simba_search(
            original, objective, support, tau=0.1, iterations=60,
            epsilon=0.08, rng=rng, tie_rule="stay",
        )
        assert trace[-1] < trace[0]

    def test_empty_support_no_queries_after_baseline(self, original, rng):
        objective = CountingObjective(original,
                                      np.zeros(original.pixels.shape))
        _, perturbation, trace = simba_search(
            original, objective, np.zeros(original.pixels.shape, dtype=bool),
            tau=0.1, iterations=10, rng=rng,
        )
        assert np.all(perturbation == 0.0)
        assert len(trace) == 1

    def test_stay_rule_monotone_best(self, original, support, rng):
        objective = CountingObjective(original,
                                      rng.normal(size=original.pixels.shape) * 0.05)
        _, _, trace = simba_search(
            original, objective, support, tau=0.1, iterations=40, rng=rng,
            tie_rule="stay",
        )
        best = np.minimum.accumulate(trace)
        assert best[-1] <= best[0]

    def test_initial_perturbation_used(self, original, support, rng):
        initial = np.zeros(original.pixels.shape)
        initial[0, 0, 0, 0] = 0.07
        objective = CountingObjective(original, initial)
        adversarial, perturbation, trace = simba_search(
            original, objective, support, tau=0.1, iterations=0,
            initial=initial, rng=rng,
        )
        np.testing.assert_allclose(perturbation, initial)
        assert trace[0] == pytest.approx(0.0)

    def test_block_size_one_single_coordinate_moves(self, original, support, rng):
        objective = CountingObjective(original,
                                      np.zeros(original.pixels.shape))
        _, perturbation, _ = simba_search(
            original, objective, support, tau=0.1, iterations=1,
            block_size=1, rng=rng, tie_rule="stay",
        )
        assert (np.abs(perturbation) > 0).sum() <= 1


class TestNesSearch:
    def test_respects_support_and_tau(self, original, support, rng):
        objective = CountingObjective(original,
                                      np.full(original.pixels.shape, 1.0))
        _, perturbation, _ = nes_search(
            original, objective, support, tau=0.06, iterations=5, samples=2,
            rng=rng,
        )
        assert np.all(perturbation[1] == 0.0)
        assert np.abs(perturbation).max() <= 0.06 + 1e-12

    def test_query_cost_accounting(self, original, support, rng):
        objective = CountingObjective(original,
                                      np.zeros(original.pixels.shape))
        nes_search(original, objective, support, tau=0.1, iterations=3,
                   samples=2, rng=rng)
        # 1 baseline + per-iteration (2·samples probes + 1 evaluation)
        assert objective.queries == 1 + 3 * (2 * 2 + 1)

    def test_improves_smooth_objective(self, original, support, rng):
        target_phi = np.zeros(original.pixels.shape)
        target_phi[0] = 0.05
        objective = CountingObjective(original, target_phi)
        _, best_perturbation, trace = nes_search(
            original, objective, support, tau=0.06, iterations=10,
            samples=4, sigma=0.02, rng=rng,
        )
        final = float(np.abs(best_perturbation - target_phi).sum())
        assert final < trace[0]


class TestDefaultBlockSize:
    def test_sqrt_scaling(self):
        assert default_block_size(100) == 10
        assert default_block_size(1) == 1
        assert default_block_size(0) == 1
