"""Tests for the retrieval objective T using a scripted fake service."""

import numpy as np
import pytest

from repro.attacks.objective import RetrievalObjective
from repro.retrieval.lists import RetrievalEntry, RetrievalList
from repro.video import Video


class FakeService:
    """Returns scripted lists keyed by video id prefix."""

    def __init__(self, lists: dict[str, list[str]]) -> None:
        self.lists = lists
        self.query_count = 0

    def query(self, video, m=None):
        self.query_count += 1
        key = video.video_id.split("+")[0].split("#")[0]
        ids = self.lists[key]
        return RetrievalList(
            [RetrievalEntry(i, 0, -r) for r, i in enumerate(ids)]
        )


def make_video(video_id):
    return Video(np.zeros((2, 2, 2, 3)), video_id=video_id)


@pytest.fixture
def setup():
    service = FakeService({
        "orig": ["a", "b", "c"],
        "targ": ["x", "y", "z"],
        "adv-like-orig": ["a", "b", "c"],
        "adv-like-targ": ["x", "y", "z"],
        "adv-mixed": ["a", "x", "q"],
    })
    objective = RetrievalObjective(service, make_video("orig"),
                                   make_video("targ"), eta=1.0)
    return service, objective


class TestRetrievalObjective:
    def test_reference_queries_counted(self, setup):
        service, objective = setup
        assert objective.queries == 2
        assert service.query_count == 2

    def test_value_at_original_is_max(self, setup):
        _, objective = setup
        value = objective.value(make_video("adv-like-orig"))
        assert value == pytest.approx(2.0)  # H=1 minus H=0 plus eta=1

    def test_value_at_target_is_min(self, setup):
        _, objective = setup
        value = objective.value(make_video("adv-like-targ"))
        assert value == pytest.approx(0.0)

    def test_mixed_value_between(self, setup):
        _, objective = setup
        value = objective.value(make_video("adv-mixed"))
        assert 0.0 < value < 2.0

    def test_each_value_costs_one_query(self, setup):
        service, objective = setup
        objective.value(make_video("adv-mixed"))
        objective.value(make_video("adv-mixed"))
        assert objective.queries == 4
        assert service.query_count == 4

    def test_trace_records_values(self, setup):
        _, objective = setup
        objective.value(make_video("adv-like-orig"))
        objective.value(make_video("adv-like-targ"))
        assert objective.trace == [pytest.approx(2.0), pytest.approx(0.0)]

    def test_success_ap(self, setup):
        _, objective = setup
        assert objective.success_ap(make_video("adv-like-targ")) == \
            pytest.approx(1.0)
        assert objective.success_ap(make_video("adv-like-orig")) == 0.0
