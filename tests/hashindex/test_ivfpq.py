"""Product quantization, ADC tables, and the IVF-PQ index."""

import numpy as np
import pytest

from repro.hashindex import IVFPQIndex, MemmapStore, ProductQuantizer
from repro.qa.generators import draw_clustered_gallery
from repro.retrieval import FeatureIndex


def _gallery(seed=0, rows=120, dim=16):
    rng = np.random.default_rng(seed)
    ids, labels, features = draw_clustered_gallery(rng, rows, dim)
    return ids, labels, features, rng


class TestProductQuantizer:
    def test_codes_are_uint8_per_subvector(self, rng):
        matrix = rng.normal(size=(60, 16))
        pq = ProductQuantizer(num_subvectors=4, ksub=16, rng=0).fit(matrix)
        codes = pq.encode(matrix)
        assert codes.dtype == np.uint8
        assert codes.shape == (60, 4)

    def test_adc_matches_reconstruction_distance(self, rng):
        """ADC lookup distances equal ‖query − reconstruction‖² computed
        the long way through the codebooks."""
        matrix = rng.normal(size=(80, 12))
        pq = ProductQuantizer(num_subvectors=3, ksub=8, rng=1).fit(matrix)
        codes = pq.encode(matrix)
        query = rng.normal(size=12)
        via_table = pq.adc_distances(pq.adc_table(query), codes)
        reconstructed = np.concatenate(
            [pq.codebooks[m, codes[:, m]] for m in range(3)], axis=1)
        direct = ((query[None, :] - reconstructed) ** 2).sum(axis=1)
        np.testing.assert_allclose(via_table, direct, rtol=1e-10, atol=1e-10)

    def test_pads_non_divisible_dims(self, rng):
        matrix = rng.normal(size=(40, 10))  # 10 not divisible by 4
        pq = ProductQuantizer(num_subvectors=4, ksub=8, rng=0).fit(matrix)
        codes = pq.encode(matrix)
        assert codes.shape == (40, 4)
        # Encoding a second time is stable (no state mutation).
        np.testing.assert_array_equal(codes, pq.encode(matrix))

    def test_self_encoding_is_nearest(self, rng):
        """Tight clusters encode to codewords whose ADC distance to the
        cluster's own members is smaller than to other clusters."""
        near = rng.normal(scale=0.05, size=(30, 8))
        far = 10.0 + rng.normal(scale=0.05, size=(30, 8))
        matrix = np.concatenate([near, far])
        pq = ProductQuantizer(num_subvectors=2, ksub=4, rng=0).fit(matrix)
        codes = pq.encode(matrix)
        distances = pq.adc_distances(pq.adc_table(near[0]), codes)
        assert distances[:30].max() < distances[30:].min()

    def test_unfit_raises(self, rng):
        pq = ProductQuantizer(num_subvectors=2, ksub=4)
        with pytest.raises(RuntimeError):
            pq.encode(rng.normal(size=(4, 8)))


class TestIVFPQIndex:
    def test_recall_floor_on_clustered_gallery(self):
        ids, labels, features, rng = _gallery(rows=150, dim=16)
        index = IVFPQIndex(num_cells=8, nprobe=4, num_subvectors=8,
                           rerank=48, rng=1)
        index.add_batch(ids, labels, features)
        exact = FeatureIndex()
        exact.add_batch(ids, labels, features)
        anchors = rng.choice(150, size=12, replace=False)
        queries = features[anchors] + 0.05 * rng.normal(size=(12, 16))
        assert index.recall_at_k(exact, queries, k=10) >= 0.9

    def test_recall_monotone_in_nprobe(self):
        ids, labels, features, rng = _gallery(rows=140, dim=12)
        exact = FeatureIndex()
        exact.add_batch(ids, labels, features)
        queries = features[rng.choice(140, size=10, replace=False)]
        recalls = []
        for nprobe in (1, 8):
            index = IVFPQIndex(num_cells=8, nprobe=nprobe,
                               num_subvectors=6, rerank=64, rng=3)
            index.add_batch(ids, labels, features)
            recalls.append(index.recall_at_k(exact, queries, k=10))
        assert recalls[0] <= recalls[1]

    def test_empty_probe_falls_back_to_full_gallery(self):
        """If every probed cell is empty the scan widens to all rows, so
        the rerank contract (k results when the gallery has k rows)
        still holds."""
        ids, labels, features, _ = _gallery(rows=40, dim=8)
        index = IVFPQIndex(num_cells=4, nprobe=4, num_subvectors=4,
                           rerank=16, rng=2)
        index.add_batch(ids, labels, features)
        index.build()
        index._cells = [np.array([], dtype=np.int64)
                        for _ in index._cells]
        result = index.search(features[0], k=5)
        assert len(result) == 5
        assert result[0].video_id == "v0"

    def test_cells_clamp_to_row_count(self):
        ids, labels, features, _ = _gallery(rows=5, dim=8)
        index = IVFPQIndex(num_cells=64, nprobe=4, num_subvectors=4,
                           rerank=8, rng=0)
        index.add_batch(ids, labels, features)
        assert len(index.search(features[2], k=3)) == 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IVFPQIndex(num_cells=0)
        with pytest.raises(ValueError):
            IVFPQIndex(nprobe=0)
        with pytest.raises(ValueError):
            IVFPQIndex(rerank=0)

    def test_memmap_results_match_ram(self, tmp_path):
        ids, labels, features, rng = _gallery(rows=90, dim=16)
        queries = features[:5] + 0.02 * rng.normal(size=(5, 16))
        ram = IVFPQIndex(num_cells=6, nprobe=3, num_subvectors=4,
                         rerank=24, rng=5)
        mapped = IVFPQIndex(num_cells=6, nprobe=3, num_subvectors=4,
                            rerank=24, rng=5, store=MemmapStore(tmp_path))
        ram.add_batch(ids, labels, features)
        mapped.add_batch(ids, labels, features)
        assert mapped.search_batch(queries, k=7) == ram.search_batch(queries, k=7)

    def test_memmap_persists_codes_and_codebooks(self, tmp_path):
        ids, labels, features, _ = _gallery(rows=60, dim=16)
        index = IVFPQIndex(num_cells=4, nprobe=2, num_subvectors=4,
                           rerank=16, rng=0, store=MemmapStore(tmp_path))
        index.add_batch(ids, labels, features)
        index.build()
        assert "pq_codes" in index.store
        assert "pq_codebooks" in index.store
        assert "exact_features" in index.store
        stats = index.memory_stats()
        assert stats["mapped_bytes"] >= stats["float_feature_bytes"]
