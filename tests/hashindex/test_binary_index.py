"""BinaryHashIndex: recall, rerank exactness, memmap parity, accounting."""

import numpy as np
import pytest

from repro.hashindex import BinaryHashIndex, MemmapStore
from repro.obs import get_registry
from repro.qa.generators import draw_clustered_gallery
from repro.retrieval import FeatureIndex


def _gallery(seed=0, rows=120, dim=16):
    rng = np.random.default_rng(seed)
    ids, labels, features = draw_clustered_gallery(rng, rows, dim)
    return ids, labels, features, rng


def _filled(index, seed=0, rows=120, dim=16):
    ids, labels, features, rng = _gallery(seed, rows, dim)
    index.add_batch(ids, labels, features)
    exact = FeatureIndex()
    exact.add_batch(ids, labels, features)
    anchors = rng.choice(rows, size=12, replace=False)
    queries = features[anchors] + 0.05 * rng.normal(size=(12, dim))
    return index, exact, queries


class TestRecallAndRerank:
    @pytest.mark.parametrize("coder", ["lsh", "itq"])
    def test_recall_floor_on_clustered_gallery(self, coder):
        index, exact, queries = _filled(
            BinaryHashIndex(nbits=128, coder=coder, rerank=48, rng=1))
        assert index.recall_at_k(exact, queries, k=10) >= 0.9

    def test_scores_are_exact_not_hamming(self):
        """Returned scores come from the exact similarity, so whenever
        the approximate index surfaces the true winner its score equals
        the exact index's bit for bit."""
        index, exact, queries = _filled(
            BinaryHashIndex(nbits=128, coder="itq", rerank=64, rng=1))
        for query in queries:
            approx = {e.video_id: e.score for e in index.search(query, k=5)}
            for entry in exact.search(query, k=5):
                if entry.video_id in approx:
                    assert approx[entry.video_id] == entry.score

    def test_rerank_depth_clamps_to_gallery(self):
        index = BinaryHashIndex(nbits=64, rerank=500, rng=0)
        ids, labels, features, _ = _gallery(rows=20)
        index.add_batch(ids, labels, features)
        assert index.effective_rerank(5) == 20

    def test_add_after_build_rebuilds(self):
        index = BinaryHashIndex(nbits=64, rerank=8, rng=0)
        ids, labels, features, _ = _gallery(rows=30)
        index.add_batch(ids, labels, features)
        index.search(features[0], k=3)
        index.add("fresh", 99, features[0] + 0.001)
        result = index.search(features[0], k=3)
        assert "fresh" in {entry.video_id for entry in result}


class TestMemmap:
    def test_memmap_results_match_ram(self):
        ids, labels, features, rng = _gallery(rows=80)
        queries = rng.normal(size=(6, 16)) + features[:6]
        ram = BinaryHashIndex(nbits=128, rerank=32, rng=4)
        mapped = BinaryHashIndex(nbits=128, rerank=32, rng=4, memmap=True)
        ram.add_batch(ids, labels, features)
        mapped.add_batch(ids, labels, features)
        assert mapped.search_batch(queries, k=7) == ram.search_batch(queries, k=7)
        mapped.store.close()

    def test_memory_stats_memmap_shrinks_residency(self, tmp_path):
        index = BinaryHashIndex(nbits=128, rerank=16, rng=0,
                                store=MemmapStore(tmp_path))
        # Enough rows that the fixed projection cost (dim × nbits
        # floats) amortizes — the regime the compressed tier targets.
        ids, labels, features, _ = _gallery(rows=2000, dim=32)
        index.add_batch(ids, labels, features)
        stats = index.memory_stats()
        assert stats["rows"] == 2000
        assert stats["float_feature_bytes"] == 2000 * 32 * 8
        # Floats + packed codes live on disk; only the coder stays in RAM.
        assert stats["mapped_bytes"] >= stats["float_feature_bytes"]
        assert stats["resident_bytes"] < 0.25 * stats["float_feature_bytes"]

    def test_memory_stats_ram_counts_everything(self):
        index = BinaryHashIndex(nbits=128, rerank=16, rng=0)
        ids, labels, features, _ = _gallery(rows=50)
        index.add_batch(ids, labels, features)
        stats = index.memory_stats()
        assert stats["mapped_bytes"] == 0
        assert stats["resident_bytes"] >= stats["float_feature_bytes"]


class TestObs:
    def test_search_increments_tier_counters(self):
        index, _, queries = _filled(
            BinaryHashIndex(nbits=64, rerank=16, rng=2))
        registry = get_registry()
        searches = registry.counter("hashindex.searches", tier="hamming")
        scanned = registry.counter("hashindex.candidates_scanned",
                                   tier="hamming")
        searches_before, scanned_before = searches.value, scanned.value
        index.search_batch(queries, k=5)
        assert searches.value == searches_before + len(queries)
        assert scanned.value == scanned_before + len(queries) * 16
