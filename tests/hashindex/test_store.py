"""MemmapStore: atomic persistence + mapped-byte accounting."""

import os

import numpy as np
import pytest

from repro.hashindex.store import MemmapStore, total_mapped_bytes


class TestPutGet:
    def test_roundtrip_is_memmapped_and_readonly(self, rng, tmp_path):
        store = MemmapStore(tmp_path)
        array = rng.normal(size=(20, 4))
        view = store.put("features", array)
        assert isinstance(view, np.memmap)
        np.testing.assert_array_equal(view, array)
        np.testing.assert_array_equal(store.get("features"), array)
        with pytest.raises((ValueError, OSError)):
            view[0, 0] = 99.0

    def test_contains(self, tmp_path):
        store = MemmapStore(tmp_path)
        store.put("a", np.zeros(3))
        assert "a" in store
        assert "b" not in store

    def test_replace_swaps_payload_atomically(self, rng, tmp_path):
        store = MemmapStore(tmp_path)
        store.put("codes", np.zeros((10, 2), dtype=np.uint64))
        replacement = rng.integers(0, 100, size=(4, 2)).astype(np.uint64)
        store.put("codes", replacement)
        np.testing.assert_array_equal(store.get("codes"), replacement)
        # No stray .tmp files survive the os.replace.
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]


class TestAccounting:
    def test_mapped_bytes_tracks_payloads(self, tmp_path):
        store = MemmapStore(tmp_path)
        assert store.mapped_bytes == 0
        store.put("a", np.zeros((10, 4)))
        assert store.mapped_bytes == 10 * 4 * 8
        store.put("b", np.zeros((5, 2), dtype=np.uint8))
        assert store.mapped_bytes == 10 * 4 * 8 + 5 * 2

    def test_replace_does_not_double_count(self, tmp_path):
        store = MemmapStore(tmp_path)
        store.put("a", np.zeros((100, 8)))
        store.put("a", np.zeros((2, 2)))
        assert store.mapped_bytes == 2 * 2 * 8

    def test_total_mapped_bytes_spans_stores(self, tmp_path):
        before = total_mapped_bytes()
        first = MemmapStore(tmp_path / "one")
        second = MemmapStore(tmp_path / "two")
        first.put("x", np.zeros(16))
        second.put("y", np.zeros(16))
        assert total_mapped_bytes() == before + 2 * 16 * 8
        first.close()
        assert total_mapped_bytes() == before + 16 * 8
        second.close()
        assert total_mapped_bytes() == before


class TestLifecycle:
    def test_owned_tempdir_removed_on_close(self):
        store = MemmapStore()
        directory = store.directory
        store.put("a", np.zeros(4))
        assert os.path.isdir(directory)
        store.close()
        assert not os.path.exists(directory)

    def test_explicit_directory_survives_close(self, tmp_path):
        store = MemmapStore(tmp_path)
        store.put("a", np.zeros(4))
        store.close()
        assert os.path.isdir(tmp_path)

    def test_put_after_close_raises(self, tmp_path):
        store = MemmapStore(tmp_path)
        store.close()
        with pytest.raises(RuntimeError):
            store.put("a", np.zeros(2))

    def test_close_is_idempotent(self, tmp_path):
        store = MemmapStore(tmp_path)
        store.put("a", np.zeros(4))
        store.close()
        store.close()
