"""Tier selection wiring: registry, env flag, gallery/service plumbing,
and the end-to-end DUO attack against a compressed tier."""

import numpy as np
import pytest

from repro.hashindex import BinaryHashIndex, IVFPQIndex
from repro.hashindex.tiers import (
    DEFAULT_TIER,
    INDEX_TIER_ENV,
    INDEX_TIERS,
    default_index_tier,
    resolve_index_tier,
)
from repro.qa.generators import draw_clustered_gallery
from repro.qa.world import build_world
from repro.retrieval import FeatureIndex, RetrievalEngine, ShardedGallery
from repro.retrieval.config import ServiceConfig
from repro.retrieval.index import FeatureIndex as ExactIndex


class TestRegistry:
    def test_known_tiers(self):
        assert set(INDEX_TIERS) == {"exact", "ivf", "hamming", "ivfpq"}

    def test_factories_build_the_right_types(self):
        from repro.retrieval.ann import IVFIndex
        from repro.retrieval.similarity import negative_l2

        assert isinstance(resolve_index_tier("exact")(negative_l2),
                          FeatureIndex)
        assert isinstance(resolve_index_tier("ivf")(negative_l2), IVFIndex)
        assert isinstance(resolve_index_tier("hamming")(negative_l2),
                          BinaryHashIndex)
        assert isinstance(resolve_index_tier("ivfpq")(negative_l2),
                          IVFPQIndex)

    def test_unknown_tier_raises(self):
        with pytest.raises(KeyError):
            resolve_index_tier("annoy")

    def test_env_flag_selects_default(self, monkeypatch):
        monkeypatch.delenv(INDEX_TIER_ENV, raising=False)
        assert default_index_tier() == DEFAULT_TIER
        monkeypatch.setenv(INDEX_TIER_ENV, "hamming")
        assert default_index_tier() == "hamming"

    def test_env_flag_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(INDEX_TIER_ENV, "faiss")
        with pytest.raises(ValueError):
            default_index_tier()

    def test_service_config_validates_tier(self):
        assert ServiceConfig(index_tier="ivfpq").index_tier == "ivfpq"
        with pytest.raises(KeyError):
            ServiceConfig(index_tier="annoy")


def _filled_gallery(tier=None, num_nodes=2, rows=60, dim=12, seed=4):
    rng = np.random.default_rng(seed)
    ids, labels, features = draw_clustered_gallery(rng, rows, dim)
    gallery = ShardedGallery(num_nodes=num_nodes, index_tier=tier)
    gallery.add_batch(ids, labels, features)
    return gallery, features


class TestGalleryWiring:
    def test_env_flag_reaches_fresh_gallery(self, monkeypatch):
        monkeypatch.setenv(INDEX_TIER_ENV, "hamming")
        gallery, _ = _filled_gallery()
        assert gallery.index_tier == "hamming"
        for node in gallery.nodes:
            assert isinstance(node.index, BinaryHashIndex)

    def test_switch_preserves_rows_and_reranked_results(self):
        gallery, features = _filled_gallery(tier="exact")
        exact_results = gallery.search(features[3], k=5)
        before = sum(len(node.index) for node in gallery.nodes)
        gallery.set_index_tier("hamming")
        assert gallery.index_tier == "hamming"
        assert sum(len(node.index) for node in gallery.nodes) == before
        # Exact rerank means the compressed tier reproduces the exact
        # ranking on this small, well-separated gallery.
        assert gallery.search(features[3], k=5) == exact_results

    def test_switch_to_same_tier_is_noop(self):
        gallery, _ = _filled_gallery(tier="exact")
        nodes_before = [node.index for node in gallery.nodes]
        gallery.set_index_tier("exact")
        assert [node.index for node in gallery.nodes] == nodes_before

    def test_rows_added_after_switch_are_searchable(self):
        gallery, features = _filled_gallery(tier="ivfpq")
        gallery.add("late-row", 42, features[0] + 0.001)
        result = gallery.search(features[0] + 0.001, k=1)
        assert result[0].video_id == "late-row"


class TestServiceWiring:
    def test_service_build_applies_config_tier(self):
        from repro.qa.world import tiny_extractor
        from repro.retrieval.service import RetrievalService

        engine = RetrievalEngine(tiny_extractor(3), num_nodes=2)
        service = RetrievalService.build(engine, m=3, index_tier="hamming")
        assert engine.index_tier == "hamming"
        assert service.config.index_tier == "hamming"
        for node in engine.gallery.nodes:
            assert isinstance(node.index, BinaryHashIndex)

    def test_build_world_tier_switch_preserves_rankings(self):
        """The compressed tiers serve end-to-end through
        RetrievalService + ShardedGallery with exact-rerank parity on
        the tiny qa world."""
        world = build_world(11, cache_size=0)
        query = world.original
        baseline = [e.video_id for e in world.service.query(query)]
        for tier in ("hamming", "ivfpq"):
            world = build_world(11, cache_size=0)
            world.engine.configure_index_tier(tier)
            assert world.engine.index_tier == tier
            assert [e.video_id for e in world.service.query(query)] == baseline


def _qa_priors(shape, seed, k=48):
    rng = np.random.default_rng(seed)
    per_frame = int(np.prod(shape[1:]))
    flat = np.zeros(int(np.prod(shape)), dtype=bool)
    flat[rng.choice(2 * per_frame, size=min(k, 2 * per_frame),
                    replace=False)] = True
    theta = np.zeros(shape)
    theta.reshape(-1)[flat] = rng.uniform(-0.1, 0.1, size=flat.sum())
    frame_mask = np.zeros(shape[0])
    frame_mask[:2] = 1.0
    from repro.attacks.duo.priors import TransferPriors

    return TransferPriors(pixel_mask=flat.reshape(shape).astype(float),
                          frame_mask=frame_mask, theta=theta)


@pytest.mark.parametrize("tier", ["hamming", "ivfpq"])
def test_duo_attack_completes_under_budget_on_compressed_tier(tier):
    """ISSUE acceptance: a DUO sparse-query attack against the
    compressed tier completes under the same query budget the exact
    tier needs (the rerank stage returns exact scores, so the attack
    loop sees the same objective landscape)."""
    from repro.attacks.duo.sparse_query import SparseQuery
    from repro.attacks.objective import RetrievalObjective

    def run(selected_tier, budget):
        world = build_world(11, cache_size=0, query_budget=budget)
        world.engine.configure_index_tier(selected_tier)
        objective = RetrievalObjective(world.service, world.original,
                                       world.target)
        attack = SparseQuery(iter_num_q=2, tau=30, rng=16, batched=True)
        priors = _qa_priors(world.original.pixels.shape, 20)
        adversarial, trace = attack.run(world.original, priors, objective)
        return adversarial, list(trace), world.service.query_count

    _, _, exact_queries = run("exact", budget=None)
    adversarial, trace, used = run(tier, budget=exact_queries)
    assert used <= exact_queries
    assert len(trace) > 0
    assert adversarial.pixels.shape == (8, 16, 16, 3) or \
        adversarial.pixels.ndim == 4
