"""Bit packing, popcount kernels, and the binary coders."""

import numpy as np
import pytest

from repro.hashindex import codes as codes_mod
from repro.hashindex.codes import (
    ITQCoder,
    RandomProjectionCoder,
    create_coder,
    hamming_distances,
    hamming_topk,
    pack_bits,
    popcount,
    unpack_bits,
    words_for_bits,
)


class TestPacking:
    def test_words_for_bits(self):
        assert words_for_bits(1) == 1
        assert words_for_bits(64) == 1
        assert words_for_bits(65) == 2
        assert words_for_bits(128) == 2

    @pytest.mark.parametrize("nbits", [1, 7, 64, 65, 100, 128, 200])
    def test_pack_unpack_roundtrip(self, rng, nbits):
        bits = rng.random((9, nbits)) > 0.5
        packed = pack_bits(bits)
        assert packed.dtype == np.uint64
        assert packed.shape == (9, words_for_bits(nbits))
        np.testing.assert_array_equal(unpack_bits(packed, nbits), bits)

    def test_pad_bits_are_zero(self, rng):
        bits = np.ones((3, 70), dtype=bool)
        packed = pack_bits(bits)
        # 70 bits in 2 words: the top 58 bits of word 1 must be zero, so
        # padding never contributes to Hamming distances.
        assert int(popcount(packed).sum()) == 3 * 70

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(8, dtype=bool))


class TestHamming:
    def test_matches_naive_bit_comparison(self, rng):
        a = rng.random((5, 130)) > 0.5
        b = rng.random((17, 130)) > 0.5
        distances = hamming_distances(pack_bits(a), pack_bits(b))
        naive = (a[:, None, :] != b[None, :, :]).sum(axis=2)
        np.testing.assert_array_equal(distances, naive)

    def test_table_fallback_matches_native(self, rng, monkeypatch):
        words = rng.integers(0, 2**63, size=(6, 3)).astype(np.uint64)
        native = popcount(words)
        monkeypatch.setattr(codes_mod, "_HAS_BITWISE_COUNT", False)
        np.testing.assert_array_equal(popcount(words), native)

    def test_chunking_invariant(self, rng, monkeypatch):
        a = pack_bits(rng.random((8, 128)) > 0.5)
        b = pack_bits(rng.random((50, 128)) > 0.5)
        full = hamming_distances(a, b)
        monkeypatch.setattr(codes_mod, "_XOR_CHUNK_ELEMS", 64)
        np.testing.assert_array_equal(hamming_distances(a, b), full)

    def test_topk_orders_by_distance(self, rng):
        gallery = pack_bits(rng.random((40, 64)) > 0.5)
        queries = pack_bits(rng.random((3, 64)) > 0.5)
        indexes, distances = hamming_topk(queries, gallery, k=10)
        assert indexes.shape == distances.shape == (3, 10)
        for row_indexes, row_distances in zip(indexes, distances):
            assert list(row_distances) == sorted(row_distances)
            assert len(set(row_indexes)) == 10

    def test_topk_identical_codes_rank_first(self, rng):
        gallery = pack_bits(rng.random((20, 64)) > 0.5)
        indexes, distances = hamming_topk(gallery[4:5], gallery, k=3)
        assert indexes[0, 0] == 4
        assert distances[0, 0] == 0

    def test_topk_batch_of_one_matches_batch(self, rng):
        gallery = pack_bits(rng.random((30, 64)) > 0.5)
        queries = pack_bits(rng.random((6, 64)) > 0.5)
        batch_indexes, _ = hamming_topk(queries, gallery, k=5)
        for row, query in enumerate(queries):
            single, _ = hamming_topk(query[None, :], gallery, k=5)
            np.testing.assert_array_equal(single[0], batch_indexes[row])


class TestCoders:
    @pytest.mark.parametrize("name", ["lsh", "itq"])
    def test_encode_shape_and_determinism(self, rng, name):
        matrix = rng.normal(size=(50, 12))
        coder_a = create_coder(name, nbits=96, rng=3)
        coder_b = create_coder(name, nbits=96, rng=3)
        codes_a = coder_a.fit(matrix).encode(matrix)
        codes_b = coder_b.fit(matrix).encode(matrix)
        assert codes_a.shape == (50, 2)
        np.testing.assert_array_equal(codes_a, codes_b)

    @pytest.mark.parametrize("name", ["lsh", "itq"])
    def test_unfit_encode_raises(self, name):
        with pytest.raises(RuntimeError):
            create_coder(name, nbits=32).encode(np.zeros((2, 4)))

    def test_unknown_coder_raises(self):
        with pytest.raises(KeyError):
            create_coder("simhash-9000", nbits=32)

    def test_invalid_nbits(self):
        with pytest.raises(ValueError):
            RandomProjectionCoder(nbits=0)
        with pytest.raises(ValueError):
            ITQCoder(nbits=-4)

    def test_itq_pads_projection_beyond_rank(self, rng):
        # 50 rows of dim 4 have rank ≤ 4 < 64 bits: the projection must
        # be padded so codes still carry all 64 bits.
        matrix = rng.normal(size=(50, 4))
        coder = ITQCoder(nbits=64, rng=0).fit(matrix)
        assert coder._projection.shape == (4, 64)

    def test_codes_preserve_neighbourhoods(self, rng):
        """Near-duplicate rows must land closer in Hamming space than
        rows from a far-away cluster (the property rerank relies on)."""
        base = rng.normal(size=(1, 16))
        near = base + 0.01 * rng.normal(size=(30, 16))
        far = base + 10.0 + rng.normal(size=(30, 16))
        matrix = np.concatenate([near, far])
        for name in ("lsh", "itq"):
            coder = create_coder(name, nbits=128, rng=1).fit(matrix)
            packed = coder.encode(matrix)
            query = coder.encode(base)
            distances = hamming_distances(query, packed)[0]
            assert distances[:30].mean() < distances[30:].mean()
