"""Tests for npz-based weight serialization."""

import numpy as np

from repro.nn import Linear, Sequential, ReLU, load_state_dict, save_state_dict
from repro.nn import BatchNorm, Tensor


def test_save_load_roundtrip(tmp_path):
    net = Sequential(Linear(3, 4, rng=0), ReLU(), Linear(4, 2, rng=1))
    path = tmp_path / "weights.npz"
    save_state_dict(net, path)

    other = Sequential(Linear(3, 4, rng=7), ReLU(), Linear(4, 2, rng=8))
    load_state_dict(other, path)
    for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
        np.testing.assert_allclose(a.data, b.data)


def test_buffers_roundtrip(tmp_path):
    bn = BatchNorm(3)
    bn(Tensor(np.random.default_rng(0).normal(size=(16, 3))))
    path = tmp_path / "bn.npz"
    save_state_dict(bn, path)

    fresh = BatchNorm(3)
    load_state_dict(fresh, path)
    np.testing.assert_allclose(fresh.running_var, bn.running_var)


def test_identical_outputs_after_load(tmp_path):
    net = Sequential(Linear(5, 8, rng=0), ReLU(), Linear(8, 1, rng=1))
    path = tmp_path / "net.npz"
    save_state_dict(net, path)
    clone = Sequential(Linear(5, 8, rng=42), ReLU(), Linear(8, 1, rng=43))
    load_state_dict(clone, path)
    x = Tensor(np.random.default_rng(1).normal(size=(4, 5)))
    np.testing.assert_allclose(net(x).data, clone(x).data)
