"""Tests for differentiable convolutions, pooling, and loss helpers."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from tests.nn.gradcheck import assert_gradients_close


class TestConv2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_identity_kernel(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        w = Tensor(np.ones((1, 1, 1, 1)))
        np.testing.assert_allclose(F.conv2d(x, w).data, x.data)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))),
                     Tensor(np.zeros((1, 3, 3, 3))))

    def test_bias_added(self, rng):
        x = Tensor(np.zeros((1, 1, 2, 2)))
        w = Tensor(np.zeros((2, 1, 1, 1)))
        b = Tensor(np.array([1.5, -2.0]))
        out = F.conv2d(x, w, b)
        np.testing.assert_allclose(out.data[0, 0], 1.5)
        np.testing.assert_allclose(out.data[0, 1], -2.0)

    def test_gradients(self, rng):
        arrays = {
            "x": rng.normal(size=(2, 2, 5, 5)),
            "w": rng.normal(size=(3, 2, 3, 3)) * 0.3,
            "b": rng.normal(size=(3,)),
        }

        def loss(t):
            out = F.conv2d(t["x"], t["w"], t["b"], stride=2, padding=1)
            return (out**2).sum()

        assert_gradients_close(loss, arrays)


class TestConv3d:
    def test_output_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 6, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3, 3)))
        out = F.conv3d(x, w, stride=(1, 2, 2), padding=1)
        assert out.shape == (1, 4, 6, 4, 4)

    def test_matches_manual_correlation(self, rng):
        x = rng.normal(size=(1, 1, 2, 3, 3))
        w = rng.normal(size=(1, 1, 2, 2, 2))
        out = F.conv3d(Tensor(x), Tensor(w)).data
        manual = 0.0
        for dt in range(2):
            for dh in range(2):
                for dw in range(2):
                    manual += x[0, 0, dt, dh, dw] * w[0, 0, dt, dh, dw]
        np.testing.assert_allclose(out[0, 0, 0, 0, 0], manual)

    def test_gradients(self, rng):
        arrays = {
            "x": rng.normal(size=(1, 2, 4, 4, 4)),
            "w": rng.normal(size=(2, 2, 2, 3, 3)) * 0.3,
            "b": rng.normal(size=(2,)),
        }

        def loss(t):
            out = F.conv3d(t["x"], t["w"], t["b"], stride=(1, 2, 2),
                           padding=(0, 1, 1))
            return (out**2).sum()

        assert_gradients_close(loss, arrays)

    def test_frozen_weight_grad_skipped(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 2, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(1, 1, 1, 3, 3)))
        out = F.conv3d(x, w, padding=(0, 1, 1))
        (out**2).sum().backward()
        assert x.grad is not None
        assert w.grad is None


class TestPooling:
    def test_max_pool_values(self):
        x = np.zeros((1, 1, 2, 2, 2))
        x[0, 0, 1, 1, 1] = 5.0
        out = F.max_pool3d(Tensor(x), (2, 2, 2))
        assert out.data[0, 0, 0, 0, 0] == 5.0

    def test_max_pool_shape_with_stride(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 8, 8)))
        out = F.max_pool3d(x, (2, 2, 2))
        assert out.shape == (1, 2, 2, 4, 4)

    def test_avg_pool_values(self):
        x = np.ones((1, 1, 2, 2, 2)) * 3.0
        out = F.avg_pool3d(Tensor(x), (2, 2, 2))
        np.testing.assert_allclose(out.data, 3.0)

    def test_max_pool_gradients(self, rng):
        values = rng.permutation(64).astype(float).reshape(1, 1, 4, 4, 4)

        def loss(t):
            return (F.max_pool3d(t["x"], (2, 2, 2)) ** 2).sum()

        assert_gradients_close(loss, {"x": values})

    def test_avg_pool_gradients(self, rng):
        def loss(t):
            return (F.avg_pool3d(t["x"], (2, 2, 2)) ** 2).sum()

        assert_gradients_close(loss, {"x": rng.normal(size=(1, 1, 4, 4, 4))})

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 5, 5)))
        out = F.global_avg_pool3d(x)
        assert out.shape == (2, 3, 1, 1, 1)
        np.testing.assert_allclose(out.data[0, 0, 0, 0, 0],
                                   x.data[0, 0].mean())


class TestLossesAndHelpers:
    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([1.0, 4.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_gradient(self, rng):
        labels = np.array([0, 2, 1])

        def loss(t):
            return F.cross_entropy(t["x"], labels)

        assert_gradients_close(loss, {"x": rng.normal(size=(3, 4))})

    def test_l2_normalize_unit_rows(self, rng):
        out = F.l2_normalize(Tensor(rng.normal(size=(4, 8))), axis=1)
        np.testing.assert_allclose(
            np.linalg.norm(out.data, axis=1), np.ones(4), rtol=1e-9
        )

    def test_pairwise_squared_distances(self, rng):
        a = rng.normal(size=(3, 5))
        b = rng.normal(size=(4, 5))
        out = F.pairwise_squared_distances(Tensor(a), Tensor(b)).data
        expected = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(out, expected, rtol=1e-8, atol=1e-9)

    def test_pairwise_distances_nonnegative(self, rng):
        a = rng.normal(size=(6, 3))
        out = F.pairwise_squared_distances(Tensor(a), Tensor(a)).data
        assert np.all(out >= 0.0)

    def test_pair_triple_validation(self):
        with pytest.raises(ValueError):
            F._pair((1, 2, 3))
        with pytest.raises(ValueError):
            F._triple((1, 2))
