"""Tests for the Module system and the layer zoo."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AdaptiveAvgPool3d,
    AvgPool3d,
    BatchNorm,
    Conv2d,
    Conv3d,
    Dropout,
    Flatten,
    Identity,
    LayerNorm,
    Linear,
    LSTM,
    LSTMCell,
    MaxPool3d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)


class TestModuleSystem:
    def test_parameter_discovery(self):
        layer = Linear(3, 4, rng=0)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_parameter_names(self):
        net = Sequential(Linear(2, 3, rng=0), ReLU(), Linear(3, 1, rng=1))
        names = {name for name, _ in net.named_parameters()}
        assert "layer0.weight" in names
        assert "layer2.bias" in names

    def test_parameters_count(self):
        net = Sequential(Linear(2, 3, rng=0), Linear(3, 1, rng=1))
        assert len(net.parameters()) == 4

    def test_train_eval_recursive(self):
        net = Sequential(Dropout(0.5), Sequential(Dropout(0.5)))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=0)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_requires_grad_freeze(self):
        layer = Linear(2, 2, rng=0)
        layer.requires_grad_(False)
        out = layer(Tensor(np.ones((1, 2)), requires_grad=True))
        assert not any(p.requires_grad for p in layer.parameters())
        assert out.requires_grad  # input still flows

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, rng=0)
        b = Linear(3, 2, rng=99)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_shape_mismatch(self):
        a = Linear(3, 2, rng=0)
        b = Linear(4, 2, rng=0)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_state_dict_unknown_key(self):
        a = Linear(3, 2, rng=0)
        with pytest.raises(KeyError):
            a.load_state_dict({"nonexistent": np.zeros(2)})

    def test_buffers_serialized(self):
        bn = BatchNorm(3)
        bn(Tensor(np.random.default_rng(0).normal(size=(4, 3))))
        fresh = BatchNorm(3)
        fresh.load_state_dict(bn.state_dict())
        np.testing.assert_allclose(fresh.running_mean, bn.running_mean)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLayers:
    def test_linear_shapes(self):
        out = Linear(4, 7, rng=0)(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 7)

    def test_linear_no_bias(self):
        layer = Linear(4, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv2d_module(self, rng):
        out = Conv2d(3, 5, 3, padding=1, rng=0)(Tensor(rng.normal(size=(1, 3, 6, 6))))
        assert out.shape == (1, 5, 6, 6)

    def test_conv3d_module(self, rng):
        out = Conv3d(2, 4, 3, padding=1, rng=0)(
            Tensor(rng.normal(size=(1, 2, 4, 6, 6))))
        assert out.shape == (1, 4, 4, 6, 6)

    def test_batchnorm_normalizes_in_train(self, rng):
        bn = BatchNorm(3)
        x = Tensor(rng.normal(loc=5.0, scale=2.0, size=(64, 3)))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_running_stats_update(self, rng):
        bn = BatchNorm(2)
        bn(Tensor(rng.normal(loc=3.0, size=(32, 2))))
        assert np.all(bn.running_mean != 0.0)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm(2)
        for _ in range(20):
            bn(Tensor(rng.normal(loc=3.0, size=(32, 2))))
        bn.eval()
        single = Tensor(np.full((1, 2), 3.0))
        out = bn(single).data
        assert np.all(np.abs(out) < 1.0)  # near the running mean

    def test_batchnorm_5d_input(self, rng):
        bn = BatchNorm(4)
        out = bn(Tensor(rng.normal(size=(2, 4, 3, 5, 5))))
        assert out.shape == (2, 4, 3, 5, 5)

    def test_layernorm(self, rng):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.normal(size=(4, 8)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)

    def test_activations(self):
        x = Tensor(np.array([-1.0, 0.0, 1.0]))
        assert np.all(ReLU()(x).data >= 0.0)
        assert np.all((Sigmoid()(x).data > 0) & (Sigmoid()(x).data < 1))
        np.testing.assert_allclose(Tanh()(x).data, np.tanh(x.data))

    def test_dropout_eval_identity(self, rng):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_train_scales(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        # surviving units are scaled by 1/keep
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.05

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x

    def test_pool_modules(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4, 4)))
        assert MaxPool3d((2, 2, 2))(x).shape == (1, 2, 2, 2, 2)
        assert AvgPool3d((2, 2, 2))(x).shape == (1, 2, 2, 2, 2)
        assert AdaptiveAvgPool3d()(x).shape == (1, 2, 1, 1, 1)

    def test_sequential_iter_len(self):
        net = Sequential(ReLU(), ReLU())
        assert len(net) == 2
        assert len(list(net)) == 2


class TestRecurrent:
    def test_lstm_cell_shapes(self, rng):
        cell = LSTMCell(4, 6, rng=0)
        h = Tensor(np.zeros((2, 6)))
        c = Tensor(np.zeros((2, 6)))
        h2, c2 = cell(Tensor(rng.normal(size=(2, 4))), (h, c))
        assert h2.shape == (2, 6)
        assert c2.shape == (2, 6)

    def test_lstm_outputs(self, rng):
        lstm = LSTM(4, 6, rng=0)
        outputs, (h, c) = lstm(Tensor(rng.normal(size=(3, 5, 4))))
        assert outputs.shape == (3, 5, 6)
        assert h.shape == (3, 6)
        np.testing.assert_allclose(outputs.data[:, -1], h.data)

    def test_lstm_gradient_flow(self, rng):
        lstm = LSTM(3, 4, rng=0)
        x = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        _, (h, _) = lstm(x)
        (h**2).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in lstm.parameters())

    def test_lstm_trainable(self, rng):
        # An LSTM should fit "output last input element" quickly.
        lstm = LSTM(1, 8, rng=0)
        head = Linear(8, 1, rng=1)
        params = lstm.parameters() + head.parameters()
        optimizer = Adam(params, lr=0.02)
        x = rng.normal(size=(16, 5, 1))
        y = x[:, -1, :]
        first_loss = None
        for _ in range(60):
            optimizer.zero_grad()
            _, (h, _) = lstm(Tensor(x))
            loss = ((head(h) - Tensor(y)) ** 2).mean()
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.5
