"""Tests for the trace-and-fuse execution layer (``repro.nn.jit``).

The contract under test: replaying a recorded schedule is *bit-identical*
to eager execution (outputs and gradients), and every situation where
that cannot be guaranteed — installed hooks, rebound parameters or
buffers, training-mode randomness, externally-conditioned selects —
falls back to eager or retraces, visibly on the obs counters.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Dropout,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tensor,
    no_grad,
)
from repro.nn import jit
from repro.nn import tensor as nn_tensor
from repro.obs import OpProfiler, counter


def _mlp(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(6, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))
    model.eval()
    for param in model.parameters():
        param.requires_grad = False
    return model


def _bn_model(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(6, 8, rng=rng), BatchNorm(8), ReLU())
    model.eval()
    for param in model.parameters():
        param.requires_grad = False
    return model


def _inputs(count: int, shape=(3, 6), seed: int = 7):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(count)]


class TestInferenceReplay:
    def test_replay_is_bit_identical_across_inputs(self):
        model = _mlp()
        compiled = jit.compile(model)
        with no_grad():
            for x in _inputs(4):
                eager = model(Tensor(x)).data
                replayed = compiled(Tensor(x)).data
                np.testing.assert_array_equal(eager, replayed)

    def test_one_trace_per_signature(self):
        model = _mlp()
        compiled = jit.compile(model)
        replays = counter("nn.jit.replays")
        misses = counter("nn.jit.trace_misses")
        with no_grad():
            before_miss = misses.value
            for x in _inputs(3):
                compiled(Tensor(x))
            assert misses.value - before_miss == 1
            assert compiled.traces == 1
            before_replay = replays.value
            compiled(Tensor(_inputs(1)[0]))
            assert replays.value - before_replay == 1
            # A new shape is a new signature → second trace.
            compiled(Tensor(_inputs(1, shape=(5, 6))[0]))
            assert compiled.traces == 2

    def test_fused_matches_unfused_and_saves_buffers(self):
        fused = jit.compile(_mlp(), fuse=True)
        unfused = jit.compile(_mlp(), fuse=False)
        with no_grad():
            for x in _inputs(3):
                np.testing.assert_array_equal(fused(Tensor(x)).data,
                                              unfused(Tensor(x)).data)
        assert fused.stats()["fused_steps"] > 0
        assert fused.stats()["bytes_saved"] > 0
        assert fused.stats()["slots"] < unfused.stats()["slots"]

    def test_compile_is_idempotent(self):
        compiled = jit.compile(_mlp())
        assert jit.compile(compiled) is compiled


class TestFallbacks:
    def test_installed_profiler_forces_eager(self):
        model = _mlp()
        compiled = jit.compile(model)
        fallbacks = counter("nn.jit.fallbacks", reason="hooks")
        x = _inputs(1)[0]
        with no_grad():
            compiled(Tensor(x))  # trace while unhooked
            before = fallbacks.value
            with OpProfiler() as prof:
                out = compiled(Tensor(x))
            assert fallbacks.value - before == 1
            # The profiler saw the eager ops — nothing was skimmed past it.
            assert prof.ops["matmul"]["count"] >= 2
            np.testing.assert_array_equal(out.data, model(Tensor(x)).data)

    def test_nested_compiled_module_records_into_outer_trace(self):
        inner = jit.compile(_mlp(seed=3))

        class Outer(Module):
            def forward(self, x):
                return inner(x) * 2.0

        outer_model = Outer()
        outer = jit.compile(outer_model)
        nested = counter("nn.jit.fallbacks", reason="nested_trace")
        x, y = _inputs(2)
        with no_grad():
            before = nested.value
            outer(Tensor(x))  # trace: inner must decline to replay
            assert nested.value - before == 1
            np.testing.assert_array_equal(outer(Tensor(y)).data,
                                          outer_model(Tensor(y)).data)

    def test_training_dropout_poisons_and_stays_eager(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(6, 8, rng=rng), Dropout(0.5, rng=1))
        model.train()
        for param in model.parameters():
            param.requires_grad = False
        compiled = jit.compile(model)
        poisoned = counter("nn.jit.poisoned")
        fallbacks = counter("nn.jit.fallbacks", reason="poisoned")
        x = _inputs(1)[0]
        with no_grad():
            before_p = poisoned.value
            compiled(Tensor(x))
            assert poisoned.value - before_p == 1
            assert compiled.stats()["poisoned"] == 1
            before_f = fallbacks.value
            a = compiled(Tensor(x))
            b = compiled(Tensor(x))
            assert fallbacks.value - before_f == 2
            # Still eager: each call draws a fresh dropout mask.
            assert not np.array_equal(a.data, b.data)

    def test_external_where_condition_poisons(self):
        class Select(Module):
            def forward(self, x):
                return nn_tensor.where(np.zeros((3, 6), dtype=bool),
                                       x, x * 2.0)

        compiled = jit.compile(Select())
        x = _inputs(1)[0]
        with no_grad():
            out = compiled(Tensor(x))
            np.testing.assert_array_equal(out.data, 2.0 * x)
        assert compiled.stats()["poisoned"] == 1

    def test_traced_maximum_replays(self):
        class Clamp(Module):
            def forward(self, x):
                return nn_tensor.maximum(x, x * 0.5)

        model = Clamp()
        compiled = jit.compile(model)
        with no_grad():
            for x in _inputs(3, seed=23):
                np.testing.assert_array_equal(compiled(Tensor(x)).data,
                                              model(Tensor(x)).data)
        assert compiled.stats()["poisoned"] == 0


class TestGuards:
    def test_load_state_dict_retraces(self):
        model = _mlp()
        compiled = jit.compile(model)
        retraces = counter("nn.jit.retraces")
        x = _inputs(1)[0]
        with no_grad():
            compiled(Tensor(x))
            state = {name: value * 1.5
                     for name, value in model.state_dict().items()}
            model.load_state_dict(state)
            before = retraces.value
            out = compiled(Tensor(x))
            assert retraces.value - before == 1
            np.testing.assert_array_equal(out.data, model(Tensor(x)).data)

    def test_batchnorm_buffer_rebind_retraces(self):
        model = _bn_model()
        compiled = jit.compile(model)
        retraces = counter("nn.jit.retraces")
        x = _inputs(1)[0]
        with no_grad():
            compiled(Tensor(x))
            bn = model.layers[1] if hasattr(model, "layers") else None
            bn = bn or next(m for m in model.modules()
                            if isinstance(m, BatchNorm))
            bn._set_buffer("running_mean",
                           bn.running_mean + 0.25)
            before = retraces.value
            out = compiled(Tensor(x))
            assert retraces.value - before == 1
            np.testing.assert_array_equal(out.data, model(Tensor(x)).data)


class TestGradMode:
    def test_gradients_are_bit_identical(self):
        model = _mlp()
        for param in model.parameters():
            param.requires_grad = True
        compiled = jit.compile(model)
        for x in _inputs(3, seed=31):
            for param in model.parameters():
                param.grad = None
            xt = Tensor(x, requires_grad=True)
            out = model(xt)
            out.backward(np.ones_like(out.data))
            eager_out, eager_xg = out.data.copy(), xt.grad.copy()
            eager_pg = [param.grad.copy() for param in model.parameters()]

            for param in model.parameters():
                param.grad = None
            xt = Tensor(x, requires_grad=True)
            out = compiled(xt)
            out.backward(np.ones_like(out.data))
            np.testing.assert_array_equal(eager_out, out.data)
            np.testing.assert_array_equal(eager_xg, xt.grad)
            for expected, param in zip(eager_pg, model.parameters()):
                np.testing.assert_array_equal(expected, param.grad)

    def test_backward_through_stale_replay_raises(self):
        model = _mlp()
        for param in model.parameters():
            param.requires_grad = True
        compiled = jit.compile(model)
        x, y = _inputs(2, seed=37)
        first = compiled(Tensor(x, requires_grad=True))
        second = compiled(Tensor(y, requires_grad=True))
        # The second replay overwrote the arena; the first output's tape
        # no longer matches its buffers.
        with pytest.raises(RuntimeError, match="stale replay"):
            first.backward(np.ones_like(first.data))
        second.backward(np.ones_like(second.data))  # fresh one still works


class TestTraceCache:
    def test_lru_cap_and_eviction_counter(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE_CAP", "2")
        model = _mlp()
        compiled = jit.compile(model)
        evictions = counter("nn.jit.trace_cache.evictions")
        before = evictions.value
        with no_grad():
            for batch in (1, 2, 3, 4):
                compiled(Tensor(_inputs(1, shape=(batch, 6))[0]))
        assert compiled.traces <= 2
        assert evictions.value - before == 2

    def test_clear_trace_caches(self):
        compiled = jit.compile(_mlp())
        with no_grad():
            compiled(Tensor(_inputs(1)[0]))
        assert compiled.traces == 1
        jit.clear_trace_caches()
        assert compiled.traces == 0

    def test_trace_cache_info_aggregates(self):
        compiled = jit.compile(_mlp())
        with no_grad():
            compiled(Tensor(_inputs(1)[0]))
        info = jit.trace_cache_info()
        assert info["traces"] >= 1
        assert info["arena_bytes"] >= compiled.stats()["arena_bytes"]


class TestGlobalSwitch:
    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_NN_FUSE", raising=False)
        jit.set_fuse(None)
        assert not jit.enabled()
        monkeypatch.setenv("REPRO_NN_FUSE", "1")
        assert jit.enabled()
        monkeypatch.setenv("REPRO_NN_FUSE", "off")
        assert not jit.enabled()

    def test_set_fuse_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_FUSE", "0")
        jit.set_fuse(True)
        try:
            assert jit.enabled()
        finally:
            jit.set_fuse(None)
        assert not jit.enabled()
