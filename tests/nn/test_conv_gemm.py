"""Equivalence and dispatch tests for the im2col GEMM conv fast path."""

import numpy as np
import pytest

import repro.perf  # noqa: F401 — registers the GEMM kernels
from repro.nn import Tensor
from repro.nn import functional as F
from repro.perf import (
    clear_plan_cache,
    conv_impl,
    plan_cache_info,
    set_conv_impl,
    should_use_gemm,
)
from repro.perf.gemm_conv import GEMM_AUTO_THRESHOLD


@pytest.fixture(autouse=True)
def reset_impl():
    """Restore the auto policy and an empty plan cache around each test."""
    set_conv_impl(None)
    clear_plan_cache()
    yield
    set_conv_impl(None)
    clear_plan_cache()


def _run_conv(conv, x_data, w_data, b_data, stride, padding):
    """One forward + backward; returns (out, grad_x, grad_w, grad_b)."""
    x = Tensor(x_data.copy(), requires_grad=True)
    w = Tensor(w_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    out = conv(x, w, b, stride=stride, padding=padding)
    out.backward(np.cos(np.arange(out.data.size)).reshape(out.shape))
    return out.data, x.grad, w.grad, b.grad


CONV2D_CASES = [
    # (B, C, H, W), (F, C, kh, kw), stride, padding
    ((1, 3, 12, 12), (4, 3, 3, 3), 1, 0),
    ((2, 3, 12, 12), (4, 3, 3, 3), 2, 1),
    ((3, 2, 9, 7), (5, 2, 3, 2), (2, 1), (1, 2)),
    ((1, 1, 5, 5), (1, 1, 1, 1), 1, 0),
]

CONV3D_CASES = [
    # (B, C, T, H, W), (F, C, kt, kh, kw), stride, padding
    ((1, 3, 6, 12, 12), (2, 3, 3, 3, 3), 1, 1),
    ((2, 2, 6, 6, 6), (4, 2, 3, 3, 3), 2, 1),
    ((1, 2, 5, 7, 6), (3, 2, 2, 3, 2), (1, 2, 1), (0, 1, 1)),
]


class TestConv2dEquivalence:
    @pytest.mark.parametrize("x_shape,w_shape,stride,padding", CONV2D_CASES)
    def test_forward_and_grads_match_einsum(self, rng, x_shape, w_shape,
                                            stride, padding):
        x = rng.normal(size=x_shape)
        w = rng.normal(size=w_shape)
        b = rng.normal(size=w_shape[0])
        set_conv_impl("einsum")
        reference = _run_conv(F.conv2d, x, w, b, stride, padding)
        set_conv_impl("gemm")
        fast = _run_conv(F.conv2d, x, w, b, stride, padding)
        for ref, got in zip(reference, fast):
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)

    def test_op_name_marks_dispatch(self, rng):
        # ``op`` is only recorded on grad-tracked outputs.
        x = Tensor(rng.normal(size=(1, 3, 12, 12)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        set_conv_impl("gemm")
        assert F.conv2d(x, w).op == "conv2d.gemm"
        set_conv_impl("einsum")
        assert F.conv2d(x, w).op == "conv2d"


class TestConv3dEquivalence:
    @pytest.mark.parametrize("x_shape,w_shape,stride,padding", CONV3D_CASES)
    def test_forward_and_grads_match_einsum(self, rng, x_shape, w_shape,
                                            stride, padding):
        x = rng.normal(size=x_shape)
        w = rng.normal(size=w_shape)
        b = rng.normal(size=w_shape[0])
        set_conv_impl("einsum")
        reference = _run_conv(F.conv3d, x, w, b, stride, padding)
        set_conv_impl("gemm")
        fast = _run_conv(F.conv3d, x, w, b, stride, padding)
        for ref, got in zip(reference, fast):
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)

    def test_no_bias_no_grad_inference(self, rng):
        from repro.nn import no_grad

        x = Tensor(rng.normal(size=(1, 2, 6, 6, 6)))
        w = Tensor(rng.normal(size=(4, 2, 3, 3, 3)))
        set_conv_impl("einsum")
        with no_grad():
            reference = F.conv3d(x, w, stride=2, padding=1).data
        set_conv_impl("gemm")
        with no_grad():
            fast = F.conv3d(x, w, stride=2, padding=1).data
        np.testing.assert_allclose(fast, reference, rtol=1e-10, atol=1e-10)


class TestDispatchPolicy:
    def test_auto_threshold(self):
        assert should_use_gemm(GEMM_AUTO_THRESHOLD)
        assert not should_use_gemm(GEMM_AUTO_THRESHOLD - 1)

    def test_forced_override_wins(self):
        set_conv_impl("einsum")
        assert not should_use_gemm(10 * GEMM_AUTO_THRESHOLD)
        set_conv_impl("gemm")
        assert should_use_gemm(1)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONV_IMPL", "einsum")
        assert conv_impl() == "einsum"
        assert not should_use_gemm(10 * GEMM_AUTO_THRESHOLD)
        monkeypatch.setenv("REPRO_CONV_IMPL", "gemm")
        assert should_use_gemm(1)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONV_IMPL", "fastest")
        with pytest.raises(ValueError):
            conv_impl()

    def test_invalid_forced_rejected(self):
        with pytest.raises(ValueError):
            set_conv_impl("blas")


class TestPlanCache:
    def test_repeat_shapes_hit(self, rng):
        set_conv_impl("gemm")
        x = Tensor(rng.normal(size=(1, 3, 12, 12)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        F.conv2d(x, w)
        F.conv2d(x, w)
        info = plan_cache_info()
        assert info["size"] == 1
        assert info["misses"] == 1
        assert info["hits"] >= 1

    def test_inference_reuses_scratch(self, rng):
        from repro.nn import no_grad

        set_conv_impl("gemm")
        x = Tensor(rng.normal(size=(1, 3, 12, 12)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        with no_grad():
            first = F.conv2d(x, w).data.copy()
            second = F.conv2d(x, w).data
        np.testing.assert_array_equal(first, second)
        assert plan_cache_info()["scratch_bytes"] > 0

    def test_scratch_is_thread_local(self, rng):
        """Concurrent same-shape inference convs must not tear scratch.

        The serving worker pool runs embedding forwards of one shape on
        several threads at once; a plan-wide cols/padded buffer let one
        thread's im2col fill corrupt another's mid-GEMM (caught by the
        serving.pooled_vs_single oracle flaking).
        """
        import threading

        from repro.nn import no_grad

        set_conv_impl("gemm")
        x_data = rng.normal(size=(2, 3, 12, 12))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        inputs = [Tensor(x_data + offset) for offset in range(4)]
        with no_grad():
            expected = [F.conv2d(v, w, padding=(1, 1)).data.copy()
                        for v in inputs]

        rounds, errors = 25, []

        def worker(position):
            try:
                with no_grad():
                    for _ in range(rounds):
                        got = F.conv2d(inputs[position], w,
                                       padding=(1, 1)).data
                        np.testing.assert_array_equal(
                            got, expected[position])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(position,))
                   for position in range(len(inputs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]

    def test_clear(self, rng):
        set_conv_impl("gemm")
        x = Tensor(rng.normal(size=(1, 3, 12, 12)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        F.conv2d(x, w)
        clear_plan_cache()
        info = plan_cache_info()
        assert info == {"size": 0, "hits": 0, "misses": 0,
                        "scratch_bytes": 0, "cap": 64}

    def test_lru_cap_evicts_oldest_plans(self, rng, monkeypatch):
        from repro.obs import counter
        from repro.perf import plan_cache_cap

        monkeypatch.setenv("REPRO_PLAN_CACHE_CAP", "2")
        assert plan_cache_cap() == 2
        set_conv_impl("gemm")
        evictions = counter("perf.plan_cache.evictions")
        before = evictions.value
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        for size in (8, 10, 12, 14):
            F.conv2d(Tensor(rng.normal(size=(1, 3, size, size))), w)
        info = plan_cache_info()
        assert info["size"] <= 2
        assert info["cap"] == 2
        assert evictions.value - before == 2

    def test_cap_must_be_positive(self, monkeypatch):
        from repro.perf import plan_cache_cap

        monkeypatch.setenv("REPRO_PLAN_CACHE_CAP", "0")
        with pytest.raises(ValueError):
            plan_cache_cap()
