"""Numeric gradient checking helper shared by the nn tests."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``fn()`` w.r.t. ``array`` (in place)."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        upper = fn()
        array[index] = original - eps
        lower = fn()
        array[index] = original
        grad[index] = (upper - lower) / (2.0 * eps)
        iterator.iternext()
    return grad


def assert_parameter_gradients_close(module, forward,
                                     rtol: float = 1e-5,
                                     atol: float = 1e-7) -> None:
    """Check autograd gradients of every parameter of ``module``.

    ``forward()`` must return a scalar loss Tensor built from the
    module.  The numeric side perturbs each ``param.data`` in place and
    re-evaluates the loss under ``no_grad``, so it works for modules
    whose forward depends on internal state (BatchNorm batch stats,
    LSTM unrolling) as long as that state is a pure function of inputs
    and parameters.
    """
    from repro.nn import no_grad

    module.zero_grad()
    loss = forward()
    loss.backward()

    def evaluate() -> float:
        with no_grad():
            return forward().item()

    for name, param in module.named_parameters():
        numeric = numeric_gradient(evaluate, param.data)
        analytic = param.grad
        assert analytic is not None, f"no gradient for parameter {name!r}"
        scale = max(np.abs(numeric).max(), 1.0)
        np.testing.assert_allclose(
            analytic, numeric, rtol=rtol, atol=atol * scale,
            err_msg=f"gradient mismatch for parameter {name!r}",
        )


def assert_gradients_close(build_loss, arrays: dict[str, np.ndarray],
                           rtol: float = 1e-5, atol: float = 1e-7) -> None:
    """Check autograd gradients of a scalar loss against numeric ones.

    ``build_loss`` receives ``{name: Tensor}`` (requires_grad=True) and
    returns a scalar Tensor; ``arrays`` holds the leaf values.
    """
    tensors = {name: Tensor(value, requires_grad=True)
               for name, value in arrays.items()}
    loss = build_loss(tensors)
    loss.backward()

    for name, array in arrays.items():
        def evaluate() -> float:
            detached = {n: Tensor(a) for n, a in arrays.items()}
            return build_loss(detached).item()

        numeric = numeric_gradient(evaluate, array)
        analytic = tensors[name].grad
        assert analytic is not None, f"no gradient for {name!r}"
        scale = max(np.abs(numeric).max(), 1.0)
        np.testing.assert_allclose(
            analytic, numeric, rtol=rtol, atol=atol * scale,
            err_msg=f"gradient mismatch for {name!r}",
        )
