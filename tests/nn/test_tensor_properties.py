"""Property-based tests (hypothesis) for autograd invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
    elements=st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_sum_gradient_is_ones(values):
    x = Tensor(values.copy(), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(values))


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_identity_chain_gradient(values):
    x = Tensor(values.copy(), requires_grad=True)
    ((x + 0.0) * 1.0).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(values))


@settings(max_examples=40, deadline=None)
@given(finite_arrays, st.floats(-3.0, 3.0, allow_nan=False))
def test_scalar_mul_gradient(values, scalar):
    x = Tensor(values.copy(), requires_grad=True)
    (x * scalar).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(values, scalar))


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_addition_commutes(values):
    a, b = Tensor(values), Tensor(values[::-1].copy())
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_relu_output_nonnegative(values):
    assert np.all(Tensor(values).relu().data >= 0.0)


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_clip_within_bounds(values):
    out = Tensor(values).clip(-1.0, 1.0).data
    assert np.all(out >= -1.0) and np.all(out <= 1.0)


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_softmax_is_distribution(values):
    out = Tensor(values).softmax(axis=-1).data
    assert np.all(out >= 0.0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[:-1]),
                               rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_reshape_roundtrip_preserves_gradient(values):
    x = Tensor(values.copy(), requires_grad=True)
    (x.reshape(-1).reshape(values.shape) * 2.0).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(values, 2.0))


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_mean_matches_numpy(values):
    assert Tensor(values).mean().item() == float(values.mean())


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_abs_gradient_is_sign(values):
    # Exclude exact zeros where |x| is not differentiable.
    values = np.where(values == 0.0, 1.0, values)
    x = Tensor(values.copy(), requires_grad=True)
    x.abs().sum().backward()
    np.testing.assert_allclose(x.grad, np.sign(values))


@settings(max_examples=30, deadline=None)
@given(finite_arrays, finite_arrays)
def test_broadcast_gradient_shapes_match_leaves(left, right):
    try:
        np.broadcast_shapes(left.shape, right.shape)
    except ValueError:
        return  # incompatible shapes are out of scope
    a = Tensor(left.copy(), requires_grad=True)
    b = Tensor(right.copy(), requires_grad=True)
    (a * b).sum().backward()
    assert a.grad.shape == left.shape
    assert b.grad.shape == right.shape


@settings(max_examples=30, deadline=None)
@given(finite_arrays)
def test_l2_norm_matches_numpy(values):
    expected = float(np.sqrt((values**2).sum() + 1e-12))
    np.testing.assert_allclose(Tensor(values).l2_norm().item(), expected,
                               rtol=1e-9)
