"""Extended numeric gradient coverage for the layers the original
gradcheck suite skimmed over: conv3d with asymmetric stride/padding (on
both conv implementations), multi-step LSTM sequences, BatchNorm in
training mode, and the lazy-window max_pool3d backward."""

import numpy as np
import pytest

import repro.perf  # noqa: F401 — registers the GEMM kernels
from repro.nn import BatchNorm, LSTM, MaxPool3d, Tensor
from repro.nn import functional as F
from repro.perf import clear_plan_cache, set_conv_impl

from .gradcheck import assert_gradients_close, assert_parameter_gradients_close


@pytest.fixture(autouse=True)
def reset_impl():
    set_conv_impl(None)
    clear_plan_cache()
    yield
    set_conv_impl(None)
    clear_plan_cache()


# ---------------------------------------------------------------------- #
# conv3d with asymmetric stride / padding
# ---------------------------------------------------------------------- #
ASYMMETRIC_CASES = [
    # (B, C, T, H, W), (F, C, kt, kh, kw), stride, padding
    ((1, 2, 5, 7, 6), (3, 2, 2, 3, 2), (1, 2, 1), (1, 0, 1)),
    ((2, 1, 4, 5, 5), (2, 1, 3, 2, 3), (2, 1, 2), (0, 1, 2)),
    ((1, 2, 6, 4, 5), (2, 2, 2, 2, 2), (3, 2, 1), (2, 1, 0)),
]


@pytest.mark.parametrize("impl", ["einsum", "gemm"])
@pytest.mark.parametrize("x_shape,w_shape,stride,padding", ASYMMETRIC_CASES)
def test_conv3d_asymmetric_stride_padding(impl, x_shape, w_shape,
                                          stride, padding):
    set_conv_impl(impl)
    rng = np.random.default_rng(3)
    arrays = {
        "x": rng.normal(size=x_shape),
        "w": rng.normal(size=w_shape) / np.prod(w_shape[1:]),
        "b": rng.normal(size=(w_shape[0],)),
    }

    def build_loss(t):
        out = F.conv3d(t["x"], t["w"], t["b"], stride=stride,
                       padding=padding)
        return (out * out).sum()

    assert_gradients_close(build_loss, arrays, rtol=1e-4, atol=1e-6)


# ---------------------------------------------------------------------- #
# LSTM over multi-step sequences
# ---------------------------------------------------------------------- #
def test_lstm_sequence_input_gradient():
    lstm = LSTM(3, 4, rng=np.random.default_rng(5))
    rng = np.random.default_rng(7)
    arrays = {"x": rng.normal(size=(2, 5, 3))}

    def build_loss(t):
        outputs, (h, c) = lstm(t["x"])
        # Touch every timestep *and* the final states, so the gradient
        # flows through the full unrolled recurrence.
        return (outputs * outputs).sum() + (h * c).sum()

    assert_gradients_close(build_loss, arrays, rtol=1e-4, atol=1e-6)


def test_lstm_sequence_parameter_gradients():
    lstm = LSTM(2, 3, rng=np.random.default_rng(11))
    x = Tensor(np.random.default_rng(13).normal(size=(2, 4, 2)))

    def forward():
        outputs, _ = lstm(x)
        return (outputs * outputs).sum()

    assert_parameter_gradients_close(lstm, forward, rtol=1e-4, atol=1e-6)


# ---------------------------------------------------------------------- #
# BatchNorm in training mode (batch statistics on the graph)
# ---------------------------------------------------------------------- #
def test_batchnorm_training_input_gradient():
    norm = BatchNorm(3)
    norm.train()
    rng = np.random.default_rng(17)
    arrays = {"x": rng.normal(size=(4, 3, 5))}
    mix = rng.normal(size=(4, 3, 5))

    def build_loss(t):
        # An asymmetric readout: a plain sum has zero gradient through
        # normalized activations (they sum to zero by construction).
        return (norm(t["x"]) * mix).sum()

    assert_gradients_close(build_loss, arrays, rtol=1e-4, atol=1e-6)


def test_batchnorm_training_parameter_gradients():
    norm = BatchNorm(2)
    norm.train()
    rng = np.random.default_rng(19)
    x = Tensor(rng.normal(size=(3, 2, 4)))
    mix = rng.normal(size=(3, 2, 4))

    def forward():
        return (norm(x) * mix).sum()

    assert_parameter_gradients_close(norm, forward, rtol=1e-4, atol=1e-6)


def test_batchnorm_training_uses_batch_stats():
    # Training-mode output is a function of the batch alone; the running
    # buffers must not leak into it (they only feed eval mode).
    norm = BatchNorm(2)
    norm.train()
    x = Tensor(np.random.default_rng(23).normal(size=(4, 2, 3)))
    first = norm(x).data.copy()
    norm._set_buffer("running_mean", np.full(2, 100.0))
    norm._set_buffer("running_var", np.full(2, 100.0))
    np.testing.assert_array_equal(norm(x).data, first)


# ---------------------------------------------------------------------- #
# max_pool3d backward (lazy-window gradient routing)
# ---------------------------------------------------------------------- #
def _tie_free_volume(shape, seed):
    """Distinct, well-separated values: argmax is stable under ±eps."""
    rng = np.random.default_rng(seed)
    values = np.arange(np.prod(shape), dtype=float)
    rng.shuffle(values)
    return values.reshape(shape)


@pytest.mark.parametrize("kernel,stride", [(2, None), (2, 2), ((2, 2, 1), (1, 2, 2)), (3, 2)])
def test_max_pool3d_backward(kernel, stride):
    pool = MaxPool3d(kernel, stride=stride)
    arrays = {"x": _tie_free_volume((2, 2, 4, 4, 4), seed=29)}
    mix = np.random.default_rng(31).normal(size=pool(
        Tensor(arrays["x"])).shape)

    def build_loss(t):
        return (pool(t["x"]) * mix).sum()

    assert_gradients_close(build_loss, arrays, rtol=1e-4, atol=1e-6)


def test_max_pool3d_routes_gradient_to_argmax_only():
    x = Tensor(_tie_free_volume((1, 1, 2, 2, 2), seed=37),
               requires_grad=True)
    out = F.max_pool3d(x, 2)
    out.sum().backward()
    assert x.grad.sum() == 1.0
    assert np.count_nonzero(x.grad) == 1
    assert x.grad.reshape(-1)[np.argmax(x.data)] == 1.0
