"""Tests for SGD, Adam, and StepLR."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, StepLR, Tensor
from repro.nn.modules import Parameter


def quadratic_step(optimizer_cls, steps=50, **kwargs):
    """Minimize ||x - 3||^2 from x=0 and return the final parameter."""
    param = Parameter(np.zeros(4))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((param - 3.0) ** 2).sum()
        loss.backward()
        optimizer.step()
    return param.data


class TestSGD:
    def test_converges_on_quadratic(self):
        final = quadratic_step(SGD, lr=0.1)
        np.testing.assert_allclose(final, 3.0, atol=1e-2)

    def test_momentum_accelerates(self):
        plain = quadratic_step(SGD, steps=10, lr=0.01)
        momentum = quadratic_step(SGD, steps=10, lr=0.01, momentum=0.9)
        assert abs(momentum.mean() - 3.0) < abs(plain.mean() - 3.0)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.ones(3) * 10.0)
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        # zero gradient: only decay acts
        param.grad = np.zeros(3)
        optimizer.step()
        assert np.all(param.data < 10.0)

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.ones(2))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no gradient: no movement, no crash
        np.testing.assert_allclose(param.data, 1.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        final = quadratic_step(Adam, steps=200, lr=0.05)
        np.testing.assert_allclose(final, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        param = Parameter(np.zeros(1))
        optimizer = Adam([param], lr=0.1)
        param.grad = np.array([1.0])
        optimizer.step()
        # First Adam step magnitude ≈ lr regardless of gradient scale.
        np.testing.assert_allclose(param.data, -0.1, atol=1e-6)

    def test_weight_decay(self):
        param = Parameter(np.ones(1) * 5.0)
        optimizer = Adam([param], lr=0.1, weight_decay=1.0)
        param.grad = np.zeros(1)
        optimizer.step()
        assert param.data[0] < 5.0


class TestStepLR:
    def test_decays_on_schedule(self):
        param = Parameter(np.zeros(1))
        optimizer = SGD([param], lr=1.0)
        scheduler = StepLR(optimizer, step_size=50, gamma=0.9)
        for _ in range(49):
            scheduler.step()
        assert scheduler.lr == pytest.approx(1.0)
        scheduler.step()
        assert scheduler.lr == pytest.approx(0.9)
        for _ in range(50):
            scheduler.step()
        assert scheduler.lr == pytest.approx(0.81)

    def test_invalid_step_size(self):
        param = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            StepLR(SGD([param], lr=1.0), step_size=0, gamma=0.5)
