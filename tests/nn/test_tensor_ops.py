"""Unit tests for the autograd Tensor: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, maximum, minimum, no_grad, stack, where
from tests.nn.gradcheck import assert_gradients_close


class TestForwardValues:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        np.testing.assert_allclose((Tensor([1.0]) + 2.0).data, [3.0])

    def test_radd(self):
        np.testing.assert_allclose((2.0 + Tensor([1.0])).data, [3.0])

    def test_sub(self):
        np.testing.assert_allclose((Tensor([3.0]) - Tensor([1.0])).data, [2.0])

    def test_rsub(self):
        np.testing.assert_allclose((5.0 - Tensor([1.0])).data, [4.0])

    def test_mul(self):
        np.testing.assert_allclose((Tensor([2.0]) * Tensor([3.0])).data, [6.0])

    def test_div(self):
        np.testing.assert_allclose((Tensor([6.0]) / Tensor([3.0])).data, [2.0])

    def test_rdiv(self):
        np.testing.assert_allclose((6.0 / Tensor([3.0])).data, [2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0]) ** 3).data, [8.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_matmul_2d(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_numpy_array_left_operand_defers(self):
        out = np.array([1.0, 2.0]) * Tensor([3.0, 4.0])
        assert isinstance(out, Tensor)
        np.testing.assert_allclose(out.data, [3.0, 8.0])

    def test_sum_axis(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]).sum(axis=0)
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_mean(self):
        assert Tensor([[2.0, 4.0]]).mean().item() == pytest.approx(3.0)

    def test_max_axis(self):
        out = Tensor([[1.0, 5.0], [3.0, 2.0]]).max(axis=1)
        np.testing.assert_allclose(out.data, [5.0, 3.0])

    def test_min(self):
        assert Tensor([3.0, -1.0, 2.0]).min().item() == pytest.approx(-1.0)

    def test_reshape(self):
        assert Tensor(np.zeros((2, 3))).reshape(3, 2).shape == (3, 2)

    def test_reshape_minus_one(self):
        assert Tensor(np.zeros((2, 3))).reshape(-1).shape == (6,)

    def test_transpose(self):
        assert Tensor(np.zeros((2, 3, 4))).transpose(2, 0, 1).shape == (4, 2, 3)

    def test_transpose_default_reverses(self):
        assert Tensor(np.zeros((2, 3))).transpose().shape == (3, 2)

    def test_getitem(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]])[1]
        np.testing.assert_allclose(out.data, [3.0, 4.0])

    def test_expand_squeeze(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.expand_dims(0).shape == (1, 2, 3)
        assert t.expand_dims(0).squeeze(0).shape == (2, 3)

    def test_pad(self):
        out = Tensor(np.ones((2, 2))).pad(((1, 1), (0, 0)))
        assert out.shape == (4, 2)
        assert out.data[0, 0] == 0.0

    def test_exp_log_roundtrip(self):
        values = np.array([0.5, 1.0, 2.0])
        out = Tensor(values).log().exp()
        np.testing.assert_allclose(out.data, values)

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0]).sqrt().data, [2.0])

    def test_abs(self):
        np.testing.assert_allclose(Tensor([-2.0, 3.0]).abs().data, [2.0, 3.0])

    def test_relu(self):
        np.testing.assert_allclose(Tensor([-1.0, 2.0]).relu().data, [0.0, 2.0])

    def test_sigmoid_range(self):
        out = Tensor(np.linspace(-5, 5, 11)).sigmoid()
        assert np.all((out.data > 0) & (out.data < 1))

    def test_tanh(self):
        np.testing.assert_allclose(Tensor([0.0]).tanh().data, [0.0])

    def test_clip(self):
        out = Tensor([-2.0, 0.5, 2.0]).clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])

    def test_softmax_sums_to_one(self):
        out = Tensor(np.random.default_rng(0).normal(size=(3, 5))).softmax()
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(0).normal(size=(2, 4))
        np.testing.assert_allclose(
            Tensor(x).log_softmax().data, np.log(Tensor(x).softmax().data)
        )

    def test_l2_norms(self):
        t = Tensor([3.0, 4.0])
        assert t.l2_norm_squared().item() == pytest.approx(25.0)
        assert t.l2_norm().item() == pytest.approx(5.0)

    def test_concatenate(self):
        out = concatenate([Tensor([1.0]), Tensor([2.0, 3.0])])
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])

    def test_stack(self):
        out = stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])], axis=0)
        assert out.shape == (2, 2)

    def test_where(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]),
                    Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_maximum_minimum(self):
        a, b = Tensor([1.0, 4.0]), Tensor([2.0, 3.0])
        np.testing.assert_allclose(maximum(a, b).data, [2.0, 4.0])
        np.testing.assert_allclose(minimum(a, b).data, [1.0, 3.0])

    def test_item_rejects_multielement(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_len_and_repr(self):
        t = Tensor(np.zeros((4, 2)), requires_grad=True)
        assert len(t) == 4
        assert "requires_grad=True" in repr(t)


class TestGradients:
    def test_add_broadcast(self, rng):
        assert_gradients_close(
            lambda t: ((t["a"] + t["b"]) ** 2).sum(),
            {"a": rng.normal(size=(3, 4)), "b": rng.normal(size=(4,))},
        )

    def test_mul_broadcast(self, rng):
        assert_gradients_close(
            lambda t: (t["a"] * t["b"]).sum(),
            {"a": rng.normal(size=(2, 1, 3)), "b": rng.normal(size=(4, 1))},
        )

    def test_div(self, rng):
        assert_gradients_close(
            lambda t: (t["a"] / (t["b"].abs() + 1.0)).sum(),
            {"a": rng.normal(size=(3,)), "b": rng.normal(size=(3,))},
        )

    def test_matmul(self, rng):
        assert_gradients_close(
            lambda t: ((t["a"] @ t["b"]) ** 2).sum(),
            {"a": rng.normal(size=(3, 4)), "b": rng.normal(size=(4, 2))},
        )

    def test_matmul_vector(self, rng):
        assert_gradients_close(
            lambda t: ((t["a"] @ t["b"]) ** 2).sum(),
            {"a": rng.normal(size=(3, 4)), "b": rng.normal(size=(4,))},
        )

    def test_sum_keepdims(self, rng):
        assert_gradients_close(
            lambda t: (t["x"].sum(axis=1, keepdims=True) ** 2).sum(),
            {"x": rng.normal(size=(3, 4))},
        )

    def test_mean_axis_tuple(self, rng):
        assert_gradients_close(
            lambda t: (t["x"].mean(axis=(0, 2)) ** 2).sum(),
            {"x": rng.normal(size=(2, 3, 4))},
        )

    def test_max_reduction(self, rng):
        # Distinct values so the argmax is stable under the epsilon probe.
        values = rng.permutation(12).astype(float).reshape(3, 4)
        assert_gradients_close(
            lambda t: (t["x"].max(axis=1) ** 2).sum(), {"x": values},
        )

    def test_getitem_slice(self, rng):
        assert_gradients_close(
            lambda t: (t["x"][1:, ::2] ** 2).sum(),
            {"x": rng.normal(size=(3, 4))},
        )

    def test_getitem_fancy(self, rng):
        index = np.array([0, 2, 2])
        assert_gradients_close(
            lambda t: (t["x"][index] ** 2).sum(),
            {"x": rng.normal(size=(3, 4))},
        )

    def test_reshape_transpose_chain(self, rng):
        assert_gradients_close(
            lambda t: (t["x"].transpose(1, 0).reshape(-1) ** 3).sum(),
            {"x": rng.normal(size=(3, 4))},
        )

    def test_exp_log_sqrt(self, rng):
        assert_gradients_close(
            lambda t: ((t["x"].abs() + 1.0).log() + (t["x"] ** 2 + 1.0).sqrt()).sum(),
            {"x": rng.normal(size=(5,))},
        )

    def test_sigmoid_tanh_relu(self, rng):
        assert_gradients_close(
            lambda t: (t["x"].sigmoid() * t["x"].tanh() + t["x"].relu()).sum(),
            {"x": rng.normal(size=(6,)) + 0.1},
        )

    def test_clip_passthrough_region(self, rng):
        values = rng.uniform(-0.5, 0.5, size=(5,))
        assert_gradients_close(
            lambda t: (t["x"].clip(-1.0, 1.0) ** 2).sum(), {"x": values},
        )

    def test_softmax(self, rng):
        assert_gradients_close(
            lambda t: (t["x"].softmax(axis=-1) ** 2).sum(),
            {"x": rng.normal(size=(2, 5))},
        )

    def test_log_softmax(self, rng):
        assert_gradients_close(
            lambda t: (t["x"].log_softmax(axis=-1) * 0.1).sum(),
            {"x": rng.normal(size=(2, 5))},
        )

    def test_concat_stack(self, rng):
        def loss(t):
            joined = concatenate([t["a"], t["b"]], axis=0)
            stacked = stack([joined, joined * 2.0], axis=1)
            return (stacked**2).sum()

        assert_gradients_close(
            loss, {"a": rng.normal(size=(2, 3)), "b": rng.normal(size=(4, 3))},
        )

    def test_where_gradient(self, rng):
        condition = rng.random((4,)) > 0.5

        def loss(t):
            return (where(condition, t["a"], t["b"]) ** 2).sum()

        assert_gradients_close(
            loss, {"a": rng.normal(size=(4,)), "b": rng.normal(size=(4,))},
        )

    def test_pad_gradient(self, rng):
        assert_gradients_close(
            lambda t: (t["x"].pad(((1, 2), (0, 1))) ** 2).sum(),
            {"x": rng.normal(size=(2, 3))},
        )

    def test_reused_tensor_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        loss = (x * x) + (x * 3.0)
        loss.backward()
        np.testing.assert_allclose(x.grad, [7.0])  # 2x + 3

    def test_backward_accumulates_across_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_leaf_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        x.backward(np.array([3.0, 4.0]))
        np.testing.assert_allclose(x.grad, [3.0, 4.0])

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach() * 2.0
        assert not y.requires_grad

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_diamond_graph(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a * b).backward()  # d/dx 12x^2 = 24x = 48
        np.testing.assert_allclose(x.grad, [48.0])
