"""Tests for the model-stealing crawl and the stolen dataset."""

import pytest

from repro.surrogate import StolenRankingDataset, StolenRow, steal_training_set


@pytest.fixture(scope="module")
def stolen(tiny_victim, tiny_dataset):
    tiny_victim.service.reset_query_count()
    return steal_training_set(
        tiny_victim.service, tiny_dataset.test, tiny_victim.video_lookup,
        rounds=2, branch=2, rng=0,
    )


class TestStealing:
    def test_rows_structured(self, stolen):
        assert len(stolen) >= 1
        for row in stolen.rows:
            assert isinstance(row, StolenRow)
            assert all(v.video_id for v in row.returned)

    def test_queries_counted(self, stolen):
        # Each round: 1 root + up to `branch` expansions.
        assert 1 <= stolen.queries_spent <= 2 * (1 + 2)

    def test_no_duplicate_queries(self, tiny_victim, tiny_dataset):
        stolen = steal_training_set(
            tiny_victim.service, tiny_dataset.test, tiny_victim.video_lookup,
            rounds=3, branch=3, rng=1,
        )
        ids = [row.query.video_id for row in stolen.rows]
        assert len(ids) == len(set(ids))

    def test_num_samples_counts_unique_videos(self, stolen):
        assert stolen.num_samples >= len(stolen)

    def test_num_triples(self):
        row = StolenRow(query=None, returned=[1, 2, 3, 4])
        assert row.num_triples == 6

    def test_split_ratio(self, stolen):
        train, test = stolen.split(train_ratio=0.5, rng=0)
        assert len(train) + len(test) == len(stolen)

    def test_truncate(self, stolen):
        truncated = stolen.truncate(1)
        assert len(truncated) == 1

    def test_returned_videos_resolve_to_gallery(self, stolen, tiny_victim):
        lookup = tiny_victim.video_lookup
        for row in stolen.rows:
            for video in row.returned:
                assert video.video_id in lookup
