"""Tests for feature squeezing, Noise2Self, and the detection harness."""

import numpy as np
import pytest

from repro.defenses import (
    FeatureSqueezer,
    Noise2SelfDenoiser,
    SqueezeDetector,
    detection_rate,
)
from repro.video import Video


class TestFeatureSqueezer:
    def test_bit_depth_levels(self, rng):
        video = Video(rng.random((2, 4, 4, 3)))
        squeezed = FeatureSqueezer(bits=2, median_size=1)(video)
        unique = np.unique(np.round(squeezed.pixels * 3.0))
        assert unique.size <= 4

    def test_median_smoothing_removes_salt(self):
        pixels = np.full((1, 8, 8, 3), 0.5)
        pixels[0, 4, 4, :] = 1.0  # salt pixel
        video = Video(pixels)
        squeezed = FeatureSqueezer(bits=8, median_size=3)(video)
        assert squeezed.pixels[0, 4, 4, 0] < 1.0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            FeatureSqueezer(bits=0)
        with pytest.raises(ValueError):
            FeatureSqueezer(bits=9)

    def test_preserves_shape_and_label(self, rng):
        video = Video(rng.random((2, 4, 4, 3)), label=3)
        squeezed = FeatureSqueezer()(video)
        assert squeezed.pixels.shape == video.pixels.shape
        assert squeezed.label == 3


class TestNoise2Self:
    def test_j_invariance(self, rng):
        # The center pixel must not influence its own prediction.
        pixels = rng.random((1, 9, 9, 3))
        video_a = Video(pixels.copy())
        pixels_b = pixels.copy()
        pixels_b[0, 4, 4, :] = 0.0
        video_b = Video(pixels_b)
        denoiser = Noise2SelfDenoiser(radius=1, strength=1.0)
        out_a = denoiser(video_a).pixels[0, 4, 4]
        out_b = denoiser(video_b).pixels[0, 4, 4]
        np.testing.assert_allclose(out_a, out_b)

    def test_removes_additive_noise(self, rng):
        clean = np.full((2, 12, 12, 3), 0.5)
        noise = rng.choice([-0.1, 0.1], size=clean.shape)
        noisy = Video(np.clip(clean + noise, 0, 1))
        denoised = Noise2SelfDenoiser(radius=1)(noisy)
        assert np.abs(denoised.pixels - clean).mean() < \
            np.abs(noisy.pixels - clean).mean()

    def test_strength_zero_is_identity(self, rng):
        video = Video(rng.random((1, 6, 6, 3)))
        out = Noise2SelfDenoiser(strength=0.0)(video)
        np.testing.assert_allclose(out.pixels, video.pixels)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Noise2SelfDenoiser(radius=0)
        with pytest.raises(ValueError):
            Noise2SelfDenoiser(strength=1.5)

    def test_output_in_range(self, rng):
        video = Video(rng.random((2, 6, 6, 3)))
        out = Noise2SelfDenoiser()(video)
        assert out.pixels.min() >= 0.0 and out.pixels.max() <= 1.0


class TestSqueezeDetector:
    @pytest.fixture
    def detector(self, tiny_victim):
        return SqueezeDetector(tiny_victim.engine, FeatureSqueezer(), m=6)

    def test_fit_sets_threshold(self, detector, tiny_dataset):
        threshold = detector.fit(tiny_dataset.test[:6])
        assert detector.threshold == threshold
        assert 0.0 <= threshold <= 1.0

    def test_detect_before_fit_raises(self, detector, tiny_dataset):
        with pytest.raises(RuntimeError):
            detector.detect(tiny_dataset.test[0])

    def test_clean_videos_mostly_pass(self, detector, tiny_dataset):
        detector.fit(tiny_dataset.test[:6], false_positive_rate=0.0)
        flagged = sum(detector.detect(v) for v in tiny_dataset.test[:6])
        assert flagged == 0

    def test_fit_requires_videos(self, detector):
        with pytest.raises(ValueError):
            detector.fit([])

    def test_score_in_unit_interval(self, detector, tiny_dataset):
        assert 0.0 <= detector.score(tiny_dataset.test[0]) <= 1.0

    def test_detection_rate_bounds(self, detector, tiny_dataset, rng):
        detector.fit(tiny_dataset.test[:6])
        noisy = [
            Video(np.clip(v.pixels + rng.choice([-0.3, 0.3], v.pixels.shape),
                          0, 1), v.label, v.video_id + "+adv")
            for v in tiny_dataset.test[:4]
        ]
        rate = detection_rate(detector, noisy)
        assert 0.0 <= rate <= 1.0

    def test_detection_rate_empty(self, detector):
        assert detection_rate(detector, []) == 0.0
