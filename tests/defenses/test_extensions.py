"""Tests for the extension defenses: ensemble retrieval + stateful detection."""

import numpy as np
import pytest

from repro.defenses import EnsembleEngine, StatefulQueryDetector, query_fingerprint
from repro.models import create_feature_extractor
from repro.retrieval import RetrievalEngine, RetrievalService
from repro.video import Video


class TestEnsembleEngine:
    @pytest.fixture(scope="class")
    def ensemble(self, tiny_victim, tiny_dataset):
        # Second member: an untrained extractor over the same gallery —
        # deliberately different geometry.
        other = create_feature_extractor("c3d", feature_dim=16, width=2,
                                         rng=99)
        other.eval()
        other.requires_grad_(False)
        second = RetrievalEngine(other, num_nodes=2)
        second.index_videos(tiny_dataset.train)
        return EnsembleEngine([tiny_victim.engine, second])

    def test_retrieve_shape(self, ensemble, tiny_dataset):
        result = ensemble.retrieve(tiny_dataset.test[0], m=5)
        assert len(result) == 5

    def test_scores_descending(self, ensemble, tiny_dataset):
        result = ensemble.retrieve(tiny_dataset.test[0], m=6)
        scores = [entry.score for entry in result]
        assert scores == sorted(scores, reverse=True)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            EnsembleEngine([])

    def test_gallery_size(self, ensemble, tiny_dataset):
        assert ensemble.gallery_size == len(tiny_dataset.train)

    def test_single_member_matches_member(self, tiny_victim, tiny_dataset):
        solo = EnsembleEngine([tiny_victim.engine])
        query = tiny_dataset.test[0]
        fused = solo.retrieve(query, m=5).ids
        direct = tiny_victim.engine.retrieve(query, m=5).ids
        assert fused == direct

    def test_works_behind_service(self, ensemble, tiny_dataset):
        service = RetrievalService(ensemble, m=5)
        assert len(service.query(tiny_dataset.test[0])) == 5

    def test_fusion_balances_members(self, ensemble, tiny_victim,
                                     tiny_dataset):
        # The fused list should not be identical to either member alone
        # when members disagree.
        query = tiny_dataset.test[1]
        fused = ensemble.retrieve(query, m=6).ids
        member_a = tiny_victim.engine.retrieve(query, m=6).ids
        member_b = ensemble.engines[1].retrieve(query, m=6).ids
        if member_a != member_b:
            assert fused != member_a or fused != member_b


class TestQueryFingerprint:
    def test_near_duplicates_are_close(self, rng):
        base = Video(rng.random((4, 16, 16, 3)))
        tweaked = Video(np.clip(base.pixels + 0.002, 0, 1))
        distance = np.abs(query_fingerprint(base) -
                          query_fingerprint(tweaked)).mean()
        assert distance < 0.01

    def test_distinct_videos_are_far(self, rng):
        a = Video(rng.random((4, 16, 16, 3)))
        b = Video(rng.random((4, 16, 16, 3)))
        distance = np.abs(query_fingerprint(a) - query_fingerprint(b)).mean()
        assert distance > 0.05

    def test_fingerprint_size(self, rng):
        video = Video(rng.random((4, 16, 16, 3)))
        assert query_fingerprint(video, grid=4).shape == (4 * 4 * 4 * 3,)


class TestStatefulQueryDetector:
    def test_attack_stream_gets_flagged(self, rng):
        detector = StatefulQueryDetector(window=20, flag_after=5)
        base = Video(rng.random((4, 16, 16, 3)))
        for step in range(10):
            probe = Video(np.clip(
                base.pixels + rng.normal(scale=0.01, size=base.pixels.shape),
                0, 1))
            detector.observe("attacker", probe)
        assert detector.is_flagged("attacker")
        assert detector.hit_count("attacker") >= 5

    def test_benign_stream_not_flagged(self, rng):
        detector = StatefulQueryDetector(window=20, flag_after=5)
        for step in range(15):
            detector.observe("user", Video(rng.random((4, 16, 16, 3))))
        assert not detector.is_flagged("user")

    def test_accounts_isolated(self, rng):
        detector = StatefulQueryDetector(window=10, flag_after=2)
        base = Video(rng.random((4, 16, 16, 3)))
        for _ in range(4):
            detector.observe("bad", base)
        detector.observe("good", Video(rng.random((4, 16, 16, 3))))
        assert detector.is_flagged("bad")
        assert not detector.is_flagged("good")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StatefulQueryDetector(window=0)
        with pytest.raises(ValueError):
            StatefulQueryDetector(flag_after=0)

    def test_wrap_service(self, tiny_victim, tiny_dataset):
        detector = StatefulQueryDetector(window=10, flag_after=2)
        query = detector.wrap_service(tiny_victim.service, "acct")
        video = tiny_dataset.test[0]
        query(video)
        query(video)
        query(video)
        assert detector.is_flagged("acct")

    def test_simba_attack_trips_the_detector(self, tiny_victim, tiny_dataset,
                                             rng):
        """A real SimBA-style query stream is exactly what gets caught."""
        from repro.attacks import VanillaAttack

        detector = StatefulQueryDetector(window=30, flag_after=8,
                                         distance_threshold=0.05)
        original_query = tiny_victim.service.query

        def counted_query(video, m=None):
            detector.observe("attacker", video)
            return original_query(video, m)

        tiny_victim.service.query = counted_query
        try:
            pair = tiny_dataset.sample_attack_pairs(1, rng_or_seed=5)[0]
            attack = VanillaAttack(tiny_victim.service, k=60, n=3, tau=30,
                                   iterations=20, rng=6)
            attack.run(*pair)
        finally:
            tiny_victim.service.query = original_query
        assert detector.is_flagged("attacker")
