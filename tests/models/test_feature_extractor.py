"""Tests for FeatureExtractor.embed_videos batching behaviour."""

import numpy as np
import pytest

from repro.models import create_feature_extractor


@pytest.fixture(scope="module")
def extractor():
    return create_feature_extractor("c3d", feature_dim=8, width=2, rng=3)


class TestEmbedVideos:
    def test_invalid_batch_size(self, extractor, tiny_dataset):
        with pytest.raises(ValueError, match="batch_size"):
            extractor.embed_videos(tiny_dataset.test[:2], batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            extractor.embed_videos(tiny_dataset.test[:2], batch_size=-4)

    def test_empty_list(self, extractor):
        features = extractor.embed_videos([])
        assert features.shape == (0, extractor.feature_dim)

    def test_single_video_matches_list(self, extractor, tiny_dataset):
        video = tiny_dataset.test[0]
        single = extractor.embed_videos(video)
        listed = extractor.embed_videos([video])
        np.testing.assert_array_equal(single, listed)

    def test_chunking_equivalent(self, extractor, tiny_dataset):
        videos = tiny_dataset.test[:5]
        small_chunks = extractor.embed_videos(videos, batch_size=2)
        one_chunk = extractor.embed_videos(videos, batch_size=16)
        assert small_chunks.shape == (5, extractor.feature_dim)
        np.testing.assert_allclose(small_chunks, one_chunk,
                                   rtol=1e-10, atol=1e-12)

    def test_training_mode_restored(self, extractor, tiny_dataset):
        extractor.train()
        try:
            extractor.embed_videos(tiny_dataset.test[:2])
            assert extractor.training
        finally:
            extractor.eval()
        extractor.embed_videos(tiny_dataset.test[:2])
        assert not extractor.training

    def test_training_mode_restored_on_error(self, extractor, tiny_dataset):
        broken = tiny_dataset.test[0]
        extractor.train()
        try:
            with pytest.raises(ValueError):
                extractor.embed_videos([broken], batch_size=-1)
            assert extractor.training
        finally:
            extractor.eval()
