"""Tests for the deep-hashing retrieval head and Hamming search."""

import numpy as np
import pytest

from repro.models import create_backbone
from repro.models.hashing import HashingHead
from repro.nn import Tensor
from repro.retrieval import RetrievalEngine
from repro.retrieval.similarity import hamming
from repro.training import MetricTrainer
from repro.losses import ArcFaceLoss


@pytest.fixture(scope="module")
def head():
    return HashingHead(create_backbone("c3d", width=2, rng=0), code_bits=16,
                       rng=1)


class TestHashingHead:
    def test_relaxed_codes_in_open_interval(self, head, rng):
        codes = head(Tensor(rng.random((2, 3, 8, 12, 12)))).data
        assert codes.shape == (2, 16)
        assert np.all(np.abs(codes) < 1.0)

    def test_sharpen_pushes_toward_binary(self, rng):
        head = HashingHead(create_backbone("c3d", width=2, rng=0),
                           code_bits=16, rng=1)
        x = Tensor(rng.random((2, 3, 8, 12, 12)))
        soft = np.abs(head(x).data).mean()
        head.sharpen(8.0)
        hard = np.abs(head(x).data).mean()
        assert hard > soft

    def test_binary_codes_are_pm_one(self, head, tiny_dataset):
        codes = head.binary_codes(tiny_dataset.test[:3])
        assert set(np.unique(codes)) <= {-1.0, 1.0}

    def test_trainable_with_metric_loss(self, tiny_dataset):
        head = HashingHead(create_backbone("c3d", width=2, rng=3),
                           code_bits=16, rng=4)
        trainer = MetricTrainer(ArcFaceLoss(tiny_dataset.num_classes, 16,
                                            rng=5),
                                epochs=1, rng=6)
        history = trainer.train(head, tiny_dataset.train)
        assert len(history.losses) == 1
        assert np.isfinite(history.losses[0])


class TestHammingSimilarity:
    def test_identical_codes_score_zero(self, rng):
        code = rng.choice([-1.0, 1.0], size=16)
        scores = hamming(code, code[None, :])
        assert scores[0] == pytest.approx(0.0)

    def test_opposite_codes_score_minus_bits(self, rng):
        code = rng.choice([-1.0, 1.0], size=16)
        scores = hamming(code, -code[None, :])
        assert scores[0] == pytest.approx(-16.0)

    def test_counts_flipped_bits(self):
        query = np.ones(8)
        other = np.ones(8)
        other[:3] = -1.0
        assert hamming(query, other[None, :])[0] == pytest.approx(-3.0)

    def test_binarizes_relaxed_inputs(self):
        query = np.array([0.2, -0.7, 0.9])
        gallery = np.array([[0.9, 0.1, 0.3]])  # signs differ at bit 1 only
        assert hamming(query, gallery)[0] == pytest.approx(-1.0)


class TestHashRetrievalEndToEnd:
    def test_hash_engine_retrieves_same_class(self, tiny_dataset):
        head = HashingHead(create_backbone("c3d", width=2, rng=7),
                           code_bits=24, rng=8)
        trainer = MetricTrainer(
            ArcFaceLoss(tiny_dataset.num_classes, 24, rng=9), epochs=2,
            rng=10,
        )
        trainer.train(head, tiny_dataset.train)
        head.sharpen(8.0)
        head.requires_grad_(False)
        engine = RetrievalEngine(head, similarity="hamming", num_nodes=2)
        engine.index_videos(tiny_dataset.train)
        # Querying with a gallery member returns itself at rank 1.
        probe = tiny_dataset.train[0]
        result = engine.retrieve(probe, m=4)
        assert result.ids[0] == probe.video_id
