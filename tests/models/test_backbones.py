"""Tests for every video backbone and the feature-extractor head."""

import numpy as np
import pytest

from repro.models import (
    BACKBONES,
    FeatureExtractor,
    create_backbone,
    create_feature_extractor,
)
from repro.nn import Tensor
from repro.video import Video


@pytest.fixture(scope="module")
def batch(rng=np.random.default_rng(0)):
    return Tensor(rng.random((2, 3, 8, 16, 16)))


class TestBackbones:
    @pytest.mark.parametrize("name", sorted(BACKBONES))
    def test_forward_shape(self, name, batch):
        model = create_backbone(name, width=2, rng=0)
        model.eval()
        out = model(batch)
        assert out.shape == (2, model.out_features)
        assert np.isfinite(out.data).all()

    @pytest.mark.parametrize("name", sorted(BACKBONES))
    def test_gradient_reaches_input(self, name, batch):
        model = create_backbone(name, width=2, rng=0)
        model.eval()
        model.requires_grad_(False)
        x = Tensor(batch.data.copy(), requires_grad=True)
        (model(x) ** 2).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).max() > 0.0

    @pytest.mark.parametrize("name", sorted(BACKBONES))
    def test_rejects_4d_input(self, name):
        model = create_backbone(name, width=2, rng=0)
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((3, 8, 16, 16))))

    def test_unknown_backbone(self):
        with pytest.raises(KeyError):
            create_backbone("vit")

    def test_resnet34_deeper_than_resnet18(self):
        r18 = create_backbone("resnet18", width=2, rng=0)
        r34 = create_backbone("resnet34", width=2, rng=0)
        assert len(r34.parameters()) > len(r18.parameters())

    def test_slowfast_alpha_validation(self):
        with pytest.raises(ValueError):
            create_backbone("slowfast", width=2, alpha=0)

    def test_deterministic_construction(self, batch):
        a = create_backbone("c3d", width=2, rng=5)
        b = create_backbone("c3d", width=2, rng=5)
        a.eval(), b.eval()
        np.testing.assert_allclose(a(batch).data, b(batch).data)


class TestFeatureExtractor:
    @pytest.fixture(scope="class")
    def extractor(self):
        return create_feature_extractor("c3d", feature_dim=12, width=2, rng=0)

    def test_output_dim(self, extractor, batch):
        extractor.eval()
        assert extractor(batch).shape == (2, 12)

    def test_normalized_rows(self, extractor, batch):
        extractor.eval()
        norms = np.linalg.norm(extractor(batch).data, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_unnormalized_option(self, batch):
        extractor = create_feature_extractor("c3d", feature_dim=12, width=2,
                                             normalize=False, rng=0)
        extractor.eval()
        norms = np.linalg.norm(extractor(batch).data, axis=1)
        assert not np.allclose(norms, 1.0)

    def test_embed_videos_matches_forward(self, extractor, rng):
        videos = [Video(rng.random((8, 16, 16, 3))) for _ in range(3)]
        features = extractor.embed_videos(videos, batch_size=2)
        assert features.shape == (3, 12)
        single = extractor.embed_videos(videos[0])
        np.testing.assert_allclose(single[0], features[0], rtol=1e-10)

    def test_embed_videos_restores_training_mode(self, extractor, rng):
        extractor.train()
        extractor.embed_videos(Video(rng.random((8, 16, 16, 3))))
        assert extractor.training
        extractor.eval()

    def test_embed_videos_builds_no_graph(self, extractor, rng):
        features = extractor.embed_videos(Video(rng.random((8, 16, 16, 3))))
        assert isinstance(features, np.ndarray)
