"""Shared test fixtures: a tiny victim system built once per session."""

import os

# Keep BLAS single-threaded before numpy loads (1-core CI machines).
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.models import create_feature_extractor
from repro.surrogate import steal_training_set, train_surrogate
from repro.training import build_victim_system
from repro.video import load_dataset


@pytest.fixture(scope="session")
def tiny_dataset():
    """A minimal synthetic dataset shared by integration-ish tests."""
    return load_dataset(
        "ucf101", num_classes=6, train_videos=24, test_videos=8,
        height=16, width=16, num_frames=8, seed=11,
    )


@pytest.fixture(scope="session")
def tiny_victim(tiny_dataset):
    """A trained victim system over the tiny dataset (built once)."""
    return build_victim_system(
        tiny_dataset, backbone="resnet18", loss="arcface",
        feature_dim=16, width=2, epochs=1, m=8, num_nodes=3, seed=5,
    )


@pytest.fixture(scope="session")
def tiny_surrogate(tiny_dataset, tiny_victim):
    """A stolen-and-trained surrogate against the tiny victim."""
    stolen = steal_training_set(
        tiny_victim.service, tiny_dataset.test, tiny_victim.video_lookup,
        rounds=2, branch=2, rng=3,
    )
    return train_surrogate(stolen, backbone="c3d", feature_dim=16, width=2,
                           epochs=1, seed=7)


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def attack_pair(tiny_dataset):
    """One (original, target) evaluation pair."""
    return tiny_dataset.sample_attack_pairs(1, rng_or_seed=2)[0]
