"""Shared builders for the resilience suite.

These tests exercise the retrieval plane directly (no training): an
untrained extractor over tiny synthetic clips is deterministic under a
fixed seed, which is all the fault-injection and checkpoint tests need.
"""

import numpy as np
import pytest

from repro.models import create_feature_extractor
from repro.retrieval import RetrievalEngine, RetrievalService, ShardedGallery
from repro.video.types import Video


def make_videos(count, seed=0, frames=4, size=12):
    rng = np.random.default_rng(seed)
    return [
        Video(rng.random((frames, size, size, 3)), label=index % 3,
              video_id=f"v{index}")
        for index in range(count)
    ]


def build_gallery(num_nodes=4, resilience=None, rows=32, dim=8, seed=0):
    """A populated raw gallery (random features, no model)."""
    gallery = ShardedGallery(num_nodes=num_nodes, resilience=resilience)
    rng = np.random.default_rng(seed)
    gallery.add_batch(
        [f"v{index}" for index in range(rows)],
        [index % 5 for index in range(rows)],
        rng.random((rows, dim)),
    )
    return gallery, rng.random(dim)


def build_service(num_nodes=4, resilience=None, gallery_size=16, seed=0, m=6):
    """An untrained-but-deterministic victim service over synthetic clips."""
    extractor = create_feature_extractor(
        "resnet18", feature_dim=8, width=1, rng=np.random.default_rng(seed))
    engine = RetrievalEngine(extractor, num_nodes=num_nodes,
                             resilience=resilience)
    engine.index_videos(make_videos(gallery_size, seed=seed + 1))
    return RetrievalService.build(engine, m=m)


@pytest.fixture
def query_pair():
    """Two out-of-gallery videos (attack original / target stand-ins)."""
    videos = make_videos(2, seed=99)
    return videos[0], videos[1]
