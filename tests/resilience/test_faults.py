"""FaultPlan: seeded determinism, outage windows, installation."""

import numpy as np
import pytest

from repro.errors import NodeDownError
from repro.resilience import ANY_NODE, FaultPlan
from repro.retrieval import ShardedGallery
from repro.retrieval.lists import RetrievalEntry


def drive(plan, queries=20, nodes=("node-0", "node-1")):
    """Replay a fixed workload against a plan, recording what happened."""
    outcomes = []
    for _ in range(queries):
        plan.advance(1)
        for node_id in nodes:
            try:
                latency = plan.on_attempt(node_id)
            except NodeDownError:
                outcomes.append((node_id, "down"))
            else:
                outcomes.append((node_id, round(latency, 12)))
    return outcomes


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        plan = (FaultPlan(seed=7)
                .flaky("node-0", 0.4)
                .slow("node-1", 0.01, jitter_s=0.005)
                .outage("node-0", 5, 9))
        first = drive(plan)
        timeline = plan.timeline()
        plan.reset()
        assert drive(plan) == first
        assert plan.timeline() == timeline

    def test_different_seeds_differ(self):
        outcomes = [
            drive(FaultPlan(seed=seed).flaky("node-0", 0.5))
            for seed in (1, 2)
        ]
        assert outcomes[0] != outcomes[1]

    def test_per_node_streams_independent(self):
        # Draining node-0's stream must not shift node-1's draws.
        solo = FaultPlan(seed=3).flaky("node-1", 0.5)
        solo.advance(1)
        solo_draws = [
            drive(solo, queries=10, nodes=("node-1",))
        ]
        both = FaultPlan(seed=3).flaky("node-0", 0.5).flaky("node-1", 0.5)
        both.advance(1)
        both_draws = [
            drive(both, queries=10, nodes=("node-0", "node-1"))
        ]
        solo_events = [o for o in solo_draws[0]]
        both_node1 = [o for o in both_draws[0] if o[0] == "node-1"]
        assert solo_events == both_node1

    def test_corruption_deterministic(self):
        entries = [RetrievalEntry(f"v{i}", i, float(-i)) for i in range(5)]
        runs = []
        plan = FaultPlan(seed=11).corrupt("node-0", 0.5)
        for _ in range(2):
            plan.advance(1)
            runs.append([e.score for e in plan.transform("node-0", entries)])
            plan.reset()
        assert runs[0] == runs[1]
        assert runs[0] != [e.score for e in entries]


class TestOutage:
    def test_window_half_open(self):
        plan = FaultPlan().outage("node-0", 2, 4)
        failures = []
        for query in range(6):
            plan.advance(1)
            try:
                plan.on_attempt("node-0")
            except NodeDownError:
                failures.append(query)
        assert failures == [2, 3]

    def test_wildcard_applies_to_all_nodes(self):
        plan = FaultPlan().outage(ANY_NODE, 0, 1)
        plan.advance(1)
        for node_id in ("node-0", "node-7"):
            with pytest.raises(NodeDownError):
                plan.on_attempt(node_id)

    def test_batch_advance_overlaps_window(self):
        plan = FaultPlan().outage("node-0", 3, 4)
        plan.advance(8)  # one batched call spanning queries [0, 8)
        with pytest.raises(NodeDownError):
            plan.on_attempt("node-0")


class TestBuilders:
    def test_validation(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.flaky("node-0", 1.5)
        with pytest.raises(ValueError):
            plan.slow("node-0", -1.0)
        with pytest.raises(ValueError):
            plan.corrupt("node-0", -0.1)
        with pytest.raises(ValueError):
            plan.outage("node-0", 5, 5)

    def test_chaining(self):
        plan = FaultPlan().flaky("a", 0.1).slow("a", 0.2).corrupt("b", 0.3)
        assert set(plan.specs) == {"a", "b"}


class TestInstall:
    def test_install_and_restore(self):
        gallery = ShardedGallery(num_nodes=2)
        plan = FaultPlan().flaky("node-0", 1.0)
        assert all(node.fault_injector is None for node in gallery.nodes)
        with plan.install(gallery):
            assert gallery.fault_plan is plan
            assert all(node.fault_injector is plan
                       for node in gallery.nodes)
        assert gallery.fault_plan is None
        assert all(node.fault_injector is None for node in gallery.nodes)

    def test_restores_on_error(self):
        gallery = ShardedGallery(num_nodes=2)
        with pytest.raises(RuntimeError):
            with FaultPlan().install(gallery):
                raise RuntimeError("boom")
        assert gallery.fault_plan is None
        assert all(node.fault_injector is None for node in gallery.nodes)

    def test_plain_gallery_degrades_on_flake(self):
        gallery = ShardedGallery(num_nodes=2)
        rng = np.random.default_rng(0)
        gallery.add_batch([f"v{i}" for i in range(8)], [0] * 8,
                          rng.random((8, 4)))
        query = rng.random(4)
        full = gallery.search(query, 8)
        with FaultPlan().outage("node-0", 0, 10 ** 9).install(gallery):
            degraded = gallery.search(query, 4)
        # node-0's rows are gone; the result is node-1's share of the
        # full ranking, in order.
        node1_ids = {f"v{i}" for i in range(8)} - \
            {e.video_id for e in gallery.nodes[0].search(query, 8)}
        assert degraded == [e for e in full if e.video_id in node1_ids][:4]
