"""ISSUE acceptance scenario: attack rides out a node loss, exactly.

Four data nodes with replication r=2; a seeded fault plan kills one node
partway through a SparseQuery run and never brings it back.  The attack
must complete end to end with a trace, final perturbation, and query
accounting identical to a fault-free run — the replicas make retrieval
exact, so the attacker cannot even tell the incident happened.
"""

import numpy as np

from repro.attacks import SparseQuery
from repro.attacks.objective import RetrievalObjective
from repro.resilience import BreakerPolicy, FaultPlan, ResilienceConfig

from tests.resilience.conftest import build_service, make_videos
from tests.resilience.test_checkpoint import make_priors


def resilient_config():
    return ResilienceConfig(
        replication=2, retry=None,
        breaker=BreakerPolicy(failure_threshold=2, cooldown_s=3600.0),
        on_data_loss="raise")


def run_attack(service, original, target, priors):
    objective = RetrievalObjective(service, original, target)
    attack = SparseQuery(iter_num_q=10, tau=30, rng=0)
    adversarial, trace = attack.run(original, priors, objective)
    return adversarial, trace, objective


class TestNodeLossMidAttack:
    def test_attack_unaffected_by_node_loss(self):
        original, target = make_videos(2, seed=99)
        priors = make_priors(original.pixels.shape, seed=4)

        clean_service = build_service(num_nodes=4,
                                      resilience=resilient_config())
        clean_adv, clean_trace, clean_objective = run_attack(
            clean_service, original, target, priors)

        faulted_service = build_service(num_nodes=4,
                                        resilience=resilient_config())
        # Kill node-1 from logical query 6 onwards (mid-run), forever.
        plan = FaultPlan(seed=1).outage("node-1", 6, 10 ** 9)
        with plan.install(faulted_service.engine.gallery):
            adversarial, trace, objective = run_attack(
                faulted_service, original, target, priors)

        assert any(kind == "outage" for _, _, kind in plan.timeline()), \
            "the scripted outage never fired"
        assert trace == clean_trace
        np.testing.assert_array_equal(adversarial.pixels, clean_adv.pixels)
        assert objective.queries == clean_objective.queries
        assert faulted_service.query_count == clean_service.query_count
        # The breaker tripped and stopped burning attempts on the corpse.
        breaker = faulted_service.engine.gallery._breakers["node-1"]
        assert breaker.state == "open"
