"""The PR's API redesign: configs, build(), Index protocol, errors."""

import warnings

import numpy as np
import pytest

import repro.errors as errors
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.retrieval import (
    DataNode,
    FeatureIndex,
    Index,
    IVFIndex,
    RetrievalService,
    ServiceConfig,
    ShardedGallery,
)

from tests.resilience.conftest import build_service, make_videos


@pytest.fixture
def engine():
    return build_service(num_nodes=2, gallery_size=8).engine


class TestServiceConfig:
    def test_defaults(self):
        config = ServiceConfig()
        assert config.m == 10
        assert config.query_budget is None
        assert config.preprocessor is None
        assert config.quantize_queries is False

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(m=0)
        with pytest.raises(ValueError):
            ServiceConfig(query_budget=-1)

    def test_with_returns_modified_copy(self):
        config = ServiceConfig(m=5)
        changed = config.with_(query_budget=100)
        assert changed.m == 5 and changed.query_budget == 100
        assert config.query_budget is None


class TestConstruction:
    def test_build_is_warning_free(self, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            service = RetrievalService.build(engine, m=7, query_budget=50)
        assert service.m == 7
        assert service.query_budget == 50

    def test_bare_init_is_warning_free(self, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            service = RetrievalService(engine)
        assert service.m == 10

    def test_config_init_is_warning_free(self, engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            service = RetrievalService(engine, config=ServiceConfig(m=4))
        assert service.m == 4

    def test_legacy_kwargs_deprecated_but_work(self, engine):
        with pytest.warns(DeprecationWarning):
            service = RetrievalService(engine, m=3, quantize_queries=True)
        assert service.m == 3
        assert service.quantize_queries is True

    def test_legacy_and_config_together_rejected(self, engine):
        with pytest.raises(TypeError):
            RetrievalService(engine, m=3, config=ServiceConfig())

    def test_build_rejects_unknown_fields(self, engine):
        with pytest.raises(TypeError):
            RetrievalService.build(engine, nonsense=1)

    def test_build_layers_overrides_on_config(self, engine):
        service = RetrievalService.build(
            engine, ServiceConfig(m=4, query_budget=9), m=6)
        assert service.m == 6
        assert service.query_budget == 9

    def test_build_installs_resilience(self):
        config = ResilienceConfig(replication=2, retry=RetryPolicy(seed=1))
        service = build_service(num_nodes=2, gallery_size=0)
        engine = service.engine
        rebuilt = RetrievalService.build(engine, resilience=config)
        assert rebuilt.engine.resilience is config
        assert engine.gallery.replication == 2

    def test_legacy_service_still_queries(self, engine):
        with pytest.warns(DeprecationWarning):
            service = RetrievalService(engine, m=5)
        video = make_videos(1, seed=123)[0]
        result = service.query(video)
        assert len(result.ids) == 5
        assert service.query_count == 1


class TestIndexProtocol:
    def test_all_implementations_conform(self):
        gallery = ShardedGallery(num_nodes=2)
        for implementation in (FeatureIndex(), IVFIndex(),
                               DataNode("node-0"), gallery):
            assert isinstance(implementation, Index), type(implementation)

    def test_signatures_agree(self):
        rng = np.random.default_rng(0)
        features = rng.random((6, 4))
        ids = [f"v{i}" for i in range(6)]
        labels = list(range(6))
        implementations = [FeatureIndex(), IVFIndex(num_cells=2, rng=0),
                           DataNode("node-0"), ShardedGallery(num_nodes=2)]
        for implementation in implementations:
            implementation.add_batch(ids, labels, features)
            assert len(implementation) == 6
            assert sorted(implementation.labels_of()) == labels
            single = implementation.search(features[0], 3)
            assert len(single) == 3
            batch = implementation.search_batch(features[:2], 3)
            assert len(batch) == 2 and len(batch[0]) == 3

    def test_batch_matches_sequential(self):
        rng = np.random.default_rng(1)
        features = rng.random((8, 4))
        ids = [f"v{i}" for i in range(8)]
        labels = list(range(8))
        for implementation in (FeatureIndex(), DataNode("node-0"),
                               ShardedGallery(num_nodes=3)):
            implementation.add_batch(ids, labels, features)
            queries = rng.random((3, 4))
            batch = implementation.search_batch(queries, 4)
            singles = [implementation.search(query, 4) for query in queries]
            assert [[e.video_id for e in entries] for entries in batch] == \
                [[e.video_id for e in entries] for entries in singles]


class TestErrorHierarchy:
    def test_hierarchy(self):
        assert issubclass(errors.QueryBudgetExceeded, errors.RetrievalError)
        assert issubclass(errors.NodeDownError, errors.RetrievalError)
        assert issubclass(errors.RetrievalUnavailable, errors.RetrievalError)
        assert issubclass(errors.DeadlineExceeded,
                          errors.RetrievalUnavailable)
        assert issubclass(errors.RetrievalError, errors.ReproError)
        assert issubclass(errors.ReproError, RuntimeError)

    def test_legacy_import_paths_alias(self):
        from repro.retrieval import NodeDownError, QueryBudgetExceeded
        from repro.retrieval.nodes import NodeDownError as nodes_alias
        from repro.retrieval.service import (
            QueryBudgetExceeded as service_alias,
        )

        assert NodeDownError is errors.NodeDownError
        assert nodes_alias is errors.NodeDownError
        assert QueryBudgetExceeded is errors.QueryBudgetExceeded
        assert service_alias is errors.QueryBudgetExceeded

    def test_catchable_via_base(self):
        with pytest.raises(errors.RetrievalError):
            raise errors.RetrievalUnavailable("down")


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(replication=0)
        with pytest.raises(ValueError):
            ResilienceConfig(deadline_s=-1.0)
        with pytest.raises(ValueError):
            ResilienceConfig(on_data_loss="explode")

    def test_with_sugar(self):
        config = ResilienceConfig(replication=2)
        changed = config.with_(deadline_s=0.5)
        assert changed.replication == 2
        assert changed.deadline_s == 0.5
        assert config.deadline_s is None
