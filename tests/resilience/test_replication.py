"""Shard replication: placement, quorum merge exactness, coverage loss."""

import numpy as np
import pytest

from repro.errors import RetrievalUnavailable
from repro.resilience import BreakerPolicy, FaultPlan, ResilienceConfig
from repro.retrieval import ShardedGallery

from tests.resilience.conftest import build_gallery


def ranking(entries):
    return [(e.video_id, round(e.score, 12)) for e in entries]


def replicated_config(r=2, **changes):
    config = ResilienceConfig(replication=r, retry=None, breaker=None)
    return config.with_(**changes) if changes else config


class TestPlacement:
    def test_logical_vs_physical_rows(self):
        gallery, _ = build_gallery(num_nodes=4,
                                   resilience=replicated_config(2), rows=10)
        assert len(gallery) == 10
        assert gallery.physical_rows == 20

    def test_replication_capped_at_node_count(self):
        gallery = ShardedGallery(num_nodes=2,
                                 resilience=replicated_config(5))
        assert gallery.replication == 2

    def test_cannot_change_replication_once_populated(self):
        gallery, _ = build_gallery(resilience=replicated_config(2), rows=4)
        with pytest.raises(ValueError):
            gallery.set_resilience(replicated_config(3))
        # Runtime knobs may change freely at the same replication.
        gallery.set_resilience(replicated_config(2, deadline_s=1.0))
        assert gallery.resilience.deadline_s == 1.0

    def test_add_batch_matches_sequential_adds(self):
        rng = np.random.default_rng(5)
        features = rng.random((9, 6))
        batched = ShardedGallery(num_nodes=3,
                                 resilience=replicated_config(2))
        batched.add_batch([f"v{i}" for i in range(9)], list(range(9)),
                          features)
        sequential = ShardedGallery(num_nodes=3,
                                    resilience=replicated_config(2))
        for index in range(9):
            sequential.add(f"v{index}", index, features[index])
        query = rng.random(6)
        assert ranking(batched.search(query, 9)) == \
            ranking(sequential.search(query, 9))
        assert [len(n) for n in batched.nodes] == \
            [len(n) for n in sequential.nodes]


class TestExactness:
    def test_replicated_matches_plain_gallery(self):
        plain, query = build_gallery(resilience=None)
        replicated, _ = build_gallery(resilience=replicated_config(2))
        assert ranking(replicated.search(query, 8)) == \
            ranking(plain.search(query, 8))

    def test_exact_with_one_node_down(self):
        plain, query = build_gallery(resilience=None)
        expected = ranking(plain.search(query, 8))
        for victim in range(4):
            replicated, _ = build_gallery(resilience=replicated_config(2))
            replicated.nodes[victim].take_down()
            assert ranking(replicated.search(query, 8)) == expected, \
                f"inexact with node {victim} down"

    def test_exact_with_nonadjacent_nodes_down(self):
        plain, query = build_gallery(resilience=None)
        replicated, _ = build_gallery(resilience=replicated_config(2))
        replicated.nodes[0].take_down()
        replicated.nodes[2].take_down()
        assert ranking(replicated.search(query, 8)) == \
            ranking(plain.search(query, 8))

    def test_batch_matches_sequential_under_failure(self):
        replicated, _ = build_gallery(resilience=replicated_config(2))
        replicated.nodes[1].take_down()
        rng = np.random.default_rng(8)
        queries = rng.random((3, 8))
        batch = replicated.search_batch(queries, 6)
        singles = [replicated.search(q, 6) for q in queries]
        assert [ranking(entries) for entries in batch] == \
            [ranking(entries) for entries in singles]

    def test_triple_replication_outvotes_one_corrupt_node(self):
        plain, query = build_gallery(num_nodes=4, resilience=None)
        expected = ranking(plain.search(query, 8))
        replicated, _ = build_gallery(num_nodes=4,
                                      resilience=replicated_config(3))
        plan = FaultPlan(seed=1).corrupt("node-2", 5.0)
        with plan.install(replicated):
            corrupted = ranking(replicated.search(query, 8))
        assert corrupted == expected  # 2-of-3 honest replicas win the vote


class TestCoverageLoss:
    def test_adjacent_pair_down_raises(self):
        replicated, query = build_gallery(resilience=replicated_config(2))
        replicated.nodes[1].take_down()
        replicated.nodes[2].take_down()
        with pytest.raises(RetrievalUnavailable):
            replicated.search(query, 8)

    def test_unreplicated_raise_mode(self):
        gallery, query = build_gallery(resilience=replicated_config(1))
        gallery.nodes[0].take_down()
        with pytest.raises(RetrievalUnavailable):
            gallery.search(query, 8)

    def test_degrade_mode_serves_partial(self):
        config = replicated_config(1, on_data_loss="degrade")
        gallery, query = build_gallery(resilience=config)
        gallery.nodes[0].take_down()
        plain, _ = build_gallery(resilience=None)
        plain.nodes[0].take_down()
        assert ranking(gallery.search(query, 8)) == \
            ranking(plain.search(query, 8))

    def test_recovers_when_node_comes_back(self):
        replicated, query = build_gallery(resilience=replicated_config(2))
        expected = ranking(replicated.search(query, 8))
        replicated.nodes[1].take_down()
        replicated.nodes[2].take_down()
        with pytest.raises(RetrievalUnavailable):
            replicated.search(query, 8)
        replicated.nodes[2].bring_up()
        assert ranking(replicated.search(query, 8)) == expected


class TestHedging:
    def test_slow_node_dropped_when_covered(self):
        config = replicated_config(2, hedge_after_s=0.05)
        gallery, query = build_gallery(resilience=config)
        plain, _ = build_gallery(resilience=None)
        plan = FaultPlan().slow("node-3", 1.0)
        with plan.install(gallery):
            hedged = ranking(gallery.search(query, 8))
        assert hedged == ranking(plain.search(query, 8))

    def test_slow_node_kept_when_uncovered(self):
        config = replicated_config(1, hedge_after_s=0.05)
        gallery, query = build_gallery(resilience=config)
        plain, _ = build_gallery(resilience=None)
        plan = FaultPlan().slow("node-3", 1.0)
        with plan.install(gallery):
            kept = ranking(gallery.search(query, 8))
        assert kept == ranking(plain.search(query, 8))


class TestRetryIntegration:
    def test_retry_rides_out_flake(self):
        # p=1 flake would defeat retries; a seeded moderate p cannot fail
        # three straight attempts every query for all nodes, and the
        # deterministic seed makes the assertion stable.
        config = ResilienceConfig(replication=2, breaker=None)
        gallery, query = build_gallery(resilience=config)
        plain, _ = build_gallery(resilience=None)
        expected = ranking(plain.search(query, 8))
        plan = FaultPlan(seed=3).flaky("node-0", 0.6)
        with plan.install(gallery):
            for _ in range(10):
                assert ranking(gallery.search(query, 8)) == expected

    def test_breaker_short_circuits_dead_node(self):
        config = ResilienceConfig(
            replication=2, retry=None,
            breaker=BreakerPolicy(failure_threshold=2, cooldown_s=3600.0))
        gallery, query = build_gallery(resilience=config)
        plan = FaultPlan().outage("node-1", 0, 10 ** 9)
        with plan.install(gallery):
            for _ in range(4):
                gallery.search(query, 8)
            breaker = gallery._breakers["node-1"]
            assert breaker.state == "open"
            attempts_when_tripped = len(plan.events)
            gallery.search(query, 8)
            # The open breaker stops traffic to the node entirely, so no
            # further outage events are recorded against it.
            assert len(plan.events) == attempts_when_tripped
