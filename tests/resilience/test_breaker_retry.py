"""Circuit breaker state machine and deterministic retry backoff."""

import pytest

from repro.errors import NodeDownError, QueryBudgetExceeded
from repro.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    RetryExecutor,
    RetryPolicy,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    policy = BreakerPolicy(failure_threshold=3, cooldown_s=10.0)
    return CircuitBreaker(policy, node_id="node-0", clock=clock)


class TestBreaker:
    def test_trips_after_threshold(self, breaker):
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_open_blocks_until_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_probe_failure_reopens(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()  # fresh cooldown from the re-trip
        clock.now = 20.0
        assert breaker.allow()

    def test_success_resets_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_reset(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()


class TestRetry:
    def test_backoff_deterministic_per_node(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        first = RetryExecutor(policy, node_id="node-0", sleep=lambda _: None)
        second = RetryExecutor(policy, node_id="node-0", sleep=lambda _: None)
        schedule = [first.backoff_s(a) for a in range(1, 6)]
        assert schedule == [second.backoff_s(a) for a in range(1, 6)]
        other = RetryExecutor(policy, node_id="node-1", sleep=lambda _: None)
        assert schedule != [other.backoff_s(a) for a in range(1, 6)]

    def test_backoff_shape(self):
        policy = RetryPolicy(max_attempts=6, backoff_base_s=0.001,
                             backoff_max_s=0.004, jitter=0.0)
        executor = RetryExecutor(policy, node_id="n", sleep=lambda _: None)
        assert executor.backoff_s(1) == 0.0
        assert executor.backoff_s(2) == pytest.approx(0.001)
        assert executor.backoff_s(3) == pytest.approx(0.002)
        assert executor.backoff_s(4) == pytest.approx(0.004)
        assert executor.backoff_s(5) == pytest.approx(0.004)  # capped

    def test_retries_transient_then_succeeds(self):
        executor = RetryExecutor(RetryPolicy(max_attempts=3),
                                 node_id="n", sleep=lambda _: None)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise NodeDownError("transient")
            return "ok"

        assert executor.run(flaky) == "ok"
        assert len(calls) == 3

    def test_exhausts_and_reraises(self):
        executor = RetryExecutor(RetryPolicy(max_attempts=2),
                                 node_id="n", sleep=lambda _: None)
        calls = []

        def dead():
            calls.append(1)
            raise NodeDownError("still down")

        with pytest.raises(NodeDownError):
            executor.run(dead)
        assert len(calls) == 2

    def test_non_retryable_propagates_immediately(self):
        executor = RetryExecutor(RetryPolicy(max_attempts=5),
                                 node_id="n", sleep=lambda _: None)
        calls = []

        def fatal():
            calls.append(1)
            raise QueryBudgetExceeded("budget")

        with pytest.raises(QueryBudgetExceeded):
            executor.run(fatal)
        assert len(calls) == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-1.0)
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
