"""Checkpoint/resume: bit-identical recovery from mid-attack outages."""

import numpy as np
import pytest

from repro.attacks import SparseQuery
from repro.attacks.duo.priors import TransferPriors
from repro.attacks.objective import RetrievalObjective
from repro.attacks.search import nes_search, simba_search
from repro.errors import RetrievalUnavailable
from repro.resilience import (
    AttackCheckpoint,
    CheckpointSession,
    FaultPlan,
    ResilienceConfig,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.checkpoint import CHECKPOINT_VERSION

from tests.resilience.conftest import build_service, make_videos


def raise_config():
    return ResilienceConfig(replication=1, retry=None, breaker=None,
                            on_data_loss="raise")


def make_priors(shape, seed=0, k=40, frames=2):
    rng = np.random.default_rng(seed)
    pixel_mask = np.zeros(shape)
    flat = rng.choice(pixel_mask.size, size=k, replace=False)
    pixel_mask.reshape(-1)[flat] = 1.0
    frame_mask = np.zeros(shape[0])
    frame_mask[:frames] = 1.0
    theta = rng.uniform(0.01, 30.0 / 255.0, size=shape) * \
        rng.choice((-1.0, 1.0), size=shape)
    return TransferPriors(pixel_mask, frame_mask, theta)


def run_until_complete(fn, path):
    """Keep re-invoking ``fn`` across outages; return (result, failures)."""
    failures = 0
    while True:
        try:
            return fn(), failures
        except RetrievalUnavailable:
            failures += 1
            assert path.exists(), "failure must leave a checkpoint behind"
            assert failures < 50, "attack never escaped the outage"


class TestPrimitives:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        checkpoint = AttackCheckpoint(
            algo="simba", iteration=7,
            rng_state=np.random.default_rng(0).bit_generator.state,
            service_query_count=12, objective_queries=12,
            objective_trace_len=10,
            payload={"perturbation": np.ones(3), "trace": [1.0, 2.0]},
        )
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path)
        assert loaded.algo == "simba"
        assert loaded.iteration == 7
        assert loaded.version == CHECKPOINT_VERSION
        np.testing.assert_array_equal(loaded.payload["perturbation"],
                                      np.ones(3))

    def test_load_missing_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.pkl") is None

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        checkpoint = AttackCheckpoint(
            algo="simba", iteration=0, rng_state={},
            service_query_count=None, objective_queries=None,
            objective_trace_len=None, version=CHECKPOINT_VERSION + 1)
        save_checkpoint(path, checkpoint)
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_algo_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.pkl"
        rng = np.random.default_rng(0)
        session = CheckpointSession(path, "simba", None, rng)
        session.mark(0)
        session.persist()
        other = CheckpointSession(path, "nes", None, rng)
        with pytest.raises(ValueError):
            other.resume()

    def test_disabled_session_is_noop(self):
        session = CheckpointSession(None, "simba", None,
                                    np.random.default_rng(0))
        assert not session.enabled
        session.mark(0, anything=[1, 2])
        session.persist()
        assert session.resume() is None
        session.complete()

    def test_mark_copies_mutable_payload(self, tmp_path):
        rng = np.random.default_rng(0)
        session = CheckpointSession(tmp_path / "c.pkl", "simba", None, rng)
        trace = [1.0]
        session.mark(3, trace=trace)
        trace.append(2.0)
        session.persist()
        resumed = CheckpointSession(tmp_path / "c.pkl", "simba", None,
                                    rng).resume()
        assert resumed["trace"] == [1.0]
        assert resumed["iteration"] == 3


class FaultedRun:
    """Twin fault-free / faulted setups over identical galleries."""

    def __init__(self, outage, num_nodes=2, seed=0):
        self.original, self.target = make_videos(2, seed=99)
        self.services = {}
        self.objectives = {}
        for name in ("clean", "faulted"):
            service = build_service(num_nodes=num_nodes,
                                    resilience=raise_config(), seed=seed)
            self.services[name] = service
            self.objectives[name] = RetrievalObjective(
                service, self.original, self.target)
        self.plan = FaultPlan(seed=1).outage("node-0", *outage)
        self.gallery = self.services["faulted"].engine.gallery


class TestSparseQueryResume:
    def test_bit_identical_after_outage(self, tmp_path):
        setup = FaultedRun(outage=(5, 9))
        priors = make_priors(setup.original.pixels.shape, seed=4)
        path = tmp_path / "sparse.pkl"

        clean_attack = SparseQuery(iter_num_q=8, tau=30, rng=0)
        clean_adv, clean_trace = clean_attack.run(
            setup.original, priors, setup.objectives["clean"])

        attack = SparseQuery(iter_num_q=8, tau=30, rng=0)
        with setup.plan.install(setup.gallery):
            (adversarial, trace), failures = run_until_complete(
                lambda: attack.run(setup.original, priors,
                                   setup.objectives["faulted"],
                                   checkpoint_path=path),
                path)

        assert failures >= 1, "the outage never interrupted the attack"
        assert trace == clean_trace
        np.testing.assert_array_equal(adversarial.pixels, clean_adv.pixels)
        assert setup.objectives["faulted"].queries == \
            setup.objectives["clean"].queries
        assert setup.services["faulted"].query_count == \
            setup.services["clean"].query_count
        assert not path.exists(), "completion must delete the checkpoint"


class TestSimbaResume:
    def test_bit_identical_after_outage(self, tmp_path):
        setup = FaultedRun(outage=(6, 10))
        rng = np.random.default_rng(7)
        support = rng.random(setup.original.pixels.shape) < 0.1
        path = tmp_path / "simba.pkl"

        clean_adv, clean_phi, clean_trace = simba_search(
            setup.original, setup.objectives["clean"], support,
            tau=0.1, iterations=8, rng=0)

        with setup.plan.install(setup.gallery):
            result, failures = run_until_complete(
                lambda: simba_search(
                    setup.original, setup.objectives["faulted"], support,
                    tau=0.1, iterations=8, rng=0, checkpoint_path=path),
                path)
        adversarial, phi, trace = result

        assert failures >= 1
        assert trace == clean_trace
        np.testing.assert_array_equal(phi, clean_phi)
        np.testing.assert_array_equal(adversarial.pixels, clean_adv.pixels)
        assert setup.services["faulted"].query_count == \
            setup.services["clean"].query_count
        assert not path.exists()


class TestNesResume:
    def test_bit_identical_after_outage(self, tmp_path):
        setup = FaultedRun(outage=(7, 12))
        rng = np.random.default_rng(7)
        support = rng.random(setup.original.pixels.shape) < 0.1
        path = tmp_path / "nes.pkl"

        clean_adv, clean_phi, clean_trace = nes_search(
            setup.original, setup.objectives["clean"], support,
            tau=0.1, iterations=4, samples=2, rng=0)

        with setup.plan.install(setup.gallery):
            result, failures = run_until_complete(
                lambda: nes_search(
                    setup.original, setup.objectives["faulted"], support,
                    tau=0.1, iterations=4, samples=2, rng=0,
                    checkpoint_path=path),
                path)
        adversarial, phi, trace = result

        assert failures >= 1
        assert trace == clean_trace
        np.testing.assert_array_equal(phi, clean_phi)
        np.testing.assert_array_equal(adversarial.pixels, clean_adv.pixels)
        assert setup.services["faulted"].query_count == \
            setup.services["clean"].query_count
        assert not path.exists()
