"""Unit tests for the cost-model adaptive router.

Covers the profile round-trip (atomic save, schema validation), the
decision rules (argmin, deterministic tie-break, recall floor, cold
start), env activation through ``active_router``, and the wiring into
``ServiceConfig`` / ``RetrievalEngine.configure_router``.
"""

import json

import pytest

from repro.retrieval.config import ServiceConfig
from repro.router import (
    DISABLED,
    CalibrationProfile,
    CostEntry,
    ProfileError,
    Router,
    active_router,
    batch_size_key,
    profile_from_registry,
    set_router,
)
from repro.router.costmodel import record_cost, record_recall
from repro.router.profile import SCHEMA_VERSION


def _profile(cells):
    """``{(domain, key, option): (mean_s[, recall])} → profile``."""
    profile = CalibrationProfile()
    for (domain, key, option), spec in cells.items():
        mean_s, recall = spec if isinstance(spec, tuple) else (spec, None)
        profile.record(domain, key, option,
                       CostEntry(mean_s, count=2, recall=recall))
    return profile


@pytest.fixture(autouse=True)
def _no_router_override():
    """Every test starts and ends on the env-resolved router."""
    set_router(None)
    yield
    set_router(None)


# ---------------------------------------------------------------------- #
# Profile round-trip
# ---------------------------------------------------------------------- #
class TestProfile:
    def test_save_load_round_trip(self, tmp_path):
        profile = _profile({
            ("search", "b2", "scalar"): 1e-4,
            ("search", "b2", "batched"): 2e-5,
            ("rerank", "hamming", "32"): (1e-5, 0.9),
        })
        profile.meta["seed"] = 7
        path = profile.save(tmp_path / "deep" / "profile.json")
        loaded = CalibrationProfile.load(path)
        assert loaded.entries == profile.entries
        assert loaded.meta == {"seed": 7}
        assert loaded.num_cells == 2

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        profile = _profile({("fuse", "default", "on"): 1e-4})
        profile.save(tmp_path / "profile.json")
        profile.save(tmp_path / "profile.json")  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["profile.json"]

    def test_schema_mismatch_raises_with_recalibrate_hint(self, tmp_path):
        path = tmp_path / "profile.json"
        document = _profile({("fuse", "default", "on"): 1e-4}).to_json()
        document["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(ProfileError, match="repro.router.calibrate"):
            CalibrationProfile.load(path)

    def test_corrupt_json_raises_profile_error(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text("{not json")
        with pytest.raises(ProfileError):
            CalibrationProfile.load(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CalibrationProfile.load(tmp_path / "absent.json")

    def test_malformed_entry_raises(self):
        with pytest.raises(ProfileError):
            CalibrationProfile.from_json(
                {"schema": SCHEMA_VERSION,
                 "entries": {"fuse": {"default": {"on": {"count": 3}}}}})


# ---------------------------------------------------------------------- #
# Decision rules
# ---------------------------------------------------------------------- #
class TestDecide:
    def test_argmin_wins(self):
        router = Router(_profile({("search", "b2", "scalar"): 5e-4,
                                  ("search", "b2", "batched"): 1e-4}))
        assert router.decide("search", "b2", ("scalar", "batched"),
                             "scalar") == "batched"

    def test_tie_breaks_by_options_order(self):
        router = Router(_profile({("speculate", "nes", "off"): 3e-4,
                                  ("speculate", "nes", "on"): 3e-4}))
        assert router.decide("speculate", "nes", ("off", "on"),
                             "on") == "off"
        assert router.decide("speculate", "nes", ("on", "off"),
                             "off") == "on"

    def test_cold_cell_returns_default(self):
        router = Router(_profile({("search", "b2", "scalar"): 1e-4}))
        assert router.decide("search", "b9", ("scalar", "batched"),
                             "batched") == "batched"

    def test_no_profile_returns_default(self):
        assert Router(profile=None).decide(
            "search", "b2", ("scalar", "batched"), "batched") == "batched"

    def test_disabled_returns_default(self):
        assert DISABLED.decide("fuse", "default", ("off", "on"),
                               "off") == "off"

    def test_recall_floor_excludes_cheap_but_lossy(self):
        router = Router(_profile({
            ("rerank", "hamming", "32"): (1e-5, 0.90),
            ("rerank", "hamming", "64"): (2e-4, 1.0),
        }))
        assert router.decide("rerank", "hamming", ("32", "64", "128"),
                             "64") == "64"

    def test_all_below_floor_returns_default(self):
        router = Router(_profile({
            ("rerank", "hamming", "32"): (1e-5, 0.5),
            ("rerank", "hamming", "64"): (2e-5, 0.6),
        }))
        assert router.decide("rerank", "hamming", ("32", "64"),
                             "128") == "128"

    def test_unmeasured_option_never_chosen(self):
        router = Router(_profile({("search", "b2", "scalar"): 1e-4}))
        assert router.decide("search", "b2", ("scalar", "batched"),
                             "batched") == "scalar"

    def test_batch_size_key_buckets(self):
        assert batch_size_key(1) == "b1"
        assert batch_size_key(2) == "b2"
        assert batch_size_key(3) == "b2"
        assert batch_size_key(8) == "b4"
        assert batch_size_key(0) == "b1"  # clamped


# ---------------------------------------------------------------------- #
# Cost-model distillation
# ---------------------------------------------------------------------- #
class TestCostModel:
    def test_profile_from_registry_means_and_recall(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        record_cost("search", "b2", "scalar", 0.002, registry=registry)
        record_cost("search", "b2", "scalar", 0.004, registry=registry)
        record_cost("search", "b2", "batched", 0.001, registry=registry)
        record_recall("rerank", "hamming", "32", 0.9, registry=registry)
        record_cost("rerank", "hamming", "32", 0.0005, registry=registry)
        profile = profile_from_registry(registry=registry)
        scalar = profile.cell("search", "b2")["scalar"]
        assert scalar.count == 2
        assert scalar.mean_s == pytest.approx(0.003)
        assert profile.cell("rerank", "hamming")["32"].recall == \
            pytest.approx(0.9)

    def test_min_samples_filters_thin_cells(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        record_cost("fuse", "default", "on", 0.001, registry=registry)
        assert profile_from_registry(registry=registry,
                                     min_samples=2).num_cells == 0

    def test_router_timed_records_into_global_registry(self):
        from repro.obs import get_registry
        from repro.router.costmodel import COST_METRIC

        router = Router(profile=None)
        with router.timed("search", "b1", "scalar"):
            pass
        found = [key for name, key, _ in
                 get_registry().iter_histograms(COST_METRIC)
                 if key.get("key") == "b1"]
        assert found


# ---------------------------------------------------------------------- #
# Env activation and overrides
# ---------------------------------------------------------------------- #
class TestActivation:
    def test_unset_env_is_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_ROUTER", raising=False)
        router = active_router()
        assert not router.enabled
        assert router.decide("fuse", "default", ("off", "on"),
                             "off") == "off"

    def test_env_on_missing_profile_is_cold_start(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.setenv("REPRO_ROUTER", "1")
        monkeypatch.setenv("REPRO_ROUTER_PROFILE",
                           str(tmp_path / "absent.json"))
        router = active_router()
        assert router.enabled and router.profile is None
        assert router.decide("search", "b2", ("scalar", "batched"),
                             "batched") == "batched"

    def test_env_on_loads_profile_and_routes(self, monkeypatch, tmp_path):
        path = _profile({("fuse", "default", "on"): 1e-5,
                         ("fuse", "default", "off"): 1e-3}).save(
            tmp_path / "profile.json")
        monkeypatch.setenv("REPRO_ROUTER", "1")
        monkeypatch.setenv("REPRO_ROUTER_PROFILE", str(path))
        assert active_router().decide("fuse", "default", ("off", "on"),
                                      "off") == "on"

    def test_env_change_invalidates_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ROUTER", "0")
        assert not active_router().enabled
        monkeypatch.setenv("REPRO_ROUTER", "1")
        monkeypatch.setenv("REPRO_ROUTER_PROFILE",
                           str(tmp_path / "absent.json"))
        assert active_router().enabled

    def test_corrupt_profile_raises_loudly(self, monkeypatch, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text("[]")
        monkeypatch.setenv("REPRO_ROUTER", "1")
        monkeypatch.setenv("REPRO_ROUTER_PROFILE", str(path))
        with pytest.raises(ProfileError):
            active_router()

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTER", "2")
        with pytest.raises(ValueError):
            active_router()

    def test_set_router_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTER", "0")
        override = Router(_profile({("fuse", "default", "on"): 1e-5,
                                    ("fuse", "default", "off"): 1e-3}))
        set_router(override)
        assert active_router() is override
        set_router(None)
        assert not active_router().enabled


# ---------------------------------------------------------------------- #
# Engine / ServiceConfig wiring
# ---------------------------------------------------------------------- #
class TestWiring:
    def test_service_config_accepts_router_bool_none(self):
        ServiceConfig(router=None)
        ServiceConfig(router=True)
        ServiceConfig(router=False)
        ServiceConfig(router=Router(profile=None))

    def test_service_config_rejects_garbage_router(self):
        with pytest.raises(TypeError, match="router must be a Router"):
            ServiceConfig(router="yes")

    def test_configure_router_false_pins_disabled(self, monkeypatch,
                                                  tiny_victim):
        engine = tiny_victim.engine
        monkeypatch.setenv("REPRO_ROUTER", "1")
        monkeypatch.setenv("REPRO_ROUTER_PROFILE", "/nonexistent.json")
        try:
            engine.configure_router(False)
            assert engine._router_effective() is DISABLED
        finally:
            engine.configure_router(None)

    def test_configure_router_true_without_profile_is_cold(
            self, monkeypatch, tmp_path, tiny_victim):
        engine = tiny_victim.engine
        monkeypatch.setenv("REPRO_ROUTER_PROFILE",
                           str(tmp_path / "absent.json"))
        try:
            engine.configure_router(True)
            router = engine._router_effective()
            assert router.enabled and router.profile is None
        finally:
            engine.configure_router(None)

    def test_configure_router_instance_and_garbage(self, tiny_victim):
        engine = tiny_victim.engine
        router = Router(profile=None)
        try:
            engine.configure_router(router)
            assert engine._router_effective() is router
            with pytest.raises(TypeError):
                engine.configure_router("fast")
        finally:
            engine.configure_router(None)

    def test_service_build_wires_router(self, tiny_victim):
        from repro.retrieval.service import RetrievalService

        router = Router(profile=None)
        service = RetrievalService.build(
            tiny_victim.engine, ServiceConfig(router=router))
        try:
            assert service.engine._router_effective() is router
        finally:
            service.engine.configure_router(None)


# ---------------------------------------------------------------------- #
# Calibration CLI
# ---------------------------------------------------------------------- #
def test_calibrate_cli_writes_loadable_profile(tmp_path, capsys):
    from repro.router.calibrate import main

    out = tmp_path / "profile.json"
    assert main(["--quick", "--reps", "1", "--out", str(out)]) == 0
    assert "calibration cells" in capsys.readouterr().out
    profile = CalibrationProfile.load(out)
    assert profile.num_cells > 0
    assert {"search", "serving_batch", "rerank"} <= set(profile.entries)
    assert profile.meta.get("quick") is True
