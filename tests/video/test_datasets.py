"""Tests for the synthetic dataset loaders."""

import numpy as np
import pytest

from repro.video import (
    HMDB51_SPEC,
    UCF101_SPEC,
    DatasetSpec,
    SyntheticVideoDataset,
    load_dataset,
)


class TestSpecs:
    def test_paper_scale_sizes(self):
        assert UCF101_SPEC.train_videos == 9324
        assert UCF101_SPEC.test_videos == 3996
        assert UCF101_SPEC.num_classes == 101
        assert HMDB51_SPEC.train_videos == 4900
        assert HMDB51_SPEC.num_classes == 51

    def test_scaled_keeps_identity(self):
        scaled = UCF101_SPEC.scaled(num_classes=5, train_videos=20,
                                    test_videos=5, height=16, width=16)
        assert scaled.name == "ucf101"
        assert scaled.num_classes == 5


class TestLoadDataset:
    def test_default_scale(self):
        ds = load_dataset("ucf101")
        assert ds.name == "ucf101"
        assert ds.num_classes == 10

    def test_overrides(self):
        ds = load_dataset("hmdb51", num_classes=4, train_videos=8,
                          test_videos=4, height=12, width=12)
        assert ds.num_classes == 4
        assert len(ds.train) == 8
        assert len(ds.test) == 4

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("kinetics")

    def test_num_frames_override(self):
        ds = load_dataset("ucf101", num_classes=3, train_videos=3,
                          test_videos=3, height=8, width=8, num_frames=4)
        assert ds.train[0].num_frames == 4


class TestSyntheticVideoDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("ucf101", num_classes=4, train_videos=12,
                            test_videos=6, height=12, width=12, seed=3)

    def test_split_sizes(self, dataset):
        assert len(dataset.train) == 12
        assert len(dataset.test) == 6

    def test_labels_cover_classes(self, dataset):
        labels = {video.label for video in dataset.train}
        assert labels == {0, 1, 2, 3}

    def test_video_ids_unique(self, dataset):
        ids = [video.video_id for video in dataset.train + dataset.test]
        assert len(ids) == len(set(ids))

    def test_split_cached(self, dataset):
        assert dataset.train is dataset.train

    def test_unknown_split(self, dataset):
        with pytest.raises(ValueError):
            dataset.split("validation")

    def test_determinism(self):
        a = load_dataset("ucf101", num_classes=3, train_videos=6,
                         test_videos=3, height=10, width=10, seed=9)
        b = load_dataset("ucf101", num_classes=3, train_videos=6,
                         test_videos=3, height=10, width=10, seed=9)
        np.testing.assert_array_equal(a.train[0].pixels, b.train[0].pixels)

    def test_seed_changes_content(self):
        a = load_dataset("ucf101", num_classes=3, train_videos=6,
                         test_videos=3, height=10, width=10, seed=1)
        b = load_dataset("ucf101", num_classes=3, train_videos=6,
                         test_videos=3, height=10, width=10, seed=2)
        assert not np.array_equal(a.train[0].pixels, b.train[0].pixels)

    def test_datasets_use_disjoint_recipes(self):
        ucf = load_dataset("ucf101", num_classes=2, train_videos=2,
                           test_videos=2, height=10, width=10)
        hmdb = load_dataset("hmdb51", num_classes=2, train_videos=2,
                            test_videos=2, height=10, width=10)
        assert not np.array_equal(ucf.train[0].pixels, hmdb.train[0].pixels)

    def test_attack_pairs_have_distinct_labels(self, dataset):
        for original, target in dataset.sample_attack_pairs(5):
            assert original.label != target.label

    def test_attack_pairs_deterministic(self, dataset):
        a = dataset.sample_attack_pairs(3, rng_or_seed=1)
        b = dataset.sample_attack_pairs(3, rng_or_seed=1)
        assert [p[0].video_id for p in a] == [p[0].video_id for p in b]

    def test_needs_one_video_per_class(self):
        with pytest.raises(ValueError):
            SyntheticVideoDataset(
                UCF101_SPEC.scaled(num_classes=10, train_videos=5,
                                   test_videos=2, height=8, width=8)
            )
