"""Tests for the procedural motion generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.motion import class_spec, render_clip, _sprite_mask


class TestClassSpec:
    def test_deterministic(self):
        assert class_spec(7) == class_spec(7)

    def test_distinct_classes_differ(self):
        specs = [class_spec(i) for i in range(10)]
        assert len({(s.motion, s.shape, s.color) for s in specs}) > 1

    def test_motion_cycles(self):
        motions = {class_spec(i).motion for i in range(5)}
        assert motions == {"translate", "oscillate", "orbit", "zoom", "shear"}

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500))
    def test_parameters_in_range(self, index):
        spec = class_spec(index)
        assert 0.0 < spec.size < 0.5
        assert 0.0 < spec.speed <= 1.0
        assert all(0.0 <= c <= 1.0 for c in spec.color)


class TestRenderClip:
    def test_shape_and_range(self):
        clip = render_clip(class_spec(0), 8, 16, 20, rng=0)
        assert clip.shape == (8, 16, 20, 3)
        assert clip.min() >= 0.0 and clip.max() <= 1.0

    def test_deterministic_with_seed(self):
        a = render_clip(class_spec(1), 4, 12, 12, rng=5)
        b = render_clip(class_spec(1), 4, 12, 12, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_instances_differ(self):
        a = render_clip(class_spec(1), 4, 12, 12, rng=5)
        b = render_clip(class_spec(1), 4, 12, 12, rng=6)
        assert not np.array_equal(a, b)

    def test_motion_present(self):
        clip = render_clip(class_spec(0), 8, 16, 16, rng=0, noise=0.0)
        assert np.abs(np.diff(clip, axis=0)).max() > 0.05

    def test_no_noise_is_clean(self):
        a = render_clip(class_spec(2), 2, 8, 8, rng=3, noise=0.0)
        b = render_clip(class_spec(2), 2, 8, 8, rng=3, noise=0.0)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("class_index", range(8))
    def test_all_class_recipes_render(self, class_index):
        clip = render_clip(class_spec(class_index), 3, 10, 10, rng=0)
        assert np.isfinite(clip).all()


class TestSpriteMask:
    def test_unknown_shape_raises(self):
        yy, xx = np.meshgrid(np.linspace(0, 1, 4), np.linspace(0, 1, 4),
                             indexing="ij")
        with pytest.raises(ValueError):
            _sprite_mask("hexagon", yy, xx, 0.5, 0.5, 0.2, 0.0)

    @pytest.mark.parametrize("shape", ["square", "disc", "bar", "cross"])
    def test_mask_in_unit_range(self, shape):
        yy, xx = np.meshgrid(np.linspace(0, 1, 8), np.linspace(0, 1, 8),
                             indexing="ij")
        mask = _sprite_mask(shape, yy, xx, 0.5, 0.5, 0.25, 0.3)
        assert mask.min() >= 0.0 and mask.max() <= 1.0
        assert mask.max() > 0.0  # the sprite is visible
