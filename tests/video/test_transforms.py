"""Tests for clip transforms."""

import numpy as np

from repro.video import (
    Video,
    dequantize_uint8,
    normalize_clip,
    quantize_uint8,
    uniform_temporal_sample,
)


def make_video(rng, frames):
    return Video(rng.random((frames, 4, 4, 3)), label=0, video_id="v")


def test_uniform_sample_downsamples(rng):
    video = make_video(rng, 32)
    sampled = uniform_temporal_sample(video, 8)
    assert sampled.num_frames == 8
    np.testing.assert_array_equal(sampled.pixels[0], video.pixels[0])
    np.testing.assert_array_equal(sampled.pixels[-1], video.pixels[-1])


def test_uniform_sample_pads_short_clip(rng):
    video = make_video(rng, 3)
    sampled = uniform_temporal_sample(video, 6)
    assert sampled.num_frames == 6
    np.testing.assert_array_equal(sampled.pixels[-1], video.pixels[-1])


def test_uniform_sample_identity(rng):
    video = make_video(rng, 8)
    sampled = uniform_temporal_sample(video, 8)
    np.testing.assert_array_equal(sampled.pixels, video.pixels)


def test_quantize_dequantize_roundtrip(rng):
    video = make_video(rng, 2)
    quantized = quantize_uint8(video)
    assert quantized.dtype == np.uint8
    restored = dequantize_uint8(quantized, label=video.label)
    assert np.abs(restored.pixels - video.pixels).max() <= 0.5 / 255.0


def test_dequantize_preserves_metadata(rng):
    """Regression: the round trip used to silently drop ``metadata``."""
    video = make_video(rng, 2)
    video.metadata["origin"] = "upload-api"
    restored = dequantize_uint8(quantize_uint8(video), video.label,
                                video.video_id, video.metadata)
    assert restored.metadata == {"origin": "upload-api"}
    # A copy, not a shared reference (matches uniform_temporal_sample).
    restored.metadata["origin"] = "mutated"
    assert video.metadata["origin"] == "upload-api"


def test_dequantize_defaults_to_empty_metadata(rng):
    restored = dequantize_uint8(quantize_uint8(make_video(rng, 1)))
    assert restored.metadata == {}


def test_quantize_clamps(rng):
    video = Video(np.full((1, 2, 2, 3), 1.0))
    assert quantize_uint8(video).max() == 255


def test_normalize_clip(rng):
    video = make_video(rng, 2)
    normalized = normalize_clip(video, mean=0.5, std=0.5)
    np.testing.assert_allclose(normalized, (video.pixels - 0.5) / 0.5)
