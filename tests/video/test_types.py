"""Tests for the Video container and layout conversions."""

import numpy as np
import pytest

from repro.video import Video, from_model_input, to_model_input


def make_video(rng, frames=4, size=6, label=1):
    return Video(rng.random((frames, size, size, 3)), label=label,
                 video_id="test/0")


class TestVideo:
    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            Video(np.zeros((4, 6, 6)))

    def test_shape_properties(self, rng):
        video = make_video(rng)
        assert video.num_frames == 4
        assert video.frame_shape == (6, 6, 3)
        assert video.num_pixels_per_frame == 108

    def test_copy_is_deep(self, rng):
        video = make_video(rng)
        clone = video.copy()
        clone.pixels[0, 0, 0, 0] = -1.0
        assert video.pixels[0, 0, 0, 0] != -1.0

    def test_clipped(self):
        video = Video(np.full((1, 2, 2, 3), 2.0))
        assert video.clipped().pixels.max() == 1.0

    def test_perturbed_clips_to_range(self, rng):
        video = make_video(rng)
        adversarial = video.perturbed(np.full(video.pixels.shape, 10.0))
        assert adversarial.pixels.max() <= 1.0
        assert adversarial.label == video.label
        assert adversarial.video_id.endswith("+adv")

    def test_perturbed_no_clip(self, rng):
        video = make_video(rng)
        adversarial = video.perturbed(np.full(video.pixels.shape, 10.0),
                                      clip=False)
        assert adversarial.pixels.max() > 1.0

    def test_perturbation_from(self, rng):
        video = make_video(rng)
        perturbation = rng.normal(scale=0.01, size=video.pixels.shape)
        adversarial = video.perturbed(perturbation, clip=False)
        np.testing.assert_allclose(
            adversarial.perturbation_from(video), perturbation
        )

    def test_perturbation_from_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            make_video(rng, frames=4).perturbation_from(make_video(rng, frames=5))


class TestLayoutConversion:
    def test_to_model_input_shape(self, rng):
        batch = to_model_input([make_video(rng), make_video(rng)])
        assert batch.shape == (2, 3, 4, 6, 6)

    def test_single_video_accepted(self, rng):
        assert to_model_input(make_video(rng)).shape == (1, 3, 4, 6, 6)

    def test_roundtrip(self, rng):
        video = make_video(rng)
        restored = from_model_input(to_model_input([video]))[0]
        np.testing.assert_allclose(restored.pixels, video.pixels)

    def test_from_model_input_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            from_model_input(np.zeros((3, 4, 6, 6)))
