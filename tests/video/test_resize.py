"""Tests for bilinear video resizing."""

import numpy as np
import pytest

from repro.video import Video
from repro.video.resize import resize_video


def make_video(rng, h=12, w=16):
    return Video(rng.random((3, h, w, 3)), label=1, video_id="v")


def test_output_shape(rng):
    out = resize_video(make_video(rng), 24, 20)
    assert out.pixels.shape == (3, 24, 20, 3)


def test_identity_when_same_size(rng):
    video = make_video(rng)
    out = resize_video(video, 12, 16)
    np.testing.assert_allclose(out.pixels, video.pixels)


def test_constant_video_preserved(rng):
    video = Video(np.full((2, 8, 8, 3), 0.3))
    out = resize_video(video, 16, 16)
    np.testing.assert_allclose(out.pixels, 0.3, atol=1e-12)


def test_downsample_then_upsample_approximates(rng):
    # Smooth content should round-trip with small error.
    yy, xx = np.meshgrid(np.linspace(0, 1, 32), np.linspace(0, 1, 32),
                         indexing="ij")
    smooth = np.sin(2 * np.pi * yy)[None, :, :, None] * 0.25 + 0.5
    video = Video(np.broadcast_to(smooth, (2, 32, 32, 3)).copy())
    down = resize_video(video, 16, 16)
    up = resize_video(down, 32, 32)
    assert np.abs(up.pixels - video.pixels).mean() < 0.02


def test_range_preserved(rng):
    out = resize_video(make_video(rng), 7, 23)
    assert out.pixels.min() >= 0.0 and out.pixels.max() <= 1.0


def test_metadata_preserved(rng):
    video = make_video(rng)
    out = resize_video(video, 6, 6)
    assert out.label == video.label
    assert out.video_id == video.video_id


def test_invalid_size_rejected(rng):
    with pytest.raises(ValueError):
        resize_video(make_video(rng), 0, 8)
