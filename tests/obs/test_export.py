"""Tests for observability export writers (JSON report + Chrome trace)."""

import json

import pytest

from repro.obs import (
    enable_tracing,
    get_tracer,
    metrics_report,
    obs_dir,
    span,
    use_env_tracing,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("q").inc(3)
    registry.gauge("g").set(2.0)
    return registry


@pytest.fixture
def tracer():
    tracer = Tracer()
    record = tracer._open("root", {"k": 1})
    child = tracer._open("child", {})
    tracer._close(child, 0.01)
    tracer._close(record, 0.05)
    return tracer


class TestMetricsReport:
    def test_report_structure(self, registry, tracer):
        report = metrics_report(registry=registry, tracer=tracer,
                                extra={"experiment": "t2"})
        assert report["metrics"]["counters"]["q"] == 3
        assert report["spans"]["root"]["count"] == 1
        assert report["extra"]["experiment"] == "t2"
        assert report["dropped_span_records"] == 0

    def test_write_json_by_path(self, tmp_path, registry, tracer):
        path = write_metrics_json(tmp_path / "report.json",
                                  registry=registry, tracer=tracer)
        assert path == tmp_path / "report.json"
        parsed = json.loads(path.read_text())
        assert parsed["metrics"]["gauges"]["g"] == 2.0

    def test_write_json_by_name_uses_obs_dir(self, tmp_path, monkeypatch,
                                             registry, tracer):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        path = write_metrics_json("smoke", registry=registry, tracer=tracer)
        assert path == tmp_path / "obs" / "smoke.metrics.json"
        assert path.exists()

    def test_obs_dir_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        assert str(obs_dir()).replace("\\", "/") == "results/obs"


class TestChromeTrace:
    def test_valid_trace_document(self, tmp_path, tracer):
        path = write_chrome_trace(tmp_path / "trace.json", tracer=tracer)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["root", "child"]
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        # Child nested within parent on the timeline.
        root, child = events
        assert root["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-3

    def test_args_stringified(self, tmp_path, tracer):
        path = write_chrome_trace(tmp_path / "trace.json", tracer=tracer)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["args"] == {"k": "1"}

    def test_default_tracer_used(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        enable_tracing()
        get_tracer().reset()
        try:
            with span("default.tracer.span"):
                pass
            path = write_chrome_trace("default")
        finally:
            use_env_tracing()
            get_tracer().reset()
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["name"] == "default.tracer.span"
