"""Tests for the op-level autograd profiler."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import modules as nn_modules
from repro.nn import tensor as nn_tensor
from repro.nn.modules import Linear, Sequential
from repro.obs import OpProfiler


def _small_forward_backward():
    lin = Sequential(Linear(6, 4, rng=0), Linear(4, 2, rng=1))
    x = Tensor(np.ones((3, 6)), requires_grad=True)
    loss = (lin(x) ** 2).sum()
    loss.backward()


class TestOpProfiler:
    def test_ops_counted_with_sizes(self):
        with OpProfiler() as prof:
            _small_forward_backward()
        assert "matmul" in prof.ops
        assert "add" in prof.ops
        assert prof.ops["matmul"]["count"] >= 2
        assert prof.ops["matmul"]["output_bytes"] > 0
        assert prof.ops["matmul"]["output_elems"] > 0

    def test_backward_times_aggregated(self):
        with OpProfiler() as prof:
            _small_forward_backward()
        assert "matmul" in prof.backward
        assert prof.backward["matmul"]["count"] >= 2
        assert prof.backward["matmul"]["total_s"] >= 0.0

    def test_module_forward_times(self):
        with OpProfiler() as prof:
            _small_forward_backward()
        assert prof.modules["Linear"]["count"] == 2
        assert prof.modules["Sequential"]["count"] == 1
        # Containers include their children's time.
        assert prof.modules["Sequential"]["total_s"] >= \
            prof.modules["Linear"]["total_s"] / 2

    def test_hooks_removed_on_exit(self):
        with OpProfiler():
            pass
        assert nn_tensor.get_autograd_hooks() == (None, None)
        assert nn_modules.get_call_hook() is None
        before = OpProfiler()
        with before as prof:
            pass
        _small_forward_backward()
        assert prof.ops == {}  # nothing recorded outside the context

    def test_nested_profilers_chain(self):
        with OpProfiler() as outer:
            with OpProfiler() as inner:
                _small_forward_backward()
        assert outer.ops["matmul"]["count"] == inner.ops["matmul"]["count"]
        assert nn_tensor.get_autograd_hooks() == (None, None)

    def test_summary_and_table(self):
        with OpProfiler() as prof:
            _small_forward_backward()
        summary = prof.summary()
        assert set(summary) == {"ops", "backward", "modules"}
        for stats in summary["backward"].values():
            assert stats["mean_s"] == pytest.approx(
                stats["total_s"] / stats["count"])
        text = prof.table()
        assert "matmul" in text
        assert "Linear" in text

    def test_profile_modules_optional(self):
        with OpProfiler(profile_modules=False) as prof:
            _small_forward_backward()
        assert prof.modules == {}
        assert prof.ops  # op stats still collected

    def test_no_grad_forward_still_counted(self):
        from repro.nn.tensor import no_grad

        with OpProfiler() as prof:
            with no_grad():
                _ = Tensor(np.ones((2, 2))) + Tensor(np.ones((2, 2)))
        assert prof.ops["add"]["count"] == 1
        assert prof.backward == {}

    def test_disabled_path_overhead_below_two_percent(self):
        """The un-profiled hook check must stay noise-level per op.

        The disabled path is one module-global read compared against
        ``None`` inside ``Tensor._make``.  Time that exact check and pin
        it below 2% of the cheapest real op the hook guards (a small
        eager add), so the hook points can never quietly grow into a
        per-op tax.
        """
        import timeit

        assert nn_tensor.get_autograd_hooks() == (None, None)
        env = {
            "tensor": nn_tensor,
            "a": Tensor(np.ones(64)),
            "b": Tensor(np.ones(64)),
        }
        check = timeit.Timer(
            "tensor._MAKE_HOOK is not None", globals=env)
        op = timeit.Timer("a + b", globals=env)
        number = 20_000
        check_s = min(check.repeat(repeat=5, number=number))
        op_s = min(op.repeat(repeat=5, number=number))
        assert check_s / op_s < 0.02, (
            f"disabled hook check is {check_s / op_s:.1%} of a small add")
