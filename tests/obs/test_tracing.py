"""Tests for repro.obs tracing spans."""

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    traced,
    tracing_enabled,
    use_env_tracing,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    """Force-enable tracing and isolate the default tracer per test."""
    enable_tracing()
    get_tracer().reset()
    yield
    use_env_tracing()
    get_tracer().reset()


class TestEnabledSwitch:
    def test_env_disable(self, monkeypatch):
        use_env_tracing()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not tracing_enabled()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert tracing_enabled()

    def test_default_is_on(self, monkeypatch):
        use_env_tracing()
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert tracing_enabled()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        enable_tracing()
        assert tracing_enabled()
        disable_tracing()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert not tracing_enabled()

    def test_disabled_span_is_noop_singleton(self):
        disable_tracing()
        s1 = span("a")
        s2 = span("b")
        assert s1 is s2
        with s1:
            pass
        assert get_tracer().num_records == 0


class TestSpans:
    def test_records_duration(self):
        with span("work") as s:
            pass
        assert s.duration >= 0.0
        agg = get_tracer().aggregate()
        assert agg["work"]["count"] == 1

    def test_nesting_builds_tree(self):
        with span("parent"):
            with span("child"):
                with span("grandchild"):
                    pass
            with span("child"):
                pass
        tracer = get_tracer()
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root["name"] == "parent"
        assert [c["name"] for c in root["children"]] == ["child", "child"]
        assert root["children"][0]["children"][0]["name"] == "grandchild"
        assert tracer.aggregate()["child"]["count"] == 2

    def test_attrs_recorded(self):
        with span("q", k=10, node="n0"):
            pass
        assert get_tracer().roots[0]["args"] == {"k": 10, "node": "n0"}

    def test_depth_and_current(self):
        tracer = get_tracer()
        assert tracer.depth == 0
        with span("outer"):
            assert tracer.depth == 1
            assert tracer.current_span_name() == "outer"
        assert tracer.current_span_name() is None

    def test_record_cap_still_aggregates(self, monkeypatch):
        monkeypatch.setattr(tracing, "MAX_RECORDS", 2)
        for _ in range(5):
            with span("looped"):
                pass
        tracer = get_tracer()
        assert tracer.num_records == 2
        assert tracer.dropped_records == 3
        assert tracer.aggregate()["looped"]["count"] == 5

    def test_exception_still_closes(self):
        with pytest.raises(RuntimeError):
            with span("fails"):
                raise RuntimeError("boom")
        tracer = get_tracer()
        assert tracer.depth == 0
        assert tracer.aggregate()["fails"]["count"] == 1


class TestDecorator:
    def test_traced_names_span(self):
        @traced("my.func")
        def f(x):
            return x * 2

        assert f(3) == 6
        assert get_tracer().aggregate()["my.func"]["count"] == 1

    def test_traced_default_name(self):
        @traced()
        def g():
            return 1

        g()
        names = list(get_tracer().aggregates)
        assert any("g" in name for name in names)

    def test_traced_respects_runtime_disable(self):
        @traced("toggled")
        def h():
            return 1

        disable_tracing()
        h()
        assert "toggled" not in get_tracer().aggregates
        enable_tracing()
        h()
        assert get_tracer().aggregate()["toggled"]["count"] == 1


class TestEvents:
    def test_chrome_events_flat_and_sorted(self):
        with span("a"):
            with span("b"):
                pass
        with span("c"):
            pass
        events = get_tracer().events()
        assert [e["name"] for e in events] == ["a", "b", "c"]
        assert all(e["ph"] == "X" for e in events)
        assert all(e["dur"] >= 0 for e in events)

    def test_reset_clears_everything(self):
        with span("x"):
            pass
        tracer = get_tracer()
        tracer.reset()
        assert tracer.roots == []
        assert tracer.aggregates == {}
        assert tracer.events() == []


class TestIsolatedTracer:
    def test_instances_independent(self):
        mine = Tracer()
        record = mine._open("manual", {})
        mine._close(record, 0.5)
        assert mine.aggregate()["manual"]["total_s"] == pytest.approx(0.5)
        assert "manual" not in get_tracer().aggregates
