"""Tests for the repro.obs metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    counter,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments(self, registry):
        c = registry.counter("a.b")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("a").inc(-1)

    def test_get_or_create_same_handle(self, registry):
        assert registry.counter("x", node="n0") is registry.counter(
            "x", node="n0")

    def test_labels_distinguish(self, registry):
        registry.counter("x", node="n0").inc()
        registry.counter("x", node="n1").inc(4)
        snap = registry.snapshot()["counters"]
        assert snap["x{node=n0}"] == 1
        assert snap["x{node=n1}"] == 4

    def test_label_order_irrelevant(self, registry):
        assert registry.counter("x", a=1, b=2) is registry.counter(
            "x", b=2, a=1)


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("g")
        g.set(10.0)
        g.inc()
        g.dec(3.0)
        assert g.value == 8.0

    def test_unset_snapshot_is_none(self, registry):
        registry.gauge("never_set")
        assert registry.snapshot()["gauges"]["never_set"] is None

    def test_inc_from_unset(self, registry):
        g = registry.gauge("g2")
        g.inc(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_observe_stats(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(5.55)
        assert h.minimum == pytest.approx(0.05)
        assert h.maximum == pytest.approx(5.0)
        snap = h._snapshot()
        assert snap["buckets"] == {"le_0.1": 1, "le_1": 1, "le_inf": 1}

    def test_mean(self, registry):
        h = registry.histogram("m", buckets=(1.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=())


class TestRegistryLifecycle:
    def test_reset_zeroes_in_place(self, registry):
        c = registry.counter("c")
        h = registry.histogram("h")
        c.inc(5)
        h.observe(1.0)
        registry.reset()
        assert c.value == 0.0
        assert h.count == 0
        # Cached handle still wired to the registry after reset.
        c.inc()
        assert registry.snapshot()["counters"]["c"] == 1

    def test_clear_drops_instruments(self, registry):
        registry.counter("c").inc()
        registry.clear()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_to_json_roundtrip(self, registry):
        registry.counter("c", kind="x").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.01)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["c{kind=x}"] == 2
        assert parsed["gauges"]["g"] == 1.5
        assert parsed["histograms"]["h"]["count"] == 1


class TestDefaultRegistry:
    def test_module_level_helpers_hit_default(self):
        before = counter("tests.obs.module_helper").value
        counter("tests.obs.module_helper").inc()
        assert get_registry().counter("tests.obs.module_helper").value == \
            before + 1
