"""Tests for the metric-learning losses."""

import numpy as np
import pytest

from repro.losses import (
    AngularLoss,
    ArcFaceLoss,
    LiftedLoss,
    RankedListTripletLoss,
    create_loss,
    triplet_margin_loss,
)
from repro.nn import Adam, Tensor


def clustered_embeddings(rng, classes=3, per_class=4, dim=8, spread=0.05):
    """Well-separated class clusters plus labels."""
    centers = rng.normal(size=(classes, dim)) * 3.0
    points, labels = [], []
    for c in range(classes):
        points.append(centers[c] + rng.normal(scale=spread, size=(per_class, dim)))
        labels.extend([c] * per_class)
    return np.concatenate(points), np.asarray(labels)


class TestTripletMargin:
    def test_zero_when_separated(self, rng):
        anchor = Tensor(np.zeros((2, 4)))
        positive = Tensor(np.zeros((2, 4)))
        negative = Tensor(np.ones((2, 4)) * 10.0)
        assert triplet_margin_loss(anchor, positive, negative).item() == 0.0

    def test_positive_when_violated(self, rng):
        anchor = Tensor(np.zeros((2, 4)))
        positive = Tensor(np.ones((2, 4)))
        negative = Tensor(np.zeros((2, 4)))
        assert triplet_margin_loss(anchor, positive, negative).item() > 0.0


class TestRankedListTriplet:
    def test_zero_on_perfect_order(self):
        query = Tensor(np.zeros(4))
        returned = Tensor(np.stack([np.full(4, d) for d in (1.0, 2.0, 3.0)]))
        loss = RankedListTripletLoss(margin=0.0)(query, returned)
        assert loss.item() == pytest.approx(0.0)

    def test_positive_on_inverted_order(self):
        query = Tensor(np.zeros(4))
        returned = Tensor(np.stack([np.full(4, d) for d in (3.0, 2.0, 1.0)]))
        loss = RankedListTripletLoss(margin=0.0)(query, returned)
        assert loss.item() > 0.0

    def test_short_list_returns_zero(self):
        loss = RankedListTripletLoss()(Tensor(np.zeros(4)),
                                       Tensor(np.zeros((1, 4))))
        assert loss.item() == 0.0

    def test_trains_an_embedding_into_order(self, rng):
        # A learnable projection should learn to rank a fixed list.
        from repro.nn import Linear

        projector = Linear(6, 4, rng=0)
        optimizer = Adam(projector.parameters(), lr=0.05)
        loss_fn = RankedListTripletLoss(margin=0.2)
        query = rng.normal(size=(1, 6))
        returned = rng.normal(size=(5, 6))
        first = None
        for _ in range(40):
            optimizer.zero_grad()
            q = projector(Tensor(query))[0]
            r = projector(Tensor(returned))
            loss = loss_fn(q, r)
            if first is None:
                first = loss.item()
            if not loss.requires_grad:
                break
            loss.backward()
            optimizer.step()
        assert loss.item() <= first


class TestArcFace:
    def test_lower_loss_for_aligned_clusters(self, rng):
        loss_fn = ArcFaceLoss(3, 8, rng=0)
        embeddings, labels = clustered_embeddings(rng)
        # Use prototypes equal to class centers: loss should be small-ish.
        aligned = loss_fn(Tensor(embeddings), labels).item()
        shuffled = loss_fn(Tensor(embeddings), labels[::-1].copy()).item()
        assert aligned < shuffled

    def test_has_learnable_prototypes(self):
        loss_fn = ArcFaceLoss(5, 8, rng=0)
        assert loss_fn.prototypes.shape == (5, 8)
        assert loss_fn.prototypes.requires_grad

    def test_margin_increases_loss(self, rng):
        embeddings, labels = clustered_embeddings(rng)
        small = ArcFaceLoss(3, 8, margin=0.0, rng=0)
        large = ArcFaceLoss(3, 8, margin=0.5, rng=0)
        assert large(Tensor(embeddings), labels).item() >= \
            small(Tensor(embeddings), labels).item()

    def test_gradient_flows_to_embeddings(self, rng):
        loss_fn = ArcFaceLoss(3, 8, rng=0)
        embeddings, labels = clustered_embeddings(rng)
        x = Tensor(embeddings, requires_grad=True)
        loss_fn(x, labels).backward()
        assert x.grad is not None


class TestLifted:
    def test_zero_without_positives(self, rng):
        loss = LiftedLoss()(Tensor(rng.normal(size=(3, 4))),
                            np.array([0, 1, 2]))
        assert loss.item() == 0.0

    def test_separated_clusters_score_lower(self, rng):
        loss_fn = LiftedLoss(margin=1.0)
        tight, labels = clustered_embeddings(rng, spread=0.01)
        loose, _ = clustered_embeddings(rng, spread=2.0)
        assert loss_fn(Tensor(tight), labels).item() <= \
            loss_fn(Tensor(loose), labels).item() + 1e-6

    def test_gradient_flows(self, rng):
        embeddings, labels = clustered_embeddings(rng, spread=1.0)
        x = Tensor(embeddings, requires_grad=True)
        loss = LiftedLoss()(x, labels)
        if loss.requires_grad:
            loss.backward()
            assert x.grad is not None


class TestAngular:
    def test_zero_without_positives(self, rng):
        loss = AngularLoss()(Tensor(rng.normal(size=(3, 4))),
                             np.array([0, 1, 2]))
        assert loss.item() == 0.0

    def test_positive_with_mixed_batch(self, rng):
        embeddings, labels = clustered_embeddings(rng)
        assert AngularLoss()(Tensor(embeddings), labels).item() > 0.0

    def test_gradient_flows(self, rng):
        embeddings, labels = clustered_embeddings(rng)
        x = Tensor(embeddings, requires_grad=True)
        AngularLoss()(x, labels).backward()
        assert x.grad is not None

    def test_alpha_changes_loss(self, rng):
        embeddings, labels = clustered_embeddings(rng)
        a = AngularLoss(alpha_degrees=30.0)(Tensor(embeddings), labels).item()
        b = AngularLoss(alpha_degrees=50.0)(Tensor(embeddings), labels).item()
        assert a != b


class TestRegistry:
    @pytest.mark.parametrize("name", ["arcface", "lifted", "angular"])
    def test_create_by_name(self, name):
        assert create_loss(name, num_classes=4, feature_dim=8) is not None

    def test_case_and_suffix_insensitive(self):
        assert isinstance(create_loss("ArcFaceLoss", 4, 8), ArcFaceLoss)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            create_loss("contrastive", 4, 8)
