"""Conformance suite for the unified ``REPRO_*`` flag parsing.

One contract, every flag: unset/empty means the documented default, a
valid value is normalised, garbage raises ``ValueError`` — never a
silent fallback.  The table below is the complete flag inventory; adding
a flag without a row here should feel like a missing test.
"""

import pytest

from repro.utils.envflags import (
    FALSE_VALUES,
    TRUE_VALUES,
    env_bool,
    env_choice,
    env_int,
    env_raw,
    env_set,
    env_str,
)


# ---------------------------------------------------------------------- #
# Parser primitives
# ---------------------------------------------------------------------- #
class TestPrimitives:
    def test_env_raw_strips_and_treats_blank_as_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert env_raw("REPRO_X") is None
        monkeypatch.setenv("REPRO_X", "   ")
        assert env_raw("REPRO_X") is None
        assert not env_set("REPRO_X")
        monkeypatch.setenv("REPRO_X", "  7 ")
        assert env_raw("REPRO_X") == "7"
        assert env_set("REPRO_X")

    def test_env_int_range_and_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "5")
        assert env_int("REPRO_X", 1, minimum=1, maximum=8) == 5
        monkeypatch.setenv("REPRO_X", "0")
        with pytest.raises(ValueError, match="below the minimum"):
            env_int("REPRO_X", 1, minimum=1)
        monkeypatch.setenv("REPRO_X", "9")
        with pytest.raises(ValueError, match="above the maximum"):
            env_int("REPRO_X", 1, maximum=8)
        monkeypatch.setenv("REPRO_X", "5.5")
        with pytest.raises(ValueError, match="not an integer"):
            env_int("REPRO_X", 1)

    @pytest.mark.parametrize("raw", TRUE_VALUES + tuple(
        v.upper() for v in TRUE_VALUES))
    def test_env_bool_true_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        assert env_bool("REPRO_X") is True

    @pytest.mark.parametrize("raw", FALSE_VALUES)
    def test_env_bool_false_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_X", raw)
        assert env_bool("REPRO_X", default=True) is False

    def test_env_bool_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "2")
        with pytest.raises(ValueError, match="not a boolean"):
            env_bool("REPRO_X")

    def test_env_choice_lowercases_and_rejects(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "GEMM")
        assert env_choice("REPRO_X", ("auto", "gemm"), "auto") == "gemm"
        monkeypatch.setenv("REPRO_X", "blas")
        with pytest.raises(ValueError, match="not a known value"):
            env_choice("REPRO_X", ("auto", "gemm"), "auto")

    def test_env_str_passthrough(self, monkeypatch):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert env_str("REPRO_X", "fallback") == "fallback"
        monkeypatch.setenv("REPRO_X", " /tmp/p.json ")
        assert env_str("REPRO_X") == "/tmp/p.json"


# ---------------------------------------------------------------------- #
# Flag inventory: (flag, accessor, default, valid raw, normalised, garbage)
# ---------------------------------------------------------------------- #
def _embed_cache():
    from repro.perf.cache import default_capacity
    return default_capacity()


def _serving_batch():
    from repro.serving.config import default_batch_size
    return default_batch_size()


def _serving_workers():
    from repro.serving.config import default_workers
    return default_workers()


def _gallery_churn():
    from repro.serving.config import default_churn
    return default_churn()


def _conv_impl():
    from repro.perf.gemm_conv import conv_impl
    return conv_impl()


def _plan_cache_cap():
    from repro.perf.gemm_conv import plan_cache_cap
    return plan_cache_cap()


def _nn_fuse():
    from repro.nn import jit
    return jit.enabled()


def _index_tier():
    from repro.hashindex.tiers import default_index_tier
    return default_index_tier()


def _trace():
    from repro.obs.tracing import tracing_enabled
    return tracing_enabled()


FLAGS = [
    ("REPRO_EMBED_CACHE", _embed_cache, 256, "7", 7, "many"),
    ("REPRO_SERVING_BATCH", _serving_batch, 8, "4", 4, "0"),
    ("REPRO_SERVING_WORKERS", _serving_workers, 1, "3", 3, "0"),
    ("REPRO_GALLERY_CHURN", _gallery_churn, False, "YES", True, "maybe"),
    ("REPRO_CONV_IMPL", _conv_impl, "auto", "GEMM", "gemm", "blas"),
    ("REPRO_PLAN_CACHE_CAP", _plan_cache_cap, 64, "16", 16, "0"),
    ("REPRO_NN_FUSE", _nn_fuse, False, "on", True, "2"),
    ("REPRO_INDEX_TIER", _index_tier, "exact", "HAMMING", "hamming",
     "fancy"),
    ("REPRO_TRACE", _trace, True, "0", False, "2"),
]

_IDS = [row[0] for row in FLAGS]


@pytest.mark.parametrize("flag,accessor,default,raw,normalised,garbage",
                         FLAGS, ids=_IDS)
class TestFlagConformance:
    def test_unset_yields_default(self, monkeypatch, flag, accessor,
                                  default, raw, normalised, garbage):
        monkeypatch.delenv(flag, raising=False)
        assert accessor() == default

    def test_empty_yields_default(self, monkeypatch, flag, accessor,
                                  default, raw, normalised, garbage):
        monkeypatch.setenv(flag, "  ")
        assert accessor() == default

    def test_valid_is_normalised(self, monkeypatch, flag, accessor,
                                 default, raw, normalised, garbage):
        monkeypatch.setenv(flag, raw)
        assert accessor() == normalised

    def test_garbage_raises_naming_the_flag(self, monkeypatch, flag,
                                            accessor, default, raw,
                                            normalised, garbage):
        monkeypatch.setenv(flag, garbage)
        with pytest.raises(ValueError, match=flag):
            accessor()


# ---------------------------------------------------------------------- #
# Flags with non-scalar accessors
# ---------------------------------------------------------------------- #
class TestQaNanguard:
    def test_unset_is_noop(self, monkeypatch):
        from repro.qa.invariants import install_runtime_guards

        monkeypatch.delenv("REPRO_QA_NANGUARD", raising=False)
        assert install_runtime_guards() is False

    def test_garbage_raises(self, monkeypatch):
        from repro.qa.invariants import install_runtime_guards

        monkeypatch.setenv("REPRO_QA_NANGUARD", "2")
        with pytest.raises(ValueError, match="REPRO_QA_NANGUARD"):
            install_runtime_guards()


class TestAttackStrategy:
    def test_unset_is_builtin_default(self, monkeypatch):
        from repro.attacks.registry import DEFAULT_STRATEGY, default_strategy

        monkeypatch.delenv("REPRO_ATTACK", raising=False)
        assert default_strategy() == DEFAULT_STRATEGY

    def test_valid_is_lowercased(self, monkeypatch):
        from repro.attacks.registry import default_strategy, resolve_strategy

        monkeypatch.setenv("REPRO_ATTACK", "TIMI")
        assert default_strategy() == "timi"
        assert resolve_strategy().name == "timi"

    def test_unknown_strategy_raises(self, monkeypatch):
        from repro.attacks.registry import resolve_strategy

        monkeypatch.setenv("REPRO_ATTACK", "nope")
        with pytest.raises(KeyError, match="nope"):
            resolve_strategy()


class TestRouterFlags:
    def test_router_env_is_boolean(self, monkeypatch):
        from repro.router import active_router, set_router

        set_router(None)
        monkeypatch.setenv("REPRO_ROUTER", "garbage")
        with pytest.raises(ValueError, match="REPRO_ROUTER"):
            active_router()
        monkeypatch.delenv("REPRO_ROUTER")
        assert active_router().enabled is False

    def test_profile_path_env(self, monkeypatch, tmp_path):
        from repro.router import default_profile_path
        from repro.router.profile import DEFAULT_PROFILE_PATH

        monkeypatch.delenv("REPRO_ROUTER_PROFILE", raising=False)
        assert str(default_profile_path()) == DEFAULT_PROFILE_PATH
        monkeypatch.setenv("REPRO_ROUTER_PROFILE",
                           str(tmp_path / "p.json"))
        assert default_profile_path() == tmp_path / "p.json"
