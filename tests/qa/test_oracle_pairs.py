"""The differential-oracle driver: one parametrized test per pair.

Registering an :class:`~repro.qa.oracle.OraclePair` in
``repro.qa.pairs`` is all it takes to get a test here — the driver
enumerates the registry at collection time.
"""

import pytest

from repro.qa.oracle import all_pairs, check_pair

PAIRS = all_pairs()

#: Contracts the issue requires the registry to cover.
REQUIRED = {
    "conv2d.einsum_vs_gemm",
    "conv3d.einsum_vs_gemm",
    "feature_index.search_vs_batch",
    "ivf_index.search_vs_batch",
    "sharded_gallery.search_vs_batch",
    "engine.cached_vs_uncached",
    "gallery.replicated_vs_single",
    "sparse_query.sequential_vs_speculative",
    "serving.batched_vs_sequential",
    "hashindex.compressed_vs_exact",
}


def test_registry_covers_required_contracts():
    assert REQUIRED <= set(PAIRS)
    assert len(PAIRS) >= 5


@pytest.mark.parametrize("name", sorted(PAIRS))
def test_pair_agrees(name, reset_conv_impl):
    pair = PAIRS[name]
    assert check_pair(pair) == pair.cases
