"""Invariant checkers: finite-autograd guard, budget-accounting
conservation, metric range checks, embed-cache coherence."""

import numpy as np
import pytest

from repro.errors import QueryBudgetExceeded, RetrievalUnavailable
from repro.nn.tensor import Tensor, get_autograd_hooks, set_autograd_hooks
from repro.qa.invariants import (
    NumericalFault,
    assert_finite_graph,
    assert_unit_interval,
    check_budget_conservation,
    check_cache_coherence,
    check_metric_ranges,
    finite_guard,
    install_runtime_guards,
    spa_fraction,
)
from repro.qa.world import build_world
from repro.resilience import FaultPlan


# ---------------------------------------------------------------------- #
# NaN/Inf autograd guard
# ---------------------------------------------------------------------- #
def _poisoned_op():
    return Tensor(np.array([1.0, -1.0]), requires_grad=True).log()


def test_finite_guard_raises_on_non_finite_op():
    with finite_guard():
        with pytest.raises(NumericalFault, match="log"):
            _poisoned_op()


def test_finite_guard_is_scoped():
    # Outside the guard the same op goes through (autograd itself does
    # not police NaN — that is exactly why the guard exists).
    result = _poisoned_op()
    assert np.isnan(result.data[1])


def test_finite_guard_chains_and_restores_previous_hooks():
    calls = []
    set_autograd_hooks(lambda op, data: calls.append(op), None)
    try:
        with finite_guard():
            (Tensor(np.ones(3), requires_grad=True) * 2.0).sum()
        assert calls, "previously-installed hook was displaced by the guard"
        # After the guard exits, the previous hook (and only it) is back.
        assert get_autograd_hooks()[0] is not None
        before = len(calls)
        (Tensor(np.ones(3), requires_grad=True) * 2.0).sum()
        assert len(calls) > before
    finally:
        set_autograd_hooks(None, None)


def test_install_runtime_guards_honors_env_flag(monkeypatch):
    previous = get_autograd_hooks()
    try:
        monkeypatch.delenv("REPRO_QA_NANGUARD", raising=False)
        assert install_runtime_guards() is False
        monkeypatch.setenv("REPRO_QA_NANGUARD", "1")
        assert install_runtime_guards() is True
        with pytest.raises(NumericalFault):
            _poisoned_op()
    finally:
        set_autograd_hooks(*previous)


def test_assert_finite_graph_walks_parents():
    x = Tensor(np.ones(4), requires_grad=True)
    y = (x * 3.0).sum()
    y.backward()
    assert_finite_graph(y)  # healthy graph passes

    bad = Tensor(np.array([np.inf]))
    with pytest.raises(NumericalFault):
        assert_finite_graph(bad * 1.0)


def test_assert_finite_graph_rejects_non_finite_grad():
    x = Tensor(np.ones(2), requires_grad=True)
    y = (x * 2.0).sum()
    y.backward()
    x.grad[0] = np.nan
    with pytest.raises(NumericalFault, match="gradient"):
        assert_finite_graph(y)


# ---------------------------------------------------------------------- #
# Budget-accounting conservation
# ---------------------------------------------------------------------- #
def test_conservation_holds_after_normal_queries(budget_ledger):
    world = build_world(61)
    for video in world.gallery_videos[:4]:
        world.service.query(video)
    budget_ledger(world.service)
    assert world.service.queries_issued == 4
    assert world.service.queries_refunded == 0


def test_conservation_holds_after_budget_exhaustion(budget_ledger):
    world = build_world(61, query_budget=3)
    with pytest.raises(QueryBudgetExceeded):
        for video in world.gallery_videos:
            world.service.query(video)
    budget_ledger(world.service)
    assert world.service.query_count == 3


def test_conservation_holds_across_refunds(budget_ledger):
    world = build_world(61, num_nodes=2, replication=1)
    world.service.query(world.original)
    world.engine.gallery.nodes[0].take_down()
    with pytest.raises(RetrievalUnavailable):
        world.service.query(world.original)
    budget_ledger(world.service)
    assert world.service.queries_refunded >= 1
    assert world.service.query_count == 1  # the failed query was refunded
    world.engine.gallery.nodes[0].bring_up()
    world.service.query(world.original)
    budget_ledger(world.service)
    assert world.service.query_count == 2


def test_conservation_holds_across_a_mid_batch_outage(budget_ledger):
    # A fault-plan outage window interrupts query_batch partway: the
    # served prefix stays charged, exactly the failing query is refunded,
    # and the suffix is rolled off both sides of the ledger.
    world = build_world(61, num_nodes=1)
    with FaultPlan().outage("node-0", 2, 6).install(world.engine.gallery):
        with pytest.raises(RetrievalUnavailable):
            world.service.query_batch(world.gallery_videos[:5])
    budget_ledger(world.service)
    assert world.service.query_count == 2
    assert world.service.queries_refunded == 1
    assert world.service.queries_issued == 3
    # Once the outage is lifted the ledger keeps balancing.
    world.service.query(world.original)
    budget_ledger(world.service)
    assert world.service.query_count == 3


def test_conservation_detects_a_leak():
    world = build_world(61)
    world.service.query(world.original)
    world.service.queries_issued += 1  # simulate broken accounting
    with pytest.raises(AssertionError, match="leak"):
        check_budget_conservation(world.service)


def test_reset_clears_the_whole_ledger():
    world = build_world(61)
    world.service.query(world.original)
    world.service.reset_query_count()
    assert (world.service.query_count, world.service.queries_issued,
            world.service.queries_refunded) == (0, 0, 0)
    check_budget_conservation(world.service)


# ---------------------------------------------------------------------- #
# Metric ranges
# ---------------------------------------------------------------------- #
def test_metric_ranges_accept_unit_interval():
    check_metric_ranges({"map": 0.0, "ap_at_m": 0.73, "ndcg": 1.0})


@pytest.mark.parametrize("value", [-0.01, 1.5, float("nan"), float("inf")])
def test_metric_ranges_reject_out_of_range(value):
    with pytest.raises(AssertionError):
        assert_unit_interval(value, "metric")


def test_spa_fraction_is_a_unit_interval_metric():
    perturbation = np.zeros((2, 4, 4, 3))
    perturbation[0, 0, 0, 0] = 0.5
    fraction = spa_fraction(perturbation)
    assert_unit_interval(fraction, "spa_fraction")
    assert fraction == pytest.approx(1.0 / perturbation.size)
    assert spa_fraction(np.zeros(0)) == 0.0


# ---------------------------------------------------------------------- #
# Embed-cache coherence
# ---------------------------------------------------------------------- #
def test_cached_embeddings_are_coherent(cache_coherence):
    world = build_world(67, cache_size=16)
    cache_coherence(world.engine, [world.original, world.target])


def test_cache_coherence_also_passes_without_a_cache(cache_coherence):
    world = build_world(67, cache_size=0)
    cache_coherence(world.engine, [world.original, world.target])
