"""Fast query paths must not route around instance-level instrumentation.

A stateful defense (or a test spy) installed as ``service.query`` has to
observe *every* query the attacker issues.  These tests pin the two
escape hatches shut: ``query_batch`` falls back to per-video queries
when the entry point is wrapped, and ``speculate`` refuses to run at
all — so the detector and the obs counters see exactly the stream a
sequential attacker would have produced.
"""

import numpy as np
import pytest

from repro.defenses.stateful import StatefulQueryDetector
from repro.obs import counter
from repro.attacks.duo.sparse_query import SparseQuery
from repro.attacks.objective import RetrievalObjective
from repro.qa.comparators import assert_retrieval_lists_equal
from repro.qa.pairs import _qa_priors
from repro.qa.world import build_world


def _spy_on(service, detector, account="acct"):
    """Wrap ``service.query`` with a detector plus an id-recording spy.

    Captures the original bound method before overriding — assigning
    ``detector.wrap_service(service, ...)`` onto ``service.query`` would
    recurse, since the wrapper resolves ``service.query`` at call time.
    """
    observed = []
    original = service.query

    def spy(video, m=None):
        observed.append(video.video_id)
        detector.observe(account, video)
        return original(video, m)

    service.query = spy
    return observed


def test_wrapped_service_disables_speculation():
    world = build_world(41)
    _spy_on(world.service, StatefulQueryDetector())
    assert not world.service.speculation_safe
    with pytest.raises(RuntimeError):
        world.service.speculate([world.original])


def test_query_batch_falls_back_through_the_wrapped_entry_point():
    plain = build_world(41)
    wrapped = build_world(41)
    observed = _spy_on(wrapped.service, StatefulQueryDetector())

    videos = wrapped.gallery_videos[:4]
    batched = wrapped.service.query_batch(videos)
    sequential = [plain.service.query(video) for video in videos]

    assert observed == [video.video_id for video in videos]
    assert_retrieval_lists_equal(sequential, batched)
    assert wrapped.service.query_count == plain.service.query_count == 4


def _run_sparse_query(world, objective_queries_out=None, batched=None,
                      iters=6, seed=17):
    objective = RetrievalObjective(world.service, world.original,
                                   world.target)
    attack = SparseQuery(iter_num_q=iters, tau=30, rng=seed, batched=batched)
    priors = _qa_priors(world.original.pixels.shape, seed + 1)
    adversarial, trace = attack.run(world.original, priors, objective)
    if objective_queries_out is not None:
        objective_queries_out.append(objective.queries)
    return adversarial, trace, objective


def test_attack_under_detector_matches_clean_sequential_run():
    # Clean world, explicitly sequential.
    plain = build_world(47)
    plain_adv, plain_trace, plain_obj = _run_sparse_query(plain,
                                                          batched=False)

    # Same world, but every query flows through a detector spy; batched
    # is left on auto (None) — it must self-disable.
    guarded = build_world(47)
    detector = StatefulQueryDetector()
    observed = _spy_on(guarded.service, detector)
    guarded_adv, guarded_trace, guarded_obj = _run_sparse_query(guarded,
                                                                batched=None)

    # Identical attack results...
    np.testing.assert_array_equal(plain_adv.pixels, guarded_adv.pixels)
    assert guarded_trace == plain_trace
    # ...and the detector saw every single query the attack issued.
    assert len(observed) == guarded.service.query_count
    assert guarded.service.query_count == plain.service.query_count
    assert guarded_obj.queries == plain_obj.queries
    assert guarded_obj.queries == guarded.service.query_count


def test_speculative_path_reports_the_same_obs_counter_stream():
    queries_counter = counter("retrieval.queries")

    sequential_world = build_world(53)
    before = queries_counter.value
    _, seq_trace, seq_obj = _run_sparse_query(sequential_world,
                                              batched=False)
    sequential_delta = queries_counter.value - before

    speculative_world = build_world(53)
    assert speculative_world.service.speculation_safe
    before = queries_counter.value
    _, spec_trace, spec_obj = _run_sparse_query(speculative_world,
                                                batched=True)
    speculative_delta = queries_counter.value - before

    assert spec_trace == seq_trace
    assert spec_obj.queries == seq_obj.queries
    # The obs counter ticks once per *committed* query — identical
    # totals, so dashboards cannot tell the fast path from the slow one.
    assert speculative_delta == sequential_delta
    assert sequential_delta == sequential_world.service.query_count


def test_jit_replay_preserves_query_instrumentation():
    """Trace replay sits *below* ``service.query`` — it must never skim
    queries past a detector spy or the obs counter stream."""
    queries_counter = counter("retrieval.queries")

    plain = build_world(61)
    before = queries_counter.value
    plain_adv, plain_trace, plain_obj = _run_sparse_query(plain,
                                                          batched=False)
    plain_delta = queries_counter.value - before

    fused = build_world(61)
    fused.engine.configure_fuse(True)
    detector = StatefulQueryDetector()
    observed = _spy_on(fused.service, detector)
    before = queries_counter.value
    fused_adv, fused_trace, fused_obj = _run_sparse_query(fused,
                                                          batched=None)
    fused_delta = queries_counter.value - before

    # Replay is bit-identical, so the attack takes the exact same path...
    np.testing.assert_array_equal(plain_adv.pixels, fused_adv.pixels)
    assert fused_trace == plain_trace
    # ...the detector saw every query the fused run issued...
    assert len(observed) == fused.service.query_count
    assert fused.service.query_count == plain.service.query_count
    assert fused_obj.queries == plain_obj.queries
    # ...and the counter stream is indistinguishable from eager.
    assert fused_delta == plain_delta


def test_jit_fuse_toggle_is_invisible_to_query_results():
    eager = build_world(67)
    fused = build_world(67)
    fused.engine.configure_fuse(True)
    for video in eager.gallery_videos[:3]:
        assert_retrieval_lists_equal([eager.service.query(video)],
                                     [fused.service.query(video)])
    assert eager.service.query_count == fused.service.query_count


def test_detector_flagging_is_path_independent():
    # Near-duplicate probing must accumulate detector hits identically
    # whether queries arrive one at a time or through query_batch.
    one_by_one = build_world(59)
    det_a = StatefulQueryDetector(distance_threshold=0.5, flag_after=3)
    _spy_on(one_by_one.service, det_a, account="a")
    probes = [one_by_one.original.perturbed(
        np.full(one_by_one.original.pixels.shape, 1e-4 * i))
        for i in range(5)]
    for probe in probes:
        one_by_one.service.query(probe)

    batched = build_world(59)
    det_b = StatefulQueryDetector(distance_threshold=0.5, flag_after=3)
    _spy_on(batched.service, det_b, account="a")
    batched.service.query_batch(probes)

    assert det_a.hit_count("a") == det_b.hit_count("a") > 0
    assert det_a.is_flagged("a") == det_b.is_flagged("a")
