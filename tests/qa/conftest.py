"""Fixtures exposing the qa invariant checkers to the test suite."""

import pytest

from repro.perf import gemm_conv
from repro.qa.invariants import (
    check_budget_conservation,
    check_cache_coherence,
    finite_guard,
)
from repro.qa.world import build_world


@pytest.fixture
def reset_conv_impl():
    """Restore the conv dispatch policy and plan cache after a test."""
    yield
    gemm_conv.set_conv_impl(None)
    gemm_conv.clear_plan_cache()


@pytest.fixture
def finite_autograd():
    """Run the test body under the NaN/Inf autograd guard."""
    with finite_guard():
        yield


@pytest.fixture
def budget_ledger():
    """The budget-conservation checker, for use as a teardown assertion."""
    return check_budget_conservation


@pytest.fixture
def cache_coherence():
    """The embed-cache coherence checker."""
    return check_cache_coherence


@pytest.fixture(scope="module")
def qa_world():
    """One tiny deterministic retrieval world shared per test module."""
    return build_world(31, cache_size=0)
