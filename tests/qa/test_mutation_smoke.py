"""Mutation smoke test: the harness must catch a deliberately broken kernel.

A 0.1% multiplicative fault injected into the GEMM conv forward is far
below anything an end-to-end smoke run would notice, but the
differential oracle must flag it — and must go green again the moment
the fault is lifted.  This is the "does the alarm actually ring" test
for the whole qa subsystem.
"""

import pytest

from repro.nn import tensor as nn_tensor
from repro.perf import gemm_conv
from repro.qa.mutation import seeded_conv_fault, seeded_fused_fault
from repro.qa.oracle import OracleFailure, get_pair, check_pair


@pytest.mark.parametrize("pair_name", ["conv2d.einsum_vs_gemm",
                                       "conv3d.einsum_vs_gemm"])
def test_conv_fault_is_caught_then_cleared(pair_name, reset_conv_impl):
    pair = get_pair(pair_name)
    with seeded_conv_fault():
        with pytest.raises(OracleFailure) as excinfo:
            check_pair(pair)
    assert excinfo.value.pair_name == pair_name
    # The fault is gone: the exact same pair passes again.
    assert check_pair(pair) == pair.cases


def test_failure_case_is_shrunk_to_minimum(reset_conv_impl):
    pair = get_pair("conv2d.einsum_vs_gemm")
    with seeded_conv_fault():
        with pytest.raises(OracleFailure) as excinfo:
            check_pair(pair)
    case = excinfo.value.case
    # The fault fires on every shape, so greedy shrinking must drive the
    # shrinkable integers all the way down.
    assert case["batch"] == 1
    assert case["in_ch"] == 1
    assert case["out_ch"] == 1


def test_fault_injection_restores_the_kernel():
    original = gemm_conv._conv_forward
    with seeded_conv_fault():
        assert gemm_conv._conv_forward is not original
    assert gemm_conv._conv_forward is original


def test_fault_restores_on_error():
    original = gemm_conv._conv_forward
    with pytest.raises(RuntimeError, match="boom"):
        with seeded_conv_fault():
            raise RuntimeError("boom")
    assert gemm_conv._conv_forward is original


def test_fused_fault_is_caught_then_cleared():
    """A corrupted fused expression must trip ``nn.fused_vs_eager``."""
    pair = get_pair("nn.fused_vs_eager")
    with seeded_fused_fault():
        with pytest.raises(OracleFailure) as excinfo:
            check_pair(pair)
    assert excinfo.value.pair_name == "nn.fused_vs_eager"
    # Fault lifted and trace caches cleared: the same pair passes again.
    assert check_pair(pair) == pair.cases


def test_fused_fault_restores_kernel_and_clears_caches():
    original = nn_tensor._ew_add
    with pytest.raises(RuntimeError, match="boom"):
        with seeded_fused_fault():
            assert nn_tensor._ew_add is not original
            raise RuntimeError("boom")
    assert nn_tensor._ew_add is original
