"""Golden-trace regression: stored goldens match recomputation, and the
regen CLI enforces its contract (check mode, dirty-tree refusal,
golden-dir override)."""

import json

import pytest

from repro.qa import regen
from repro.qa.golden import (
    SCENARIOS,
    check_scenario,
    compare_golden,
    dump_golden,
    golden_dir,
    golden_path,
    load_golden,
)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matches_stored_golden(name):
    assert check_scenario(name) == []


# ---------------------------------------------------------------------- #
# compare_golden semantics
# ---------------------------------------------------------------------- #
def test_compare_accepts_float_drift_within_tolerance():
    expected = {"final_objective": 1.0, "trace": [0.5, 0.25]}
    actual = {"final_objective": 1.0 + 1e-9, "trace": [0.5, 0.25 + 1e-10]}
    assert compare_golden(expected, actual) == []


def test_compare_rejects_float_drift_beyond_tolerance():
    problems = compare_golden({"final_objective": 1.0},
                              {"final_objective": 1.001})
    assert len(problems) == 1 and "final_objective" in problems[0]


def test_compare_digest_fields_are_exact():
    problems = compare_golden({"perturbation_digest": "aa"},
                              {"perturbation_digest": "ab"})
    assert len(problems) == 1 and "perturbation_digest" in problems[0]


def test_compare_count_fields_are_exact():
    assert compare_golden({"service_query_count": 10},
                          {"service_query_count": 11})
    assert compare_golden({"service_query_count": 10},
                          {"service_query_count": 10}) == []


def test_compare_reports_missing_and_extra_fields():
    problems = compare_golden({"a_count": 1}, {"b_count": 2})
    assert any("missing field 'a_count'" in p for p in problems)
    assert any("unexpected field 'b_count'" in p for p in problems)


def test_dump_golden_is_canonical():
    data = {"b": 1, "a": [1.5, 2.5]}
    text = dump_golden(data)
    assert text == dump_golden(json.loads(text))
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"b"')


# ---------------------------------------------------------------------- #
# Golden-dir override and the regen CLI
# ---------------------------------------------------------------------- #
def test_golden_dir_honors_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_QA_GOLDEN_DIR", str(tmp_path))
    assert golden_dir() == tmp_path
    assert golden_path("x") == tmp_path / "x.json"
    monkeypatch.delenv("REPRO_QA_GOLDEN_DIR")
    assert golden_dir().name == "goldens"


def test_regen_check_passes_on_committed_goldens():
    assert regen.main(["--check", "sparse_query"]) == 0


def test_regen_check_flags_tampered_golden(monkeypatch, tmp_path, capsys):
    document = load_golden("sparse_query")
    document["perturbation_digest"] = "0" * 32
    monkeypatch.setenv("REPRO_QA_GOLDEN_DIR", str(tmp_path))
    (tmp_path / "sparse_query.json").write_text(dump_golden(document))
    assert regen.main(["--check", "sparse_query"]) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_regen_check_flags_missing_golden(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_QA_GOLDEN_DIR", str(tmp_path))
    assert regen.main(["--check", "sparse_query"]) == 1
    assert "MISSING" in capsys.readouterr().out


def test_regen_refuses_dirty_tree(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_QA_GOLDEN_DIR", str(tmp_path))
    monkeypatch.setattr(regen, "_dirty_tracked_files",
                        lambda: [" M src/repro/qa/golden.py"])
    assert regen.main(["sparse_query"]) == 2
    assert list(tmp_path.iterdir()) == []  # nothing written


def test_regen_force_writes_then_check_passes(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_QA_GOLDEN_DIR", str(tmp_path))
    monkeypatch.setattr(regen, "_dirty_tracked_files",
                        lambda: [" M src/repro/qa/golden.py"])
    assert regen.main(["--force", "sparse_query"]) == 0
    assert (tmp_path / "sparse_query.json").exists()
    assert regen.main(["--check", "sparse_query"]) == 0


def test_regen_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        regen.main(["no_such_scenario"])
