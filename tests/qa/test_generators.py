"""Generator strategies: seeded determinism and shrink behaviour."""

import numpy as np
import pytest

from repro.qa.generators import (
    Strategy,
    draw_gallery,
    draw_id_list,
    shrink_array,
    shrink_int,
    shrink_shape,
    shrink_to_minimal,
)
from repro.qa.oracle import all_pairs


def _case_fingerprint(case):
    return repr({key: (value.tolist() if isinstance(value, np.ndarray)
                       else value)
                 for key, value in sorted(case.items())})


@pytest.mark.parametrize("name", sorted(all_pairs()))
def test_every_strategy_is_seed_deterministic(name):
    strategy = all_pairs()[name].strategy
    first = [strategy.sample(np.random.default_rng(99)) for _ in range(3)]
    second = [strategy.sample(np.random.default_rng(99)) for _ in range(3)]
    assert [_case_fingerprint(c) for c in first] == \
        [_case_fingerprint(c) for c in second]


def test_shrink_int_moves_toward_low():
    assert list(shrink_int(1)(40)) == [1, 20]
    assert list(shrink_int(1)(2)) == [1]
    assert list(shrink_int(1)(1)) == []


def test_shrink_shape_halves_one_axis_at_a_time():
    candidates = list(shrink_shape()( (4, 1, 8) ))
    assert (2, 1, 8) in candidates
    assert (4, 1, 4) in candidates
    assert all(len(c) == 3 for c in candidates)


def test_shrink_array_halves_axes():
    shapes = {c.shape for c in shrink_array(np.zeros((4, 6)))}
    assert shapes == {(2, 6), (4, 3)}


def test_strategy_shrink_changes_one_key_per_candidate():
    strategy = Strategy("s", lambda rng: {"a": 8, "b": 8},
                        {"a": shrink_int(1), "b": shrink_int(1)})
    case = {"a": 8, "b": 8}
    for candidate in strategy.shrink(case):
        changed = [k for k in case if candidate[k] != case[k]]
        assert len(changed) == 1


def test_shrink_to_minimal_finds_boundary():
    strategy = Strategy("s", lambda rng: {"n": 40}, {"n": shrink_int(1)})
    minimal = shrink_to_minimal(strategy, {"n": 40},
                                fails=lambda case: case["n"] >= 3)
    assert minimal == {"n": 3}


def test_draw_helpers_are_deterministic():
    a = draw_gallery(np.random.default_rng(5), 6, 3)
    b = draw_gallery(np.random.default_rng(5), 6, 3)
    assert a[0] == b[0] and a[1] == b[1]
    np.testing.assert_array_equal(a[2], b[2])
    assert draw_id_list(np.random.default_rng(5), 10, 4) == \
        draw_id_list(np.random.default_rng(5), 10, 4)
