"""The example scripts must at least parse and compile.

Running them end-to-end takes minutes each (they build real victim
systems); full runs are exercised manually / in CI nightlies.  Here we
guarantee they stay syntactically valid and import only existing public
API names.
"""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every ``from repro.x import y`` in an example must resolve."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and \
                node.module.startswith("repro"):
            module = __import__(node.module, fromlist=[a.name for a in
                                                       node.names])
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart + ≥3 domain scenarios