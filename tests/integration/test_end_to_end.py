"""End-to-end pipeline tests: victim → stealing → surrogate → DUO → metrics."""

import numpy as np

from repro.attacks import DUOAttack
from repro.attacks.objective import RetrievalObjective
from repro.metrics import ap_at_m, ndcg_similarity
from repro.surrogate import steal_training_set, train_surrogate
from repro.training import build_victim_system
from repro.video import load_dataset


def test_full_pipeline_runs_and_reports(tmp_path):
    dataset = load_dataset("ucf101", num_classes=6, train_videos=30,
                           test_videos=10, height=16, width=16,
                           num_frames=8, seed=33)
    victim = build_victim_system(dataset, backbone="resnet18", loss="arcface",
                                 feature_dim=16, width=2, epochs=1, m=10,
                                 seed=3)
    stolen = steal_training_set(victim.service, dataset.test,
                                victim.video_lookup, rounds=2, branch=2,
                                rng=4)
    surrogate = train_surrogate(stolen, backbone="c3d", feature_dim=16,
                                width=2, epochs=1, seed=5)

    original, target = dataset.sample_attack_pairs(1, rng_or_seed=6)[0]
    attack = DUOAttack(surrogate, victim.service,
                       k=int(original.pixels.size * 0.3), n=4, tau=30,
                       iter_num_q=15, iter_num_h=1, transfer_outer_iters=1,
                       theta_steps=3, rng=7)
    result = attack.run(original, target)

    target_ids = victim.service.query(target).ids
    adversarial_ids = victim.service.query(result.adversarial).ids
    ap = ap_at_m(adversarial_ids, target_ids)

    # Structural invariants of a complete run.
    assert 0.0 <= ap <= 1.0
    assert result.queries_used >= 3
    assert result.stats.spa > 0
    assert result.stats.frames <= 4
    assert result.adversarial.pixels.min() >= 0.0
    assert result.adversarial.pixels.max() <= 1.0
    assert np.isfinite(result.objective_trace).all()


def test_objective_decrease_tracks_list_movement(tiny_victim, tiny_surrogate,
                                                 attack_pair):
    """When T decreases, the adversarial list moved toward the target's."""
    original, target = attack_pair
    objective = RetrievalObjective(tiny_victim.service, original, target)
    baseline_similarity = ndcg_similarity(
        tiny_victim.service.query(original).ids, objective.target_ids
    )
    attack = DUOAttack(tiny_surrogate, tiny_victim.service, k=150, n=4,
                       tau=40, iter_num_q=20, iter_num_h=1,
                       transfer_outer_iters=1, theta_steps=3, rng=8)
    result = attack.run(original, target)
    final_similarity = ndcg_similarity(
        tiny_victim.service.query(result.adversarial).ids,
        objective.target_ids,
    )
    trace = result.objective_trace
    if trace and min(trace) < trace[0]:
        assert final_similarity >= baseline_similarity - 1e-9


def test_attack_does_not_mutate_original(tiny_victim, tiny_surrogate,
                                         attack_pair):
    original, target = attack_pair
    pixels_before = original.pixels.copy()
    attack = DUOAttack(tiny_surrogate, tiny_victim.service, k=60, n=2,
                       tau=30, iter_num_q=5, iter_num_h=1,
                       transfer_outer_iters=1, theta_steps=2, rng=9)
    attack.run(original, target)
    np.testing.assert_array_equal(original.pixels, pixels_before)


def test_sharded_and_degraded_retrieval_consistency(tiny_victim,
                                                    tiny_dataset):
    """Failure injection: retrieval stays usable when one shard dies."""
    query = tiny_dataset.test[0]
    full = tiny_victim.engine.retrieve(query, m=6)
    node = tiny_victim.engine.gallery.nodes[0]
    dead_ids = {entry.video_id for entry in
                node.index.search(np.zeros(tiny_victim.engine.extractor
                                           .feature_dim), k=10_000)}
    node.take_down()
    try:
        degraded = tiny_victim.engine.retrieve(query, m=6)
        # Degraded results exclude exactly the dead shard's content and
        # otherwise preserve the full ranking's order.
        assert not (set(degraded.ids) & dead_ids)
        expected = [vid for vid in full.ids if vid not in dead_ids]
        assert degraded.ids[: len(expected)] == expected[: len(degraded.ids)]
    finally:
        node.bring_up()
