"""Mutating timelines: event generation, canonical order, oracle smoke.

The full property coverage lives in the ``serving.mutating_timeline``
qa oracle; these tests pin the building blocks (merge order, churn
generation, compaction accounting) plus one end-to-end smoke of the
sequential-vs-pooled equivalence, and the attack-under-churn
acceptance: a registry attack keeps its exact query ledger while the
gallery mutates underneath it.
"""

import numpy as np
import pytest

from repro.attacks.registry import build_attack
from repro.attacks.config import AttackConfig
from repro.obs import counter
from repro.qa.invariants import check_budget_conservation
from repro.qa.world import build_world
from repro.serving import (
    AddVideo,
    DeleteVideo,
    ReembedVideo,
    Request,
    ServingConfig,
    ServingFrontend,
    TenantSpec,
    generate_churn,
    generate_timeline,
    merge_timeline,
    replay_sequential_mutating,
)
from repro.serving.events import apply_gallery_event
from repro.video.types import Video


def make_video(seed: int, video_id: str, label: int = 50) -> Video:
    rng = np.random.default_rng(seed)
    return Video(pixels=rng.random((8, 16, 16, 3)), label=label,
                 video_id=video_id)


class TestMergeTimeline:
    def test_events_win_ties_and_order_is_stable(self):
        video = make_video(0, "x")
        request = Request("alice", video, arrival_s=0.5)
        early = DeleteVideo(0.25, "a")
        tied = AddVideo(0.5, make_video(1, "b"))
        late = ReembedVideo(0.75, make_video(2, "c"))
        merged = merge_timeline([request, late, tied, early])
        assert merged == [early, tied, request, late]

    def test_requests_keep_relative_order_at_equal_times(self):
        video = make_video(0, "x")
        first = Request("alice", video, arrival_s=0.1)
        second = Request("bob", video, arrival_s=0.1)
        assert merge_timeline([first, second]) == [first, second]
        assert merge_timeline([second, first]) == [second, first]


class TestGenerateChurn:
    def test_deterministic_and_counted(self):
        ids = [f"v{i}" for i in range(6)]
        first = generate_churn(9, ids, adds=3, deletes=2, reembeds=2)
        second = generate_churn(9, ids, adds=3, deletes=2, reembeds=2)
        assert len(first) == 7
        assert [type(e).__name__ for e in first] == \
            [type(e).__name__ for e in second]
        assert [e.arrival_s for e in first] == [e.arrival_s for e in second]
        assert sorted(e.arrival_s for e in first) == \
            [e.arrival_s for e in first]

    def test_mutations_only_target_live_ids(self):
        ids = [f"v{i}" for i in range(4)]
        events = generate_churn(3, ids, adds=2, deletes=4, reembeds=3)
        live = set(ids)
        for event in events:
            if isinstance(event, AddVideo):
                live.add(event.video.video_id)
            elif isinstance(event, DeleteVideo):
                assert event.video_id in live
                live.remove(event.video_id)
            else:
                assert event.video.video_id in live

    def test_events_validate_arrival(self):
        with pytest.raises(ValueError):
            DeleteVideo(-0.1, "v0")


class TestApplyEvent:
    def test_apply_counts_and_compacts(self):
        from repro.hashindex import CompactionPolicy
        world = build_world(71, num_videos=10, num_nodes=2, replication=1)
        engine = world.service.engine
        engine.enable_churn()
        live = [video.video_id for video in world.gallery_videos]
        eager = CompactionPolicy(min_dead_fraction=0.01, min_dead_rows=1)
        before = counter("serving.gallery_events", kind="DeleteVideo").value
        compactions = counter("serving.compactions").value
        apply_gallery_event(engine, DeleteVideo(0.0, live[0]), eager)
        assert counter("serving.gallery_events",
                       kind="DeleteVideo").value == before + 1
        assert counter("serving.compactions").value == compactions + 1
        assert live[0] not in engine.gallery.live_ids()


class TestMutatingEquivalence:
    def _world_and_timeline(self, seed=5):
        world = build_world(seed % 997, num_videos=12, num_nodes=3,
                            replication=1)
        specs = [TenantSpec(f"tenant-{i}", 150.0 + 50.0 * i, 5)
                 for i in range(2)]
        requests = generate_timeline(seed + 11, specs, world.gallery_videos)
        horizon = max(request.arrival_s for request in requests)
        events = generate_churn(
            seed, [video.video_id for video in world.gallery_videos],
            adds=2, deletes=3, reembeds=2, horizon_s=horizon)
        return world, list(requests) + list(events)

    def test_sequential_vs_pooled_smoke(self):
        config = ServingConfig(max_batch_size=4, max_wait_s=0.003,
                               queue_capacity=512, workers=3)
        runs = []
        for pooled in (False, True):
            world, timeline = self._world_and_timeline()
            if pooled:
                report = ServingFrontend(world.service, config).run(timeline)
            else:
                report = replay_sequential_mutating(timeline, world.service,
                                                    config)
            runs.append((report, world.service))
        reference, fast = runs[0][0], runs[1][0]
        assert reference.gallery_events == fast.gallery_events > 0
        assert [r.status for r in reference.responses] == \
            [r.status for r in fast.responses]
        assert reference.served_by_tenant == fast.served_by_tenant
        assert (runs[0][1].query_count, runs[0][1].queries_refunded) == \
            (runs[1][1].query_count, runs[1][1].queries_refunded)
        for mine, theirs in zip(reference.responses, fast.responses):
            if mine.ok:
                assert [e.video_id for e in mine.result.entries] == \
                    [e.video_id for e in theirs.result.entries]
        for _, service in runs:
            check_budget_conservation(service)


class TestAttackUnderChurn:
    def test_attack_stays_within_budget_across_mutations(self):
        world = build_world(73, num_videos=8, query_budget=60)
        service, engine = world.service, world.service.engine
        engine.enable_churn()
        config = AttackConfig(strategy="rl-sparse", k=40, n=2, tau=30.0,
                              iterations=4, budget=25)
        attack = build_attack(config, service=service)
        first = attack.run(world.original, world.target)
        assert 0 < first.queries <= 25

        # The gallery mutates between attack phases, as it would under
        # live traffic: one victim deleted, one re-embedded, one added.
        live = engine.gallery.live_ids()
        victim = next(video_id for video_id in live
                      if video_id != world.original.video_id)
        engine.remove_video(victim)
        mover = next(video_id for video_id in engine.gallery.live_ids()
                     if video_id not in (victim, world.original.video_id))
        mover_video = next(video for video in world.gallery_videos
                           if video.video_id == mover)
        engine.reembed_video(mover_video)
        engine.add_video(make_video(99, "churn-new", label=77))

        resumed = build_attack(config, service=service)
        second = resumed.run(first.adversarial, world.target)
        total = service.query_count
        assert 0 < second.queries <= 25
        assert total <= 60, "attack blew the global budget under churn"
        check_budget_conservation(service)
        # Tombstones must not resurrect in post-churn retrieval lists.
        final = engine.retrieve(second.adversarial, m=len(live) + 1)
        returned = {entry.video_id for entry in final.entries}
        assert victim not in returned
        assert "churn-new" in engine.gallery.live_ids()
