"""VirtualClock: monotonic, manually advanced, rewind-proof."""

import pytest

from repro.serving import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now_s == 0.0


def test_advance_to_and_by_move_forward():
    clock = VirtualClock(1.0)
    assert clock.advance_to(1.5) == 1.5
    assert clock.advance_by(0.25) == 1.75
    assert clock.now_s == 1.75


def test_advance_to_same_instant_is_allowed():
    clock = VirtualClock(2.0)
    assert clock.advance_to(2.0) == 2.0


def test_rewind_raises():
    clock = VirtualClock(3.0)
    with pytest.raises(ValueError, match="rewind"):
        clock.advance_to(2.9)
    with pytest.raises(ValueError, match="rewind"):
        clock.advance_by(-0.1)
    assert clock.now_s == 3.0
