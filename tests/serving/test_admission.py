"""Admission control: token buckets, tenant budgets, ledgers."""

import pytest

from repro.serving import (
    AdmissionController,
    ServingConfig,
    TenantPolicy,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) == 0.0
        retry = bucket.try_take(0.0)
        assert retry == pytest.approx(0.1)

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) > 0.0
        assert bucket.try_take(0.2) == 0.0  # 0.2 s * 10/s = 2 tokens > 1

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=2)
        bucket.try_take(10.0)  # long idle; still only burst tokens
        assert bucket.tokens == pytest.approx(1.0)

    def test_retry_hint_shrinks_as_tokens_accrue(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        bucket.try_take(0.0)
        first = bucket.try_take(0.0)
        later = bucket.try_take(0.05)
        assert 0.0 < later < first


class TestAdmissionController:
    def config(self, **kwargs):
        return ServingConfig(max_batch_size=2, **kwargs)

    def test_unlimited_default_tenant_always_admits(self):
        admission = AdmissionController(self.config())
        for step in range(10):
            assert admission.admit("anyone", float(step)) is None
        assert admission.ledger("anyone").admitted == 10

    def test_rate_limited_tenant_gets_retry_after(self):
        config = self.config(
            tenants={"slow": TenantPolicy(rate_per_s=10.0, burst=1)})
        admission = AdmissionController(config)
        assert admission.admit("slow", 0.0) is None
        rejection = admission.admit("slow", 0.0)
        assert rejection.reason == "rate_limited"
        assert rejection.retry_after_s == pytest.approx(0.1)
        assert admission.ledger("slow").rejected == 1

    def test_tenant_budget_counts_only_unrefunded_slots(self):
        config = self.config(
            default_tenant=TenantPolicy(query_budget=2))
        admission = AdmissionController(config)
        assert admission.admit("t", 0.0) is None
        assert admission.admit("t", 0.0) is None
        assert admission.admit("t", 0.0).reason == "tenant_budget"
        # A refund hands the slot back: the tenant may try again.
        admission.refund("t")
        assert admission.admit("t", 0.0) is None

    def test_ledger_conservation(self):
        admission = AdmissionController(self.config())
        for _ in range(5):
            admission.admit("t", 0.0)
        admission.mark_served("t")
        admission.mark_served("t")
        admission.refund("t")
        ledger = admission.ledger("t")
        assert ledger.admitted == \
            ledger.served + ledger.refunded + ledger.in_flight
        assert ledger.in_flight == 2
        assert ledger.budget_used == 4

    def test_served_by_tenant_is_sorted(self):
        admission = AdmissionController(self.config())
        for tenant in ("zeta", "alpha"):
            admission.admit(tenant, 0.0)
            admission.mark_served(tenant)
        assert list(admission.served_by_tenant()) == ["alpha", "zeta"]
