"""Worker-pool executor: scheduling math, fallbacks, and equivalence."""

import pytest

from repro.obs import counter
from repro.qa.invariants import check_budget_conservation
from repro.qa.world import build_world, tiny_videos
from repro.resilience import FaultPlan
from repro.serving import (
    ServingConfig,
    ServingFrontend,
    TenantSpec,
    WorkerPool,
    default_workers,
    generate_timeline,
)
from repro.serving.pool import _Immediate


def make_timeline(world, seed=11, per_tenant=8):
    specs = [TenantSpec(f"tenant-{i}", 150.0 + 50.0 * i, per_tenant)
             for i in range(3)]
    return generate_timeline(seed, specs, world.gallery_videos)


def config_with(workers: int, **overrides) -> ServingConfig:
    base = dict(max_batch_size=4, max_wait_s=0.003, queue_capacity=512,
                workers=workers)
    base.update(overrides)
    return ServingConfig(**base)


class TestWorkerPoolScheduling:
    def test_pick_worker_earliest_free_lowest_index(self):
        pool = WorkerPool(3)
        pool.free_at_s = [0.5, 0.2, 0.2]
        assert pool.pick_worker() == 1  # earliest-free tie → lowest index
        pool.free_at_s = [0.1, 0.2, 0.3]
        assert pool.pick_worker() == 0

    def test_occupy_books_virtual_time(self):
        pool = WorkerPool(2)
        assert pool.occupy(0, 1.0, 0.25) == 1.25
        assert pool.free_at_s == [1.25, 0.0]
        # A dispatch arriving before the worker is free queues on it.
        assert pool.occupy(0, 1.1, 0.25) == 1.5
        assert pool.min_free_s == 0.0
        assert pool.busy_s[0] == 0.5

    def test_single_worker_runs_inline(self):
        with WorkerPool(1) as pool:
            future = pool.submit(lambda x: x + 1, 41)
            assert isinstance(future, _Immediate)
            assert future.result() == 42

    def test_immediate_reraises_at_result(self):
        future = _Immediate(lambda: 1 / 0, ())
        with pytest.raises(ZeroDivisionError):
            future.result()

    def test_multi_worker_executes_on_threads(self):
        import threading
        with WorkerPool(3) as pool:
            idents = {pool.submit(threading.get_ident).result()
                      for _ in range(6)}
        assert threading.get_ident() not in idents


class TestPooledEquivalence:
    def test_pooled_matches_single_worker_exactly(self):
        reports = {}
        for workers in (1, 3):
            world = build_world(61, num_videos=8)
            timeline = make_timeline(world)
            reports[workers] = (
                ServingFrontend(world.service,
                                config_with(workers)).run(timeline),
                world.service)
        single, single_service = reports[1]
        pooled, pooled_service = reports[3]
        assert pooled.workers == 3 and single.workers == 1
        assert [r.status for r in single.responses] == \
            [r.status for r in pooled.responses]
        assert single.served_by_tenant == pooled.served_by_tenant
        assert (single_service.query_count,
                single_service.queries_refunded) == \
            (pooled_service.query_count, pooled_service.queries_refunded)
        for mine, theirs in zip(single.responses, pooled.responses):
            if mine.ok:
                assert [e.video_id for e in mine.result.entries] == \
                    [e.video_id for e in theirs.result.entries]
        check_budget_conservation(pooled_service)

    def test_more_workers_never_lengthen_the_virtual_makespan(self):
        makespans = []
        for workers in (1, 2, 4):
            world = build_world(61, num_videos=8)
            timeline = make_timeline(world, per_tenant=12)
            config = config_with(workers, service_base_s=0.004,
                                 service_per_item_s=0.001)
            makespans.append(
                ServingFrontend(world.service, config).run(timeline)
                .makespan_s)
        assert makespans[0] >= makespans[1] >= makespans[2]

    def test_pooled_replay_is_deterministic(self):
        digests = []
        for _ in range(2):
            world = build_world(62, num_videos=8)
            report = ServingFrontend(world.service, config_with(3)).run(
                make_timeline(world))
            digests.append((
                [r.status for r in report.responses],
                report.served_by_tenant, report.makespan_s))
        assert digests[0] == digests[1]


class TestFallbacks:
    def test_fault_plan_forces_single_worker(self):
        world = build_world(63, num_videos=8)
        plan = FaultPlan(seed=1).outage("node-0", 10_000, 10_001)
        before = counter("serving.pool_fallbacks", reason="fault_plan").value
        with plan.install(world.service.engine.gallery):
            report = ServingFrontend(world.service, config_with(4)).run(
                make_timeline(world, per_tenant=3))
        assert report.workers == 1
        assert counter("serving.pool_fallbacks",
                       reason="fault_plan").value == before + 1

    def test_instance_query_override_forces_single_worker(self):
        world = build_world(64, num_videos=8)
        service = world.service
        inner = type(service).query
        service.query = lambda video, m=None: inner(service, video, m)
        report = ServingFrontend(service, config_with(4)).run(
            make_timeline(world, per_tenant=3))
        assert report.workers == 1
        assert report.served > 0
        check_budget_conservation(service)

    def test_workers_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_SERVING_WORKERS", "4")
        assert default_workers() == 4
        assert ServingConfig().workers == 4

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(workers=0)
