"""Fixtures for the serving front-end suite: tiny worlds and timelines."""

import pytest

from repro.qa.world import build_world, tiny_videos


@pytest.fixture
def world():
    """A fresh deterministic retrieval world per test."""
    return build_world(31)


@pytest.fixture
def query_videos():
    """A small pool of query videos, disjoint from the gallery labels."""
    return tiny_videos(77, 4, label_base=5)
