"""Concurrency stress: readers and a writer hammer one ShardedGallery.

Two modes over the same worker logic (see
:class:`repro.qa.concurrency.BarrierHarness`):

* the tier-1 smoke runs *stepped* — real threads, one step at a time
  under a seeded scheduler, so the interleaving replays exactly;
* the ``slow``/``churn``-marked stress runs *free* — threads race for
  real, hunting interleavings the deterministic schedule cannot reach.

Invariants in both: no torn reads (every retrieval list is coherent
with the snapshot version the reader pinned), gallery accounting
conserves (live size == initial + adds - deletes, version counts every
mutation), and the obs counters match the operations performed.
"""

import threading

import numpy as np
import pytest

from repro.obs import counter, thread_safe_metrics
from repro.qa.concurrency import BarrierHarness
from repro.qa.generators import draw_clustered_gallery
from repro.qa.invariants import check_snapshot_consistency
from repro.retrieval import ShardedGallery

DIM = 8


class ChurnWorld:
    """One gallery plus the shared bookkeeping a stress run needs."""

    def __init__(self, seed: int = 0, rows: int = 24, nodes: int = 3):
        rng = np.random.default_rng(seed)
        ids, labels, features = draw_clustered_gallery(rng, rows, DIM)
        self.gallery = ShardedGallery(num_nodes=nodes)
        for video_id, label, feature in zip(ids, labels, features):
            self.gallery.add(video_id, label, feature)
        self.gallery.enable_churn()
        self.queries = features[:6]
        self.initial = rows
        # Owned by the single writer thread; readers never touch them.
        self.adds = 0
        self.deletes = 0
        self.reembeds = 0

    def writer_step(self, step: int, rng: np.random.Generator) -> str:
        gallery = self.gallery
        live = gallery.live_ids()
        choice = int(rng.integers(3)) if len(live) > 4 else 0
        if choice == 0:
            video_id = f"fresh-{self.adds}"
            gallery.add(video_id, 90, rng.normal(size=DIM))
            self.adds += 1
            return f"add:{video_id}"
        victim = live[int(rng.integers(len(live)))]
        if choice == 1:
            gallery.delete(victim)
            self.deletes += 1
            return f"delete:{victim}"
        gallery.reembed(victim, 91, rng.normal(size=DIM))
        self.reembeds += 1
        return f"reembed:{victim}"

    def reader_step(self, thread_id: int, step: int,
                    rng: np.random.Generator) -> tuple:
        gallery = self.gallery
        snap = gallery.snapshot()
        query = self.queries[(thread_id + step) % len(self.queries)]
        results = gallery.search(query, k=5, snapshot=snap)
        check_snapshot_consistency(gallery, snap, results, k=5)
        return snap.version, tuple(entry.video_id for entry in results)

    def worker(self, thread_id: int, step: int, rng: np.random.Generator):
        if thread_id == 0:
            return self.writer_step(step, rng)
        return self.reader_step(thread_id, step, rng)

    def check_conservation(self) -> None:
        gallery = self.gallery
        assert len(gallery) == self.initial + self.adds - self.deletes
        mutations = self.adds + self.deletes + self.reembeds
        assert gallery.version == mutations
        assert gallery.physical_rows >= len(gallery)
        live = gallery.live_ids()
        assert len(live) == len(set(live)) == len(gallery)


def run_stress(threads: int, steps: int, seed: int, free: bool):
    world = ChurnWorld(seed=seed)
    before = {name: counter(f"gallery.{name}").value
              for name in ("adds", "deletes", "reembeds")}
    harness = BarrierHarness(threads=threads, steps=steps, seed=seed)
    with thread_safe_metrics():
        outcome = harness.run_free(world.worker) if free else \
            harness.run_stepped(world.worker)
    world.check_conservation()
    for name in ("adds", "deletes", "reembeds"):
        assert counter(f"gallery.{name}").value - before[name] == \
            getattr(world, name), f"gallery.{name} counter drifted"
    return world, outcome


class TestSteppedSmoke:
    def test_no_torn_reads_under_deterministic_interleaving(self):
        world, outcome = run_stress(threads=3, steps=10, seed=4, free=False)
        assert not outcome.errors
        versions = [value[0] for key, value in outcome.results.items()
                    if key[0] != 0]
        assert max(versions) > 0, "readers never observed a mutation"

    def test_same_seed_replays_the_same_schedule_and_reads(self):
        first = run_stress(threads=3, steps=10, seed=7, free=False)[1]
        second = run_stress(threads=3, steps=10, seed=7, free=False)[1]
        assert first.schedule == second.schedule
        assert first.results == second.results

    def test_worker_threads_are_real_threads(self):
        world = ChurnWorld(seed=2)
        main = threading.get_ident()
        harness = BarrierHarness(threads=2, steps=3, seed=0)
        idents = harness.run_stepped(
            lambda tid, step, rng: threading.get_ident()).results
        assert main not in set(idents.values())


@pytest.mark.slow
@pytest.mark.churn
class TestFreeRunningStress:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_no_torn_reads_under_real_races(self, seed):
        world, outcome = run_stress(threads=4, steps=60, seed=seed,
                                    free=True)
        assert not outcome.errors

    def test_many_readers_one_writer_long_haul(self):
        world, outcome = run_stress(threads=6, steps=120, seed=11,
                                    free=True)
        assert not outcome.errors
        assert world.adds + world.deletes + world.reembeds == 120
