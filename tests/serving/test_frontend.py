"""ServingFrontend: scheduling, equivalence, failure and budget paths."""

import numpy as np
import pytest

from repro.errors import (
    QueryBudgetExceeded,
    RetrievalUnavailable,
    ServiceOverloaded,
)
from repro.obs import counter
from repro.qa.world import build_world
from repro.resilience import FaultPlan
from repro.serving import (
    Request,
    ServingConfig,
    ServingFrontend,
    TenantPolicy,
    TenantSpec,
    closed_spaced_timeline,
    generate_timeline,
    replay_sequential,
)


def _statuses(report):
    return [response.status for response in report.responses]


class TestScheduling:
    def test_full_batches_coalesce(self, world, query_videos):
        requests = closed_spaced_timeline(["a", "b"], query_videos, 4, 1e-4)
        config = ServingConfig(max_batch_size=4, max_wait_s=0.05)
        report = ServingFrontend(world.service, config).run(requests)
        assert report.served == 8
        assert report.batches == 2
        assert {response.batch_size for response in report.responses} == {4}

    def test_max_wait_deadline_flushes_partial_batch(self, world,
                                                     query_videos):
        # Two arrivals far apart: each must be flushed alone once its
        # max_wait deadline passes, not held for a full batch.
        requests = [
            Request("a", query_videos[0], arrival_s=0.0),
            Request("a", query_videos[1], arrival_s=1.0),
        ]
        config = ServingConfig(max_batch_size=8, max_wait_s=0.01,
                               service_base_s=0.004,
                               service_per_item_s=0.001)
        report = ServingFrontend(world.service, config).run(requests)
        assert report.batches == 2
        first, second = report.responses
        # The first request waits out its max_wait deadline (a later
        # arrival might still join the batch); the second is the last
        # arrival, so nothing can join and it dispatches immediately.
        assert first.completed_s == pytest.approx(0.01 + 0.005)
        assert second.completed_s == pytest.approx(1.0 + 0.005)

    def test_deterministic_replay(self, query_videos):
        specs = [TenantSpec("fast", 300.0, 12),
                 TenantSpec("slow", 80.0, 6, priority="bulk")]
        timeline = generate_timeline(5, specs, query_videos)
        config = ServingConfig(max_batch_size=4, queue_capacity=16)
        reports = [
            ServingFrontend(build_world(31).service, config).run(timeline)
            for _ in range(2)
        ]
        assert _statuses(reports[0]) == _statuses(reports[1])
        assert [r.completed_s for r in reports[0].responses] == \
            [r.completed_s for r in reports[1].responses]
        assert reports[0].makespan_s == reports[1].makespan_s
        assert reports[0].served_by_tenant == reports[1].served_by_tenant

    def test_report_statistics(self, world, query_videos):
        requests = closed_spaced_timeline(["a"], query_videos, 6, 1e-4)
        config = ServingConfig(max_batch_size=3, max_wait_s=0.001)
        report = ServingFrontend(world.service, config).run(requests)
        assert report.throughput_qps > 0
        latencies = report.latencies()
        assert len(latencies) == 6
        assert report.latency_percentile(50) <= report.latency_percentile(99)
        assert report.mean_batch_size() == pytest.approx(
            report.dispatched / report.batches)
        assert report.shed_rate == 0.0


class TestSequentialEquivalence:
    def test_matches_sequential_replay(self, query_videos):
        specs = [TenantSpec("alice", 250.0, 8),
                 TenantSpec("bob", 120.0, 6),
                 TenantSpec("mallory", 400.0, 8)]
        timeline = generate_timeline(9, specs, query_videos)
        config = ServingConfig(
            max_batch_size=4, max_wait_s=0.002, queue_capacity=128,
            tenants={"mallory": TenantPolicy(rate_per_s=150.0, burst=2)})

        batched_world = build_world(31)
        sequential_world = build_world(31)
        batched = ServingFrontend(batched_world.service, config).run(timeline)
        sequential = replay_sequential(timeline, sequential_world.service,
                                       config)

        assert _statuses(batched) == _statuses(sequential)
        assert batched.served_by_tenant == sequential.served_by_tenant
        for ours, theirs in zip(batched.responses, sequential.responses):
            if ours.ok:
                assert ours.result.ids == theirs.result.ids
        for attr in ("query_count", "queries_issued", "queries_refunded"):
            assert getattr(batched_world.service, attr) == \
                getattr(sequential_world.service, attr), attr


class TestAdmissionPaths:
    def test_rate_limited_request_carries_retry_after(self, world,
                                                      query_videos):
        config = ServingConfig(
            max_batch_size=2,
            default_tenant=TenantPolicy(rate_per_s=10.0, burst=1))
        requests = [Request("t", query_videos[0], 0.0),
                    Request("t", query_videos[1], 0.0)]
        report = ServingFrontend(world.service, config).run(requests)
        assert _statuses(report) == ["ok", "rejected"]
        rejected = report.responses[1]
        assert rejected.reason == "rate_limited"
        assert isinstance(rejected.error, ServiceOverloaded)
        assert rejected.error.retry_after_s == pytest.approx(0.1)
        assert rejected.retry_after_s == pytest.approx(0.1)

    def test_queue_overflow_rejects_with_429(self, world, query_videos):
        config = ServingConfig(max_batch_size=2, queue_capacity=2,
                               max_wait_s=0.01)
        requests = [Request("t", query_videos[i % len(query_videos)], 0.0)
                    for i in range(6)]
        report = ServingFrontend(world.service, config).run(requests)
        statuses = _statuses(report)
        assert statuses.count("rejected") == 4
        assert statuses.count("ok") == 2
        overflow = next(r for r in report.responses if r.status == "rejected")
        assert overflow.reason == "queue_full"
        assert isinstance(overflow.error, ServiceOverloaded)
        assert overflow.error.retry_after_s is not None

    def test_shed_bulk_eviction_refunds_the_victim(self, world,
                                                   query_videos):
        config = ServingConfig(
            max_batch_size=4, queue_capacity=2, max_wait_s=0.01,
            tenants={"bulk": TenantPolicy(priority="bulk",
                                          query_budget=2)})
        requests = [
            Request("bulk", query_videos[0], 0.0),
            Request("bulk", query_videos[1], 0.0),
            Request("live", query_videos[2], 0.0),
        ]
        report = ServingFrontend(world.service, config).run(requests)
        assert _statuses(report) == ["ok", "shed", "ok"]
        shed = report.responses[1]
        assert shed.reason == "priority_eviction"
        assert isinstance(shed.error, ServiceOverloaded)
        # The refund hands the budget slot back: the bulk tenant's count
        # of served-or-in-flight work never exceeded its budget of 2.
        assert report.served_by_tenant == {"bulk": 1, "live": 1}


class TestBudgetPaths:
    def test_global_budget_presplit_matches_sequential(self, query_videos):
        batched_world = build_world(31, query_budget=3)
        sequential_world = build_world(31, query_budget=3)
        requests = closed_spaced_timeline(["a", "b"], query_videos, 3, 1e-4)
        config = ServingConfig(max_batch_size=4, max_wait_s=0.001)

        batched = ServingFrontend(batched_world.service, config).run(requests)
        sequential = replay_sequential(requests, sequential_world.service,
                                       config)
        assert _statuses(batched) == _statuses(sequential)
        assert _statuses(batched).count("budget") == 3
        budget_response = next(r for r in batched.responses
                               if r.status == "budget")
        assert isinstance(budget_response.error, QueryBudgetExceeded)
        # Over-budget queries are never issued, exactly like a
        # sequential caller whose fourth query raises before charging.
        for attr in ("query_count", "queries_issued", "queries_refunded"):
            assert getattr(batched_world.service, attr) == \
                getattr(sequential_world.service, attr), attr
        assert batched_world.service.queries_issued == 3

    def test_tenant_budget_rejections_are_deterministic(self, world,
                                                        query_videos):
        config = ServingConfig(
            max_batch_size=2,
            default_tenant=TenantPolicy(query_budget=2))
        requests = [Request("t", query_videos[i % len(query_videos)],
                            float(i) * 1e-4) for i in range(4)]
        report = ServingFrontend(world.service, config).run(requests)
        assert _statuses(report) == ["ok", "ok", "rejected", "rejected"]
        assert report.responses[2].reason == "tenant_budget"
        assert isinstance(report.responses[2].error, QueryBudgetExceeded)


class TestOutage:
    def test_outage_sheds_queued_work_with_exact_refunds(self, query_videos):
        world = build_world(21, num_nodes=1)
        requests = closed_spaced_timeline(["a", "b"], query_videos, 4, 2e-4)
        config = ServingConfig(max_batch_size=4, max_wait_s=0.001)
        frontend = ServingFrontend(world.service, config)
        shed_before = counter("serving.shed", reason="outage").value
        with FaultPlan().outage("node-0", 3, 7).install(
                world.engine.gallery):
            report = frontend.run(requests)

        statuses = _statuses(report)
        assert statuses[:4] == ["ok", "ok", "ok", "unavailable"]
        assert statuses.count("shed") + statuses.count("unavailable") == 5
        unavailable = next(r for r in report.responses
                           if r.status == "unavailable")
        assert isinstance(unavailable.error, RetrievalUnavailable)
        # Exact refunds: every issued query is either charged or
        # refunded, and only the three pre-outage queries were charged.
        service = world.service
        assert service.query_count == 3
        assert service.queries_issued == \
            service.query_count + service.queries_refunded
        assert counter("serving.shed", reason="outage").value > shed_before

        # The front end recovers once the outage window has passed.
        recovery = frontend.run(requests[:2])
        assert _statuses(recovery) == ["ok", "ok"]

    def test_prefix_results_match_sequential(self, query_videos):
        config = ServingConfig(max_batch_size=4, max_wait_s=0.001)
        requests = closed_spaced_timeline(["a"], query_videos, 4, 1e-4)

        batched_world = build_world(21, num_nodes=1)
        frontend = ServingFrontend(batched_world.service, config)
        with FaultPlan().outage("node-0", 2, 9).install(
                batched_world.engine.gallery):
            report = frontend.run(requests)

        sequential_world = build_world(21, num_nodes=1)
        sequential_results = []
        with FaultPlan().outage("node-0", 2, 9).install(
                sequential_world.engine.gallery):
            for request in requests:
                try:
                    sequential_results.append(
                        sequential_world.service.query(request.video))
                except RetrievalUnavailable:
                    break
        served = [r for r in report.responses if r.ok]
        assert [r.result.ids for r in served] == \
            [result.ids for result in sequential_results]


class TestWorkload:
    def test_generate_timeline_is_seed_deterministic(self, query_videos):
        specs = [TenantSpec("a", 100.0, 5), TenantSpec("b", 50.0, 5)]
        one = generate_timeline(3, specs, query_videos)
        two = generate_timeline(3, specs, query_videos)
        assert [(r.tenant, r.arrival_s, r.video.video_id) for r in one] == \
            [(r.tenant, r.arrival_s, r.video.video_id) for r in two]

    def test_tenant_streams_are_independent(self, query_videos):
        base = [TenantSpec("a", 100.0, 5)]
        extended = [TenantSpec("a", 100.0, 5), TenantSpec("b", 50.0, 5)]
        solo = generate_timeline(3, base, query_videos)
        joint = [r for r in generate_timeline(3, extended, query_videos)
                 if r.tenant == "a"]
        assert [(r.arrival_s, r.video.video_id) for r in solo] == \
            [(r.arrival_s, r.video.video_id) for r in joint]

    def test_closed_spaced_timeline_is_round_robin(self, query_videos):
        requests = closed_spaced_timeline(["x", "y"], query_videos, 2, 0.5)
        assert [r.tenant for r in requests] == ["x", "y", "x", "y"]
        assert [r.arrival_s for r in requests] == [0.0, 0.5, 1.0, 1.5]

    def test_empty_video_pool_is_an_error(self):
        with pytest.raises(ValueError, match="video"):
            generate_timeline(1, [TenantSpec("a", 1.0, 1)], [])
        with pytest.raises(ValueError, match="video"):
            closed_spaced_timeline(["a"], [], 1, 0.1)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="mean_rate_per_s"):
            TenantSpec("a", 0.0, 1)
        with pytest.raises(ValueError, match="count"):
            TenantSpec("a", 1.0, -1)
