"""BoundedQueue: priority order, capacity, and shedding policies."""

import pytest

from repro.serving import BoundedQueue


def test_priority_then_fifo_order():
    queue = BoundedQueue(capacity=8)
    queue.push("bulk-0", "bulk", 0.0)
    queue.push("int-0", "interactive", 1.0)
    queue.push("bulk-1", "bulk", 2.0)
    queue.push("int-1", "interactive", 3.0)
    items = [item for item, _ in queue.pop_batch(4)]
    assert items == ["int-0", "int-1", "bulk-0", "bulk-1"]


def test_pop_batch_respects_limit_and_reports_enqueue_times():
    queue = BoundedQueue(capacity=4)
    queue.push("a", "interactive", 0.5)
    queue.push("b", "interactive", 1.5)
    batch = queue.pop_batch(1)
    assert batch == [("a", 0.5)]
    assert len(queue) == 1
    assert queue.oldest_enqueued_s == 1.5


def test_shed_bulk_evicts_youngest_bulk_for_interactive():
    queue = BoundedQueue(capacity=3, shed_policy="shed-bulk")
    queue.push("bulk-old", "bulk", 0.0)
    queue.push("bulk-young", "bulk", 1.0)
    queue.push("int-0", "interactive", 2.0)
    evicted = queue.push("int-1", "interactive", 3.0)
    assert evicted == "bulk-young"
    items = [item for item, _ in queue.pop_batch(3)]
    assert items == ["int-0", "int-1", "bulk-old"]


def test_shed_bulk_rejects_bulk_newcomer_when_full():
    queue = BoundedQueue(capacity=2, shed_policy="shed-bulk")
    queue.push("a", "interactive", 0.0)
    queue.push("b", "interactive", 1.0)
    with pytest.raises(OverflowError):
        queue.push("c", "bulk", 2.0)


def test_shed_bulk_rejects_interactive_when_no_bulk_queued():
    queue = BoundedQueue(capacity=2, shed_policy="shed-bulk")
    queue.push("a", "interactive", 0.0)
    queue.push("b", "interactive", 1.0)
    with pytest.raises(OverflowError):
        queue.push("c", "interactive", 2.0)


def test_reject_new_never_evicts():
    queue = BoundedQueue(capacity=1, shed_policy="reject-new")
    queue.push("bulk-0", "bulk", 0.0)
    with pytest.raises(OverflowError):
        queue.push("int-0", "interactive", 1.0)
    assert [item for item, _ in queue.pop_batch(1)] == ["bulk-0"]


def test_drain_returns_priority_order_and_empties():
    queue = BoundedQueue(capacity=4)
    queue.push("bulk-0", "bulk", 0.0)
    queue.push("int-0", "interactive", 1.0)
    assert queue.drain() == ["int-0", "bulk-0"]
    assert len(queue) == 0


def test_capacity_validation():
    with pytest.raises(ValueError, match="capacity"):
        BoundedQueue(capacity=0)
