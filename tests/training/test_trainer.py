"""Tests for metric training and victim assembly."""

import numpy as np
import pytest

from repro.losses import ArcFaceLoss
from repro.metrics import evaluate_map
from repro.models import create_feature_extractor
from repro.surrogate import SurrogateTrainer, train_surrogate
from repro.training import MetricTrainer, build_victim_system
from repro.video import load_dataset


@pytest.fixture(scope="module")
def micro_dataset():
    return load_dataset("ucf101", num_classes=4, train_videos=16,
                        test_videos=8, height=16, width=16, num_frames=8,
                        seed=21)


class TestMetricTrainer:
    def test_loss_decreases(self, micro_dataset):
        extractor = create_feature_extractor("c3d", feature_dim=16, width=2,
                                             rng=0)
        loss = ArcFaceLoss(4, 16, rng=1)
        trainer = MetricTrainer(loss, epochs=3, rng=2)
        history = trainer.train(extractor, micro_dataset.train)
        assert len(history.losses) == 3
        assert history.losses[-1] < history.losses[0]

    def test_model_left_in_eval_mode(self, micro_dataset):
        extractor = create_feature_extractor("c3d", feature_dim=16, width=2,
                                             rng=0)
        trainer = MetricTrainer(ArcFaceLoss(4, 16, rng=1), epochs=1, rng=2)
        trainer.train(extractor, micro_dataset.train)
        assert not extractor.training

    def test_batches_are_class_balanced(self, micro_dataset):
        trainer = MetricTrainer(ArcFaceLoss(4, 16, rng=1),
                                classes_per_batch=2, clips_per_class=2, rng=3)
        for batch in trainer._batches(micro_dataset.train):
            labels = [video.label for video in batch]
            assert len(set(labels)) == 2
            assert len(labels) == 4


class TestVictimSystem:
    def test_build_and_retrieval_beats_chance(self, micro_dataset):
        victim = build_victim_system(micro_dataset, backbone="resnet18",
                                     loss="arcface", feature_dim=16, width=2,
                                     epochs=2, m=8, seed=4)
        chance = 1.0 / micro_dataset.num_classes
        score = evaluate_map(victim.engine, micro_dataset.test, m=8)
        assert score > chance

    def test_gallery_is_train_split(self, tiny_victim, tiny_dataset):
        assert tiny_victim.engine.gallery_size == len(tiny_dataset.train)

    def test_video_lookup_covers_gallery(self, tiny_victim, tiny_dataset):
        lookup = tiny_victim.video_lookup
        assert all(v.video_id in lookup for v in tiny_dataset.train)

    def test_parameters_frozen_after_build(self, tiny_victim):
        params = tiny_victim.engine.extractor.parameters()
        assert all(not p.requires_grad for p in params)


class TestSurrogateTrainer:
    def test_history_recorded(self, tiny_victim, tiny_dataset):
        from repro.surrogate import steal_training_set

        stolen = steal_training_set(
            tiny_victim.service, tiny_dataset.test, tiny_victim.video_lookup,
            rounds=1, branch=1, rng=0,
        )
        surrogate = create_feature_extractor("c3d", feature_dim=16, width=2,
                                             rng=5)
        trainer = SurrogateTrainer(epochs=2, rng=6)
        history = trainer.train(surrogate, stolen)
        assert len(history) == 2

    def test_train_surrogate_freezes(self, tiny_victim, tiny_dataset):
        from repro.surrogate import steal_training_set

        stolen = steal_training_set(
            tiny_victim.service, tiny_dataset.test, tiny_victim.video_lookup,
            rounds=1, branch=1, rng=0,
        )
        surrogate = train_surrogate(stolen, backbone="c3d", feature_dim=16,
                                    width=2, epochs=1, seed=1)
        assert all(not p.requires_grad for p in surrogate.parameters())
