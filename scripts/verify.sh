#!/usr/bin/env bash
# One-stop verification entry point for CI and pre-PR checks:
#   1. the tier-1 pytest suite,
#   2. the observability overhead smoke bench (writes BENCH_obs.json),
#   3. the perf hot-path smoke bench (gates against BENCH_perf.json),
#   4. the fault-injection smoke tests + resilience overhead bench
#      (gates the <5% fault-free wrapper overhead contract),
#   5. the qa correctness harness: differential oracles, invariant
#      checks, and the golden-trace regression gate,
#   6. the serving front-end suite + its smoke bench (gates the 1.5x
#      batched-throughput floor and timeline determinism), the
#      slow/churn-marked gallery stress tests, and the worker-pool +
#      churn smoke bench (gates the 1.5x pooled virtual speedup and
#      sequential-vs-pooled mutating-timeline equality),
#   7. the compressed index tier suite + the ANN smoke bench (gates
#      recall@10 >= 0.9 and the memmap residency ceiling),
#   8. the trace-and-fuse smoke bench (gates the 1.3x replay floor) and
#      a second golden-trace pass with REPRO_NN_FUSE=1 (replay must be
#      byte-identical to the eager goldens),
#   9. the attack strategy grid smoke bench (every registry composition
#      under budget against the stateful detector + admission control;
#      writes BENCH_attacks.json),
#  10. the env-flag conformance + router suites and the adaptive-router
#      smoke bench (routed wall time within 1.25x of the best pinned
#      configuration).
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== obs overhead smoke bench =="
python benchmarks/bench_obs_overhead.py --smoke

echo "== perf hot-path smoke bench =="
python benchmarks/bench_perf_hotpath.py --smoke

echo "== fault-injection smoke tests =="
python -m pytest -x -q tests/resilience

echo "== resilience smoke bench =="
python benchmarks/bench_resilience.py --smoke

echo "== qa correctness harness =="
python -m pytest -x -q tests/qa

echo "== qa golden-trace gate =="
python -m repro.qa.regen --check

echo "== serving front-end tests =="
python -m pytest -x -q tests/serving

echo "== serving smoke bench =="
python benchmarks/bench_serving.py --smoke

echo "== gallery-churn stress tests (slow/churn markers) =="
python -m pytest -q -m "churn or slow" tests/serving tests/retrieval

echo "== worker-pool + churn smoke bench =="
python benchmarks/bench_serving.py --churn --smoke

echo "== compressed index tier tests =="
python -m pytest -x -q tests/hashindex

echo "== ann smoke bench =="
python benchmarks/bench_ann.py --smoke

echo "== jit trace-and-fuse smoke bench =="
python benchmarks/bench_jit.py --smoke

echo "== qa golden-trace gate (REPRO_NN_FUSE=1) =="
REPRO_NN_FUSE=1 python -m repro.qa.regen --check

echo "== env-flag conformance + router tests =="
python -m pytest -x -q tests/utils tests/router

echo "== adaptive-router smoke bench =="
python benchmarks/bench_router.py --smoke

echo "verify.sh: OK"

echo "== attack strategy grid smoke bench =="
python benchmarks/bench_attack_grid.py --smoke
