"""Benchmark the serving front end: throughput, latency, shedding.

Three measurements:

1. **offered-load sweep** — a seeded multi-tenant Poisson workload at
   0.5x / 1x / 2x of the front end's nominal capacity.  For each point
   we record virtual-clock throughput, p50/p99 latency, and the shed
   rate (queue overflow + priority eviction), the classic saturation
   curve of a bounded-queue server.
2. **batched speedup** — the acceptance gate: the same timeline served
   with micro-batching (``max_batch_size=B``) vs one query at a time
   (``max_batch_size=1``), measured in *wall-clock* time.  Coalescing B
   queries into one ``engine.retrieve_batch`` runs one model forward
   instead of B, so batched throughput must be at least 2x sequential.
3. **determinism** — the same timeline replayed twice must produce
   identical statuses, per-tenant counts, and virtual makespan.

With ``--churn`` two scale-out measurements join the set:

4. **worker scaling** — the same 2x-load timeline across 1/2/4 pool
   workers; virtual throughput must grow >= 1.5x from one worker to
   four while serving identical work (the per-worker virtual clocks
   make this deterministic).
5. **churn equivalence** — a mutating timeline (interleaved
   add/delete/re-embed events) through the pooled front end vs the
   sequential reference replay: statuses, tenant counts, the query
   ledger, and applied-event counts must match exactly.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py                   # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke           # CI
    PYTHONPATH=src python benchmarks/bench_serving.py --churn --smoke   # CI

The full run records ``BENCH_serving.json`` at the repo root and gates
the batched speedup at 2x.  ``--smoke`` shrinks the workload and relaxes
the gate to 1.5x (re-measuring once to damp scheduler flake); it never
writes the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.qa.world import build_world, tiny_videos  # noqa: E402
from repro.serving import (  # noqa: E402
    ServingConfig,
    ServingFrontend,
    TenantPolicy,
    TenantSpec,
    generate_churn,
    generate_timeline,
    replay_sequential_mutating,
)

#: The virtual service-cost model shared by every measurement.
BASE_CONFIG = ServingConfig(
    max_batch_size=8, max_wait_s=0.002, queue_capacity=32,
    service_base_s=0.004, service_per_item_s=0.001,
    tenants={"bulk-miner": TenantPolicy(priority="bulk")},
)

#: Nominal capacity of the cost model at full batches: B queries every
#: ``base + per_item * B`` seconds.
CAPACITY_QPS = BASE_CONFIG.max_batch_size / (
    BASE_CONFIG.service_base_s
    + BASE_CONFIG.service_per_item_s * BASE_CONFIG.max_batch_size)


def make_timeline(seed: int, total_rate_qps: float, per_tenant: int):
    """Three interactive tenants + one bulk tenant at a combined rate."""
    share = total_rate_qps / 4.0
    specs = [
        TenantSpec("alice", share, per_tenant),
        TenantSpec("bob", share, per_tenant),
        TenantSpec("carol", share, per_tenant),
        TenantSpec("bulk-miner", share, per_tenant, priority="bulk"),
    ]
    return generate_timeline(seed, specs, tiny_videos(seed + 1, 6,
                                                      label_base=5))


def bench_offered_load(per_tenant: int, seed: int = 13) -> list[dict]:
    """Virtual-clock saturation sweep at 0.5x / 1x / 2x capacity."""
    # A tighter queue than the default makes the 2x point actually
    # engage backpressure even on the small smoke workload.
    config = BASE_CONFIG.with_(queue_capacity=16)
    points = []
    for multiplier in (0.5, 1.0, 2.0):
        offered = CAPACITY_QPS * multiplier
        timeline = make_timeline(seed, offered, per_tenant)
        world = build_world(41)
        report = ServingFrontend(world.service, config).run(timeline)
        points.append({
            "load_multiplier": multiplier,
            "offered_qps": offered,
            "requests": len(timeline),
            "served": report.served,
            "shed_rate": report.shed_rate,
            "rejected": report.rejected,
            "throughput_qps": report.throughput_qps,
            "p50_latency_s": report.latency_percentile(50),
            "p99_latency_s": report.latency_percentile(99),
            "mean_batch": report.mean_batch_size(),
        })
    return points


def _timed_run(config: ServingConfig, timeline, repeats: int):
    """Best-of-``repeats`` wall-clock seconds for one configuration."""
    best_s, report = float("inf"), None
    for _ in range(repeats):
        world = build_world(41)
        frontend = ServingFrontend(world.service, config)
        start = time.perf_counter()
        report = frontend.run(timeline)
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, report


def bench_batched_speedup(per_tenant: int, repeats: int,
                          seed: int = 17) -> dict:
    """Wall-clock: micro-batched front end vs one-query-at-a-time."""
    timeline = make_timeline(seed, CAPACITY_QPS, per_tenant)
    # A large queue keeps both runs shed-free so they serve identical
    # work; only the batch size differs.
    batched_config = BASE_CONFIG.with_(queue_capacity=4096)
    sequential_config = batched_config.with_(max_batch_size=1)
    _timed_run(batched_config, timeline, 1)  # warm-up both code paths
    _timed_run(sequential_config, timeline, 1)
    batched_s, batched = _timed_run(batched_config, timeline, repeats)
    sequential_s, sequential = _timed_run(sequential_config, timeline,
                                          repeats)
    return {
        "requests": len(timeline),
        "max_batch_size": batched_config.max_batch_size,
        "batched_wall_s": batched_s,
        "sequential_wall_s": sequential_s,
        "speedup": sequential_s / batched_s,
        "batched_wall_qps": batched.served / batched_s,
        "sequential_wall_qps": sequential.served / sequential_s,
        "same_served": batched.served == sequential.served,
        "same_tenant_counts":
            batched.served_by_tenant == sequential.served_by_tenant,
    }


def bench_determinism(per_tenant: int, seed: int = 19) -> dict:
    """Two replays of one timeline must agree bit for bit."""
    timeline = make_timeline(seed, CAPACITY_QPS * 1.5, per_tenant)
    reports = []
    for _ in range(2):
        world = build_world(41)
        reports.append(ServingFrontend(world.service,
                                       BASE_CONFIG).run(timeline))
    first, second = reports
    return {
        "requests": len(timeline),
        "identical_statuses":
            [r.status for r in first.responses]
            == [r.status for r in second.responses],
        "identical_tenant_counts":
            first.served_by_tenant == second.served_by_tenant,
        "identical_makespan": first.makespan_s == second.makespan_s,
    }


def bench_worker_scaling(per_tenant: int, seed: int = 23) -> dict:
    """Virtual throughput vs worker count at 2x offered load.

    The pool's scheduling is all virtual-time, so this measurement is
    deterministic: W workers drain a saturating timeline in ~1/W the
    virtual makespan while serving the identical work.  The acceptance
    gate is the pooled-vs-single ratio at the sweep's top.
    """
    timeline = make_timeline(seed, CAPACITY_QPS * 2.0, per_tenant)
    points = []
    for workers in (1, 2, 4):
        world = build_world(41)
        config = BASE_CONFIG.with_(queue_capacity=4096, workers=workers)
        report = ServingFrontend(world.service, config).run(timeline)
        points.append({
            "workers": workers,
            "served": report.served,
            "makespan_s": report.makespan_s,
            "throughput_qps": report.throughput_qps,
            "p99_latency_s": report.latency_percentile(99),
        })
    single, pooled = points[0], points[-1]
    return {
        "offered_multiplier": 2.0,
        "requests": len(timeline),
        "points": points,
        "same_served": len({point["served"] for point in points}) == 1,
        "pooled_speedup": pooled["throughput_qps"]
        / single["throughput_qps"],
    }


def bench_churn(per_tenant: int, seed: int = 29) -> dict:
    """Mutating timeline: pooled front end vs the sequential reference.

    One seeded add/delete/re-embed stream is interleaved with the query
    timeline; both replayers must agree on statuses, tenant counts, the
    query ledger, and the number of events applied — the oracle
    contract, measured here at bench scale with throughput attached.
    """
    def run(pooled: bool):
        world = build_world(41)
        specs = [TenantSpec(f"tenant-{i}", CAPACITY_QPS / 3.0, per_tenant)
                 for i in range(3)]
        requests = generate_timeline(seed, specs, world.gallery_videos)
        horizon = max(request.arrival_s for request in requests)
        events = generate_churn(
            seed, [video.video_id for video in world.gallery_videos],
            adds=per_tenant // 2, deletes=per_tenant // 3,
            reembeds=per_tenant // 3, horizon_s=horizon)
        timeline = list(requests) + list(events)
        config = BASE_CONFIG.with_(queue_capacity=4096, workers=4)
        if pooled:
            report = ServingFrontend(world.service, config).run(timeline)
        else:
            report = replay_sequential_mutating(timeline, world.service,
                                                config)
        ledger = (world.service.query_count, world.service.queries_issued,
                  world.service.queries_refunded)
        return report, ledger

    sequential, sequential_ledger = run(pooled=False)
    pooled, pooled_ledger = run(pooled=True)
    return {
        "requests": len(sequential.responses),
        "events_applied": pooled.gallery_events,
        "identical_statuses":
            [r.status for r in sequential.responses]
            == [r.status for r in pooled.responses],
        "identical_tenant_counts":
            sequential.served_by_tenant == pooled.served_by_tenant,
        "identical_ledger": sequential_ledger == pooled_ledger,
        "identical_events":
            sequential.gallery_events == pooled.gallery_events,
        "pooled_throughput_qps": pooled.throughput_qps,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the serving front end.")
    parser.add_argument("--per-tenant", type=int, default=40,
                        help="requests per tenant per measurement")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock runs per configuration (min kept)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required batched-vs-sequential wall speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: small workload, 1.5x speedup gate, "
                             "no JSON output")
    parser.add_argument("--churn", action="store_true",
                        help="also measure worker-pool scaling and the "
                             "mutating-timeline (churn) path, gating the "
                             "pooled virtual speedup at 1.5x")
    parser.add_argument("--min-pool-speedup", type=float, default=1.5,
                        help="required pooled-vs-single virtual speedup "
                             "at 2x load (--churn only)")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_serving.json"),
                        help="output JSON path (full runs only)")
    args = parser.parse_args(argv)

    per_tenant = 12 if args.smoke else args.per_tenant
    repeats = 1 if args.smoke else args.repeats
    min_speedup = 1.5 if args.smoke else args.min_speedup

    speedup = bench_batched_speedup(per_tenant, repeats)
    if speedup["speedup"] < min_speedup:
        # One re-measure damps scheduler/turbo flake before failing.
        print(f"[bench_serving] speedup {speedup['speedup']:.2f}x under "
              f"{min_speedup:.1f}x gate; re-measuring once")
        speedup = bench_batched_speedup(per_tenant, max(repeats, 2))

    result = {
        "bench": "serving",
        "timestamp": time.time(),
        "smoke": args.smoke,
        "capacity_qps": CAPACITY_QPS,
        "offered_load": bench_offered_load(per_tenant),
        "batched_speedup": speedup,
        "determinism": bench_determinism(per_tenant),
    }
    if args.churn:
        result["worker_scaling"] = bench_worker_scaling(per_tenant)
        result["churn"] = bench_churn(max(4, per_tenant // 2))
    print(json.dumps(result, indent=2))

    failures = []
    if speedup["speedup"] < min_speedup:
        failures.append(
            f"batched wall speedup {speedup['speedup']:.2f}x is under the "
            f"{min_speedup:.1f}x gate")
    if not speedup["same_served"] or not speedup["same_tenant_counts"]:
        failures.append("batched and sequential runs served different work")
    determinism = result["determinism"]
    if not all(determinism[key] for key in
               ("identical_statuses", "identical_tenant_counts",
                "identical_makespan")):
        failures.append("two replays of one timeline diverged")
    overloaded = result["offered_load"][-1]
    if overloaded["shed_rate"] + (overloaded["rejected"]
                                  / overloaded["requests"]) <= 0.0:
        failures.append("the 2x-capacity point never shed or rejected work "
                        "(backpressure is not engaging)")
    if args.churn:
        scaling = result["worker_scaling"]
        if not scaling["same_served"]:
            failures.append("worker counts served different work")
        if scaling["pooled_speedup"] < args.min_pool_speedup:
            failures.append(
                f"pooled virtual speedup {scaling['pooled_speedup']:.2f}x "
                f"at 2x load is under the {args.min_pool_speedup:.1f}x gate")
        churn = result["churn"]
        for key in ("identical_statuses", "identical_tenant_counts",
                    "identical_ledger", "identical_events"):
            if not churn[key]:
                failures.append(
                    f"mutating timeline diverged between the pooled "
                    f"front end and the sequential reference ({key})")

    for failure in failures:
        print(f"[bench_serving] FAIL: {failure}")
    if failures:
        return 1

    if args.smoke:
        print("[bench_serving] smoke OK")
    else:
        out_path = Path(args.out)
        out_path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"[bench_serving] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
