"""Benchmark the serving front end: throughput, latency, shedding.

Three measurements:

1. **offered-load sweep** — a seeded multi-tenant Poisson workload at
   0.5x / 1x / 2x of the front end's nominal capacity.  For each point
   we record virtual-clock throughput, p50/p99 latency, and the shed
   rate (queue overflow + priority eviction), the classic saturation
   curve of a bounded-queue server.
2. **batched speedup** — the acceptance gate: the same timeline served
   with micro-batching (``max_batch_size=B``) vs one query at a time
   (``max_batch_size=1``), measured in *wall-clock* time.  Coalescing B
   queries into one ``engine.retrieve_batch`` runs one model forward
   instead of B, so batched throughput must be at least 2x sequential.
3. **determinism** — the same timeline replayed twice must produce
   identical statuses, per-tenant counts, and virtual makespan.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py           # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI

The full run records ``BENCH_serving.json`` at the repo root and gates
the batched speedup at 2x.  ``--smoke`` shrinks the workload and relaxes
the gate to 1.5x (re-measuring once to damp scheduler flake); it never
writes the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.qa.world import build_world, tiny_videos  # noqa: E402
from repro.serving import (  # noqa: E402
    ServingConfig,
    ServingFrontend,
    TenantPolicy,
    TenantSpec,
    generate_timeline,
)

#: The virtual service-cost model shared by every measurement.
BASE_CONFIG = ServingConfig(
    max_batch_size=8, max_wait_s=0.002, queue_capacity=32,
    service_base_s=0.004, service_per_item_s=0.001,
    tenants={"bulk-miner": TenantPolicy(priority="bulk")},
)

#: Nominal capacity of the cost model at full batches: B queries every
#: ``base + per_item * B`` seconds.
CAPACITY_QPS = BASE_CONFIG.max_batch_size / (
    BASE_CONFIG.service_base_s
    + BASE_CONFIG.service_per_item_s * BASE_CONFIG.max_batch_size)


def make_timeline(seed: int, total_rate_qps: float, per_tenant: int):
    """Three interactive tenants + one bulk tenant at a combined rate."""
    share = total_rate_qps / 4.0
    specs = [
        TenantSpec("alice", share, per_tenant),
        TenantSpec("bob", share, per_tenant),
        TenantSpec("carol", share, per_tenant),
        TenantSpec("bulk-miner", share, per_tenant, priority="bulk"),
    ]
    return generate_timeline(seed, specs, tiny_videos(seed + 1, 6,
                                                      label_base=5))


def bench_offered_load(per_tenant: int, seed: int = 13) -> list[dict]:
    """Virtual-clock saturation sweep at 0.5x / 1x / 2x capacity."""
    # A tighter queue than the default makes the 2x point actually
    # engage backpressure even on the small smoke workload.
    config = BASE_CONFIG.with_(queue_capacity=16)
    points = []
    for multiplier in (0.5, 1.0, 2.0):
        offered = CAPACITY_QPS * multiplier
        timeline = make_timeline(seed, offered, per_tenant)
        world = build_world(41)
        report = ServingFrontend(world.service, config).run(timeline)
        points.append({
            "load_multiplier": multiplier,
            "offered_qps": offered,
            "requests": len(timeline),
            "served": report.served,
            "shed_rate": report.shed_rate,
            "rejected": report.rejected,
            "throughput_qps": report.throughput_qps,
            "p50_latency_s": report.latency_percentile(50),
            "p99_latency_s": report.latency_percentile(99),
            "mean_batch": report.mean_batch_size(),
        })
    return points


def _timed_run(config: ServingConfig, timeline, repeats: int):
    """Best-of-``repeats`` wall-clock seconds for one configuration."""
    best_s, report = float("inf"), None
    for _ in range(repeats):
        world = build_world(41)
        frontend = ServingFrontend(world.service, config)
        start = time.perf_counter()
        report = frontend.run(timeline)
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, report


def bench_batched_speedup(per_tenant: int, repeats: int,
                          seed: int = 17) -> dict:
    """Wall-clock: micro-batched front end vs one-query-at-a-time."""
    timeline = make_timeline(seed, CAPACITY_QPS, per_tenant)
    # A large queue keeps both runs shed-free so they serve identical
    # work; only the batch size differs.
    batched_config = BASE_CONFIG.with_(queue_capacity=4096)
    sequential_config = batched_config.with_(max_batch_size=1)
    _timed_run(batched_config, timeline, 1)  # warm-up both code paths
    _timed_run(sequential_config, timeline, 1)
    batched_s, batched = _timed_run(batched_config, timeline, repeats)
    sequential_s, sequential = _timed_run(sequential_config, timeline,
                                          repeats)
    return {
        "requests": len(timeline),
        "max_batch_size": batched_config.max_batch_size,
        "batched_wall_s": batched_s,
        "sequential_wall_s": sequential_s,
        "speedup": sequential_s / batched_s,
        "batched_wall_qps": batched.served / batched_s,
        "sequential_wall_qps": sequential.served / sequential_s,
        "same_served": batched.served == sequential.served,
        "same_tenant_counts":
            batched.served_by_tenant == sequential.served_by_tenant,
    }


def bench_determinism(per_tenant: int, seed: int = 19) -> dict:
    """Two replays of one timeline must agree bit for bit."""
    timeline = make_timeline(seed, CAPACITY_QPS * 1.5, per_tenant)
    reports = []
    for _ in range(2):
        world = build_world(41)
        reports.append(ServingFrontend(world.service,
                                       BASE_CONFIG).run(timeline))
    first, second = reports
    return {
        "requests": len(timeline),
        "identical_statuses":
            [r.status for r in first.responses]
            == [r.status for r in second.responses],
        "identical_tenant_counts":
            first.served_by_tenant == second.served_by_tenant,
        "identical_makespan": first.makespan_s == second.makespan_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the serving front end.")
    parser.add_argument("--per-tenant", type=int, default=40,
                        help="requests per tenant per measurement")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock runs per configuration (min kept)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required batched-vs-sequential wall speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: small workload, 1.5x speedup gate, "
                             "no JSON output")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_serving.json"),
                        help="output JSON path (full runs only)")
    args = parser.parse_args(argv)

    per_tenant = 12 if args.smoke else args.per_tenant
    repeats = 1 if args.smoke else args.repeats
    min_speedup = 1.5 if args.smoke else args.min_speedup

    speedup = bench_batched_speedup(per_tenant, repeats)
    if speedup["speedup"] < min_speedup:
        # One re-measure damps scheduler/turbo flake before failing.
        print(f"[bench_serving] speedup {speedup['speedup']:.2f}x under "
              f"{min_speedup:.1f}x gate; re-measuring once")
        speedup = bench_batched_speedup(per_tenant, max(repeats, 2))

    result = {
        "bench": "serving",
        "timestamp": time.time(),
        "smoke": args.smoke,
        "capacity_qps": CAPACITY_QPS,
        "offered_load": bench_offered_load(per_tenant),
        "batched_speedup": speedup,
        "determinism": bench_determinism(per_tenant),
    }
    print(json.dumps(result, indent=2))

    failures = []
    if speedup["speedup"] < min_speedup:
        failures.append(
            f"batched wall speedup {speedup['speedup']:.2f}x is under the "
            f"{min_speedup:.1f}x gate")
    if not speedup["same_served"] or not speedup["same_tenant_counts"]:
        failures.append("batched and sequential runs served different work")
    determinism = result["determinism"]
    if not all(determinism[key] for key in
               ("identical_statuses", "identical_tenant_counts",
                "identical_makespan")):
        failures.append("two replays of one timeline diverged")
    overloaded = result["offered_load"][-1]
    if overloaded["shed_rate"] + (overloaded["rejected"]
                                  / overloaded["requests"]) <= 0.0:
        failures.append("the 2x-capacity point never shed or rejected work "
                        "(backpressure is not engaging)")

    for failure in failures:
        print(f"[bench_serving] FAIL: {failure}")
    if failures:
        return 1

    if args.smoke:
        print("[bench_serving] smoke OK")
    else:
        out_path = Path(args.out)
        out_path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"[bench_serving] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
