"""Shared benchmark configuration and result persistence.

Benchmarks regenerate the paper's tables/figures at the scale in
``BENCH_SCALE`` and write the formatted tables to ``results/``.  Set
``REPRO_BENCH_QUICK=1`` to run the whole suite in smoke mode (structure
only, minutes → seconds).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments import DEFAULT_SCALE, QUICK_SCALE
from repro.experiments.report import TableResult

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

#: The scale every bench runs at.
BENCH_SCALE = QUICK_SCALE if QUICK else DEFAULT_SCALE.replace(
    pairs=3,
    iter_num_q=100,
    query_iterations=200,
    nes_iterations=25,
)

RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS", "results"))


def save_table(name: str, table: TableResult) -> None:
    """Print the table and persist it under ``results/<name>.txt``."""
    text = table.format()
    print("\n" + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
