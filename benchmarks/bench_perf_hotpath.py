"""Benchmark the ``repro.perf`` hot paths against the seed implementations.

Three hot paths, measured at the model shapes the repro actually runs:

1. **conv forward** — strided-einsum (seed) vs im2col GEMM, interleaved
   min-of-trials per shape (interleaving cancels cache/turbo drift).
2. **query-attack loop** — a SimBA rectification loop against a live
   victim service, "before" (einsum convs + sequential ±ε evaluation)
   vs "after" (GEMM convs + speculative pair batching).
3. **retrieval internals** — batched vs scalar gallery search, and the
   embedding-cache hit vs a full model forward.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py           # full
    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py --smoke   # CI

The full run records ``BENCH_perf.json`` at the repo root — the baseline
later PRs are held to.  ``--smoke`` is the CI gate: it asserts the GEMM
path is auto-selected at model shapes, re-measures quickly, and fails if
a speedup ratio regressed more than 10% against the recorded baseline
(ratios, not wall times, so the check is machine-independent).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.attacks.objective import RetrievalObjective  # noqa: E402
from repro.attacks.search import simba_search  # noqa: E402
from repro.models import create_feature_extractor  # noqa: E402
from repro.nn import Tensor, no_grad  # noqa: E402
from repro.nn import functional as F  # noqa: E402
from repro.perf import set_conv_impl, should_use_gemm  # noqa: E402
from repro.retrieval import (  # noqa: E402
    FeatureIndex,
    RetrievalEngine,
    RetrievalService,
)
from repro.video import load_dataset  # noqa: E402

#: Conv problems taken from the victim/surrogate models at bench scale:
#: the C3D stem and mid blocks (query embedding), and the stem at the
#: speculative ±ε pair batch — the exact shape the attack hot loop runs.
CONV_CASES = [
    ("conv3d.stem.b1", F.conv3d, (1, 3, 6, 12, 12), (2, 3, 3, 3, 3), 1, 1),
    ("conv3d.mid.b1", F.conv3d, (1, 2, 6, 6, 6), (4, 2, 3, 3, 3), 1, 1),
    ("conv3d.stem.b2", F.conv3d, (2, 3, 6, 12, 12), (2, 3, 3, 3, 3), 1, 1),
    ("conv2d.stem.b4", F.conv2d, (4, 3, 16, 16), (8, 3, 3, 3), 1, 1),
]


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def interleaved_best(fn_a, fn_b, trials: int) -> tuple[float, float]:
    """Min-of-``trials`` for two thunks, alternating a/b every trial."""
    fn_a(), fn_b()  # joint warm-up (plans, einsum paths, BLAS init)
    best_a = best_b = float("inf")
    for _ in range(trials):
        best_a = min(best_a, _time_once(fn_a))
        best_b = min(best_b, _time_once(fn_b))
    return best_a, best_b


def bench_conv(trials: int) -> list[dict]:
    rng = np.random.default_rng(0)
    rows = []
    for name, conv, x_shape, w_shape, stride, padding in CONV_CASES:
        x = Tensor(rng.normal(size=x_shape))
        w = Tensor(rng.normal(size=w_shape))

        def run(conv=conv, x=x, w=w, stride=stride, padding=padding):
            with no_grad():
                conv(x, w, stride=stride, padding=padding)

        def timed_einsum():
            set_conv_impl("einsum")
            run()

        def timed_gemm():
            set_conv_impl("gemm")
            run()

        einsum_s, gemm_s = interleaved_best(timed_einsum, timed_gemm, trials)
        set_conv_impl(None)
        rows.append({
            "name": name,
            "einsum_us": einsum_s * 1e6,
            "gemm_us": gemm_s * 1e6,
            "speedup": einsum_s / gemm_s,
        })
    return rows


def build_attack_fixture(seed: int = 0):
    """A tiny victim service + attack pair (untrained model — speed only)."""
    dataset = load_dataset(
        "ucf101", num_classes=4, train_videos=16, test_videos=4,
        height=12, width=12, num_frames=6, seed=seed,
    )
    extractor = create_feature_extractor(
        "c3d", feature_dim=16, width=2, rng=seed)
    extractor.eval()
    extractor.requires_grad_(False)
    return extractor, dataset


def attack_loop_seconds(extractor, dataset, iterations: int, repeats: int,
                        conv_impl: str, batched: bool,
                        cache_size: int) -> float:
    """Best-of-``repeats`` wall time of a seeded SimBA rectification loop."""
    set_conv_impl(conv_impl)
    try:
        best = float("inf")
        original, target = dataset.test[0], dataset.test[1]
        support = np.zeros(original.pixels.shape, dtype=bool)
        support[:2] = True
        for repeat in range(repeats):
            engine = RetrievalEngine(extractor, num_nodes=3,
                                     cache_size=cache_size)
            engine.index_videos(dataset.train)
            service = RetrievalService.build(engine, m=8)
            objective = RetrievalObjective(service, original, target)
            start = time.perf_counter()
            simba_search(original, objective, support, tau=0.1,
                         iterations=iterations,
                         rng=np.random.default_rng(repeat), batched=batched)
            best = min(best, time.perf_counter() - start)
        return best
    finally:
        set_conv_impl(None)


def bench_batched_search(trials: int) -> dict:
    rng = np.random.default_rng(1)
    index = FeatureIndex()
    index.add_batch([f"v{i}" for i in range(2000)],
                    [i % 10 for i in range(2000)],
                    rng.normal(size=(2000, 16)))
    queries = rng.normal(size=(64, 16))

    def scalar():
        for query in queries:
            index.search(query, k=8)

    def batched():
        index.search_batch(queries, k=8)

    scalar_s, batched_s = interleaved_best(scalar, batched, trials)
    return {
        "queries": len(queries),
        "gallery_rows": len(index),
        "scalar_us": scalar_s * 1e6,
        "batched_us": batched_s * 1e6,
        "speedup": scalar_s / batched_s,
    }


def bench_embed_cache(extractor, dataset, trials: int) -> dict:
    engine = RetrievalEngine(extractor, num_nodes=2, cache_size=64)
    video = dataset.test[0]

    def miss():
        engine.clear_embedding_cache()
        engine.embed_queries([video])

    def hit():
        engine.embed_queries([video])

    engine.embed_queries([video])  # prime
    miss_s, hit_s = interleaved_best(miss, hit, trials)
    return {
        "miss_us": miss_s * 1e6,
        "hit_us": hit_s * 1e6,
        "speedup": miss_s / hit_s,
    }


def assert_gemm_selected() -> None:
    """The auto policy must pick GEMM for every model-shape conv case."""
    for name, _, x_shape, w_shape, stride, padding in CONV_CASES:
        kernel = w_shape[2:]
        out_spatial = [
            (size + 2 * padding - k) // stride + 1
            for size, k in zip(x_shape[2:], kernel)
        ]
        gemm_elems = (x_shape[0] * x_shape[1]
                      * int(np.prod(kernel)) * int(np.prod(out_spatial)))
        if not should_use_gemm(gemm_elems):
            raise AssertionError(
                f"auto policy did not select GEMM for {name} "
                f"({gemm_elems} im2col elements)")
    # End-to-end: an auto-dispatched conv actually lands on the GEMM op.
    x = Tensor(np.zeros(CONV_CASES[0][2]), requires_grad=True)
    w = Tensor(np.zeros(CONV_CASES[0][3]))
    out = F.conv3d(x, w, stride=1, padding=1)
    if out.op != "conv3d.gemm":
        raise AssertionError(f"auto dispatch produced op {out.op!r}")


def check_regression(result: dict, baseline_path: Path,
                     tolerance: float = 0.10) -> list[str]:
    """Compare speedup *ratios* against the recorded baseline."""
    if not baseline_path.exists():
        return [f"no recorded baseline at {baseline_path}; skipping check"]
    baseline = json.loads(baseline_path.read_text())
    failures = []
    checks = [
        ("attack loop", result["attack"]["speedup"],
         baseline.get("attack", {}).get("speedup")),
        ("conv min", result["conv_min_speedup"],
         baseline.get("conv_min_speedup")),
        ("batched search", result["batched_search"]["speedup"],
         baseline.get("batched_search", {}).get("speedup")),
    ]
    for label, measured, recorded in checks:
        if recorded is None:
            continue
        floor = recorded * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{label} speedup regressed: {measured:.2f}x < "
                f"{floor:.2f}x (recorded {recorded:.2f}x - {tolerance:.0%})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the repro.perf fast paths.")
    parser.add_argument("--iterations", type=int, default=150,
                        help="SimBA iterations per attack run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="attack runs per configuration (min is kept)")
    parser.add_argument("--trials", type=int, default=30,
                        help="interleaved trials per micro-bench")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: quick run, assert dispatch + no "
                             "regression vs the recorded baseline")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_perf.json"),
                        help="output JSON path (full runs only)")
    args = parser.parse_args(argv)

    # Best-of-2 even at smoke scale: a single 40-iteration shot is ~50 ms
    # and a stray scheduler hiccup on either leg flips the gate.
    iterations = 40 if args.smoke else args.iterations
    repeats = 2 if args.smoke else args.repeats
    trials = 10 if args.smoke else args.trials

    assert_gemm_selected()
    print("[bench_perf_hotpath] GEMM auto-selected for all model shapes")

    extractor, dataset = build_attack_fixture()
    # Warm-up: one tiny run touches every code path on both impls.
    attack_loop_seconds(extractor, dataset, 3, 1, "einsum", False, 0)
    attack_loop_seconds(extractor, dataset, 3, 1, "auto", True, 0)

    def measure() -> dict:
        conv_rows = bench_conv(trials)
        # Both configurations run cacheless: every SimBA candidate has
        # unique pixels, so an embedding cache can never hit in this loop
        # and would only add hashing overhead (the cache is measured on
        # its own below).
        before_s = attack_loop_seconds(extractor, dataset, iterations,
                                       repeats, conv_impl="einsum",
                                       batched=False, cache_size=0)
        after_s = attack_loop_seconds(extractor, dataset, iterations,
                                      repeats, conv_impl="auto",
                                      batched=True, cache_size=0)
        return {
            "bench": "perf_hotpath",
            "timestamp": time.time(),
            "smoke": args.smoke,
            "conv": conv_rows,
            "conv_min_speedup": min(row["speedup"] for row in conv_rows),
            "attack": {
                "iterations": iterations,
                "repeats": repeats,
                "sequential_einsum_s": before_s,
                "batched_gemm_s": after_s,
                "speedup": before_s / after_s,
            },
            "batched_search": bench_batched_search(trials),
            "embed_cache": bench_embed_cache(extractor, dataset, trials),
        }

    result = measure()
    print(json.dumps(result, indent=2))

    out_path = Path(args.out)
    if args.smoke:
        # The smoke run gates; it never overwrites the recorded baseline.
        notes = check_regression(result, out_path)
        failures = [note for note in notes if "regressed" in note]
        if failures:
            # At smoke scale each leg is a ~50 ms shot, so a stray
            # scheduler contention window fails the gate far more often
            # than a real regression does; one clean re-measurement
            # separates the two.
            for note in failures:
                print(f"[bench_perf_hotpath] retrying after: {note}")
            result = measure()
            print(json.dumps(result, indent=2))
            notes = check_regression(result, out_path)
            failures = [note for note in notes if "regressed" in note]
        for note in notes:
            print(f"[bench_perf_hotpath] {note}")
        if failures:
            return 1
        print("[bench_perf_hotpath] smoke OK")
    else:
        out_path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"[bench_perf_hotpath] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
