"""Bench: regenerate Figure 3 (victim mAP per backbone × loss × dataset)."""

from repro.experiments import fig3_victim_maps

from benchmarks.common import BENCH_SCALE, run_once, save_table


def test_fig3_victim_maps(benchmark):
    table = run_once(
        benchmark,
        lambda: fig3_victim_maps.run(BENCH_SCALE, max_queries=16),
    )
    save_table("fig3_victim_maps", table)
    values = table.column("mAP")
    assert all(0.0 <= value <= 1.0 for value in values)
    # Trained victims beat label-chance retrieval on average.
    classes, _, _ = BENCH_SCALE.dataset_size("ucf101")
    assert sum(values) / len(values) > 1.0 / classes
