"""Bench: regenerate Table VII (DUO vs perturbation budget τ)."""

from repro.experiments import table7_tau_sweep

from benchmarks.common import BENCH_SCALE, QUICK, run_once, save_table


def test_table7_tau_sweep(benchmark):
    table = run_once(benchmark, lambda: table7_tau_sweep.run(BENCH_SCALE))
    save_table("table7_tau_sweep", table)
    if not QUICK:
        # Paper shape: PScore (perturbation magnitude) grows with τ.
        rows = list(zip(table.column("dataset"), table.column("attack"),
                        table.column("tau"), table.column("PScore")))
        for dataset in set(r[0] for r in rows):
            for attack in set(r[1] for r in rows):
                series = sorted((tau, p) for d, a, tau, p in rows
                                if d == dataset and a == attack)
                assert series[-1][1] >= series[0][1]
