"""Bench: regenerate Figure 5 (objective T vs number of queries)."""

from repro.experiments import fig5_query_curves

from benchmarks.common import BENCH_SCALE, run_once, save_table


def test_fig5_query_curves(benchmark):
    table = run_once(benchmark, lambda: fig5_query_curves.run(BENCH_SCALE))
    save_table("fig5_query_curves", table)
    # Every attack's min-so-far T series is non-increasing.
    for row in table.rows:
        series = row[3:]
        assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))
