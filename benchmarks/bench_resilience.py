"""Benchmark the resilience wrappers: overhead, replication, recovery.

Four measurements:

1. **wrapper overhead** — a fault-free SimBA rectification loop against
   a victim service with the full resilience stack on (retry + breaker
   + deadline, r=1) vs the plain scatter path (``resilience=None``).
   The PR's contract is <5% overhead when nothing fails.
2. **gallery micro** — scatter/gather search wall time, plain vs
   resilient r=1 vs replicated r=2 (the r=2 column is informational:
   replication doubles per-node scoring work by design).
3. **faulted recovery** — the acceptance scenario: r=2, four nodes, a
   seeded :class:`FaultPlan` kills one node mid-attack; the run must
   finish with a trace identical to the fault-free run.
4. **checkpoint** — save/load round-trip time for an attack checkpoint.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py           # full
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke   # CI

The full run records ``BENCH_resilience.json`` at the repo root.
``--smoke`` is the CI gate: it re-measures quickly and fails when the
fault-free wrapper overhead exceeds 5% (re-measuring once to damp
scheduler flake) or the faulted run diverges from the fault-free one.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.attacks.objective import RetrievalObjective  # noqa: E402
from repro.attacks.search import simba_search  # noqa: E402
from repro.models import create_feature_extractor  # noqa: E402
from repro.resilience import (  # noqa: E402
    AttackCheckpoint,
    BreakerPolicy,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    load_checkpoint,
    save_checkpoint,
)
from repro.retrieval import (  # noqa: E402
    RetrievalEngine,
    RetrievalService,
    ShardedGallery,
)
from repro.video import load_dataset  # noqa: E402


def wrapper_config(replication: int = 1) -> ResilienceConfig:
    """The full runtime stack: retry + breaker + deadline, no hedging."""
    return ResilienceConfig(
        replication=replication,
        retry=RetryPolicy(max_attempts=3),
        breaker=BreakerPolicy(failure_threshold=5, cooldown_s=30.0),
        deadline_s=10.0,
        on_data_loss="raise",
    )


def build_fixture(seed: int = 0):
    """A tiny victim dataset + untrained extractor (speed only)."""
    dataset = load_dataset(
        "ucf101", num_classes=4, train_videos=16, test_videos=4,
        height=12, width=12, num_frames=6, seed=seed,
    )
    extractor = create_feature_extractor(
        "c3d", feature_dim=16, width=2, rng=seed)
    extractor.eval()
    extractor.requires_grad_(False)
    return extractor, dataset


def build_service(extractor, dataset, resilience, num_nodes=4):
    engine = RetrievalEngine(extractor, num_nodes=num_nodes,
                             cache_size=0, resilience=resilience)
    engine.index_videos(dataset.train)
    return RetrievalService.build(engine, m=8)


def attack_run(extractor, dataset, resilience, iterations,
               fault_plan=None, rng_seed=0):
    """One seeded SimBA loop; returns (seconds, trace, query_count)."""
    service = build_service(extractor, dataset, resilience)
    original, target = dataset.test[0], dataset.test[1]
    support = np.zeros(original.pixels.shape, dtype=bool)
    support[:2] = True
    objective = RetrievalObjective(service, original, target)

    def run():
        start = time.perf_counter()
        _, _, trace = simba_search(
            original, objective, support, tau=0.1, iterations=iterations,
            rng=np.random.default_rng(rng_seed))
        return time.perf_counter() - start, trace

    if fault_plan is None:
        seconds, trace = run()
    else:
        with fault_plan.install(service.engine.gallery):
            seconds, trace = run()
    return seconds, trace, service.query_count


def bench_wrapper_overhead(extractor, dataset, iterations, repeats):
    """Fault-free attack loop: resilience stack on (r=1) vs off."""
    plain_s = resilient_s = float("inf")
    # Warm-up touches both code paths end to end.
    attack_run(extractor, dataset, None, 2)
    attack_run(extractor, dataset, wrapper_config(), 2)
    for repeat in range(repeats):
        seconds, _, _ = attack_run(extractor, dataset, None,
                                   iterations, rng_seed=repeat)
        plain_s = min(plain_s, seconds)
        seconds, _, _ = attack_run(extractor, dataset, wrapper_config(),
                                   iterations, rng_seed=repeat)
        resilient_s = min(resilient_s, seconds)
    return {
        "iterations": iterations,
        "repeats": repeats,
        "plain_s": plain_s,
        "resilient_s": resilient_s,
        "overhead": resilient_s / plain_s - 1.0,
    }


def bench_gallery_micro(trials: int) -> dict:
    """Scatter/gather wall time: plain vs wrapped r=1 vs replicated r=2."""
    rng = np.random.default_rng(2)
    rows, dim, queries = 2000, 16, 64
    ids = [f"v{i}" for i in range(rows)]
    labels = [i % 10 for i in range(rows)]
    features = rng.normal(size=(rows, dim))
    probes = rng.normal(size=(queries, dim))

    def timed(gallery):
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            for probe in probes:
                gallery.search(probe, k=8)
            best = min(best, time.perf_counter() - start)
        return best

    galleries = {}
    for key, config in (("plain", None), ("resilient_r1", wrapper_config()),
                        ("replicated_r2", wrapper_config(replication=2))):
        gallery = ShardedGallery(num_nodes=4, resilience=config)
        gallery.add_batch(ids, labels, features)
        gallery.search(probes[0], k=8)  # warm-up
        galleries[key] = timed(gallery)
    return {
        "gallery_rows": rows,
        "queries": queries,
        "plain_us": galleries["plain"] * 1e6 / queries,
        "resilient_r1_us": galleries["resilient_r1"] * 1e6 / queries,
        "replicated_r2_us": galleries["replicated_r2"] * 1e6 / queries,
        "r1_overhead": galleries["resilient_r1"] / galleries["plain"] - 1.0,
        "r2_cost_ratio": galleries["replicated_r2"] / galleries["plain"],
    }


def bench_faulted_recovery(extractor, dataset, iterations) -> dict:
    """Kill one of four nodes mid-run under r=2; results must not move."""
    clean_s, clean_trace, clean_queries = attack_run(
        extractor, dataset, wrapper_config(replication=2), iterations)
    plan = FaultPlan(seed=1).outage("node-1", 6, 10 ** 9)
    faulted_s, faulted_trace, faulted_queries = attack_run(
        extractor, dataset, wrapper_config(replication=2), iterations,
        fault_plan=plan)
    outages = sum(1 for _, _, kind in plan.timeline() if kind == "outage")
    return {
        "iterations": iterations,
        "clean_s": clean_s,
        "faulted_s": faulted_s,
        "outage_events": outages,
        "identical_trace": faulted_trace == clean_trace,
        "identical_queries": faulted_queries == clean_queries,
    }


def bench_checkpoint(trials: int) -> dict:
    rng = np.random.default_rng(3)
    checkpoint = AttackCheckpoint(
        algo="simba", iteration=500,
        rng_state=rng.bit_generator.state,
        service_query_count=1000, objective_queries=1000,
        objective_trace_len=998,
        payload={
            "perturbation": rng.normal(size=(6, 12, 12, 3)),
            "trace": list(rng.normal(size=1000)),
            "order": rng.permutation(400),
            "cursor": 37,
        },
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ckpt.pkl"
        save_s = load_s = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            save_checkpoint(path, checkpoint)
            save_s = min(save_s, time.perf_counter() - start)
            start = time.perf_counter()
            load_checkpoint(path)
            load_s = min(load_s, time.perf_counter() - start)
        size = path.stat().st_size
    return {
        "payload_bytes": size,
        "save_us": save_s * 1e6,
        "load_us": load_s * 1e6,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the resilience subsystem.")
    parser.add_argument("--iterations", type=int, default=120,
                        help="SimBA iterations per attack run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="attack runs per configuration (min is kept)")
    parser.add_argument("--trials", type=int, default=20,
                        help="trials per micro-bench")
    parser.add_argument("--overhead-budget", type=float, default=0.05,
                        help="max fault-free wrapper overhead (fraction)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: quick run, assert overhead budget "
                             "and exact fault recovery")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_resilience.json"),
                        help="output JSON path (full runs only)")
    args = parser.parse_args(argv)

    iterations = 40 if args.smoke else args.iterations
    repeats = 1 if args.smoke else args.repeats
    trials = 5 if args.smoke else args.trials

    extractor, dataset = build_fixture()
    overhead = bench_wrapper_overhead(extractor, dataset, iterations, repeats)
    if overhead["overhead"] > args.overhead_budget:
        # One re-measure damps scheduler/turbo flake before failing.
        print(f"[bench_resilience] overhead {overhead['overhead']:.1%} over "
              "budget; re-measuring once")
        overhead = bench_wrapper_overhead(extractor, dataset,
                                          iterations, max(repeats, 2))

    result = {
        "bench": "resilience",
        "timestamp": time.time(),
        "smoke": args.smoke,
        "overhead_budget": args.overhead_budget,
        "wrapper_overhead": overhead,
        "gallery_micro": bench_gallery_micro(trials),
        "faulted_recovery": bench_faulted_recovery(
            extractor, dataset, iterations),
        "checkpoint": bench_checkpoint(trials),
    }
    print(json.dumps(result, indent=2))

    failures = []
    if result["wrapper_overhead"]["overhead"] > args.overhead_budget:
        failures.append(
            f"fault-free wrapper overhead "
            f"{result['wrapper_overhead']['overhead']:.1%} exceeds "
            f"{args.overhead_budget:.0%} budget")
    recovery = result["faulted_recovery"]
    if not recovery["identical_trace"]:
        failures.append("faulted r=2 run diverged from the fault-free trace")
    if not recovery["identical_queries"]:
        failures.append("faulted r=2 run changed the query accounting")
    if not recovery["outage_events"]:
        failures.append("the scripted outage never fired")

    for failure in failures:
        print(f"[bench_resilience] FAIL: {failure}")
    if failures:
        return 1

    if args.smoke:
        print("[bench_resilience] smoke OK")
    else:
        out_path = Path(args.out)
        out_path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"[bench_resilience] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
