"""Ablation bench: the DUO design choices DESIGN.md §7 calls out.

Toggles, one at a time, on a single (dataset, victim) cell:

* ``target_init``      — θ seeded from the target difference vs zeros;
* ``tie_rule``         — Eq. 3 "move" vs Algorithm-2 "stay" acceptance;
* ``block_size``       — √|support| direction blocks vs single-coordinate.
"""

import numpy as np

from repro.attacks.duo import DUOAttack
from repro.experiments import fixtures
from repro.experiments.protocol import attack_pairs, without_attack_ap
from repro.experiments.report import TableResult
from repro.metrics.ranking import ap_at_m

from benchmarks.common import BENCH_SCALE, run_once, save_table

VARIANTS = (
    ("full", {}),
    ("no-target-init", {"target_init": False}),
    ("tie-stay", {"tie_rule": "stay"}),
    ("single-coordinate", {"block_size": 1}),
)


def _run() -> TableResult:
    scale = BENCH_SCALE
    table = TableResult(
        "Ablation — DUO design choices (ucf101 / resnet18 victim)",
        ["variant", "AP@m", "Spa", "queries"],
    )
    dataset = fixtures.dataset_for("ucf101", scale)
    victim = fixtures.victim_for(dataset, "resnet18", "arcface", scale)
    surrogate = fixtures.surrogate_for(dataset, victim, "c3d", scale)
    pairs = attack_pairs(dataset, scale)
    k = scale.k_for(pairs[0][0].pixels.size)
    table.notes.append(
        f"w/o attack AP@m = {without_attack_ap(victim, pairs):.3f}"
    )

    for name, overrides in VARIANTS:
        aps, spas, queries = [], [], []
        for index, (original, target) in enumerate(pairs):
            attack = DUOAttack(
                surrogate, victim.service, k=k, n=scale.n, tau=scale.tau,
                iter_num_q=scale.iter_num_q, iter_num_h=scale.iter_num_h,
                transfer_outer_iters=scale.transfer_outer_iters,
                theta_steps=scale.theta_steps, rng=100 + index,
            )
            if "target_init" in overrides:
                attack.transfer.target_init = overrides["target_init"]
            if "tie_rule" in overrides:
                attack.query.tie_rule = overrides["tie_rule"]
            if "block_size" in overrides:
                attack.query.block_size = overrides["block_size"]
            result = attack.run(original, target)
            target_ids = victim.service.query(target).ids
            adv_ids = victim.service.query(result.adversarial).ids
            aps.append(ap_at_m(adv_ids, target_ids))
            spas.append(result.stats.spa)
            queries.append(result.queries_used)
        table.add_row(name, float(np.mean(aps)), int(np.mean(spas)),
                      int(np.mean(queries)))
    return table


def test_ablation_duo(benchmark):
    table = run_once(benchmark, _run)
    save_table("ablation_duo", table)
    assert "full" in table.column("variant")
