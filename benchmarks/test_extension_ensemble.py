"""Extension bench: the ensemble defense proposed in the paper's §V-D.

Compares DUO's targeted AP@m against a single victim vs an ensemble of
independently trained backbones fused by reciprocal rank — the paper's
conjecture is that the ensemble is harder to steer.
"""

import numpy as np

from repro.attacks.duo import DUOAttack
from repro.defenses import EnsembleEngine
from repro.experiments import fixtures
from repro.experiments.protocol import attack_pairs
from repro.experiments.report import TableResult
from repro.metrics.ranking import ap_at_m
from repro.retrieval import RetrievalService

from benchmarks.common import BENCH_SCALE, run_once, save_table


def _run() -> TableResult:
    scale = BENCH_SCALE
    table = TableResult(
        "Extension — ensemble defense (ucf101)",
        ["system", "AP@m (attack)", "AP@m (w/o)", "queries"],
    )
    dataset = fixtures.dataset_for("ucf101", scale)
    single = fixtures.victim_for(dataset, "resnet18", "arcface", scale)
    second = fixtures.victim_for(dataset, "tpn", "arcface", scale)
    surrogate = fixtures.surrogate_for(dataset, single, "c3d", scale)
    pairs = attack_pairs(dataset, scale)
    k = scale.k_for(pairs[0][0].pixels.size)

    systems = {
        "single (resnet18)": single.service,
        "ensemble (resnet18+tpn)": RetrievalService.build(
            EnsembleEngine([single.engine, second.engine]), m=scale.m),
    }
    for name, service in systems.items():
        aps, baselines, queries = [], [], []
        for index, (original, target) in enumerate(pairs):
            target_ids = service.query(target).ids
            baselines.append(ap_at_m(service.query(original).ids, target_ids))
            attack = DUOAttack(
                surrogate, service, k=k, n=scale.n, tau=scale.tau,
                iter_num_q=scale.iter_num_q, iter_num_h=scale.iter_num_h,
                transfer_outer_iters=scale.transfer_outer_iters,
                theta_steps=scale.theta_steps, rng=300 + index,
            )
            result = attack.run(original, target)
            aps.append(ap_at_m(service.query(result.adversarial).ids,
                               target_ids))
            queries.append(result.queries_used)
        table.add_row(name, float(np.mean(aps)), float(np.mean(baselines)),
                      int(np.mean(queries)))
    return table


def test_extension_ensemble(benchmark):
    table = run_once(benchmark, _run)
    save_table("extension_ensemble", table)
    assert len(table.rows) == 2
