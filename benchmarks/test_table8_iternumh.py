"""Bench: regenerate Table VIII (DUO vs iter_numH)."""

from repro.experiments import table8_iternumh

from benchmarks.common import BENCH_SCALE, QUICK, run_once, save_table


def test_table8_iternumh(benchmark):
    table = run_once(benchmark, lambda: table8_iternumh.run(BENCH_SCALE))
    save_table("table8_iternumh", table)
    if not QUICK:
        # Paper shape: more loops spend more queries and grow Spa.
        rows = list(zip(table.column("dataset"), table.column("attack"),
                        table.column("iter_numH"), table.column("queries")))
        for dataset in set(r[0] for r in rows):
            for attack in set(r[1] for r in rows):
                series = sorted((h, q) for d, a, h, q in rows
                                if d == dataset and a == attack)
                assert series[-1][1] >= series[0][1]
