"""Bench: regenerate Table IX (SparseTransfer transferability, ℓ2 vs ℓ∞)."""

import numpy as np

from repro.experiments import table9_transferability

from benchmarks.common import BENCH_SCALE, QUICK, run_once, save_table


def test_table9_transferability(benchmark):
    table = run_once(benchmark, lambda: table9_transferability.run(BENCH_SCALE))
    save_table("table9_transferability", table)
    attacks = table.column("attack")
    spas = table.column("Spa")
    duo_spas = [s for a, s in zip(attacks, spas) if a.startswith("duo")]
    timi_spas = [s for a, s in zip(attacks, spas) if a.startswith("timi")]
    if not QUICK and duo_spas and timi_spas:
        # Paper shape: DUO's transfer AEs are far sparser than TIMI's.
        assert np.mean(duo_spas) < np.mean(timi_spas)
