"""Benchmark the trace-and-fuse execution layer (``repro.nn.jit``).

Two measurements:

1. **per-model forward** — eager vs traced replay (``fuse=False``) vs
   traced+fused replay (``fuse=True``) at the attack batch shapes, for
   the ResNet18+LSTM victim and the C3D surrogate.  Replay skips graph
   construction and Python op dispatch; fusion additionally collapses
   elementwise chains into shared buffers.
2. **end-to-end SparseQuery** — the black-box attack loop against a live
   victim service with fuse off vs on.  The victim embedding forward
   dominates the query path, so this is the headline number the ROADMAP
   gate reads (≥1.5× over the current fast path in the full run).

Usage::

    PYTHONPATH=src python benchmarks/bench_jit.py           # full
    PYTHONPATH=src python benchmarks/bench_jit.py --smoke   # CI

The full run records ``BENCH_jit.json`` at the repo root.  ``--smoke``
is the CI gate: it asserts replay stays bit-identical on the bench
fixture, holds the fused speedups above a 1.3× floor, and fails if a
ratio regressed more than 10% against the recorded baseline (ratios,
not wall times, so the check is machine-independent).  Smoke never
overwrites the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.attacks.duo.sparse_query import SparseQuery  # noqa: E402
from repro.attacks.objective import RetrievalObjective  # noqa: E402
from repro.models import create_feature_extractor  # noqa: E402
from repro.nn import Tensor, jit, no_grad  # noqa: E402
from repro.qa.pairs import _qa_priors  # noqa: E402
from repro.qa.world import build_world  # noqa: E402

#: Victim and surrogate extractors at the attack batch shapes.
MODEL_CASES = [
    ("resnet18.b2", "resnet18", (2, 3, 8, 16, 16)),
    ("resnet18.b1", "resnet18", (1, 3, 8, 16, 16)),
    ("c3d.b1", "c3d", (1, 3, 6, 12, 12)),
]


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def interleaved_best(fns: list, trials: int) -> list[float]:
    """Min-of-``trials`` for N thunks, alternating every trial."""
    for fn in fns:  # joint warm-up (traces, conv plans, BLAS init)
        fn()
    best = [float("inf")] * len(fns)
    for _ in range(trials):
        for i, fn in enumerate(fns):
            best[i] = min(best[i], _time_once(fn))
    return best


def bench_models(trials: int) -> list[dict]:
    rows = []
    for name, backbone, shape in MODEL_CASES:
        extractor = create_feature_extractor(backbone, feature_dim=16,
                                             width=2, rng=0)
        extractor.eval()
        extractor.requires_grad_(False)
        traced = jit.compile(extractor, fuse=False)
        fused = jit.CompiledModule(extractor, fuse=True)
        x = Tensor(np.random.default_rng(1).standard_normal(shape))

        def eager_fn(extractor=extractor, x=x):
            with no_grad():
                extractor(x)

        def traced_fn(traced=traced, x=x):
            with no_grad():
                traced(x)

        def fused_fn(fused=fused, x=x):
            with no_grad():
                fused(x)

        # Replay must stay bit-identical on the bench fixture itself.
        with no_grad():
            reference = extractor(x).data
            np.testing.assert_array_equal(reference, traced(x).data)
            np.testing.assert_array_equal(reference, fused(x).data)

        eager_s, traced_s, fused_s = interleaved_best(
            [eager_fn, traced_fn, fused_fn], trials)
        rows.append({
            "name": name,
            "eager_us": eager_s * 1e6,
            "traced_us": traced_s * 1e6,
            "fused_us": fused_s * 1e6,
            "traced_speedup": eager_s / traced_s,
            "fused_speedup": eager_s / fused_s,
            "fused_steps": fused.stats()["fused_steps"],
            "bytes_saved": fused.stats()["bytes_saved"],
        })
    return rows


def sparse_query_seconds(fuse: bool, iterations: int, repeats: int) -> float:
    """Best-of-``repeats`` wall time of a seeded SparseQuery attack."""
    best = float("inf")
    for repeat in range(repeats):
        world = build_world(73, cache_size=0)
        world.engine.configure_fuse(fuse)
        objective = RetrievalObjective(world.service, world.original,
                                       world.target)
        attack = SparseQuery(iter_num_q=iterations, tau=30,
                             rng=repeat, batched=True)
        priors = _qa_priors(world.original.pixels.shape, repeat + 9)
        start = time.perf_counter()
        attack.run(world.original, priors, objective)
        best = min(best, time.perf_counter() - start)
    return best


def check_regression(result: dict, baseline_path: Path,
                     tolerance: float = 0.10) -> list[str]:
    """Compare speedup *ratios* against the recorded baseline."""
    if not baseline_path.exists():
        return [f"no recorded baseline at {baseline_path}; skipping check"]
    baseline = json.loads(baseline_path.read_text())
    failures = []
    checks = [
        ("fused min", result["fused_min_speedup"],
         baseline.get("fused_min_speedup")),
        ("sparse query", result["sparse_query"]["speedup"],
         baseline.get("sparse_query", {}).get("speedup")),
    ]
    for label, measured, recorded in checks:
        if recorded is None:
            continue
        floor = recorded * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{label} speedup regressed: {measured:.2f}x < "
                f"{floor:.2f}x (recorded {recorded:.2f}x - {tolerance:.0%})")
    return failures


#: Absolute floor the smoke gate holds the fused speedups to.
SMOKE_FLOOR = 1.3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark trace-and-fuse replay vs eager execution.")
    parser.add_argument("--iterations", type=int, default=60,
                        help="SparseQuery pixel iterations per attack run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="attack runs per configuration (min is kept)")
    parser.add_argument("--trials", type=int, default=40,
                        help="interleaved trials per model forward")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: quick run, assert bit-identity, "
                             f"{SMOKE_FLOOR}x floor, and no regression vs "
                             "the recorded baseline")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_jit.json"),
                        help="output JSON path (full runs only)")
    args = parser.parse_args(argv)

    iterations = 12 if args.smoke else args.iterations
    repeats = 1 if args.smoke else args.repeats
    trials = 10 if args.smoke else args.trials

    model_rows = bench_models(trials)
    eager_s = sparse_query_seconds(False, iterations, repeats)
    fused_s = sparse_query_seconds(True, iterations, repeats)

    result = {
        "bench": "jit",
        "timestamp": time.time(),
        "smoke": args.smoke,
        "models": model_rows,
        "fused_min_speedup": min(row["fused_speedup"] for row in model_rows),
        "sparse_query": {
            "iterations": iterations,
            "repeats": repeats,
            "eager_s": eager_s,
            "fused_s": fused_s,
            "speedup": eager_s / fused_s,
        },
    }
    print(json.dumps(result, indent=2))

    out_path = Path(args.out)
    if args.smoke:
        # The smoke run gates; it never overwrites the recorded baseline.
        failures = []
        if result["fused_min_speedup"] < SMOKE_FLOOR:
            failures.append(
                f"fused model speedup {result['fused_min_speedup']:.2f}x "
                f"below the {SMOKE_FLOOR}x floor")
        if result["sparse_query"]["speedup"] < SMOKE_FLOOR:
            failures.append(
                f"end-to-end SparseQuery speedup "
                f"{result['sparse_query']['speedup']:.2f}x below the "
                f"{SMOKE_FLOOR}x floor")
        notes = check_regression(result, out_path)
        for note in notes:
            print(f"[bench_jit] {note}")
        failures += [note for note in notes if "regressed" in note]
        if failures:
            for failure in failures:
                print(f"[bench_jit] FAIL: {failure}")
            return 1
        print("[bench_jit] smoke OK")
    else:
        out_path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"[bench_jit] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
