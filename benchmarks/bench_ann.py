"""Benchmark the compressed index tiers against exact search.

For each gallery scale the bench builds a clustered (embedding-shaped)
feature matrix, indexes it three ways — exact ``FeatureIndex``, binary
Hamming codes (``BinaryHashIndex``), and IVF-PQ (``IVFPQIndex``), both
compressed tiers memory-mapped — and records, per tier:

* build seconds and batched query latency (min-of-trials, 64 queries);
* recall@10 against the exact index (the rerank stage makes scores
  exact, so recall measures only candidate coverage);
* the memory split: resident payload vs memmapped bytes vs the float
  footprint the tier replaces.

Usage::

    PYTHONPATH=src python benchmarks/bench_ann.py            # full
    PYTHONPATH=src python benchmarks/bench_ann.py --million  # + 1e6 rows
    PYTHONPATH=src python benchmarks/bench_ann.py --smoke    # CI gate

The full run records ``BENCH_ann.json`` at the repo root (scales 1e4
and 1e5 by default).  ``--smoke`` is the CI gate: a small-scale run
that asserts recall@10 ≥ 0.9 for both compressed tiers and that the
memmapped resident footprint stays under 25% of the float features; it
never overwrites the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

# Pin BLAS to one thread before numpy loads (matches the repo's test
# convention and the 1-core CI machines the baselines are recorded on).
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.hashindex import (  # noqa: E402
    BinaryHashIndex,
    IVFPQIndex,
    MemmapStore,
)
from repro.retrieval import FeatureIndex  # noqa: E402

#: Queries per batch — the serving-tier front end's max batch.
NUM_QUERIES = 64
DIM = 32
K = 10

#: CI floors (smoke mode).
RECALL_FLOOR = 0.9
RESIDENT_FRACTION_CEILING = 0.25


def make_gallery(rows: int, dim: int = DIM, seed: int = 0):
    """A clustered gallery + near-gallery queries (embedding-shaped
    data; isotropic Gaussian rows are the ANN worst case and model
    nothing real)."""
    rng = np.random.default_rng(seed)
    clusters = max(32, rows // 200)
    centers = rng.normal(size=(clusters, dim))
    assignment = rng.integers(0, clusters, size=rows)
    features = centers[assignment] + 0.25 * rng.normal(size=(rows, dim))
    ids = [f"v{i}" for i in range(rows)]
    anchors = rng.choice(rows, size=NUM_QUERIES, replace=False)
    queries = features[anchors] + 0.05 * rng.normal(size=(NUM_QUERIES, dim))
    return ids, assignment.tolist(), features, queries


def best_of(fn, trials: int) -> float:
    fn()  # warm-up (BLAS plans, memmap page-in)
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _recall(exact_lists, approx_lists) -> float:
    total = 0.0
    for exact, approx in zip(exact_lists, approx_lists):
        truth = {entry.video_id for entry in exact}
        got = {entry.video_id for entry in approx}
        total += len(truth & got) / max(len(truth), 1)
    return total / max(len(exact_lists), 1)


def tier_factories(rows: int, store_dir: str):
    """Scale-matched compressed-tier configurations."""
    num_cells = min(1024, max(16, rows // 400))
    rerank = 256 if rows > 2000 else 64
    return {
        "hamming": lambda: BinaryHashIndex(
            nbits=128, coder="itq", rerank=rerank, rng=1,
            store=MemmapStore(Path(store_dir) / "hamming")),
        "ivfpq": lambda: IVFPQIndex(
            num_cells=num_cells, nprobe=max(4, num_cells // 16),
            num_subvectors=8, rerank=rerank, rng=1,
            store=MemmapStore(Path(store_dir) / "ivfpq")),
    }


def bench_scale(rows: int, trials: int, store_dir: str) -> dict:
    ids, labels, features, queries = make_gallery(rows)
    exact = FeatureIndex()
    exact.add_batch(ids, labels, features)
    exact_s = best_of(lambda: exact.search_batch(queries, k=K), trials)
    exact_lists = exact.search_batch(queries, k=K)
    float_bytes = int(features.nbytes)

    result = {
        "rows": rows,
        "dim": DIM,
        "queries": NUM_QUERIES,
        "k": K,
        "float_feature_bytes": float_bytes,
        "exact": {"batch_s": exact_s,
                  "per_query_ms": exact_s / NUM_QUERIES * 1e3},
        "tiers": {},
    }
    for name, factory in tier_factories(rows, store_dir).items():
        index = factory()
        start = time.perf_counter()
        index.add_batch(ids, labels, features)
        index.build()
        build_s = time.perf_counter() - start
        batch_s = best_of(lambda: index.search_batch(queries, k=K), trials)
        stats = index.memory_stats()
        result["tiers"][name] = {
            "build_s": build_s,
            "batch_s": batch_s,
            "per_query_ms": batch_s / NUM_QUERIES * 1e3,
            "speedup_vs_exact": exact_s / batch_s,
            "recall_at_10": _recall(exact_lists,
                                    index.search_batch(queries, k=K)),
            "rerank_depth": index.effective_rerank(K),
            "memory": stats,
            "resident_fraction": stats["resident_bytes"] / float_bytes,
        }
        index.store.close()
    return result


def check_floors(result: dict) -> list[str]:
    """Deterministic floors every run must satisfy."""
    failures = []
    for name, tier in result["tiers"].items():
        if tier["recall_at_10"] < RECALL_FLOOR:
            failures.append(
                f"{result['rows']} rows / {name}: recall@10 "
                f"{tier['recall_at_10']:.3f} < {RECALL_FLOOR}")
        if tier["resident_fraction"] >= RESIDENT_FRACTION_CEILING:
            failures.append(
                f"{result['rows']} rows / {name}: resident bytes are "
                f"{tier['resident_fraction']:.1%} of the float footprint "
                f"(ceiling {RESIDENT_FRACTION_CEILING:.0%})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark compressed index tiers vs exact search.")
    parser.add_argument("--trials", type=int, default=5,
                        help="timing trials per measurement (min is kept)")
    parser.add_argument("--million", action="store_true",
                        help="also bench at 1e6 rows (slow build)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: small scale, recall + memory floors")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_ann.json"),
                        help="output JSON path (full runs only)")
    args = parser.parse_args(argv)

    if args.smoke:
        scales = [4000]
        trials = 2
    else:
        scales = [10_000, 100_000] + ([1_000_000] if args.million else [])
        trials = args.trials

    results = []
    failures = []
    with tempfile.TemporaryDirectory(prefix="bench-ann-") as store_dir:
        for rows in scales:
            print(f"[bench_ann] {rows} rows ...", flush=True)
            result = bench_scale(rows, trials, store_dir)
            results.append(result)
            failures.extend(check_floors(result))
            for name, tier in result["tiers"].items():
                print(f"[bench_ann]   {name}: {tier['speedup_vs_exact']:.1f}x "
                      f"vs exact, recall@10 {tier['recall_at_10']:.3f}, "
                      f"resident {tier['resident_fraction']:.1%} of floats",
                      flush=True)

    payload = {
        "bench": "ann",
        "timestamp": time.time(),
        "smoke": args.smoke,
        "scales": results,
    }
    print(json.dumps(payload, indent=2))
    for failure in failures:
        print(f"[bench_ann] FLOOR VIOLATION: {failure}")
    if failures:
        return 1

    if args.smoke:
        print("[bench_ann] smoke OK")
    else:
        out_path = Path(args.out)
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[bench_ann] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
