"""Bench: regenerate Table V (DUO vs pixel budget k)."""

import numpy as np

from repro.experiments import table5_k_sweep

from benchmarks.common import BENCH_SCALE, QUICK, run_once, save_table


def test_table5_k_sweep(benchmark):
    table = run_once(benchmark, lambda: table5_k_sweep.run(BENCH_SCALE))
    save_table("table5_k_sweep", table)
    if not QUICK:
        # Paper shape: Spa grows with k.
        rows = list(zip(table.column("dataset"), table.column("attack"),
                        table.column("k"), table.column("Spa")))
        for dataset in set(r[0] for r in rows):
            for attack in set(r[1] for r in rows):
                series = [(k, spa) for d, a, k, spa in rows
                          if d == dataset and a == attack]
                series.sort()
                spas = [spa for _, spa in series]
                assert spas[-1] >= spas[0]
