"""Bench: regenerate Table II (all attacks × all victims × both datasets).

The headline comparison: DUO should attain the highest AP@m per victim
while its Spa stays far below TIMI's dense perturbations.
"""

import numpy as np

from repro.experiments import table2_attack_comparison

from benchmarks.common import BENCH_SCALE, QUICK, run_once, save_table


def test_table2_attack_comparison(benchmark):
    table = run_once(benchmark,
                     lambda: table2_attack_comparison.run(BENCH_SCALE))
    save_table("table2_attack_comparison", table)

    attacks = table.column("attack")
    aps = table.column("AP@m")
    spas = table.column("Spa")

    duo_aps = [a for name, a in zip(attacks, aps) if name.startswith("duo")]
    base_aps = [a for name, a in zip(attacks, aps) if name == "w/o attack"]
    timi_spas = [s for name, s in zip(attacks, spas) if name.startswith("timi")]
    duo_spas = [s for name, s in zip(attacks, spas) if name.startswith("duo")]

    assert duo_aps and base_aps
    if not QUICK:
        # Paper shape: DUO's mean AP@m beats the no-attack baseline, and
        # DUO perturbs far fewer values than the dense TIMI attack.
        assert np.mean(duo_aps) > np.mean(base_aps)
        assert np.mean(duo_spas) < 0.8 * np.mean(timi_spas)
