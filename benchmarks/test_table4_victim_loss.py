"""Bench: regenerate Table IV (DUO vs victim training loss)."""

from repro.experiments import table4_victim_loss

from benchmarks.common import BENCH_SCALE, run_once, save_table


def test_table4_victim_loss(benchmark):
    table = run_once(benchmark, lambda: table4_victim_loss.run(BENCH_SCALE))
    save_table("table4_victim_loss", table)
    assert set(table.column("victim_loss")) == {"arcface", "lifted", "angular"}
