"""Bench: regenerate Table III (DUO vs surrogate-dataset size)."""

import numpy as np

from repro.experiments import table3_surrogate_size

from benchmarks.common import BENCH_SCALE, QUICK, run_once, save_table


def test_table3_surrogate_size(benchmark):
    table = run_once(benchmark, lambda: table3_surrogate_size.run(BENCH_SCALE))
    save_table("table3_surrogate_size", table)
    aps = np.asarray(table.column("AP@m"), dtype=float)
    assert np.all((aps >= 0.0) & (aps <= 1.0))
    if not QUICK:
        # Paper shape: surrogate size has little effect — AP@m should not
        # collapse at the smallest size (spread stays moderate).
        assert aps.max() - aps.min() < 0.7
