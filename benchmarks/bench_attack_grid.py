"""Run the attack-strategy grid against the deployed-system defenses.

Every registered {sampler × basis × feedback} composition from
``repro.attacks.registry`` is launched on the tiny qa world with a hard
query budget, behind the same edge stack a deployed victim would run:

* :class:`~repro.defenses.stateful.StatefulQueryDetector` fingerprints
  every query and flags accounts issuing near-duplicate streams;
* :class:`~repro.serving.admission.AdmissionController` applies the
  tenant's token-bucket rate limit and per-tenant query budget on a
  virtual arrival clock.

For each cell we record whether the attack stayed under its budget,
whether the retrieval objective actually improved, whether the detector
flagged the attacking account, and how many queries the rate limiter /
tenant budget would have bounced.  ``duo-query`` is skipped (it needs
externally supplied transfer priors); everything else runs, including
the post-redesign compositions ``rl-sparse``, ``lowrank``, and ``qair``.

Usage::

    PYTHONPATH=src python benchmarks/bench_attack_grid.py           # full
    PYTHONPATH=src python benchmarks/bench_attack_grid.py --smoke   # CI

Both modes write ``BENCH_attacks.json`` at the repo root (CI uploads
every ``BENCH_*.json``); ``--smoke`` shrinks the budgets so the grid
finishes in seconds.  The gate: every cell must finish under budget
with a conserved query ledger, and at least three of the new
compositions must complete end-to-end.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.attacks.config import AttackConfig  # noqa: E402
from repro.attacks.registry import ATTACK_STRATEGIES, build_attack  # noqa: E402
from repro.defenses.stateful import StatefulQueryDetector  # noqa: E402
from repro.qa.invariants import check_budget_conservation  # noqa: E402
from repro.qa.world import build_world, tiny_extractor  # noqa: E402
from repro.serving.admission import AdmissionController  # noqa: E402
from repro.serving.config import ServingConfig, TenantPolicy  # noqa: E402

#: Compositions introduced by the strategy redesign (the grid gate
#: requires at least three of them to run end-to-end).
NEW_COMPOSITIONS = ("rl-sparse", "lowrank", "qair")

#: Needs priors injected via ``config.sampler``; not grid-runnable.
SKIPPED = ("duo-query",)


class GatedService:
    """A retrieval service behind the detector + admission controller.

    Forwards every query to the wrapped service while feeding the
    stateful detector and charging the tenant's admission ledger on a
    virtual arrival clock.  Rejections are recorded, not enforced — the
    bench measures how a deployed edge *would have* treated the attack
    stream without perturbing the attack's own accounting.
    """

    def __init__(self, service, detector: StatefulQueryDetector,
                 controller: AdmissionController, tenant: str,
                 arrival_qps: float = 5.0) -> None:
        self._service = service
        self.detector = detector
        self.controller = controller
        self.tenant = tenant
        self.arrival_qps = float(arrival_qps)
        self.arrivals = 0
        self.rejections: dict[str, int] = {}

    def _account(self, video) -> None:
        now_s = self.arrivals / self.arrival_qps
        self.arrivals += 1
        self.detector.observe(self.tenant, video)
        rejection = self.controller.admit(self.tenant, now_s)
        if rejection is None:
            self.controller.mark_served(self.tenant)
        else:
            self.rejections[rejection.reason] = (
                self.rejections.get(rejection.reason, 0) + 1)

    def query(self, video, m=None):
        self._account(video)
        return self._service.query(video, m)

    def query_batch(self, videos, m=None):
        # Batched probes arrive as one request, but the edge sees (and
        # charges) each candidate query individually.
        for video in videos:
            self._account(video)
        return self._service.query_batch(videos, m)

    def speculate(self, videos, m=None):
        # Speculated candidates still physically reach the service —
        # the attacker's ledger refunds unconsumed ones, the edge's
        # does not.
        for video in videos:
            self._account(video)
        return self._service.speculate(videos, m)

    def __getattr__(self, name):
        return getattr(self._service, name)


def grid_cell(name: str, *, seed: int, iterations: int, budget: int,
              tenant_budget: int, rate_per_s: float) -> dict:
    """Run one registry composition behind the gated edge stack."""
    entry = ATTACK_STRATEGIES[name]
    world = build_world(seed, cache_size=0)
    detector = StatefulQueryDetector(window=64, distance_threshold=0.08,
                                     flag_after=5)
    controller = AdmissionController(ServingConfig(tenants={
        "attacker": TenantPolicy(rate_per_s=rate_per_s, burst=8,
                                 query_budget=tenant_budget),
    }))
    gated = GatedService(world.service, detector, controller, "attacker")

    extras: dict = {}
    if name == "duo":
        extras = {"rounds": 2, "sampler": {"outer_iters": 1,
                                           "theta_steps": 3}}
    elif name == "heu-nes":
        extras = {"feedback": {"samples": 2}}
    config = AttackConfig(strategy=name, k=48, n=2, tau=30.0,
                          iterations=iterations, budget=budget, **extras)
    surrogate = tiny_extractor(seed + 23) if entry.needs_surrogate else None
    attack = build_attack(config,
                          service=gated if entry.needs_service else None,
                          surrogate=surrogate,
                          rng=np.random.default_rng(seed + 17))

    start = time.perf_counter()
    report = attack.run(world.original, world.target)
    elapsed = time.perf_counter() - start
    check_budget_conservation(world.service)

    trace = list(report.trace)
    ledger = controller.ledger("attacker")
    return {
        "strategy": name,
        "composition": entry.composition(),
        "new": name in NEW_COMPOSITIONS,
        "queries": int(report.queries),
        "budget": budget,
        "under_budget": int(report.queries) <= budget,
        "objective_first": trace[0] if trace else None,
        "objective_best": min(trace) if trace else None,
        "improved": bool(trace) and min(trace) < trace[0],
        "detector_flagged": detector.is_flagged("attacker"),
        "detector_hits": detector.hit_count("attacker"),
        "admitted": ledger.admitted,
        "rejected": dict(sorted(gated.rejections.items())),
        "tenant_budget": tenant_budget,
        "wall_s": elapsed,
    }


def run_grid(*, seed: int, iterations: int, budget: int, tenant_budget: int,
             rate_per_s: float) -> list[dict]:
    cells = []
    for name in sorted(ATTACK_STRATEGIES):
        if name in SKIPPED:
            print(f"[bench_attack_grid] skipping {name} "
                  f"(needs externally supplied priors)")
            continue
        cell = grid_cell(name, seed=seed, iterations=iterations,
                         budget=budget, tenant_budget=tenant_budget,
                         rate_per_s=rate_per_s)
        print(f"[bench_attack_grid] {name:10s} {cell['composition']:40s} "
              f"queries={cell['queries']:4d}/{budget} "
              f"flagged={cell['detector_flagged']} "
              f"rejected={sum(cell['rejected'].values())}")
        cells.append(cell)
    return cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the attack-strategy grid against the defenses.")
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument("--iterations", type=int, default=60,
                        help="feedback iterations per cell (full runs)")
    parser.add_argument("--budget", type=int, default=120,
                        help="hard query budget per cell (full runs)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: tiny budgets, same checks")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_attacks.json"))
    args = parser.parse_args(argv)

    iterations = 6 if args.smoke else args.iterations
    budget = 30 if args.smoke else args.budget
    tenant_budget = budget  # the edge grants exactly the attack's budget
    rate_per_s = 2.0 if args.smoke else 4.0

    cells = run_grid(seed=args.seed, iterations=iterations, budget=budget,
                     tenant_budget=tenant_budget, rate_per_s=rate_per_s)

    result = {
        "bench": "attack_grid",
        "timestamp": time.time(),
        "smoke": args.smoke,
        "iterations": iterations,
        "budget": budget,
        "rate_per_s": rate_per_s,
        "cells": cells,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"[bench_attack_grid] wrote {args.out}")

    failures = []
    over = [c["strategy"] for c in cells if not c["under_budget"]]
    if over:
        failures.append(f"over budget: {over}")
    ran_new = [c["strategy"] for c in cells if c["new"]]
    if len(ran_new) < 3:
        failures.append(f"only {len(ran_new)} new compositions ran "
                        f"({ran_new}); need 3")
    querying = [c for c in cells if c["queries"] > 0]
    if not any(c["improved"] for c in querying):
        failures.append("no query-based cell improved its objective")
    for failure in failures:
        print(f"[bench_attack_grid] FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
