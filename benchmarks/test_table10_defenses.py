"""Bench: regenerate Table X (detection rates of two defenses)."""

from repro.experiments import table10_defenses

from benchmarks.common import BENCH_SCALE, run_once, save_table


def test_table10_defenses(benchmark):
    table = run_once(benchmark, lambda: table10_defenses.run(BENCH_SCALE))
    save_table("table10_defenses", table)
    for column in ("feature_squeezing", "noise2self"):
        assert all(0.0 <= value <= 100.0 for value in table.column(column))
