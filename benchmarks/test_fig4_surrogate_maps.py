"""Bench: regenerate Figure 4 (surrogate mAP vs stolen size / feature dim)."""

from repro.experiments import fig4_surrogate_maps

from benchmarks.common import BENCH_SCALE, run_once, save_table


def test_fig4_surrogate_maps(benchmark):
    table = run_once(benchmark, lambda: fig4_surrogate_maps.run(BENCH_SCALE))
    save_table("fig4_surrogate_maps", table)
    assert all(0.0 <= value <= 1.0 for value in table.column("mAP"))
