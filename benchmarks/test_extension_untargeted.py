"""Extension bench: the untargeted DUO variant (paper §I).

Measures the escape rate — the fraction of the original retrieval list
no longer returned for the adversarial query — which is the untargeted
analogue of AP@m.
"""

import numpy as np

from repro.attacks.duo import DUOAttack
from repro.experiments import fixtures
from repro.experiments.protocol import attack_pairs
from repro.experiments.report import TableResult

from benchmarks.common import BENCH_SCALE, QUICK, run_once, save_table


def _run() -> TableResult:
    scale = BENCH_SCALE
    table = TableResult(
        "Extension — untargeted DUO escape rates",
        ["dataset", "escape_rate", "Spa", "queries"],
    )
    for dataset_name in ("ucf101", "hmdb51"):
        dataset = fixtures.dataset_for(dataset_name, scale)
        victim = fixtures.victim_for(dataset, "resnet18", "arcface", scale)
        surrogate = fixtures.surrogate_for(dataset, victim, "c3d", scale)
        pairs = attack_pairs(dataset, scale)
        k = scale.k_for(pairs[0][0].pixels.size)
        escapes, spas, queries = [], [], []
        for index, (original, _) in enumerate(pairs):
            attack = DUOAttack(
                surrogate, victim.service, k=k, n=scale.n, tau=scale.tau,
                iter_num_q=scale.iter_num_q, iter_num_h=1,
                transfer_outer_iters=scale.transfer_outer_iters,
                theta_steps=scale.theta_steps, rng=200 + index,
            )
            result = attack.run_untargeted(original)
            escapes.append(result.metadata["escape_rate"])
            spas.append(result.stats.spa)
            queries.append(result.queries_used)
        table.add_row(dataset_name, float(np.mean(escapes)),
                      int(np.mean(spas)), int(np.mean(queries)))
    return table


def test_extension_untargeted(benchmark):
    table = run_once(benchmark, _run)
    save_table("extension_untargeted", table)
    rates = table.column("escape_rate")
    assert all(0.0 <= rate <= 1.0 for rate in rates)
    if not QUICK:
        # Untargeted is the easy direction: most of the list should move.
        assert max(rates) > 0.2
