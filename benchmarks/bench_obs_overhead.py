"""Measure the overhead of the ``repro.obs`` instrumentation.

Runs the same small black-box attack loop (Vanilla: random support +
SimBA over a live retrieval service) twice — tracing force-disabled and
force-enabled — and micro-benches the disabled-path primitives.  The
datapoint is written to ``BENCH_obs.json`` at the repo root: the first
entry of the perf trajectory every later optimisation PR measures
against.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke   # CI

The acceptance bar is that the *disabled* path stays under 5% of the
loop's wall time; ``overhead_pct`` in the JSON is the enabled-vs-disabled
ratio, and ``span_disabled_ns`` prices a single no-op span call.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import timeit
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.attacks.vanilla import VanillaAttack  # noqa: E402
from repro.models import create_feature_extractor  # noqa: E402
from repro.obs import (  # noqa: E402
    counter,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    use_env_tracing,
)
from repro.retrieval import RetrievalEngine, RetrievalService  # noqa: E402
from repro.video import load_dataset  # noqa: E402


def build_service(seed: int = 0) -> tuple[RetrievalService, object, object]:
    """A tiny victim service (untrained extractor — speed, not accuracy)."""
    dataset = load_dataset(
        "ucf101", num_classes=4, train_videos=16, test_videos=4,
        height=12, width=12, num_frames=6, seed=seed,
    )
    extractor = create_feature_extractor(
        "c3d", feature_dim=16, width=2, rng=seed)
    extractor.eval()
    extractor.requires_grad_(False)
    engine = RetrievalEngine(extractor, num_nodes=3)
    engine.index_videos(dataset.train)
    service = RetrievalService.build(engine, m=8)
    return service, dataset.test[0], dataset.test[1]


def attack_loop_seconds(service, original, target, iterations: int,
                        repeats: int) -> float:
    """Best-of-``repeats`` wall time of one Vanilla attack run."""
    best = float("inf")
    for repeat in range(repeats):
        attack = VanillaAttack(service, k=48, n=3,
                               iterations=iterations, rng=repeat)
        start = time.perf_counter()
        attack.run(original, target)
        best = min(best, time.perf_counter() - start)
    return best


def primitive_costs() -> dict[str, float]:
    """Per-call nanosecond cost of the disabled-path primitives."""
    disable_tracing()
    try:
        loops = 100_000
        span_s = timeit.timeit(lambda: span("bench.noop"), number=loops)
        handle = counter("bench.noop")
        counter_s = timeit.timeit(handle.inc, number=loops)
        lookup_s = timeit.timeit(lambda: counter("bench.noop").inc(),
                                 number=loops)
    finally:
        use_env_tracing()
    return {
        "span_disabled_ns": span_s / loops * 1e9,
        "counter_inc_ns": counter_s / loops * 1e9,
        "counter_lookup_inc_ns": lookup_s / loops * 1e9,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark repro.obs tracing overhead.")
    parser.add_argument("--iterations", type=int, default=300,
                        help="SimBA iterations per attack run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="attack runs per configuration (min is kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run for CI (overrides iterations/repeats)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_obs.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)

    iterations = 40 if args.smoke else args.iterations
    repeats = 1 if args.smoke else args.repeats

    service, original, target = build_service()
    # Warm-up: touch every code path once (BLAS init, caches).
    attack_loop_seconds(service, original, target, iterations=5, repeats=1)

    disable_tracing()
    try:
        off_s = attack_loop_seconds(service, original, target,
                                    iterations, repeats)
    finally:
        use_env_tracing()

    enable_tracing()
    tracer = get_tracer()
    tracer.reset()
    try:
        on_s = attack_loop_seconds(service, original, target,
                                   iterations, repeats)
        records = tracer.num_records
    finally:
        use_env_tracing()

    result = {
        "bench": "obs_overhead",
        "timestamp": time.time(),
        "smoke": args.smoke,
        "iterations": iterations,
        "repeats": repeats,
        "trace_off_s": off_s,
        "trace_on_s": on_s,
        "overhead_pct": (on_s / off_s - 1.0) * 100.0,
        "span_records_on": records,
        **primitive_costs(),
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[bench_obs_overhead] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
