"""Benchmark the cost-model adaptive router against pinned configurations.

The routed engine must be competitive with the *best* hand-pinned
configuration of the knobs it controls (search batching, embedding
cache, trace-and-fuse) on a mixed retrieval workload — that is the whole
point of measuring instead of guessing.  The pinned grid is every
combination of those knobs with routing disabled; the routed run
calibrates once (quick probes) and then lets the router decide per call.

Usage::

    PYTHONPATH=src python benchmarks/bench_router.py           # full
    PYTHONPATH=src python benchmarks/bench_router.py --smoke   # CI

The full run records ``BENCH_router.json`` at the repo root.  ``--smoke``
is the CI gate: routed wall time must stay within ``SMOKE_RATIO`` of the
best pinned configuration (the full run holds the tighter
``FULL_RATIO``).  The report also records the speedup over the *worst*
pinned configuration — the cost of guessing wrong, which is what the
router exists to avoid.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.qa.world import build_world  # noqa: E402
from repro.router import Router, set_router  # noqa: E402
from repro.router.calibrate import run_calibration  # noqa: E402

#: Routed wall time must stay within these ratios of the best pinned run.
FULL_RATIO = 1.10
SMOKE_RATIO = 1.25


def _workload(world, rounds: int, scalar: bool) -> None:
    """Mixed retrieval traffic: batches with ~50% repeated queries.

    Repeats make the embedding cache matter; batch sizes 1..4 exercise
    both sides of the scalar/batched search decision.
    """
    queries = world.gallery_videos
    for round_idx in range(rounds):
        for size in (1, 2, 4):
            batch = [queries[(round_idx + i) % len(queries)]
                     for i in range(size)]
            if scalar:
                for video in batch:
                    world.engine.retrieve(video, m=5)
            else:
                world.engine.retrieve_batch(batch, m=5)


def _timed_run(cache: int, fuse: bool | None, scalar: bool,
               router: Router | None, rounds: int, seed: int) -> float:
    """Build a fresh world under one configuration and time the workload."""
    world = build_world(seed, num_videos=9, cache_size=cache)
    world.engine.configure_fuse(fuse)
    set_router(router)
    try:
        _workload(world, 1, scalar)  # warm-up: plans, traces, cache fill
        start = time.perf_counter()
        _workload(world, rounds, scalar)
        return time.perf_counter() - start
    finally:
        set_router(None)
        world.engine.configure_fuse(None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark routed vs pinned retrieval configurations.")
    parser.add_argument("--rounds", type=int, default=30,
                        help="workload rounds per configuration")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration (min is kept)")
    parser.add_argument("--seed", type=int, default=73)
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI gate: quick run, routed within "
                             f"{SMOKE_RATIO}x of the best pinned config")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_router.json"),
                        help="output JSON path (full runs only)")
    args = parser.parse_args(argv)

    rounds = 6 if args.smoke else args.rounds
    repeats = 1 if args.smoke else args.repeats
    ratio_limit = SMOKE_RATIO if args.smoke else FULL_RATIO

    print("[bench_router] calibrating (quick probes)...")
    profile = run_calibration(quick=True, seed=args.seed)

    # Pinned grid: routing disabled, every knob forced in code.
    pinned: dict[str, float] = {}
    for cache, fuse, scalar in itertools.product((0, 64), (False, True),
                                                 (False, True)):
        label = (f"cache={'on' if cache else 'off'},"
                 f"fuse={'on' if fuse else 'off'},"
                 f"search={'scalar' if scalar else 'batched'}")
        best = min(_timed_run(cache, fuse, scalar, None, rounds,
                              args.seed) for _ in range(repeats))
        pinned[label] = best
        print(f"[bench_router] pinned {label}: {best * 1e3:.1f} ms")

    # Routed: cache allocated, fuse/search/cache-bypass left to the router.
    routed_s = min(_timed_run(64, None, False, Router(profile=profile),
                              rounds, args.seed) for _ in range(repeats))
    print(f"[bench_router] routed: {routed_s * 1e3:.1f} ms")

    best_label, best_pinned_s = min(pinned.items(), key=lambda kv: kv[1])
    worst_label, worst_pinned_s = max(pinned.items(), key=lambda kv: kv[1])
    result = {
        "bench": "router",
        "timestamp": time.time(),
        "smoke": args.smoke,
        "rounds": rounds,
        "calibration_cells": profile.num_cells,
        "pinned_s": pinned,
        "routed_s": routed_s,
        "best_pinned": {"config": best_label, "seconds": best_pinned_s},
        "worst_pinned": {"config": worst_label, "seconds": worst_pinned_s},
        "routed_vs_best_ratio": routed_s / best_pinned_s,
        "worst_pinned_speedup": worst_pinned_s / routed_s,
        "ratio_limit": ratio_limit,
    }
    print(json.dumps({key: value for key, value in result.items()
                      if key != "pinned_s"}, indent=2))

    if result["routed_vs_best_ratio"] > ratio_limit:
        print(f"[bench_router] FAIL: routed run is "
              f"{result['routed_vs_best_ratio']:.2f}x the best pinned "
              f"config ({best_label}); limit {ratio_limit}x")
        return 1
    if args.smoke:
        print("[bench_router] smoke OK")
    else:
        out_path = Path(args.out)
        out_path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"[bench_router] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
