"""Bench: regenerate Table VI (DUO vs frame budget n)."""

from repro.experiments import table6_n_sweep

from benchmarks.common import BENCH_SCALE, QUICK, run_once, save_table


def test_table6_n_sweep(benchmark):
    table = run_once(benchmark, lambda: table6_n_sweep.run(BENCH_SCALE))
    save_table("table6_n_sweep", table)
    if not QUICK:
        # Paper shape: more frames, more perturbed values.
        rows = list(zip(table.column("dataset"), table.column("attack"),
                        table.column("n"), table.column("Spa")))
        for dataset in set(r[0] for r in rows):
            for attack in set(r[1] for r in rows):
                series = sorted((n, spa) for d, a, n, spa in rows
                                if d == dataset and a == attack)
                assert series[-1][1] >= series[0][1]
