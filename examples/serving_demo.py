#!/usr/bin/env python3
"""A DUO attacker sharing a production front end with benign tenants.

The paper's threat model charges the attacker per black-box query.  This
demo puts that meter in front of a real serving stack: the victim
service sits behind ``repro.serving``'s micro-batching front end, three
benign tenants browse normally, and a ``duo-attacker`` tenant floods
frame-pixel probe perturbations of one video.  The operator gives the
attacker a token-bucket rate limit and a hard per-tenant query budget —
so the flood mostly bounces with 429-style retry-after hints while
benign interactive latency stays flat.

Everything runs on a virtual clock, so the printed schedule is exactly
reproducible.
"""

import numpy as np

from repro.serving import (
    Request,
    ServingConfig,
    ServingFrontend,
    TenantPolicy,
    TenantSpec,
    generate_timeline,
)
from repro.training import build_victim_system
from repro.video import Video, load_dataset


def attacker_probes(original: Video, count: int, seed: int) -> list[Video]:
    """DUO-style frame-pixel probes: sparse pixel flips of one video."""
    rng = np.random.default_rng(seed)
    probes = []
    for index in range(count):
        pixels = original.pixels.copy()
        frames = rng.choice(pixels.shape[0], size=2, replace=False)
        for frame in frames:
            rows = rng.integers(0, pixels.shape[1], size=12)
            cols = rng.integers(0, pixels.shape[2], size=12)
            pixels[frame, rows, cols] = rng.uniform(size=(12, 3))
        probes.append(Video(pixels, label=original.label,
                            video_id=f"probe-{index}"))
    return probes


def main() -> None:
    print("== victim system behind a serving front end ==")
    dataset = load_dataset(
        "ucf101", num_classes=8, train_videos=64, test_videos=8,
        height=16, width=16, num_frames=8, seed=20,
    )
    victim = build_victim_system(
        dataset, backbone="resnet18", loss="arcface",
        feature_dim=16, width=2, epochs=1, m=10, num_nodes=3, seed=21,
    )

    config = ServingConfig(
        max_batch_size=8, max_wait_s=0.002, queue_capacity=32,
        tenants={
            # The operator's defense: the attacker gets a trickle.
            "duo-attacker": TenantPolicy(rate_per_s=120.0, burst=4,
                                         query_budget=12, priority="bulk"),
        },
    )
    frontend = ServingFrontend(victim.service, config)

    print("== traffic: 3 benign tenants + 1 probing attacker ==")
    specs = [TenantSpec("alice", 180.0, 30),
             TenantSpec("bob", 140.0, 30),
             TenantSpec("carol", 90.0, 20)]
    benign = generate_timeline(22, specs, dataset.test)
    probes = attacker_probes(dataset.test[0], count=60, seed=23)
    attacker_rng = np.random.default_rng(24)
    gaps = attacker_rng.exponential(1.0 / 500.0, size=len(probes))
    flood = [Request("duo-attacker", probe, arrival_s=float(at))
             for probe, at in zip(probes, np.cumsum(gaps))]
    timeline = sorted(benign + flood, key=lambda r: r.arrival_s)
    print(f"benign requests: {len(benign)} "
          f"({', '.join(spec.name for spec in specs)})")
    print(f"attacker probes: {len(flood)} at ~500 q/s "
          f"(limit 120 q/s, budget 12)")

    report = frontend.run(timeline)

    print("\n== outcome ==")
    print(f"batches dispatched: {report.batches} "
          f"(mean batch {report.mean_batch_size():.2f})")
    print(f"virtual throughput: {report.throughput_qps:.0f} q/s, "
          f"shed rate {report.shed_rate:.1%}")
    for tenant, served in report.served_by_tenant.items():
        rejected = sum(1 for r in report.responses
                       if r.request.tenant == tenant
                       and r.status == "rejected")
        print(f"  {tenant:>12}: served {served:3d}, rejected {rejected:3d}")
    print(f"benign p50/p99 latency: "
          f"{report.latency_percentile(50, 'interactive') * 1e3:.1f} / "
          f"{report.latency_percentile(99, 'interactive') * 1e3:.1f} ms")

    refusals = [r for r in report.responses
                if r.request.tenant == "duo-attacker"
                and r.status == "rejected"]
    rate_limited = [r for r in refusals if r.reason == "rate_limited"]
    print(f"\nattacker refusals: {len(refusals)} "
          f"({len(rate_limited)} rate-limited, "
          f"{len(refusals) - len(rate_limited)} out of budget)")
    if rate_limited:
        hint = rate_limited[0]
        print(f"first 429 at t={hint.completed_s * 1e3:.2f} ms, "
              f"retry-after {hint.retry_after_s * 1e3:.2f} ms "
              f"({type(hint.error).__name__})")
    served_probes = report.served_by_tenant.get("duo-attacker", 0)
    print(f"probes that reached the model: {served_probes} of {len(flood)} "
          "— the query meter, not the attack, sets the pace")


if __name__ == "__main__":
    main()
