#!/usr/bin/env python3
"""Defense evaluation: can feature squeezing / Noise2Self catch the AEs?

Reproduces the Section V-D workflow in miniature: calibrate both
list-stability detectors on clean queries at a 5% false-positive budget,
generate AEs with a dense attack (TIMI) and a sparse attack (DUO), and
compare detection rates — sparsification is what buys DUO its
stealthiness.
"""

from repro.attacks import DUOAttack, TIMIAttack, VanillaAttack
from repro.defenses import (
    FeatureSqueezer,
    Noise2SelfDenoiser,
    SqueezeDetector,
    detection_rate,
)
from repro.surrogate import steal_training_set, train_surrogate
from repro.training import build_victim_system
from repro.video import load_dataset


def main() -> None:
    dataset = load_dataset(
        "ucf101", num_classes=20, train_videos=160, test_videos=24,
        height=24, width=24, num_frames=8, seed=20,
    )
    victim = build_victim_system(dataset, backbone="i3d", loss="arcface",
                                 feature_dim=32, width=4, epochs=2, m=20,
                                 seed=21)
    stolen = steal_training_set(victim.service, dataset.test,
                                victim.video_lookup, rounds=4, branch=3,
                                rng=22)
    surrogate = train_surrogate(stolen, backbone="c3d", feature_dim=32,
                                width=4, epochs=4, seed=23)

    print("calibrating detectors on clean queries (5% FPR budget)...")
    detectors = {
        "feature-squeezing": SqueezeDetector(victim.engine, FeatureSqueezer(),
                                             m=20),
        "noise2self": SqueezeDetector(victim.engine, Noise2SelfDenoiser(),
                                      m=20),
    }
    for name, detector in detectors.items():
        threshold = detector.fit(dataset.test[:12], false_positive_rate=0.05)
        print(f"  {name}: threshold={threshold:.3f}")

    pairs = dataset.sample_attack_pairs(3, rng_or_seed=24)
    k = int(0.4 * pairs[0][0].pixels.size)
    attacks = {
        "timi (dense)": lambda i: TIMIAttack(surrogate, tau=30, iterations=10),
        "vanilla (sparse)": lambda i: VanillaAttack(
            victim.service, k=k, n=6, tau=30, iterations=150, rng=30 + i),
        "duo (sparse)": lambda i: DUOAttack(
            surrogate, victim.service, k=k, n=6, tau=30, iter_num_q=100,
            iter_num_h=1, rng=40 + i),
    }

    print(f"{'attack':18s} {'squeezing':>10s} {'noise2self':>11s}  spa")
    for attack_name, factory in attacks.items():
        adversarials, spas = [], []
        for index, (original, target) in enumerate(pairs):
            result = factory(index).run(original, target)
            adversarials.append(result.adversarial)
            spas.append(result.stats.spa)
        rates = {
            name: 100.0 * detection_rate(detector, adversarials)
            for name, detector in detectors.items()
        }
        print(f"{attack_name:18s} {rates['feature-squeezing']:9.1f}% "
              f"{rates['noise2self']:10.1f}%  "
              f"{sum(spas) / len(spas):.0f}")


if __name__ == "__main__":
    main()
