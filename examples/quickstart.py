#!/usr/bin/env python3
"""Quickstart: stand up a victim retrieval system and attack it with DUO.

Runs in well under a minute on a laptop CPU.  The flow mirrors the paper:

1. build a synthetic UCF101-style dataset and train a victim retrieval
   system (I3D-style backbone + ArcFace loss, gallery = train split);
2. steal a surrogate by crawling the victim's black-box query API;
3. pick an (original, target) pair of different action classes;
4. run DUO (SparseTransfer + SparseQuery) and report AP@m / Spa / PScore.
"""

from repro.attacks import DUOAttack
from repro.metrics import ap_at_m, evaluate_map
from repro.surrogate import steal_training_set, train_surrogate
from repro.training import build_victim_system
from repro.video import load_dataset


def main() -> None:
    print("== 1. victim retrieval system ==")
    # Many visually confusable classes + a dense gallery put the system in
    # the paper's regime, where retrieval lists of different videos
    # overlap and respond to perturbations (see DESIGN.md §5).
    dataset = load_dataset(
        "ucf101", num_classes=40, train_videos=320, test_videos=40,
        height=24, width=24, num_frames=8, seed=0,
    )
    victim = build_victim_system(
        dataset, backbone="resnet18", loss="arcface",
        feature_dim=32, width=4, epochs=2, m=20, seed=1,
    )
    map_score = evaluate_map(victim.engine, dataset.test[:10], m=20)
    print(f"gallery size: {victim.engine.gallery_size}, "
          f"victim mAP: {map_score:.3f}")

    print("== 2. surrogate by model stealing ==")
    stolen = steal_training_set(
        victim.service, dataset.test, victim.video_lookup,
        rounds=4, branch=3, rng=2,
    )
    surrogate = train_surrogate(stolen, backbone="c3d", feature_dim=32,
                                width=4, epochs=4, seed=3)
    print(f"stolen rows: {len(stolen)} "
          f"({stolen.queries_spent} queries spent)")

    print("== 3 & 4. DUO over the evaluation pairs ==")
    # The paper averages over randomly drawn (original, target) pairs;
    # individual pairs vary a lot, so the demo follows the same protocol.
    pairs = dataset.sample_attack_pairs(3, rng_or_seed=4)
    total_values = pairs[0][0].pixels.size
    baseline_aps, attack_aps, last_result = [], [], None
    for index, (original, target) in enumerate(pairs):
        target_ids = victim.service.query(target).ids
        baseline_aps.append(
            ap_at_m(victim.service.query(original).ids, target_ids))
        attack = DUOAttack(
            surrogate, victim.service,
            k=int(0.4 * total_values), n=6, tau=30,
            iter_num_q=150, iter_num_h=2, rng=5 + index,
        )
        last_result = attack.run(original, target)
        adversarial_ids = victim.service.query(last_result.adversarial).ids
        attack_aps.append(ap_at_m(adversarial_ids, target_ids))
        print(f"pair {index}: {original.video_id} (class {original.label}) "
              f"→ {target.video_id} (class {target.label}): "
              f"AP@m {baseline_aps[-1]:.3f} → {attack_aps[-1]:.3f}")

    mean_baseline = sum(baseline_aps) / len(baseline_aps)
    mean_attack = sum(attack_aps) / len(attack_aps)
    stats = last_result.stats
    print(f"\nmean AP@m: {mean_baseline:.3f} (w/o attack) → "
          f"{mean_attack:.3f} (DUO)")
    print(f"last AE: Spa={stats.spa} of {total_values}, "
          f"PScore={stats.pscore:.3f} (8-bit), "
          f"frames={stats.frames}/{pairs[0][0].num_frames}, "
          f"linf={stats.linf * 255:.1f}/255, "
          f"queries={last_result.queries_used}")


if __name__ == "__main__":
    main()
