#!/usr/bin/env python3
"""Tour of the distributed retrieval substrate (paper Figure 1).

Shows the pieces under the black-box service: the feature extractor, the
sharded gallery with its star topology, scatter/gather top-k merging,
graceful degradation when a data node fails mid-serving, and the
resilient plane — replication keeping retrieval exact through scripted
fault injection.
"""

from repro.metrics import evaluate_map
from repro.resilience import FaultPlan, ResilienceConfig
from repro.retrieval import RetrievalEngine
from repro.training import build_victim_system
from repro.video import load_dataset


def main() -> None:
    dataset = load_dataset(
        "ucf101", num_classes=12, train_videos=96, test_videos=12,
        height=24, width=24, num_frames=8, seed=30,
    )
    victim = build_victim_system(dataset, backbone="slowfast", loss="lifted",
                                 feature_dim=32, width=4, epochs=2, m=10,
                                 num_nodes=4, seed=31)
    engine = victim.engine
    gallery = engine.gallery

    print("== topology ==")
    print(f"nodes: {[node.node_id for node in gallery.nodes]}")
    print(f"edges: {sorted(gallery.topology.edges())}")
    print(f"shard sizes: {[len(node) for node in gallery.nodes]} "
          f"(round-robin placement of {len(gallery)} videos)")

    query = dataset.test[0]
    print("\n== scatter/gather retrieval ==")
    result = engine.retrieve(query, m=8)
    for rank, entry in enumerate(result, start=1):
        print(f"  #{rank}: {entry.video_id} (class {entry.label}, "
              f"score {entry.score:.3f})")
    print(f"per-node search counts: "
          f"{[node.search_count for node in gallery.nodes]}")

    print("\n== failure injection ==")
    healthy_map = evaluate_map(engine, dataset.test, m=10)
    gallery.nodes[0].take_down()
    degraded_map = evaluate_map(engine, dataset.test, m=10)
    gallery.nodes[0].bring_up()
    recovered_map = evaluate_map(engine, dataset.test, m=10)
    print(f"mAP with all nodes:   {healthy_map:.3f}")
    print(f"mAP with node-0 down: {degraded_map:.3f} "
          f"(serving continues on {len(gallery.live_nodes) + 1 - 1} shards)")
    print(f"mAP after recovery:   {recovered_map:.3f}")

    print("\n== resilient plane: replication + fault injection ==")
    # Rebuild the gallery with each row on two nodes; retries and the
    # per-node circuit breaker ride out the scripted incident below.
    resilient = RetrievalEngine(engine.extractor, num_nodes=4,
                                resilience=ResilienceConfig(replication=2))
    resilient.index_videos(dataset.train)
    print(f"logical rows {len(resilient.gallery)}, physical rows "
          f"{resilient.gallery.physical_rows} (r=2)")
    plan = (FaultPlan(seed=7)
            .outage("node-1", 0, 10 ** 9)   # node-1 dead for the demo
            .flaky("node-3", 0.2))          # node-3 fails 20% of attempts
    exact = evaluate_map(resilient, dataset.test, m=10)
    with plan.install(resilient.gallery):
        faulted = evaluate_map(resilient, dataset.test, m=10)
    print(f"mAP fault-free:              {exact:.3f}")
    print(f"mAP with node-1 dead + node-3 flaky: {faulted:.3f} "
          f"(exact: every shard has a live replica)")
    print(f"fault events injected: {len(plan.timeline())}")
    assert faulted == exact


if __name__ == "__main__":
    main()
