#!/usr/bin/env python3
"""Copyright-evasion scenario from the paper's introduction.

"A video owner may check whether her/his videos are protected by
retrieving the top-k results ... the adversary can bypass such copyright
violation detection by publishing an adversarial example for a
copyrighted video that is not included in the retrieval results."

This example plays both roles:

* the *owner* queries the retrieval service with their copyrighted video
  and checks whether near-duplicates appear in the results;
* the *adversary* republishes the copyrighted video with a DUO
  perturbation targeted at an unrelated video, so the owner's check
  comes back clean.
"""

from repro.attacks import DUOAttack
from repro.surrogate import steal_training_set, train_surrogate
from repro.training import build_victim_system
from repro.video import load_dataset


def owner_check(service, copyrighted, suspect, m=20) -> bool:
    """True when the suspect video surfaces the copyrighted one's ring.

    The owner queries with the *suspect upload* and flags it if the
    results look like the copyrighted video's own results (same ring of
    near-duplicates = same class here).
    """
    suspect_list = service.query(suspect, m=m)
    matches = sum(1 for entry in suspect_list if entry.label == copyrighted.label)
    return matches >= m // 4


def main() -> None:
    dataset = load_dataset(
        "ucf101", num_classes=20, train_videos=160, test_videos=20,
        height=24, width=24, num_frames=8, seed=10,
    )
    victim = build_victim_system(dataset, backbone="resnet18", loss="arcface",
                                 feature_dim=32, width=4, epochs=2, m=20,
                                 seed=11)

    # The copyrighted video is in the platform's gallery; the adversary
    # wants to republish it without tripping the similarity check.
    copyrighted = dataset.train[0]
    decoy_target = next(v for v in dataset.train if v.label != copyrighted.label)

    print("owner checks the verbatim re-upload:")
    flagged = owner_check(victim.service, copyrighted, copyrighted)
    print(f"  flagged as duplicate: {flagged}  (expected: True)")

    print("adversary steals a surrogate and crafts the evasion...")
    stolen = steal_training_set(victim.service, dataset.test,
                                victim.video_lookup, rounds=4, branch=3,
                                rng=12)
    surrogate = train_surrogate(stolen, backbone="c3d", feature_dim=32,
                                width=4, epochs=4, seed=13)
    attack = DUOAttack(surrogate, victim.service,
                       k=int(0.4 * copyrighted.pixels.size), n=6, tau=30,
                       iter_num_q=150, iter_num_h=2, rng=14)
    result = attack.run(copyrighted, decoy_target)

    print("owner checks the adversarial re-upload:")
    flagged = owner_check(victim.service, copyrighted, result.adversarial)
    print(f"  flagged as duplicate: {flagged}  (evasion succeeded: {not flagged})")
    stats = result.stats
    print(f"  perturbation: Spa={stats.spa}, PScore={stats.pscore:.3f}, "
          f"frames={stats.frames}, linf={stats.linf * 255:.0f}/255")


if __name__ == "__main__":
    main()
