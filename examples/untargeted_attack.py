#!/usr/bin/env python3
"""Untargeted DUO: make the retrieval system return anything *but* the truth.

The paper focuses on targeted attacks but notes (§I) that DUO "can be
easily extended to launch untargeted attacks as well".  This example runs
that extension: the attacker wants the victim's retrieval list for a
perturbed query to stop containing the videos it correctly returns for
the clean query (e.g. to hide a video from similarity search entirely).
"""

from repro.attacks import DUOAttack
from repro.surrogate import steal_training_set, train_surrogate
from repro.training import build_victim_system
from repro.video import load_dataset


def main() -> None:
    dataset = load_dataset(
        "ucf101", num_classes=40, train_videos=320, test_videos=40,
        height=24, width=24, num_frames=8, seed=40,
    )
    victim = build_victim_system(dataset, backbone="resnet18", loss="arcface",
                                 feature_dim=32, width=4, epochs=2, m=20,
                                 seed=41)
    stolen = steal_training_set(victim.service, dataset.test,
                                victim.video_lookup, rounds=4, branch=3,
                                rng=42)
    surrogate = train_surrogate(stolen, backbone="c3d", feature_dim=32,
                                width=4, epochs=4, seed=43)

    original = dataset.train[5]
    clean_list = victim.service.query(original)
    same_class = sum(1 for e in clean_list if e.label == original.label)
    print(f"clean query: {same_class}/{len(clean_list)} returned videos share "
          f"the true class {original.label}")

    attack = DUOAttack(surrogate, victim.service,
                       k=int(0.4 * original.pixels.size), n=6, tau=30,
                       iter_num_q=150, iter_num_h=1, rng=44)
    result = attack.run_untargeted(original)

    adv_list = victim.service.query(result.adversarial)
    same_class_adv = sum(1 for e in adv_list if e.label == original.label)
    print(f"adversarial query: {same_class_adv}/{len(adv_list)} share the "
          f"true class")
    print(f"escape rate (original list items no longer returned): "
          f"{result.metadata['escape_rate']:.2f}")
    stats = result.stats
    print(f"perturbation: Spa={stats.spa}, PScore={stats.pscore:.2f}, "
          f"frames={stats.frames}, queries={result.queries_used}")


if __name__ == "__main__":
    main()
