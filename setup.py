"""Legacy setup shim for environments whose pip lacks wheel support."""

from setuptools import setup

setup()
