"""Vanilla baseline: random sparse masks + SimBA queries.

Paper Section V-B: "It first randomly selects pixels for each frame given
a fixed Spa.  Then it uses a query-based attack [53] to generate v_adv."

:func:`random_support` is the selection rule (the ``RandomSampler``
strategy component); :class:`VanillaAttack` is a deprecated shim over
the ``"vanilla"`` registry composition and reproduces the pre-redesign
class bit-for-bit.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.retrieval.service import RetrievalService
from repro.utils.seeding import seeded_rng
from repro.video.types import Video


def random_support(shape: tuple[int, ...], k: int, n: int,
                   rng=None) -> np.ndarray:
    """Random sparse support: ``n`` random frames, ``k`` random values.

    The ``k`` values are spread uniformly over the selected frames.
    """
    rng = seeded_rng(rng)
    frames = shape[0]
    per_frame = int(np.prod(shape[1:]))
    n = min(int(n), frames)
    chosen_frames = rng.choice(frames, size=n, replace=False)
    support = np.zeros(shape, dtype=bool)
    budget = min(int(k), n * per_frame)
    per_frame_budget = np.full(n, budget // n)
    per_frame_budget[: budget % n] += 1
    for frame, count in zip(chosen_frames, per_frame_budget):
        if count == 0:
            continue
        picks = rng.choice(per_frame, size=int(count), replace=False)
        support.reshape(frames, -1)[frame, picks] = True
    return support


class VanillaAttack(Attack):
    """Random-selection sparse query attack (the paper's Vanilla).

    .. deprecated::
        Shim over the ``"vanilla"`` registry composition; use
        ``build_attack(AttackConfig(strategy="vanilla", ...),
        service=...)`` instead.
    """

    name = "vanilla"

    def __init__(self, service: RetrievalService, k: int, n: int = 4,
                 tau: float = 30.0, iterations: int = 1000, eta: float = 1.0,
                 rng=None) -> None:
        warnings.warn(
            "VanillaAttack(service, k, ...) is deprecated; use "
            "repro.attacks.registry.build_attack(AttackConfig("
            "strategy='vanilla', ...), service=...) instead",
            DeprecationWarning, stacklevel=2)
        from repro.attacks.config import AttackConfig
        from repro.attacks.registry import build_attack

        self.service = service
        self.k = int(k)
        self.n = int(n)
        self.tau = float(tau) / 255.0
        self.iterations = int(iterations)
        self.eta = float(eta)
        self.rng = seeded_rng(rng)
        self._composed = build_attack(
            AttackConfig(strategy="vanilla", k=self.k, n=self.n,
                         tau=float(tau), eta=self.eta,
                         iterations=self.iterations),
            service=service, rng=self.rng)

    def run(self, original: Video, target: Video) -> AttackResult:
        """Random-support SimBA attack on the pair ``(v, v_t)``."""
        report = self._composed.run(original, target)
        # Legacy metadata shape.
        report.metadata = {"k": self.k, "n": self.n, "tau": self.tau * 255.0}
        return report
