"""Vanilla baseline: random sparse masks + SimBA queries.

Paper Section V-B: "It first randomly selects pixels for each frame given
a fixed Spa.  Then it uses a query-based attack [53] to generate v_adv."
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.objective import RetrievalObjective
from repro.attacks.search import simba_search
from repro.obs import counter, span
from repro.retrieval.service import RetrievalService
from repro.utils.seeding import seeded_rng
from repro.video.types import Video


def random_support(shape: tuple[int, ...], k: int, n: int,
                   rng=None) -> np.ndarray:
    """Random sparse support: ``n`` random frames, ``k`` random values.

    The ``k`` values are spread uniformly over the selected frames.
    """
    rng = seeded_rng(rng)
    frames = shape[0]
    per_frame = int(np.prod(shape[1:]))
    n = min(int(n), frames)
    chosen_frames = rng.choice(frames, size=n, replace=False)
    support = np.zeros(shape, dtype=bool)
    budget = min(int(k), n * per_frame)
    per_frame_budget = np.full(n, budget // n)
    per_frame_budget[: budget % n] += 1
    for frame, count in zip(chosen_frames, per_frame_budget):
        if count == 0:
            continue
        picks = rng.choice(per_frame, size=int(count), replace=False)
        support.reshape(frames, -1)[frame, picks] = True
    return support


class VanillaAttack(Attack):
    """Random-selection sparse query attack (the paper's Vanilla)."""

    name = "vanilla"

    def __init__(self, service: RetrievalService, k: int, n: int = 4,
                 tau: float = 30.0, iterations: int = 1000, eta: float = 1.0,
                 rng=None) -> None:
        self.service = service
        self.k = int(k)
        self.n = int(n)
        self.tau = float(tau) / 255.0
        self.iterations = int(iterations)
        self.eta = float(eta)
        self.rng = seeded_rng(rng)

    def run(self, original: Video, target: Video) -> AttackResult:
        """Random-support SimBA attack on the pair ``(v, v_t)``."""
        counter("attack.runs", attack=self.name).inc()
        with span("attack.vanilla", k=self.k, n=self.n):
            objective = RetrievalObjective(self.service, original, target,
                                           eta=self.eta)
            support = random_support(original.pixels.shape, self.k, self.n,
                                     rng=self.rng)
            adversarial, perturbation, trace = simba_search(
                original, objective, support, tau=self.tau,
                iterations=self.iterations, rng=self.rng,
            )
        return AttackResult(
            adversarial=adversarial,
            perturbation=perturbation,
            queries_used=objective.queries,
            objective_trace=trace,
            metadata={"k": self.k, "n": self.n, "tau": self.tau * 255.0},
        )
