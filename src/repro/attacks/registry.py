"""Attack-strategy registry: name → {sampler × basis × feedback}.

Same pattern as :mod:`repro.losses.registry` and
:mod:`repro.hashindex.tiers`: a flat dict of named factories plus an
environment default, so every layer — experiments, benchmarks, the qa
oracles — selects an adversary with one string:

* programmatically, via ``build_attack(AttackConfig(strategy=...))``;
* globally, via the ``REPRO_ATTACK`` environment variable.

Legacy compositions (bit-identical to their pre-redesign classes):

``vanilla``
    random frames/pixels × sparse pixels × SimBA.
``heu-sim`` / ``heu-nes``
    motion-saliency frames × sparse pixels × SimBA / NES.
``timi``
    dense × pixels × surrogate transfer (zero queries).
``duo`` / ``duo-query``
    transfer-derived frame-pixel search (or fixed priors) × sparse
    pixels × SimBA with DUO's ``attack.duo.query`` surface.

New adversaries (ROADMAP item 4):

``rl-sparse``
    EXP3 bandit learning frame selection from rank-shift rewards.
``lowrank``
    TenAd-style rank-``r`` factor basis searched with SimBA.
``qair``
    QAIR-style top-``k`` relevance feedback with adaptive steps and
    early exit.

List them from the shell::

    python -m repro.attacks.registry --list
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

from repro.attacks.config import AttackConfig
from repro.attacks.strategy.bases import LowRankBasis, PixelBasis
from repro.attacks.strategy.composed import ComposedAttack
from repro.attacks.strategy.feedback import NesFeedback, QairFeedback, \
    SimbaFeedback, TransferFeedback
from repro.attacks.strategy.samplers import DenseSampler, PriorSampler, \
    RandomSampler, RLFrameSampler, SaliencySampler, TransferSampler

#: Name of the environment variable selecting the default strategy.
ATTACK_ENV = "REPRO_ATTACK"

#: The strategy used when nothing selects one.
DEFAULT_STRATEGY = "duo"

#: DUO's historical observable surface for the SimBA stage.
_duo_simba = partial(SimbaFeedback, metric_prefix="attack.duo.query",
                     checkpoint_algo="sparse_query")


@dataclass(frozen=True)
class StrategyEntry:
    """One registered composition: three component factories + needs."""

    name: str
    sampler: Callable[..., object]
    basis: Callable[..., object]
    feedback: Callable[..., object]
    description: str
    needs_surrogate: bool = False
    needs_service: bool = True

    def composition(self) -> str:
        """``sampler × basis × feedback`` factory names for display."""
        def label(factory) -> str:
            target = factory.func if isinstance(factory, partial) else factory
            return target.__name__
        return " × ".join(label(f) for f in
                          (self.sampler, self.basis, self.feedback))


ATTACK_STRATEGIES: dict[str, StrategyEntry] = {}


def register_strategy(entry: StrategyEntry) -> None:
    """Register (or override) a named composition."""
    ATTACK_STRATEGIES[entry.name] = entry


register_strategy(StrategyEntry(
    "vanilla", RandomSampler, PixelBasis, SimbaFeedback,
    "random frames/pixels + SimBA (paper §V-B baseline)"))
register_strategy(StrategyEntry(
    "heu-sim", partial(SaliencySampler, random_pixels=True), PixelBasis,
    SimbaFeedback,
    "motion-saliency frames, random pixels + SimBA (HEU-Sim)"))
register_strategy(StrategyEntry(
    "heu-nes", SaliencySampler, PixelBasis, NesFeedback,
    "motion-saliency frames/pixels + NES (HEU-Nes)"))
register_strategy(StrategyEntry(
    "timi", DenseSampler, PixelBasis, TransferFeedback,
    "dense surrogate transfer, zero queries (TIMI)",
    needs_surrogate=True, needs_service=False))
register_strategy(StrategyEntry(
    "duo", TransferSampler, PixelBasis, _duo_simba,
    "transfer frame-pixel search + sparse SimBA rectification (DUO)",
    needs_surrogate=True))
register_strategy(StrategyEntry(
    "duo-query", PriorSampler, PixelBasis, _duo_simba,
    "DUO's query stage over fixed priors (sampler={'priors': ...})"))
register_strategy(StrategyEntry(
    "rl-sparse", RLFrameSampler, PixelBasis, SimbaFeedback,
    "EXP3 bandit learns frame selection from rank-shift rewards"))
register_strategy(StrategyEntry(
    "lowrank", DenseSampler, LowRankBasis, SimbaFeedback,
    "TenAd-style low-rank (T,H,W) factor basis searched with SimBA"))
register_strategy(StrategyEntry(
    "qair", RandomSampler, PixelBasis, QairFeedback,
    "QAIR-style top-k relevance feedback, adaptive step + early exit"))


def default_strategy() -> str:
    """The strategy selected by ``REPRO_ATTACK`` (or the built-in).

    Unknown names raise from :func:`resolve_strategy`; empty/unset means
    the built-in default.
    """
    from repro.utils.envflags import env_str

    return env_str(ATTACK_ENV, DEFAULT_STRATEGY).lower()


def resolve_strategy(name: str | None = None) -> StrategyEntry:
    """The entry registered under ``name`` (``None`` → env default)."""
    key = default_strategy() if name is None else str(name).strip().lower()
    if key not in ATTACK_STRATEGIES:
        raise KeyError(f"unknown attack strategy {key!r}; available: "
                       f"{sorted(ATTACK_STRATEGIES)}")
    return ATTACK_STRATEGIES[key]


def build_attack(config: AttackConfig | None = None, *, service=None,
                 surrogate=None, rng=None) -> ComposedAttack:
    """Build the composition named by ``config.strategy``.

    ``service`` is the black-box victim (required by every query-based
    strategy), ``surrogate`` the white-box transfer model (required by
    ``timi`` and ``duo``).  ``rng`` overrides ``config.seed`` when given
    (a Generator passes through unchanged, the legacy idiom).
    """
    config = config if config is not None else AttackConfig()
    entry = resolve_strategy(config.strategy)
    if entry.needs_service and service is None:
        raise ValueError(f"strategy {entry.name!r} queries a victim "
                         "service; pass service=...")
    if entry.needs_surrogate and surrogate is None:
        raise ValueError(f"strategy {entry.name!r} needs a surrogate "
                         "model; pass surrogate=...")
    sampler = entry.sampler(**dict(config.sampler))
    basis = entry.basis(**dict(config.basis))
    feedback = entry.feedback(**dict(config.feedback))
    return ComposedAttack(entry.name, sampler, basis, feedback, config,
                          service=service, surrogate=surrogate, rng=rng)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.attacks.registry --list``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.attacks.registry",
        description="Inspect the attack-strategy registry.")
    parser.add_argument("--list", action="store_true",
                        help="list registered strategies and exit")
    options = parser.parse_args(argv)
    if options.list:
        width = max(len(name) for name in ATTACK_STRATEGIES)
        default = default_strategy()
        for name in sorted(ATTACK_STRATEGIES):
            entry = ATTACK_STRATEGIES[name]
            marker = "*" if name == default else " "
            print(f"{marker} {name:<{width}}  {entry.composition()}")
            print(f"  {'':<{width}}  {entry.description}")
        print(f"\n(* = default; override with {ATTACK_ENV})")
        return 0
    parser.print_help()
    return 0


__all__ = [
    "ATTACK_ENV",
    "ATTACK_STRATEGIES",
    "DEFAULT_STRATEGY",
    "StrategyEntry",
    "build_attack",
    "default_strategy",
    "main",
    "register_strategy",
    "resolve_strategy",
]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
