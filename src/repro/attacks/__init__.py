"""Adversarial-example attacks on video retrieval systems.

The package implements the paper's DUO pipeline and the three baselines
it compares against, decomposed into pluggable strategy components
(see :mod:`repro.attacks.strategy` and :mod:`repro.attacks.registry`):

* :class:`~repro.attacks.duo.DUOAttack` — SparseTransfer (Eq. 1 /
  Algorithm 1) + SparseQuery (Eq. 2–4 / Algorithm 2), looped ``iter_numH``
  times.
* :class:`~repro.attacks.vanilla.VanillaAttack` — random pixel selection
  + SimBA-style queries [53].
* :class:`~repro.attacks.timi.TIMIAttack` — momentum + translation-
  invariant dense transfer attack [25].
* :class:`~repro.attacks.heu.HeuNesAttack` / ``HeuSimAttack`` — heuristic
  frame/pixel selection with NES or SimBA optimization [16].

Every attack is a registered {sampler × basis × feedback} composition:

>>> from repro.attacks import AttackConfig, build_attack
>>> attack = build_attack(AttackConfig(strategy="vanilla", k=48),
...                       service=service)
>>> report = attack.run(original, target)

The legacy classes remain as deprecated shims over their registry
entries, bit-identical to their pre-redesign behaviour.
"""

from repro.attacks.base import Attack, AttackResult, project_linf, project_l2
from repro.attacks.config import AttackConfig
from repro.attacks.objective import RetrievalObjective, UntargetedRetrievalObjective
from repro.attacks.report import AttackReport
from repro.attacks.vanilla import VanillaAttack
from repro.attacks.timi import TIMIAttack, timi_transfer
from repro.attacks.heu import HeuNesAttack, HeuSimAttack, motion_saliency
from repro.attacks.duo import DUOAttack, SparseTransfer, SparseQuery, TransferPriors

# Registry/strategy exports resolve lazily so `python -m
# repro.attacks.registry` does not re-import the module it is executing.
_LAZY_EXPORTS = {
    "ATTACK_STRATEGIES": "repro.attacks.registry",
    "build_attack": "repro.attacks.registry",
    "resolve_strategy": "repro.attacks.registry",
    "ComposedAttack": "repro.attacks.strategy",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        return getattr(importlib.import_module(_LAZY_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ATTACK_STRATEGIES",
    "Attack",
    "AttackConfig",
    "AttackReport",
    "AttackResult",
    "ComposedAttack",
    "build_attack",
    "project_linf",
    "project_l2",
    "resolve_strategy",
    "RetrievalObjective",
    "UntargetedRetrievalObjective",
    "VanillaAttack",
    "TIMIAttack",
    "timi_transfer",
    "HeuNesAttack",
    "HeuSimAttack",
    "motion_saliency",
    "DUOAttack",
    "SparseTransfer",
    "SparseQuery",
    "TransferPriors",
]
