"""Adversarial-example attacks on video retrieval systems.

The package implements the paper's DUO pipeline and the three baselines
it compares against:

* :class:`~repro.attacks.duo.DUOAttack` — SparseTransfer (Eq. 1 /
  Algorithm 1) + SparseQuery (Eq. 2–4 / Algorithm 2), looped ``iter_numH``
  times.
* :class:`~repro.attacks.vanilla.VanillaAttack` — random pixel selection
  + SimBA-style queries [53].
* :class:`~repro.attacks.timi.TIMIAttack` — momentum + translation-
  invariant dense transfer attack [25].
* :class:`~repro.attacks.heu.HeuNesAttack` / ``HeuSimAttack`` — heuristic
  frame/pixel selection with NES or SimBA optimization [16].
"""

from repro.attacks.base import Attack, AttackResult, project_linf, project_l2
from repro.attacks.objective import RetrievalObjective, UntargetedRetrievalObjective
from repro.attacks.vanilla import VanillaAttack
from repro.attacks.timi import TIMIAttack
from repro.attacks.heu import HeuNesAttack, HeuSimAttack, motion_saliency
from repro.attacks.duo import DUOAttack, SparseTransfer, SparseQuery, TransferPriors

__all__ = [
    "Attack",
    "AttackResult",
    "project_linf",
    "project_l2",
    "RetrievalObjective",
    "UntargetedRetrievalObjective",
    "VanillaAttack",
    "TIMIAttack",
    "HeuNesAttack",
    "HeuSimAttack",
    "motion_saliency",
    "DUOAttack",
    "SparseTransfer",
    "SparseQuery",
    "TransferPriors",
]
