"""Common attack interfaces, result types, and perturbation projections."""

from __future__ import annotations

import numpy as np

from repro.attacks.report import AttackReport
from repro.video.types import Video

#: Legacy name of :class:`~repro.attacks.report.AttackReport`.  The old
#: dataclass and the new consolidated report share constructor keywords
#: (``queries_used`` / ``objective_trace`` still work), so every
#: pre-redesign call site keeps importing ``AttackResult`` from here.
AttackResult = AttackReport


class Attack:
    """Base class: an attack maps ``(v, v_t)`` to an :class:`AttackReport`."""

    name: str = "attack"

    def run(self, original: Video, target: Video) -> AttackReport:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def project_linf(perturbation: np.ndarray, tau: float) -> np.ndarray:
    """Project ``φ`` onto the ℓ∞ ball of radius ``τ`` (per value)."""
    return np.clip(perturbation, -tau, tau)


def project_l2(perturbation: np.ndarray, radius: float) -> np.ndarray:
    """Project ``φ`` onto the ℓ2 ball of the given radius."""
    norm = float(np.linalg.norm(perturbation))
    if norm <= radius or norm == 0.0:
        return perturbation
    return perturbation * (radius / norm)


def clip_video_range(original_pixels: np.ndarray,
                     perturbation: np.ndarray) -> np.ndarray:
    """Trim ``φ`` so that ``v + φ`` stays inside the valid pixel range."""
    clipped = np.clip(original_pixels + perturbation, 0.0, 1.0)
    return clipped - original_pixels
