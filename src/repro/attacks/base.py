"""Common attack interfaces, result types, and perturbation projections."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.perturbation import PerturbationStats, perturbation_summary
from repro.video.types import Video


@dataclass
class AttackResult:
    """Everything an attack run produces.

    Attributes
    ----------
    adversarial:
        The synthesized ``v_adv``.
    perturbation:
        ``φ = v_adv − v`` (same shape as the video pixels).
    queries_used:
        Black-box queries consumed by the attack (0 for pure transfer).
    objective_trace:
        Objective value after each accepted/attempted query iteration —
        the series plotted in the paper's Figure 5.
    """

    adversarial: Video
    perturbation: np.ndarray
    queries_used: int = 0
    objective_trace: list[float] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def stats(self) -> PerturbationStats:
        """Stealthiness metrics (Spa, PScore, frames, ℓ∞) of this AE."""
        return perturbation_summary(self.perturbation)


class Attack:
    """Base class: an attack maps ``(v, v_t)`` to an :class:`AttackResult`."""

    name: str = "attack"

    def run(self, original: Video, target: Video) -> AttackResult:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def project_linf(perturbation: np.ndarray, tau: float) -> np.ndarray:
    """Project ``φ`` onto the ℓ∞ ball of radius ``τ`` (per value)."""
    return np.clip(perturbation, -tau, tau)


def project_l2(perturbation: np.ndarray, radius: float) -> np.ndarray:
    """Project ``φ`` onto the ℓ2 ball of the given radius."""
    norm = float(np.linalg.norm(perturbation))
    if norm <= radius or norm == 0.0:
        return perturbation
    return perturbation * (radius / norm)


def clip_video_range(original_pixels: np.ndarray,
                     perturbation: np.ndarray) -> np.ndarray:
    """Trim ``φ`` so that ``v + φ`` stays inside the valid pixel range."""
    clipped = np.clip(original_pixels + perturbation, 0.0, 1.0)
    return clipped - original_pixels
