"""Frozen configuration for composed attacks.

Mirrors the :class:`~repro.retrieval.config.ServiceConfig` redesign: one
immutable :class:`AttackConfig` is the single constructor argument for
:class:`~repro.attacks.strategy.ComposedAttack` and for
:func:`repro.attacks.registry.build_attack`.  The legacy per-attack
positional constructors (``VanillaAttack(service, k, ...)``) still work
but emit a :class:`DeprecationWarning` pointing here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping


@dataclass(frozen=True)
class AttackConfig:
    """All knobs of one composed attack run.

    Parameters
    ----------
    strategy:
        Registry name of the composition (see
        ``python -m repro.attacks.registry --list``).
    k / n:
        Pixel and frame sparsity budgets (paper Eq. 1).
    tau:
        ℓ∞ budget in 8-bit units (the paper's convention; components
        convert to [0, 1] pixel units internally via :meth:`tau_unit`).
    eta:
        Margin constant of the retrieval objective ``T`` (Eq. 2).
    iterations:
        Feedback-model iteration cap per round (SimBA/NES/QAIR steps).
    rounds:
        Outer sampler episodes (DUO's ``iter_num_H``, the RL sampler's
        training episodes).  ``None`` uses the sampler's own default.
    budget:
        Hard cap on black-box queries.  The driver sizes each round so
        the attack *finishes under* the budget (conservative per-step
        cost bounds), mirroring a per-tenant admission budget.
        ``None`` disables the cap (legacy behaviour).
    seed:
        Attack rng seed (ignored when an explicit generator is passed to
        the builder).
    checkpoint_path:
        Default checkpoint location for
        :class:`~repro.resilience.checkpoint.CheckpointSession`; a path
        passed to ``run()`` wins.
    batched:
        Speculative/batched candidate evaluation (``None`` auto-enables
        when the service is stateless, exactly like the legacy attacks).
    sampler / basis / feedback:
        Component-specific keyword overrides, forwarded verbatim to the
        registered component factories (e.g.
        ``feedback={"samples": 4}`` for NES, ``basis={"rank": 2}`` for
        the low-rank basis, ``sampler={"constraint": "l2"}`` for DUO's
        transfer stage).
    """

    strategy: str = "duo"
    k: int = 64
    n: int = 4
    tau: float = 30.0
    eta: float = 1.0
    iterations: int = 100
    rounds: int | None = None
    budget: int | None = None
    seed: int | None = None
    checkpoint_path: str | None = None
    batched: bool | None = None
    sampler: Mapping[str, object] = field(default_factory=dict)
    basis: Mapping[str, object] = field(default_factory=dict)
    feedback: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.tau <= 0:
            raise ValueError("tau must be positive (8-bit units)")
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")
        if self.rounds is not None and self.rounds < 1:
            raise ValueError("rounds must be >= 1 (or None)")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be >= 0 (or None)")

    def tau_unit(self) -> float:
        """The ℓ∞ budget in [0, 1] pixel units (``tau / 255``)."""
        return float(self.tau) / 255.0

    def with_(self, **changes) -> "AttackConfig":
        """Return a copy with fields replaced (ServiceConfig idiom)."""
        return replace(self, **changes)


__all__ = ["AttackConfig"]
