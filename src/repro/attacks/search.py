"""Black-box search primitives shared by the baseline attacks.

* :func:`simba_search` — SimBA [53]: Cartesian-basis ±ε coordinate
  descent on the retrieval objective, restricted to a support mask.
* :func:`nes_search` — NES-style gradient estimation with antithetic
  Gaussian probes restricted to a support mask, followed by signed
  descent steps (the optimizer inside HEU-Nes [16]).

Both return an :class:`~repro.attacks.report.AttackReport`; iterating it
yields the legacy ``(adversarial, perturbation, trace)`` tuple, so the
pre-redesign unpacking call sites work unchanged.

``metric_prefix`` / ``checkpoint_algo`` let a caller rebrand the obs
counters, spans, and checkpoint tag — :class:`~repro.attacks.duo.
sparse_query.SparseQuery` delegates here with its historical
``attack.duo.query`` names and ``sparse_query`` checkpoint tag, so its
observable behaviour is bit-identical to the pre-shim implementation.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import clip_video_range, project_linf
from repro.attacks.objective import RetrievalObjective
from repro.attacks.report import AttackReport
from repro.errors import RetrievalUnavailable
from repro.obs import counter, gauge, span
from repro.resilience.checkpoint import CheckpointSession
from repro.utils.seeding import seeded_rng
from repro.video.types import Video


def default_block_size(support_size: int) -> int:
    """Heuristic direction width: ``√|support|`` coordinates per step.

    A ±ε step over ``b`` coordinates displaces the input by ``ε·√b`` in
    ℓ2; with ``b = √|support|`` the probes are strong enough to cross
    rank boundaries of the retrieval list while staying refinable.
    """
    return max(1, int(round(np.sqrt(max(support_size, 1)))))


def simba_search(original: Video, objective: RetrievalObjective,
                 support: np.ndarray, tau: float, iterations: int,
                 epsilon: float | None = None, rng=None,
                 initial: np.ndarray | None = None, tie_rule: str = "move",
                 block_size: int | None = None, batched: bool | None = None,
                 checkpoint_path=None, *,
                 metric_prefix: str = "attack.search.simba",
                 checkpoint_algo: str = "simba",
                 project_initial: bool = True) -> AttackReport:
    """Greedy ±ε direction descent on ``T`` over the ``support``.

    Directions are signed indicator blocks: each iteration consumes
    ``block_size`` fresh coordinates from a without-replacement stream
    over the support (reshuffled when exhausted) and proposes a random-
    sign ±ε move on them, keeping it if the objective does not worsen.
    ``block_size=1`` recovers the classic single-pixel SimBA [53].

    Parameters
    ----------
    support:
        Boolean array shaped like the video pixels; only these
        coordinates may be perturbed.
    tau:
        ℓ∞ budget on the *final* perturbation, in [0, 1] units.
    epsilon:
        Step magnitude (defaults to ``tau``).
    tie_rule:
        ``"move"`` accepts non-worsening steps (Eq. 3 behaviour, keeps
        exploring on plateaus of the list objective); ``"stay"`` accepts
        only strict decreases.
    block_size:
        Coordinates per direction; ``None`` selects
        :func:`default_block_size` *once per run* — the chosen width is
        checkpointed, so a resume keeps the original width even if the
        support passed on resume differs.
    batched:
        Speculatively evaluate each ±ε pair in one forward batch and
        commit only consumed results (``None`` auto-enables when the
        objective supports speculation and the service is stateless).
        Query counts, the trace, and accepted steps are identical to the
        sequential loop.
    checkpoint_path:
        With a path set, a :class:`~repro.errors.RetrievalUnavailable`
        raised mid-run persists loop state before propagating; calling
        again with the same arguments and path resumes bit-identically.
    metric_prefix / checkpoint_algo:
        Names used for obs counters/spans and the checkpoint tag, so a
        delegating caller keeps its historical observable surface.
    project_initial:
        Project the ``initial`` perturbation onto the ℓ∞ ball before
        searching.  DUO's query stage passes ``False``: under the ℓ2
        transfer constraint (Table IX) the priors may legitimately
        exceed ``τ`` per coordinate, and only *steps* are projected.

    Returns an :class:`AttackReport`; unpacks as the legacy
    ``(adversarial, perturbation, trace)``.
    """
    rng = seeded_rng(rng)
    base = original.pixels
    epsilon = tau if epsilon is None else float(epsilon)
    perturbation = np.zeros_like(base) if initial is None else initial.copy()
    if project_initial:
        perturbation = project_linf(perturbation, tau)
    perturbation = clip_video_range(base, perturbation)

    coords = np.flatnonzero(np.asarray(support).reshape(-1))
    if coords.size == 0:
        current = original.perturbed(perturbation)
        trace = [objective.value(current)]
        return AttackReport(adversarial=current, perturbation=perturbation,
                            queries=len(trace), trace=trace)
    block = default_block_size(coords.size) if block_size is None else \
        max(1, int(block_size))

    if batched is None:
        batched = bool(getattr(objective, "speculate", None)) and \
            getattr(objective, "speculation_safe", False)
        if batched:
            # Speculation is trace/query-count identical to the
            # sequential loop, so when it is *possible* the router may
            # still decline it on measured cost (e.g. when the paired
            # batch is slower than two scalar calls on this machine).
            from repro.router import active_router

            batched = active_router().decide(
                "speculate", "simba", ("off", "on"), "on") == "on"

    session = CheckpointSession(checkpoint_path, checkpoint_algo, objective,
                                rng)
    resumed = session.resume()
    if resumed is None:
        current = original.perturbed(perturbation)
        best = objective.value(current)
        trace = [best]
        order = rng.permutation(coords)
        cursor = 0
        start_iteration = 0
    else:
        perturbation = resumed["perturbation"]
        best = resumed["best"]
        trace = resumed["trace"]
        order = resumed["order"]
        cursor = resumed["cursor"]
        # The direction width is derived from the support *once per
        # run* and checkpointed: resuming with a grown/shrunk support
        # must not silently change the block width mid-search.
        block = int(resumed.get("block", block))
        start_iteration = resumed["iteration"]
        current = original.perturbed(perturbation)

    with span(metric_prefix, support=int(coords.size), block=block):
        for iteration in range(start_iteration, int(iterations)):
            session.mark(iteration, perturbation=perturbation, best=best,
                         trace=trace, order=order, cursor=cursor, block=block)
            try:
                with span(f"{metric_prefix}.iter"):
                    if cursor + block > order.size:
                        order = rng.permutation(coords)
                        cursor = 0
                    chosen = order[cursor : cursor + block]
                    cursor += block
                    signs = rng.choice((-1.0, 1.0), size=chosen.size)
                    # Build both ±ε candidates up front (no rng consumed),
                    # speculate the pair in one batch, commit sequentially.
                    pair = []
                    for flip in (+1.0, -1.0):
                        candidate = perturbation.copy()
                        candidate.reshape(-1)[chosen] += flip * signs * epsilon
                        candidate = clip_video_range(
                            base, project_linf(candidate, tau))
                        if np.array_equal(candidate, perturbation):
                            pair.append(None)  # projection undid the step
                        else:
                            pair.append(
                                (candidate, original.perturbed(candidate)))
                    live = [entry for entry in pair if entry is not None]
                    speculated = objective.speculate(
                        [adversarial for _, adversarial in live]
                    ) if batched and len(live) > 1 else None
                    spec_index = 0
                    for entry in pair:
                        if entry is None:
                            continue  # skipped candidates cost no query
                        candidate, adversarial = entry
                        if speculated is None:
                            value = objective.value(adversarial)
                        else:
                            value = objective.commit(speculated[spec_index])
                        spec_index += 1
                        trace.append(value)
                        counter(f"{metric_prefix}.evaluations").inc()
                        if value < best or \
                                (tie_rule == "move" and value <= best):
                            counter(f"{metric_prefix}.accepted").inc()
                            best = value
                            perturbation = candidate
                            current = adversarial
                            break
            except RetrievalUnavailable:
                session.persist()
                raise
        gauge(f"{metric_prefix}.objective").set(best)
    session.complete()
    return AttackReport(adversarial=current, perturbation=perturbation,
                        queries=len(trace), trace=trace)


def nes_search(original: Video, objective: RetrievalObjective,
               support: np.ndarray, tau: float, iterations: int,
               samples: int = 4, sigma: float = 0.05, lr: float | None = None,
               rng=None, initial: np.ndarray | None = None,
               batched: bool | None = None, checkpoint_path=None, *,
               metric_prefix: str = "attack.search.nes",
               checkpoint_algo: str = "nes") -> AttackReport:
    """NES gradient-estimation descent on ``T`` over ``support``.

    Each iteration draws ``samples`` antithetic Gaussian probes (costing
    ``2·samples`` queries), estimates the gradient of ``T``, and takes a
    signed step of size ``lr`` (default ``tau / 10``).

    With ``batched`` (auto-enabled when the objective exposes ``values``)
    all ``2·samples`` probe evaluations of an iteration share one forward
    batch.  NES consumes every evaluation unconditionally and probe
    construction consumes rng before any evaluation, so the rng stream,
    query count, and trace are identical to the sequential loop.

    With ``checkpoint_path`` set, a
    :class:`~repro.errors.RetrievalUnavailable` raised mid-run persists
    loop state before propagating; calling again with the same arguments
    and path resumes bit-identically.

    Returns an :class:`AttackReport`; unpacks as the legacy
    ``(adversarial, perturbation, trace)``.
    """
    rng = seeded_rng(rng)
    base = original.pixels
    mask = np.asarray(support, dtype=np.float64)
    lr = tau / 5.0 if lr is None else float(lr)
    perturbation = np.zeros_like(base) if initial is None else initial.copy()
    perturbation = clip_video_range(base, project_linf(perturbation, tau))

    if batched is None:
        batched = getattr(objective, "values", None) is not None
        if batched:
            # Same contract as the SimBA leg: NES probe batching is
            # rng/trace-identical to the loop, so the router only weighs
            # measured latency.
            from repro.router import active_router

            batched = active_router().decide(
                "speculate", "nes", ("off", "on"), "on") == "on"

    session = CheckpointSession(checkpoint_path, checkpoint_algo, objective,
                                rng)
    resumed = session.resume()
    if resumed is None:
        current = original.perturbed(perturbation)
        best = objective.value(current)
        best_perturbation = perturbation.copy()
        trace = [best]
        start_iteration = 0
    else:
        perturbation = resumed["perturbation"]
        best = resumed["best"]
        best_perturbation = resumed["best_perturbation"]
        trace = resumed["trace"]
        start_iteration = resumed["iteration"]
        current = original.perturbed(perturbation)

    with span(metric_prefix, samples=int(samples)):
        for iteration in range(start_iteration, int(iterations)):
            session.mark(iteration, perturbation=perturbation, best=best,
                         best_perturbation=best_perturbation, trace=trace)
            try:
                with span(f"{metric_prefix}.iter"):
                    gradient = np.zeros_like(perturbation)
                    # Draw every probe before evaluating anything:
                    # evaluation consumes no rng, so the stream matches
                    # the sequential draw-evaluate interleaving exactly.
                    probes = [rng.normal(size=perturbation.shape) * mask
                              for _ in range(int(samples))]
                    antithetic = []
                    for probe in probes:
                        antithetic.append(original.perturbed(clip_video_range(
                            base,
                            project_linf(perturbation + sigma * probe, tau))))
                        antithetic.append(original.perturbed(clip_video_range(
                            base,
                            project_linf(perturbation - sigma * probe, tau))))
                    if batched:
                        # NES consumes all evaluations unconditionally, so
                        # a plain counted batch preserves trace and query
                        # count.
                        values = objective.values(antithetic)
                    else:
                        values = [objective.value(v) for v in antithetic]
                    trace.extend(values)
                    counter(f"{metric_prefix}.evaluations").inc(
                        2 * int(samples))
                    for index, probe in enumerate(probes):
                        value_plus = values[2 * index]
                        value_minus = values[2 * index + 1]
                        gradient += (value_plus - value_minus) * probe
                    gradient /= 2.0 * sigma * samples

                    perturbation = perturbation - lr * np.sign(gradient) * mask
                    perturbation = clip_video_range(
                        base, project_linf(perturbation, tau))
                    current = original.perturbed(perturbation)
                    value = objective.value(current)
                    trace.append(value)
                    counter(f"{metric_prefix}.evaluations").inc()
                    if value < best:
                        counter(f"{metric_prefix}.improved").inc()
                        best = value
                        best_perturbation = perturbation.copy()
            except RetrievalUnavailable:
                session.persist()
                raise
        gauge(f"{metric_prefix}.objective").set(best)
    session.complete()

    return AttackReport(adversarial=original.perturbed(best_perturbation),
                        perturbation=best_perturbation,
                        queries=len(trace), trace=trace)
