"""Black-box search primitives shared by the baseline attacks.

* :func:`simba_search` — SimBA [53]: Cartesian-basis ±ε coordinate
  descent on the retrieval objective, restricted to a support mask.
* :func:`nes_search` — NES-style gradient estimation with antithetic
  Gaussian probes restricted to a support mask, followed by signed
  descent steps (the optimizer inside HEU-Nes [16]).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import clip_video_range, project_linf
from repro.attacks.objective import RetrievalObjective
from repro.obs import counter, gauge, span
from repro.utils.seeding import seeded_rng
from repro.video.types import Video


def default_block_size(support_size: int) -> int:
    """Heuristic direction width: ``√|support|`` coordinates per step.

    A ±ε step over ``b`` coordinates displaces the input by ``ε·√b`` in
    ℓ2; with ``b = √|support|`` the probes are strong enough to cross
    rank boundaries of the retrieval list while staying refinable.
    """
    return max(1, int(round(np.sqrt(max(support_size, 1)))))


def simba_search(original: Video, objective: RetrievalObjective,
                 support: np.ndarray, tau: float, iterations: int,
                 epsilon: float | None = None, rng=None,
                 initial: np.ndarray | None = None, tie_rule: str = "move",
                 block_size: int | None = None
                 ) -> tuple[Video, np.ndarray, list[float]]:
    """Greedy ±ε direction descent on ``T`` over the ``support``.

    Directions are signed indicator blocks: each iteration consumes
    ``block_size`` fresh coordinates from a without-replacement stream
    over the support (reshuffled when exhausted) and proposes a random-
    sign ±ε move on them, keeping it if the objective does not worsen.
    ``block_size=1`` recovers the classic single-pixel SimBA [53].

    Parameters
    ----------
    support:
        Boolean array shaped like the video pixels; only these
        coordinates may be perturbed.
    tau:
        ℓ∞ budget on the *final* perturbation, in [0, 1] units.
    epsilon:
        Step magnitude (defaults to ``tau``).
    tie_rule:
        ``"move"`` accepts non-worsening steps (Eq. 3 behaviour, keeps
        exploring on plateaus of the list objective); ``"stay"`` accepts
        only strict decreases.
    block_size:
        Coordinates per direction; ``None`` selects
        :func:`default_block_size`.

    Returns ``(adversarial, perturbation, trace)``.
    """
    rng = seeded_rng(rng)
    base = original.pixels
    epsilon = tau if epsilon is None else float(epsilon)
    perturbation = np.zeros_like(base) if initial is None else initial.copy()
    perturbation = clip_video_range(base, project_linf(perturbation, tau))

    coords = np.flatnonzero(np.asarray(support).reshape(-1))
    current = original.perturbed(perturbation)
    best = objective.value(current)
    trace = [best]
    if coords.size == 0:
        return current, perturbation, trace
    block = default_block_size(coords.size) if block_size is None else \
        max(1, int(block_size))

    order = rng.permutation(coords)
    cursor = 0
    with span("attack.search.simba", support=int(coords.size), block=block):
        for _ in range(int(iterations)):
            with span("attack.search.simba.iter"):
                if cursor + block > order.size:
                    order = rng.permutation(coords)
                    cursor = 0
                chosen = order[cursor : cursor + block]
                cursor += block
                signs = rng.choice((-1.0, 1.0), size=chosen.size)
                for flip in (+1.0, -1.0):
                    candidate = perturbation.copy()
                    candidate.reshape(-1)[chosen] += flip * signs * epsilon
                    candidate = clip_video_range(base,
                                                 project_linf(candidate, tau))
                    if np.array_equal(candidate, perturbation):
                        continue  # projection undid the step; skip the query
                    adversarial = original.perturbed(candidate)
                    value = objective.value(adversarial)
                    trace.append(value)
                    counter("attack.search.simba.evaluations").inc()
                    if value < best or (tie_rule == "move" and value <= best):
                        counter("attack.search.simba.accepted").inc()
                        best = value
                        perturbation = candidate
                        current = adversarial
                        break
        gauge("attack.search.simba.objective").set(best)
    return current, perturbation, trace


def nes_search(original: Video, objective: RetrievalObjective,
               support: np.ndarray, tau: float, iterations: int,
               samples: int = 4, sigma: float = 0.05, lr: float | None = None,
               rng=None, initial: np.ndarray | None = None
               ) -> tuple[Video, np.ndarray, list[float]]:
    """NES gradient-estimation descent on ``T`` over ``support``.

    Each iteration draws ``samples`` antithetic Gaussian probes (costing
    ``2·samples`` queries), estimates the gradient of ``T``, and takes a
    signed step of size ``lr`` (default ``tau / 10``).
    """
    rng = seeded_rng(rng)
    base = original.pixels
    mask = np.asarray(support, dtype=np.float64)
    lr = tau / 5.0 if lr is None else float(lr)
    perturbation = np.zeros_like(base) if initial is None else initial.copy()
    perturbation = clip_video_range(base, project_linf(perturbation, tau))

    current = original.perturbed(perturbation)
    best = objective.value(current)
    best_perturbation = perturbation.copy()
    trace = [best]

    with span("attack.search.nes", samples=int(samples)):
        for _ in range(int(iterations)):
            with span("attack.search.nes.iter"):
                gradient = np.zeros_like(perturbation)
                for _ in range(int(samples)):
                    probe = rng.normal(size=perturbation.shape) * mask
                    plus = original.perturbed(
                        clip_video_range(base, project_linf(perturbation + sigma * probe, tau))
                    )
                    minus = original.perturbed(
                        clip_video_range(base, project_linf(perturbation - sigma * probe, tau))
                    )
                    value_plus = objective.value(plus)
                    value_minus = objective.value(minus)
                    trace.extend([value_plus, value_minus])
                    counter("attack.search.nes.evaluations").inc(2)
                    gradient += (value_plus - value_minus) * probe
                gradient /= 2.0 * sigma * samples

                perturbation = perturbation - lr * np.sign(gradient) * mask
                perturbation = clip_video_range(base,
                                                project_linf(perturbation, tau))
                current = original.perturbed(perturbation)
                value = objective.value(current)
                trace.append(value)
                counter("attack.search.nes.evaluations").inc()
                if value < best:
                    counter("attack.search.nes.improved").inc()
                    best = value
                    best_perturbation = perturbation.copy()
        gauge("attack.search.nes.objective").set(best)

    return (original.perturbed(best_perturbation), best_perturbation, trace)
