"""SparseQuery: sparsity-preserving black-box rectification (Algorithm 2).

SimBA-style coordinate search over the transfer support: each iteration
samples a Cartesian-basis direction ``q`` from the non-zero coordinates of
``I ⊙ F ⊙ θ`` (Eq. 4) without replacement, tries ``±ε`` steps, and keeps a
step when the retrieval objective ``T`` (Eq. 2) decreases.  Because ``q``
never leaves the transfer support, the rectified perturbation stays
exactly as sparse as the priors.

Since the strategy redesign this class is a thin shim: the loop lives in
:func:`repro.attacks.search.simba_search` (the ``SimbaFeedback``
component), invoked with this class's historical metric prefix
(``attack.duo.query``) and checkpoint tag (``sparse_query``), so the
observable behaviour — rng stream, trace, query accounting, obs names,
checkpoint files — is bit-identical to the pre-shim implementation.
Prefer composing via ``repro.attacks.registry`` (strategy ``"duo"`` or
``"duo-query"``).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import clip_video_range
from repro.attacks.duo.priors import TransferPriors
from repro.attacks.objective import RetrievalObjective
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng
from repro.video.types import Video

logger = get_logger("attacks.duo.query")


class SparseQuery:
    """The query component of DUO.

    Parameters
    ----------
    iter_num_q:
        Maximum iterations μ (paper default 1,000).
    tau:
        Per-value budget in 8-bit units; steps are projected so the final
        perturbation honours ``‖φ‖∞ ≤ τ`` *relative to the video being
        rectified*.
    epsilon_scale:
        ε is initialized from θ as ``epsilon_scale · τ`` (Algorithm 2
        line 3 — "Initialize ε from θ").
    tie_rule:
        ``"move"`` (default) follows Eq. 3, which accepts a step whenever
        the objective does not *increase* — on the frequent plateaus of a
        list-valued objective this keeps the search exploring.  ``"stay"``
        follows Algorithm 2 literally (accept only strict decreases).
    block_size:
        Coordinates per search direction.  Eq. 4 defines ``q`` as a random
        matrix modulated by ``I⊙F⊙θ``; each iteration realizes it as a
        random-sign indicator over ``block_size`` fresh support
        coordinates ("sampled from the Cartesian basis without
        replacement").  ``None`` auto-scales to ``√|support|``; ``1``
        gives classic single-coordinate SimBA.
    batched:
        Evaluate each iteration's ±ε candidate pair in one speculative
        forward batch (``None`` auto-enables when the objective supports
        speculation and the service is stateless).  Sequential accept
        semantics are preserved exactly: rng consumption, the trace, the
        query count, and the accepted perturbations are identical to the
        unbatched loop — only wall-clock changes.
    """

    def __init__(self, iter_num_q: int = 1000, tau: float = 30.0,
                 epsilon_scale: float = 1.0, tie_rule: str = "move",
                 block_size: int | None = None, rng=None,
                 batched: bool | None = None) -> None:
        if tie_rule not in ("move", "stay"):
            raise ValueError("tie_rule must be 'move' or 'stay'")
        self.iter_num_q = int(iter_num_q)
        self.tau = float(tau) / 255.0
        self.epsilon_scale = float(epsilon_scale)
        self.tie_rule = tie_rule
        self.block_size = block_size
        self.batched = batched
        self.rng = seeded_rng(rng)

    def run(self, original: Video, priors: TransferPriors,
            objective: RetrievalObjective,
            checkpoint_path=None) -> tuple[Video, list[float]]:
        """Rectify ``v + I⊙F⊙θ`` against the black-box objective.

        Returns the rectified adversarial video and the trace of ``T``
        values (one per evaluated candidate — the Figure-5 series).

        With ``checkpoint_path`` set, a
        :class:`~repro.errors.RetrievalUnavailable` raised mid-run
        persists the loop state (rng, perturbation, trace, query
        accounting) before propagating; calling :meth:`run` again with
        the same arguments and path resumes bit-identically — the final
        trace, perturbation, and query counts match an uninterrupted
        run.  The checkpoint file is deleted on successful completion.
        """
        from repro.attacks.search import simba_search

        # The priors were possibly built under an ℓ2 constraint, where θ
        # may legitimately exceed τ per coordinate: only *steps* are
        # ℓ∞-projected, never the initialization (project_initial=False).
        initial = clip_video_range(original.pixels, priors.perturbation())
        support = priors.support()
        if not np.any(support):
            logger.warning("sparse-query called with empty support; no-op")
            return original.perturbed(initial), []

        report = simba_search(
            original, objective, support, tau=self.tau,
            iterations=self.iter_num_q,
            epsilon=self.epsilon_scale * self.tau, rng=self.rng,
            initial=initial, tie_rule=self.tie_rule,
            block_size=self.block_size, batched=self.batched,
            checkpoint_path=checkpoint_path,
            metric_prefix="attack.duo.query",
            checkpoint_algo="sparse_query", project_initial=False)
        return report.adversarial, report.trace
