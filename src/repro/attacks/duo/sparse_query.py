"""SparseQuery: sparsity-preserving black-box rectification (Algorithm 2).

SimBA-style coordinate search over the transfer support: each iteration
samples a Cartesian-basis direction ``q`` from the non-zero coordinates of
``I ⊙ F ⊙ θ`` (Eq. 4) without replacement, tries ``±ε`` steps, and keeps a
step when the retrieval objective ``T`` (Eq. 2) decreases.  Because ``q``
never leaves the transfer support, the rectified perturbation stays
exactly as sparse as the priors.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import clip_video_range, project_linf
from repro.attacks.duo.priors import TransferPriors
from repro.attacks.objective import RetrievalObjective
from repro.obs import counter, gauge, span
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng
from repro.video.types import Video

logger = get_logger("attacks.duo.query")


class SparseQuery:
    """The query component of DUO.

    Parameters
    ----------
    iter_num_q:
        Maximum iterations μ (paper default 1,000).
    tau:
        Per-value budget in 8-bit units; steps are projected so the final
        perturbation honours ``‖φ‖∞ ≤ τ`` *relative to the video being
        rectified*.
    epsilon_scale:
        ε is initialized from θ as ``epsilon_scale · τ`` (Algorithm 2
        line 3 — "Initialize ε from θ").
    tie_rule:
        ``"move"`` (default) follows Eq. 3, which accepts a step whenever
        the objective does not *increase* — on the frequent plateaus of a
        list-valued objective this keeps the search exploring.  ``"stay"``
        follows Algorithm 2 literally (accept only strict decreases).
    block_size:
        Coordinates per search direction.  Eq. 4 defines ``q`` as a random
        matrix modulated by ``I⊙F⊙θ``; each iteration realizes it as a
        random-sign indicator over ``block_size`` fresh support
        coordinates ("sampled from the Cartesian basis without
        replacement").  ``None`` auto-scales to ``√|support|``; ``1``
        gives classic single-coordinate SimBA.
    """

    def __init__(self, iter_num_q: int = 1000, tau: float = 30.0,
                 epsilon_scale: float = 1.0, tie_rule: str = "move",
                 block_size: int | None = None, rng=None) -> None:
        if tie_rule not in ("move", "stay"):
            raise ValueError("tie_rule must be 'move' or 'stay'")
        self.iter_num_q = int(iter_num_q)
        self.tau = float(tau) / 255.0
        self.epsilon_scale = float(epsilon_scale)
        self.tie_rule = tie_rule
        self.block_size = block_size
        self.rng = seeded_rng(rng)

    def run(self, original: Video, priors: TransferPriors,
            objective: RetrievalObjective) -> tuple[Video, list[float]]:
        """Rectify ``v + I⊙F⊙θ`` against the black-box objective.

        Returns the rectified adversarial video and the trace of ``T``
        values (one per evaluated candidate — the Figure-5 series).
        """
        base = original.pixels
        perturbation = clip_video_range(base, priors.perturbation())
        support = np.flatnonzero(priors.support().reshape(-1))
        if support.size == 0:
            logger.warning("sparse-query called with empty support; no-op")
            adversarial = original.perturbed(perturbation)
            return adversarial, []

        from repro.attacks.search import default_block_size

        epsilon = self.epsilon_scale * self.tau
        current = original.perturbed(perturbation)
        best_value = objective.value(current)
        trace = [best_value]
        block = default_block_size(support.size) if self.block_size is None \
            else max(1, int(self.block_size))

        # Consume the Cartesian basis without replacement, reshuffling once
        # a full pass over the support is exhausted.
        order = self.rng.permutation(support)
        cursor = 0

        with span("attack.duo.query", support=int(support.size), block=block):
            for _ in range(self.iter_num_q):
                with span("attack.duo.query.iter"):
                    if cursor + block > order.size:
                        order = self.rng.permutation(support)
                        cursor = 0
                    chosen = order[cursor : cursor + block]
                    cursor += block
                    signs = self.rng.choice((-1.0, 1.0), size=chosen.size)

                    for flip in (+1.0, -1.0):
                        candidate = perturbation.copy()
                        candidate.reshape(-1)[chosen] += flip * signs * epsilon
                        candidate = project_linf(candidate, self.tau)
                        candidate = clip_video_range(base, candidate)
                        if np.array_equal(candidate, perturbation):
                            continue  # projection undid the step; skip the query
                        adversarial = original.perturbed(candidate)
                        value = objective.value(adversarial)
                        trace.append(value)
                        counter("attack.duo.query.evaluations").inc()
                        accept = value < best_value or (
                            self.tie_rule == "move" and value <= best_value
                        )
                        if accept:
                            counter("attack.duo.query.accepted").inc()
                            best_value = value
                            perturbation = candidate
                            current = adversarial
                            break
            gauge("attack.duo.query.objective").set(best_value)

        return current, trace
