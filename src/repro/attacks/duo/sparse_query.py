"""SparseQuery: sparsity-preserving black-box rectification (Algorithm 2).

SimBA-style coordinate search over the transfer support: each iteration
samples a Cartesian-basis direction ``q`` from the non-zero coordinates of
``I ⊙ F ⊙ θ`` (Eq. 4) without replacement, tries ``±ε`` steps, and keeps a
step when the retrieval objective ``T`` (Eq. 2) decreases.  Because ``q``
never leaves the transfer support, the rectified perturbation stays
exactly as sparse as the priors.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import clip_video_range, project_linf
from repro.attacks.duo.priors import TransferPriors
from repro.attacks.objective import RetrievalObjective
from repro.errors import RetrievalUnavailable
from repro.obs import counter, gauge, span
from repro.resilience.checkpoint import CheckpointSession
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng
from repro.video.types import Video

logger = get_logger("attacks.duo.query")


class SparseQuery:
    """The query component of DUO.

    Parameters
    ----------
    iter_num_q:
        Maximum iterations μ (paper default 1,000).
    tau:
        Per-value budget in 8-bit units; steps are projected so the final
        perturbation honours ``‖φ‖∞ ≤ τ`` *relative to the video being
        rectified*.
    epsilon_scale:
        ε is initialized from θ as ``epsilon_scale · τ`` (Algorithm 2
        line 3 — "Initialize ε from θ").
    tie_rule:
        ``"move"`` (default) follows Eq. 3, which accepts a step whenever
        the objective does not *increase* — on the frequent plateaus of a
        list-valued objective this keeps the search exploring.  ``"stay"``
        follows Algorithm 2 literally (accept only strict decreases).
    block_size:
        Coordinates per search direction.  Eq. 4 defines ``q`` as a random
        matrix modulated by ``I⊙F⊙θ``; each iteration realizes it as a
        random-sign indicator over ``block_size`` fresh support
        coordinates ("sampled from the Cartesian basis without
        replacement").  ``None`` auto-scales to ``√|support|``; ``1``
        gives classic single-coordinate SimBA.
    batched:
        Evaluate each iteration's ±ε candidate pair in one speculative
        forward batch (``None`` auto-enables when the objective supports
        speculation and the service is stateless).  Sequential accept
        semantics are preserved exactly: rng consumption, the trace, the
        query count, and the accepted perturbations are identical to the
        unbatched loop — only wall-clock changes.
    """

    def __init__(self, iter_num_q: int = 1000, tau: float = 30.0,
                 epsilon_scale: float = 1.0, tie_rule: str = "move",
                 block_size: int | None = None, rng=None,
                 batched: bool | None = None) -> None:
        if tie_rule not in ("move", "stay"):
            raise ValueError("tie_rule must be 'move' or 'stay'")
        self.iter_num_q = int(iter_num_q)
        self.tau = float(tau) / 255.0
        self.epsilon_scale = float(epsilon_scale)
        self.tie_rule = tie_rule
        self.block_size = block_size
        self.batched = batched
        self.rng = seeded_rng(rng)

    def run(self, original: Video, priors: TransferPriors,
            objective: RetrievalObjective,
            checkpoint_path=None) -> tuple[Video, list[float]]:
        """Rectify ``v + I⊙F⊙θ`` against the black-box objective.

        Returns the rectified adversarial video and the trace of ``T``
        values (one per evaluated candidate — the Figure-5 series).

        With ``checkpoint_path`` set, a
        :class:`~repro.errors.RetrievalUnavailable` raised mid-run
        persists the loop state (rng, perturbation, trace, query
        accounting) before propagating; calling :meth:`run` again with
        the same arguments and path resumes bit-identically — the final
        trace, perturbation, and query counts match an uninterrupted
        run.  The checkpoint file is deleted on successful completion.
        """
        base = original.pixels
        perturbation = clip_video_range(base, priors.perturbation())
        support = np.flatnonzero(priors.support().reshape(-1))
        if support.size == 0:
            logger.warning("sparse-query called with empty support; no-op")
            adversarial = original.perturbed(perturbation)
            return adversarial, []

        from repro.attacks.search import default_block_size

        epsilon = self.epsilon_scale * self.tau
        block = default_block_size(support.size) if self.block_size is None \
            else max(1, int(self.block_size))

        session = CheckpointSession(checkpoint_path, "sparse_query",
                                    objective, self.rng)
        resumed = session.resume()
        if resumed is None:
            current = original.perturbed(perturbation)
            best_value = objective.value(current)
            trace = [best_value]
            # Consume the Cartesian basis without replacement, reshuffling
            # once a full pass over the support is exhausted.
            order = self.rng.permutation(support)
            cursor = 0
            start_iteration = 0
        else:
            perturbation = resumed["perturbation"]
            best_value = resumed["best_value"]
            trace = resumed["trace"]
            order = resumed["order"]
            cursor = resumed["cursor"]
            start_iteration = resumed["iteration"]
            current = original.perturbed(perturbation)
            logger.info("sparse-query resumed at iteration %d",
                        start_iteration)

        use_batched = self.batched
        if use_batched is None:
            use_batched = bool(getattr(objective, "speculate", None)) and \
                getattr(objective, "speculation_safe", False)

        with span("attack.duo.query", support=int(support.size), block=block):
            for iteration in range(start_iteration, self.iter_num_q):
                session.mark(iteration, perturbation=perturbation,
                             best_value=best_value, trace=trace,
                             order=order, cursor=cursor)
                try:
                    perturbation, current, best_value, cursor, order = \
                        self._iterate(original, objective, epsilon, block,
                                      support, perturbation, current,
                                      best_value, cursor, order, trace,
                                      use_batched)
                except RetrievalUnavailable:
                    session.persist()
                    raise
            gauge("attack.duo.query.objective").set(best_value)
        session.complete()

        return current, trace

    def _iterate(self, original, objective, epsilon, block, support,
                 perturbation, current, best_value, cursor, order, trace,
                 use_batched):
        """One ±ε coordinate-descent step (extracted for checkpointing)."""
        base = original.pixels
        with span("attack.duo.query.iter"):
            if cursor + block > order.size:
                order = self.rng.permutation(support)
                cursor = 0
            chosen = order[cursor : cursor + block]
            cursor += block
            signs = self.rng.choice((-1.0, 1.0), size=chosen.size)

            # Build both ±ε candidates up front (construction
            # consumes no rng, so the stream is unchanged).
            pair = []
            for flip in (+1.0, -1.0):
                candidate = perturbation.copy()
                candidate.reshape(-1)[chosen] += flip * signs * epsilon
                candidate = project_linf(candidate, self.tau)
                candidate = clip_video_range(base, candidate)
                if np.array_equal(candidate, perturbation):
                    pair.append(None)  # projection undid the step
                else:
                    pair.append(
                        (candidate, original.perturbed(candidate)))
            live = [entry for entry in pair if entry is not None]

            # Speculatively evaluate the pair in one forward batch,
            # then commit sequentially: only consumed evaluations
            # touch the query counter and trace, so accept
            # semantics match the unbatched loop exactly.
            speculated = objective.speculate(
                [adversarial for _, adversarial in live]
            ) if use_batched and len(live) > 1 else None
            spec_index = 0
            for entry in pair:
                if entry is None:
                    continue  # skipped candidates cost no query
                candidate, adversarial = entry
                if speculated is None:
                    value = objective.value(adversarial)
                else:
                    value = objective.commit(speculated[spec_index])
                spec_index += 1
                trace.append(value)
                counter("attack.duo.query.evaluations").inc()
                accept = value < best_value or (
                    self.tie_rule == "move" and value <= best_value
                )
                if accept:
                    counter("attack.duo.query.accepted").inc()
                    best_value = value
                    perturbation = candidate
                    current = adversarial
                    break
        return perturbation, current, best_value, cursor, order
