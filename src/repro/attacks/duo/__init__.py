"""The DUO attack: dual search over frames and pixels.

``DUOAttack`` chains :class:`SparseTransfer` (surrogate-side sparse
perturbation synthesis, Eq. 1 / Algorithm 1) and :class:`SparseQuery`
(black-box rectification, Eq. 2–4 / Algorithm 2), looping them
``iter_numH`` times as in the paper.
"""

from repro.attacks.duo.masks import lp_box_admm_select, select_top_frames
from repro.attacks.duo.priors import TransferPriors
from repro.attacks.duo.sparse_transfer import SparseTransfer
from repro.attacks.duo.sparse_query import SparseQuery
from repro.attacks.duo.pipeline import DUOAttack

__all__ = [
    "lp_box_admm_select",
    "select_top_frames",
    "TransferPriors",
    "SparseTransfer",
    "SparseQuery",
    "DUOAttack",
]
