"""The transfer-stage output ``{I, F, θ}`` — DUO's "prior knowledge"."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TransferPriors:
    """Pixel mask ``I``, frame mask ``F``, and magnitudes ``θ``.

    Shapes follow the paper: ``I`` and ``θ`` are ``(N, H, W, C)``; the
    frame mask is stored compactly as ``(N,)`` and broadcast on use.
    """

    pixel_mask: np.ndarray
    frame_mask: np.ndarray
    theta: np.ndarray

    def __post_init__(self) -> None:
        self.pixel_mask = np.asarray(self.pixel_mask, dtype=np.float64)
        self.frame_mask = np.asarray(self.frame_mask, dtype=np.float64).reshape(-1)
        self.theta = np.asarray(self.theta, dtype=np.float64)
        if self.pixel_mask.shape != self.theta.shape:
            raise ValueError("pixel mask and theta must share a shape")
        if self.frame_mask.shape[0] != self.theta.shape[0]:
            raise ValueError("frame mask length must equal the frame count")

    @property
    def broadcast_frame_mask(self) -> np.ndarray:
        """Frame mask reshaped to ``(N, 1, 1, 1)`` for elementwise use."""
        return self.frame_mask[:, None, None, None]

    def perturbation(self) -> np.ndarray:
        """``φ = I ⊙ F ⊙ θ``."""
        return self.pixel_mask * self.broadcast_frame_mask * self.theta

    def support(self) -> np.ndarray:
        """Boolean mask of coordinates SparseQuery may touch (Eq. 4)."""
        return np.abs(self.perturbation()) > 0.0

    @classmethod
    def fresh(cls, shape: tuple[int, ...]) -> "TransferPriors":
        """Algorithm-1 initialization: ``I = 1``, ``F = 1``, ``θ = 0``."""
        frames = shape[0]
        return cls(
            pixel_mask=np.ones(shape),
            frame_mask=np.ones(frames),
            theta=np.zeros(shape),
        )
