"""SparseTransfer: sparsified transfer-attack synthesis (Eq. 1, Algorithm 1).

Alternating optimization of the AE-generation problem

.. math::
   \\min_{θ, I, F} \\; \\mathcal{L}(Fea_ρ(v_{adv}), Fea_ρ(v_t))
   + λ ‖θ ⊙ I ⊙ F‖_2^2
   \\quad s.t. \\; 1^\\top I = k, \\; ‖F‖_{2,0} = n, \\; ‖θ‖_∞ ≤ τ

on the surrogate model ``S``:

1. *θ-step* — gradient descent on the magnitudes under the current masks
   (Algorithm 1 line 3), with the paper's step schedule (0.1 initial,
   ×0.9 every 50 steps) and either the ℓ∞ or ℓ2 budget projection
   (Table IX compares both).
2. *I-step* — ℓp-box ADMM over a first-order utility (line 4): the
   estimated loss decrease of keeping each coordinate, ``−(g⊙θ + λθ²)``.
3. *F-step* — relax ``F`` to a continuous per-frame weight ``C``, take
   dependence-guided gradient steps on ``C`` [47], and re-binarize to the
   top-``n`` frames by ℓ2 score (lines 5–7).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import project_l2, project_linf
from repro.attacks.duo.masks import lp_box_admm_select, select_top_frames
from repro.attacks.duo.priors import TransferPriors
from repro.models.feature_extractor import FeatureExtractor
from repro.nn import Tensor
from repro.obs import counter, gauge, span
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng
from repro.video.types import Video

logger = get_logger("attacks.duo.transfer")


class SparseTransfer:
    """The transfer component of DUO.

    Parameters
    ----------
    surrogate:
        The stolen surrogate feature extractor ``S``.
    k:
        Pixel budget ``1ᵀI = k`` (count of perturbed values in the video).
    n:
        Frame budget ``‖F‖_{2,0} = n``.
    tau:
        Per-value perturbation budget, in 8-bit units as in the paper
        (``τ = 30`` means ``30/255`` on [0, 1] videos).
    lam:
        Regularization weight λ (paper: ``e^{-5}``).
    constraint:
        ``"linf"`` (default, Eq. 1) or ``"l2"`` (Table IX variant).
    outer_iters:
        Alternating sweeps of Algorithm 1's while-loop.
    theta_steps:
        Gradient-descent steps per θ-step.
    target_init:
        Initialize θ from the τ-clipped pixel difference ``v_t − v``
        instead of zero.  The attacker chose ``v_t`` and owns its pixels,
        so this stays inside the threat model; it matters on this
        substrate because tiny synthetic models share almost no
        *non-robust* features, so surrogate-only gradient directions do
        not transfer — the model-agnostic targeted direction does, and
        the surrogate's frame-pixel search then allocates the sparse
        budget over it (see DESIGN.md).
    """

    def __init__(self, surrogate: FeatureExtractor, k: int, n: int,
                 tau: float = 30.0, lam: float = np.exp(-5.0),
                 constraint: str = "linf", outer_iters: int = 3,
                 theta_steps: int = 25, lr: float = 0.1,
                 lr_decay_every: int = 50, lr_decay: float = 0.9,
                 frame_steps: int = 10, target_init: bool = True,
                 targeted: bool = True, rng=None) -> None:
        if constraint not in ("linf", "l2"):
            raise ValueError("constraint must be 'linf' or 'l2'")
        self.surrogate = surrogate
        self.target_init = bool(target_init)
        self.targeted = bool(targeted)
        self._rng = seeded_rng(rng)
        self.k = int(k)
        self.n = int(n)
        self.tau = float(tau) / 255.0
        self.lam = float(lam)
        self.constraint = constraint
        self.outer_iters = int(outer_iters)
        self.theta_steps = int(theta_steps)
        self.lr = float(lr)
        self.lr_decay_every = int(lr_decay_every)
        self.lr_decay = float(lr_decay)
        self.frame_steps = int(frame_steps)

    # -------------------------------------------------------------- #
    # Differentiable surrogate loss
    # -------------------------------------------------------------- #
    def _embed_target(self, target: Video) -> np.ndarray:
        return self.surrogate.embed_videos(target)[0]

    def _loss_and_grad(self, original: Video, perturbation: Tensor,
                       target_feature: np.ndarray) -> tuple[float, Tensor]:
        """Build L(Fea(v+φ), Fea(v_t)) + λ‖φ‖² and return (value, loss node).

        In untargeted mode ``target_feature`` holds the *original's*
        embedding and the distance term is negated (maximize it).
        """
        adv = (Tensor(original.pixels) + perturbation).clip(0.0, 1.0)
        # (N, H, W, C) → (1, C, N, H, W)
        batch = adv.transpose(3, 0, 1, 2).expand_dims(0)
        feature = self.surrogate(batch)[0]
        distance = ((feature - Tensor(target_feature)) ** 2).sum()
        if not self.targeted:
            distance = -distance
        regularizer = (perturbation * perturbation).sum() * self.lam
        loss = distance + regularizer
        return loss.item(), loss

    def _project_budget(self, theta: np.ndarray) -> np.ndarray:
        if self.constraint == "linf":
            return project_linf(theta, self.tau)
        # ℓ2 variant: same *total* energy as a τ-saturated ℓ∞ ball over the
        # pixel budget, so the two constraints are comparable in Table IX.
        radius = self.tau * np.sqrt(max(self.k, 1))
        return project_l2(theta, radius)

    # -------------------------------------------------------------- #
    # Algorithm-1 steps
    # -------------------------------------------------------------- #
    def _theta_step(self, original: Video, priors: TransferPriors,
                    target_feature: np.ndarray) -> float:
        """Gradient descent on θ under fixed masks; returns final loss."""
        self.surrogate.eval()
        mask = priors.pixel_mask * priors.broadcast_frame_mask
        lr = self.lr
        loss_value = float("inf")
        for step in range(self.theta_steps):
            theta_t = Tensor(priors.theta, requires_grad=True)
            phi = theta_t * Tensor(mask)
            loss_value, loss = self._loss_and_grad(original, phi, target_feature)
            loss.backward()
            grad = theta_t.grad if theta_t.grad is not None else np.zeros_like(
                priors.theta)
            # Normalized step (sign-like) keeps the schedule scale-free.
            denom = np.abs(grad).max()
            if denom > 0:
                grad = grad / denom
            priors.theta = self._project_budget(priors.theta - lr * self.tau * grad)
            if (step + 1) % self.lr_decay_every == 0:
                lr *= self.lr_decay
        return loss_value

    def _pixel_utility(self, original: Video, priors: TransferPriors,
                       target_feature: np.ndarray) -> np.ndarray:
        """First-order utility of keeping each coordinate in ``I``.

        Because the θ-step re-optimizes magnitudes after the mask update
        (alternating minimization), the utility of a coordinate is the
        loss decrease *achievable* within the per-value budget —
        ``|g_i|·τ − λτ²`` with the optimal ``θ_i = −τ·sign(g_i)`` — not
        the decrease at the current θ.
        """
        full_mask = priors.broadcast_frame_mask * np.ones_like(priors.theta)
        theta_t = Tensor(priors.theta, requires_grad=True)
        phi = theta_t * Tensor(full_mask)
        _, loss = self._loss_and_grad(original, phi, target_feature)
        loss.backward()
        grad = theta_t.grad if theta_t.grad is not None else np.zeros_like(
            priors.theta)
        return np.abs(grad) * self.tau - self.lam * self.tau**2

    def _frame_step(self, original: Video, priors: TransferPriors,
                    target_feature: np.ndarray) -> None:
        """Continuous frame relaxation C, gradient steps, top-n re-binarize."""
        frames = priors.theta.shape[0]
        c = priors.frame_mask.copy()
        # Start strictly inside (0, 1] so de-selected frames can recover.
        c = 0.5 * c + 0.5
        lr = self.lr
        for _ in range(self.frame_steps):
            c_t = Tensor(c.reshape(frames, 1, 1, 1), requires_grad=True)
            phi = Tensor(priors.pixel_mask * priors.theta) * c_t
            _, loss = self._loss_and_grad(original, phi, target_feature)
            loss.backward()
            grad = c_t.grad.reshape(frames) if c_t.grad is not None else \
                np.zeros(frames)
            denom = np.abs(grad).max()
            if denom > 0:
                grad = grad / denom
            c = np.clip(c - lr * grad, 0.0, 1.0)
        # Rank frames by the ℓ2 norm of their weighted perturbation rows.
        row_scores = (priors.pixel_mask * priors.theta) * c[:, None, None, None]
        priors.frame_mask = select_top_frames(row_scores, self.n)

    # -------------------------------------------------------------- #
    def run(self, original: Video, target: Video,
            init: TransferPriors | None = None) -> TransferPriors:
        """Produce ``{I, F, θ}`` for the pair ``(v, v_t)``."""
        shape = original.pixels.shape
        priors = init if init is not None else TransferPriors.fresh(shape)
        if init is None and self.target_init:
            if self.targeted:
                priors.theta = self._project_budget(
                    target.pixels - original.pixels)
            else:
                # No target to interpolate toward: start from a random
                # budget-saturating direction.
                priors.theta = self._project_budget(
                    self._rng.choice((-1.0, 1.0), size=shape) * self.tau)
        reference = target if self.targeted else original
        target_feature = self._embed_target(reference)

        with span("attack.duo.transfer", k=self.k, n=self.n):
            for sweep in range(self.outer_iters):
                with span("attack.duo.transfer.sweep", sweep=sweep + 1):
                    with span("attack.duo.transfer.theta_step"):
                        loss_value = self._theta_step(
                            original, priors, target_feature)
                    with span("attack.duo.transfer.pixel_select"):
                        utility = self._pixel_utility(
                            original, priors, target_feature)
                        priors.pixel_mask = lp_box_admm_select(utility, self.k)
                    with span("attack.duo.transfer.frame_step"):
                        self._frame_step(original, priors, target_feature)
                counter("attack.duo.transfer.sweeps").inc()
                gauge("attack.duo.transfer.loss").set(loss_value)
                logger.info("sparse-transfer sweep %d/%d loss=%.4f",
                            sweep + 1, self.outer_iters, loss_value)

            # Final magnitude refinement under the converged masks.
            with span("attack.duo.transfer.theta_step"):
                self._theta_step(original, priors, target_feature)
        return priors
