"""Mask subproblem solvers for SparseTransfer.

* :func:`lp_box_admm_select` — the pixel-mask update (Algorithm 1 line 4):
  an ℓp-box ADMM [18] that selects exactly ``k`` coordinates maximizing a
  utility vector.  The binary set ``{0,1}^d`` is replaced by the
  intersection of the box ``[0,1]^d`` and the sphere centred at ``0.5``
  with radius ``√d/2``; the cardinality constraint ``1ᵀI = k`` is enforced
  inside the primal update by hyperplane projection.
* :func:`select_top_frames` — the frame-mask update (lines 5–7): rank
  frames by the ℓ2 norm of their continuous scores and keep the top ``n``.
"""

from __future__ import annotations

import numpy as np


def lp_box_admm_select(utility: np.ndarray, k: int, rho: float = 1.0,
                       iterations: int = 30) -> np.ndarray:
    """Select ``k`` coordinates (binary mask) maximizing ``utilityᵀI``.

    Solves ``max_I utilityᵀI  s.t. I ∈ {0,1}^d, 1ᵀI = k`` with the ℓp-box
    ADMM relaxation, then binarizes by taking the top-``k`` primal scores.

    Parameters
    ----------
    utility:
        Arbitrary-shaped utility per coordinate (flattened internally).
    k:
        Exact number of ones in the returned mask.
    rho:
        ADMM penalty weight.
    iterations:
        ADMM sweeps; the subproblem is small so few are needed.

    Returns
    -------
    A float mask with exactly ``k`` ones, shaped like ``utility``.
    """
    shape = utility.shape
    s = np.asarray(utility, dtype=np.float64).reshape(-1)
    d = s.size
    if not 0 <= k <= d:
        raise ValueError(f"k={k} out of range for {d} coordinates")
    if k == 0:
        return np.zeros(shape)
    if k == d:
        return np.ones(shape)

    # Normalize utilities so rho is scale-free.
    scale = np.abs(s).max()
    if scale > 0:
        s = s / scale

    radius = np.sqrt(d) / 2.0
    primal = np.full(d, k / d)
    z_box = primal.copy()
    z_sphere = primal.copy()
    u_box = np.zeros(d)
    u_sphere = np.zeros(d)

    for _ in range(int(iterations)):
        # Primal update: quadratic objective + hyperplane 1ᵀI = k.
        primal = 0.5 * (z_box - u_box + z_sphere - u_sphere) + s / (2.0 * rho)
        primal += (k - primal.sum()) / d
        # Box projection.
        z_box = np.clip(primal + u_box, 0.0, 1.0)
        # Sphere projection (centre 0.5, radius √d/2).
        centered = primal + u_sphere - 0.5
        norm = np.linalg.norm(centered)
        if norm > 0:
            z_sphere = 0.5 + centered * (radius / norm)
        else:
            z_sphere = np.full(d, 0.5)
        # Dual updates.
        u_box += primal - z_box
        u_sphere += primal - z_sphere

    # Binarize: exactly k ones at the largest primal scores, utilities
    # breaking ties so equal primal values prefer higher utility.
    ranking = np.lexsort((-s, -primal))
    mask = np.zeros(d)
    mask[ranking[:k]] = 1.0
    return mask.reshape(shape)


def select_top_frames(scores: np.ndarray, n: int) -> np.ndarray:
    """Binary frame mask keeping the ``n`` largest-ℓ2 frames.

    ``scores`` is either ``(N,)`` per-frame scalars or ``(N, ...)``
    per-frame score maps; rows are ranked by ℓ2 norm
    (``‖C_π(1)‖₂ ≥ … ≥ ‖C_π(N)‖₂`` in Algorithm 1).
    """
    scores = np.asarray(scores, dtype=np.float64)
    frames = scores.shape[0]
    if not 0 < n <= frames:
        raise ValueError(f"n={n} out of range for {frames} frames")
    norms = np.sqrt((scores.reshape(frames, -1) ** 2).sum(axis=1))
    keep = np.argsort(-norms, kind="stable")[:n]
    mask = np.zeros(frames)
    mask[keep] = 1.0
    return mask
