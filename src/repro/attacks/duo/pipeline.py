"""The full DUO attack: SparseTransfer ∘ SparseQuery, looped iter_numH times.

Per the paper's summary: "we loop SparseTransfer and SparseQuery together
by using {I, F, θ, v_adv} to initialize {I, F, θ, v} for the next
iteration until the process converges or the number of iterations exceeds
a preset threshold, i.e., iter_numH" (a small number, ≤ 4).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.duo.priors import TransferPriors
from repro.attacks.duo.sparse_query import SparseQuery
from repro.attacks.duo.sparse_transfer import SparseTransfer
from repro.attacks.objective import RetrievalObjective
from repro.models.feature_extractor import FeatureExtractor
from repro.obs import counter, gauge, span
from repro.retrieval.service import RetrievalService
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng
from repro.video.types import Video

logger = get_logger("attacks.duo")


class DUOAttack(Attack):
    """Stealthy targeted black-box attack via dual frame-pixel search.

    Parameters mirror the paper's system parameters:

    * ``k`` / ``n`` — pixel and frame sparsity budgets (Eq. 1).
    * ``tau`` — ℓ∞ budget in 8-bit units (default 30).
    * ``iter_num_q`` — SparseQuery iteration cap (paper: 1,000).
    * ``iter_num_h`` — outer transfer/query loops (paper: ≤ 4, default 2).
    * ``constraint`` — ``"linf"`` (Eq. 1) or ``"l2"`` (Table IX).
    * ``eta`` — margin constant of the objective ``T`` (Eq. 2).
    """

    name = "duo"

    def __init__(self, surrogate: FeatureExtractor, service: RetrievalService,
                 k: int, n: int = 4, tau: float = 30.0,
                 lam: float = np.exp(-5.0), iter_num_q: int = 1000,
                 iter_num_h: int = 2, constraint: str = "linf",
                 eta: float = 1.0, transfer_outer_iters: int = 3,
                 theta_steps: int = 25, rng=None,
                 batched: bool | None = None) -> None:
        self.surrogate = surrogate
        self.service = service
        self.eta = float(eta)
        self.iter_num_h = int(iter_num_h)
        self.rng = seeded_rng(rng)
        self.transfer = SparseTransfer(
            surrogate, k=k, n=n, tau=tau, lam=lam, constraint=constraint,
            outer_iters=transfer_outer_iters, theta_steps=theta_steps,
        )
        self.query = SparseQuery(iter_num_q=iter_num_q, tau=tau, rng=self.rng,
                                 batched=batched)

    def run(self, original: Video, target: Video) -> AttackResult:
        """Synthesize ``v_adv`` for the pair ``(v, v_t)``."""
        objective = RetrievalObjective(self.service, original, target,
                                       eta=self.eta)
        current = original
        priors: TransferPriors | None = None
        trace: list[float] = []
        adversarial = original

        for loop in range(self.iter_num_h):
            with span("attack.duo.loop", loop=loop + 1):
                priors = self.transfer.run(current, target, init=None)
                adversarial, loop_trace = self.query.run(current, priors,
                                                         objective)
            trace.extend(loop_trace)
            counter("attack.duo.loops").inc()
            gauge("attack.duo.objective").set(
                trace[-1] if trace else float("nan"))
            logger.info("duo loop %d/%d T=%.4f", loop + 1, self.iter_num_h,
                        trace[-1] if trace else float("nan"))
            # {I, F, θ, v_adv} → {I, F, θ, v} for the next loop: the
            # rectified video becomes the new starting point, and the next
            # transfer sweep re-derives masks and magnitudes around it
            # (a fresh target-difference initialization relative to the
            # already-rectified video).
            current = adversarial

        perturbation = adversarial.pixels - original.pixels
        return AttackResult(
            adversarial=adversarial,
            perturbation=perturbation,
            queries_used=objective.queries,
            objective_trace=trace,
            metadata={
                "iter_num_h": self.iter_num_h,
                "k": self.transfer.k,
                "n": self.transfer.n,
                "tau": self.transfer.tau * 255.0,
                "constraint": self.transfer.constraint,
            },
        )

    # ---------------------------------------------------------------- #
    def run_untargeted(self, original: Video) -> AttackResult:
        """Untargeted DUO (paper §I: "easily extended").

        Minimizes ``T_unt = H(R^m(v_adv), R^m(v)) + η`` so the retrieval
        list no longer contains the correct videos; the transfer stage
        *maximizes* the surrogate feature distance from the original.
        """
        from repro.attacks.objective import UntargetedRetrievalObjective

        objective = UntargetedRetrievalObjective(self.service, original,
                                                 eta=self.eta)
        untargeted_transfer = SparseTransfer(
            self.surrogate, k=self.transfer.k, n=self.transfer.n,
            tau=self.transfer.tau * 255.0, lam=self.transfer.lam,
            constraint=self.transfer.constraint,
            outer_iters=self.transfer.outer_iters,
            theta_steps=self.transfer.theta_steps,
            targeted=False, rng=self.rng,
        )
        current = original
        trace: list[float] = []
        adversarial = original
        for loop in range(self.iter_num_h):
            with span("attack.duo.loop", loop=loop + 1, mode="untargeted"):
                priors = untargeted_transfer.run(current, None)
                adversarial, loop_trace = self.query.run(current, priors,
                                                         objective)
            trace.extend(loop_trace)
            counter("attack.duo.loops").inc()
            current = adversarial
        perturbation = adversarial.pixels - original.pixels
        return AttackResult(
            adversarial=adversarial,
            perturbation=perturbation,
            queries_used=objective.queries,
            objective_trace=trace,
            metadata={"mode": "untargeted",
                      "escape_rate": objective.escape_rate(adversarial)},
        )

    def transfer_only(self, original: Video, target: Video) -> AttackResult:
        """Run only SparseTransfer (Table IX transferability evaluation)."""
        priors = self.transfer.run(original, target)
        adversarial = original.perturbed(priors.perturbation())
        return AttackResult(
            adversarial=adversarial,
            perturbation=adversarial.pixels - original.pixels,
            queries_used=0,
            metadata={"stage": "transfer-only",
                      "constraint": self.transfer.constraint},
        )
