"""The single result type every attack entry point returns.

Before the strategy redesign the repo had three divergent result shapes:

* :class:`AttackResult` (a dataclass) from the attack classes,
* raw ``(adversarial, perturbation, trace)`` tuples from
  :func:`~repro.attacks.search.simba_search` /
  :func:`~repro.attacks.search.nes_search`,
* ad-hoc tuples at the experiment layer.

:class:`AttackReport` consolidates them.  The canonical fields are
``adversarial`` / ``perturbation`` / ``queries`` / ``trace`` /
``metadata``; the legacy names stay importable and constructible:

* ``AttackResult`` is an alias of this class
  (``from repro.attacks.base import AttackResult``);
* ``queries_used`` and ``objective_trace`` work both as constructor
  keywords and as read-only property aliases;
* iterating a report yields the legacy search tuple
  ``(adversarial, perturbation, trace)``, so existing
  ``adv, phi, trace = simba_search(...)`` call sites keep working.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.metrics.perturbation import PerturbationStats, perturbation_summary
from repro.video.types import Video

#: Sentinel distinguishing "kwarg not passed" from an explicit value.
_UNSET = object()


class AttackReport:
    """Everything an attack run (or one search stage) produces.

    Attributes
    ----------
    adversarial:
        The synthesized ``v_adv``.
    perturbation:
        ``φ = v_adv − v`` (same shape as the video pixels).
    queries:
        Black-box queries consumed (0 for pure transfer attacks).
    trace:
        Objective value per evaluated candidate — the series plotted in
        the paper's Figure 5.
    metadata:
        Free-form attack/strategy annotations.
    """

    __slots__ = ("adversarial", "perturbation", "queries", "trace",
                 "metadata")

    def __init__(self, adversarial: Video = None,
                 perturbation: np.ndarray | None = None,
                 queries: int = _UNSET, trace: list[float] = _UNSET,
                 metadata: dict | None = None, *,
                 queries_used: int = _UNSET,
                 objective_trace: list[float] = _UNSET) -> None:
        if queries is not _UNSET and queries_used is not _UNSET:
            raise TypeError("pass either queries or queries_used, not both")
        if trace is not _UNSET and objective_trace is not _UNSET:
            raise TypeError("pass either trace or objective_trace, not both")
        if queries is _UNSET:
            queries = 0 if queries_used is _UNSET else queries_used
        if trace is _UNSET:
            trace = [] if objective_trace is _UNSET else objective_trace
        self.adversarial = adversarial
        self.perturbation = perturbation
        self.queries = int(queries)
        self.trace = list(trace) if trace is not None else []
        self.metadata = dict(metadata) if metadata is not None else {}

    # ------------------------------------------------------------------ #
    # Legacy field aliases
    # ------------------------------------------------------------------ #
    @property
    def queries_used(self) -> int:
        """Alias of :attr:`queries` (the pre-redesign field name)."""
        return self.queries

    @property
    def objective_trace(self) -> list[float]:
        """Alias of :attr:`trace` (the pre-redesign field name)."""
        return self.trace

    @property
    def stats(self) -> PerturbationStats:
        """Stealthiness metrics (Spa, PScore, frames, ℓ∞) of this AE."""
        return perturbation_summary(self.perturbation)

    # ------------------------------------------------------------------ #
    # Legacy tuple shape of the search primitives
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator:
        """Unpack as the legacy ``(adversarial, perturbation, trace)``."""
        yield self.adversarial
        yield self.perturbation
        yield self.trace

    def __repr__(self) -> str:
        return (f"AttackReport(queries={self.queries}, "
                f"trace_len={len(self.trace)}, "
                f"metadata={self.metadata!r})")


__all__ = ["AttackReport"]
