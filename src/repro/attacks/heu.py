"""HEU: heuristic black-box attacks on video models [16].

HEU selects "key frames" and salient pixels heuristically before running
a query-based optimizer:

* :class:`HeuNesAttack` — saliency-guided frame/pixel selection + NES
  gradient estimation (the paper's HEU-Nes).
* :class:`HeuSimAttack` — the paper's ablation "HEU-Sim": the same
  heuristic frame selection but *random* pixel selection (Vanilla's
  strategy) with SimBA optimization.

The saliency heuristic is motion energy: frames are ranked by how much
they differ from their neighbours, and pixels by their temporal
variation — the "prior knowledge" HEU exploits in lieu of a surrogate.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.objective import RetrievalObjective
from repro.attacks.search import nes_search, simba_search
from repro.obs import counter, span
from repro.retrieval.service import RetrievalService
from repro.utils.seeding import seeded_rng
from repro.video.types import Video


def motion_saliency(video: Video) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(frame_scores, pixel_saliency)`` from temporal differences.

    ``frame_scores`` is ``(N,)`` — mean absolute change of each frame
    against its predecessor (frame 0 scores against frame 1).
    ``pixel_saliency`` is ``(N, H, W, C)`` — per-value absolute temporal
    difference, high where content moves.
    """
    pixels = video.pixels
    diffs = np.abs(np.diff(pixels, axis=0))
    pixel_saliency = np.concatenate([diffs[:1], diffs], axis=0)
    frame_scores = pixel_saliency.reshape(pixels.shape[0], -1).mean(axis=1)
    return frame_scores, pixel_saliency


def saliency_support(video: Video, k: int, n: int,
                     random_pixels: bool = False, rng=None) -> np.ndarray:
    """Build a sparse support: top-``n`` motion frames, ``k`` pixel values.

    Pixels are the most salient values within the chosen frames, or
    uniformly random ones when ``random_pixels`` is set (HEU-Sim).
    """
    rng = seeded_rng(rng)
    frame_scores, pixel_saliency = motion_saliency(video)
    shape = video.pixels.shape
    frames = shape[0]
    n = min(int(n), frames)
    chosen = np.argsort(-frame_scores, kind="stable")[:n]

    support = np.zeros(shape, dtype=bool)
    per_frame = int(np.prod(shape[1:]))
    budget = min(int(k), n * per_frame)
    per_frame_budget = np.full(n, budget // n)
    per_frame_budget[: budget % n] += 1
    flat_support = support.reshape(frames, -1)
    flat_saliency = pixel_saliency.reshape(frames, -1)
    for frame, count in zip(chosen, per_frame_budget):
        if count == 0:
            continue
        if random_pixels:
            picks = rng.choice(per_frame, size=int(count), replace=False)
        else:
            picks = np.argsort(-flat_saliency[frame], kind="stable")[: int(count)]
        flat_support[frame, picks] = True
    return support


class HeuNesAttack(Attack):
    """Saliency-guided NES query attack (HEU-Nes)."""

    name = "heu-nes"

    def __init__(self, service: RetrievalService, k: int, n: int = 4,
                 tau: float = 30.0, iterations: int = 100, samples: int = 4,
                 sigma: float = 0.05, eta: float = 1.0, rng=None,
                 batched: bool | None = None) -> None:
        self.service = service
        self.k = int(k)
        self.n = int(n)
        self.tau = float(tau) / 255.0
        self.iterations = int(iterations)
        self.samples = int(samples)
        self.sigma = float(sigma)
        self.eta = float(eta)
        self.batched = batched
        self.rng = seeded_rng(rng)

    def run(self, original: Video, target: Video) -> AttackResult:
        """Saliency-masked NES attack on the pair ``(v, v_t)``."""
        counter("attack.runs", attack=self.name).inc()
        with span("attack.heu-nes", k=self.k, n=self.n):
            objective = RetrievalObjective(self.service, original, target,
                                           eta=self.eta)
            with span("attack.heu.saliency"):
                support = saliency_support(original, self.k, self.n,
                                           random_pixels=False, rng=self.rng)
            adversarial, perturbation, trace = nes_search(
                original, objective, support, tau=self.tau,
                iterations=self.iterations, samples=self.samples,
                sigma=self.sigma, rng=self.rng, batched=self.batched,
            )
        return AttackResult(
            adversarial=adversarial,
            perturbation=perturbation,
            queries_used=objective.queries,
            objective_trace=trace,
            metadata={"k": self.k, "n": self.n, "tau": self.tau * 255.0},
        )


class HeuSimAttack(Attack):
    """Heuristic frames + random pixels + SimBA (HEU-Sim)."""

    name = "heu-sim"

    def __init__(self, service: RetrievalService, k: int, n: int = 4,
                 tau: float = 30.0, iterations: int = 1000, eta: float = 1.0,
                 rng=None, batched: bool | None = None) -> None:
        self.service = service
        self.k = int(k)
        self.n = int(n)
        self.tau = float(tau) / 255.0
        self.iterations = int(iterations)
        self.eta = float(eta)
        self.batched = batched
        self.rng = seeded_rng(rng)

    def run(self, original: Video, target: Video) -> AttackResult:
        """Saliency-framed, random-pixel SimBA attack on ``(v, v_t)``."""
        counter("attack.runs", attack=self.name).inc()
        with span("attack.heu-sim", k=self.k, n=self.n):
            objective = RetrievalObjective(self.service, original, target,
                                           eta=self.eta)
            with span("attack.heu.saliency"):
                support = saliency_support(original, self.k, self.n,
                                           random_pixels=True, rng=self.rng)
            adversarial, perturbation, trace = simba_search(
                original, objective, support, tau=self.tau,
                iterations=self.iterations, rng=self.rng, batched=self.batched,
            )
        return AttackResult(
            adversarial=adversarial,
            perturbation=perturbation,
            queries_used=objective.queries,
            objective_trace=trace,
            metadata={"k": self.k, "n": self.n, "tau": self.tau * 255.0},
        )
