"""HEU: heuristic black-box attacks on video models [16].

HEU selects "key frames" and salient pixels heuristically before running
a query-based optimizer:

* :class:`HeuNesAttack` — saliency-guided frame/pixel selection + NES
  gradient estimation (the paper's HEU-Nes).
* :class:`HeuSimAttack` — the paper's ablation "HEU-Sim": the same
  heuristic frame selection but *random* pixel selection (Vanilla's
  strategy) with SimBA optimization.

The saliency heuristic is motion energy: frames are ranked by how much
they differ from their neighbours, and pixels by their temporal
variation — the "prior knowledge" HEU exploits in lieu of a surrogate.

:func:`saliency_support` is the selection rule (the ``SaliencySampler``
strategy component); both attack classes are deprecated shims over
their registry compositions (``"heu-nes"`` / ``"heu-sim"``) and
reproduce the pre-redesign classes bit-for-bit.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.retrieval.service import RetrievalService
from repro.utils.seeding import seeded_rng
from repro.video.types import Video


def motion_saliency(video: Video) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(frame_scores, pixel_saliency)`` from temporal differences.

    ``frame_scores`` is ``(N,)`` — mean absolute change of each frame
    against its predecessor (frame 0 scores against frame 1).
    ``pixel_saliency`` is ``(N, H, W, C)`` — per-value absolute temporal
    difference, high where content moves.
    """
    pixels = video.pixels
    diffs = np.abs(np.diff(pixels, axis=0))
    pixel_saliency = np.concatenate([diffs[:1], diffs], axis=0)
    frame_scores = pixel_saliency.reshape(pixels.shape[0], -1).mean(axis=1)
    return frame_scores, pixel_saliency


def saliency_support(video: Video, k: int, n: int,
                     random_pixels: bool = False, rng=None) -> np.ndarray:
    """Build a sparse support: top-``n`` motion frames, ``k`` pixel values.

    Pixels are the most salient values within the chosen frames, or
    uniformly random ones when ``random_pixels`` is set (HEU-Sim).
    """
    rng = seeded_rng(rng)
    frame_scores, pixel_saliency = motion_saliency(video)
    shape = video.pixels.shape
    frames = shape[0]
    n = min(int(n), frames)
    chosen = np.argsort(-frame_scores, kind="stable")[:n]

    support = np.zeros(shape, dtype=bool)
    per_frame = int(np.prod(shape[1:]))
    budget = min(int(k), n * per_frame)
    per_frame_budget = np.full(n, budget // n)
    per_frame_budget[: budget % n] += 1
    flat_support = support.reshape(frames, -1)
    flat_saliency = pixel_saliency.reshape(frames, -1)
    for frame, count in zip(chosen, per_frame_budget):
        if count == 0:
            continue
        if random_pixels:
            picks = rng.choice(per_frame, size=int(count), replace=False)
        else:
            picks = np.argsort(-flat_saliency[frame], kind="stable")[: int(count)]
        flat_support[frame, picks] = True
    return support


class HeuNesAttack(Attack):
    """Saliency-guided NES query attack (HEU-Nes).

    .. deprecated::
        Shim over the ``"heu-nes"`` registry composition; use
        ``build_attack(AttackConfig(strategy="heu-nes", ...),
        service=...)`` instead.
    """

    name = "heu-nes"

    def __init__(self, service: RetrievalService, k: int, n: int = 4,
                 tau: float = 30.0, iterations: int = 100, samples: int = 4,
                 sigma: float = 0.05, eta: float = 1.0, rng=None,
                 batched: bool | None = None) -> None:
        warnings.warn(
            "HeuNesAttack(service, k, ...) is deprecated; use "
            "repro.attacks.registry.build_attack(AttackConfig("
            "strategy='heu-nes', ...), service=...) instead",
            DeprecationWarning, stacklevel=2)
        from repro.attacks.config import AttackConfig
        from repro.attacks.registry import build_attack

        self.service = service
        self.k = int(k)
        self.n = int(n)
        self.tau = float(tau) / 255.0
        self.iterations = int(iterations)
        self.samples = int(samples)
        self.sigma = float(sigma)
        self.eta = float(eta)
        self.batched = batched
        self.rng = seeded_rng(rng)
        self._composed = build_attack(
            AttackConfig(strategy="heu-nes", k=self.k, n=self.n,
                         tau=float(tau), eta=self.eta,
                         iterations=self.iterations, batched=batched,
                         feedback={"samples": self.samples,
                                   "sigma": self.sigma}),
            service=service, rng=self.rng)

    def run(self, original: Video, target: Video) -> AttackResult:
        """Saliency-masked NES attack on the pair ``(v, v_t)``."""
        report = self._composed.run(original, target)
        report.metadata = {"k": self.k, "n": self.n, "tau": self.tau * 255.0}
        return report


class HeuSimAttack(Attack):
    """Heuristic frames + random pixels + SimBA (HEU-Sim).

    .. deprecated::
        Shim over the ``"heu-sim"`` registry composition; use
        ``build_attack(AttackConfig(strategy="heu-sim", ...),
        service=...)`` instead.
    """

    name = "heu-sim"

    def __init__(self, service: RetrievalService, k: int, n: int = 4,
                 tau: float = 30.0, iterations: int = 1000, eta: float = 1.0,
                 rng=None, batched: bool | None = None) -> None:
        warnings.warn(
            "HeuSimAttack(service, k, ...) is deprecated; use "
            "repro.attacks.registry.build_attack(AttackConfig("
            "strategy='heu-sim', ...), service=...) instead",
            DeprecationWarning, stacklevel=2)
        from repro.attacks.config import AttackConfig
        from repro.attacks.registry import build_attack

        self.service = service
        self.k = int(k)
        self.n = int(n)
        self.tau = float(tau) / 255.0
        self.iterations = int(iterations)
        self.eta = float(eta)
        self.batched = batched
        self.rng = seeded_rng(rng)
        self._composed = build_attack(
            AttackConfig(strategy="heu-sim", k=self.k, n=self.n,
                         tau=float(tau), eta=self.eta,
                         iterations=self.iterations, batched=batched),
            service=service, rng=self.rng)

    def run(self, original: Video, target: Video) -> AttackResult:
        """Saliency-framed, random-pixel SimBA attack on ``(v, v_t)``."""
        report = self._composed.run(original, target)
        report.metadata = {"k": self.k, "n": self.n, "tau": self.tau * 255.0}
        return report
