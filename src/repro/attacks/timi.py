"""TIMI: translation-invariant momentum-iterative transfer attack [25].

A pure transfer attack (no queries): iterative signed gradient descent on
the surrogate's targeted feature loss, with

* *momentum* accumulation of the ℓ1-normalized gradient (MI), and
* *translation invariance* via spatial smoothing of the gradient with a
  uniform kernel before each step (TI).

As in the paper's evaluation, TIMI perturbs every frame and every pixel
(``n = 16`` dense), which is why its Spa is ~×100 larger than DUO's.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.attacks.base import Attack, AttackResult, clip_video_range, project_linf
from repro.models.feature_extractor import FeatureExtractor
from repro.nn import Tensor
from repro.obs import counter, gauge, span
from repro.video.types import Video


class TIMIAttack(Attack):
    """Dense targeted transfer attack on the surrogate model."""

    name = "timi"

    def __init__(self, surrogate: FeatureExtractor, tau: float = 30.0,
                 iterations: int = 20, momentum: float = 1.0,
                 kernel_size: int = 5) -> None:
        self.surrogate = surrogate
        self.tau = float(tau) / 255.0
        self.iterations = int(iterations)
        self.momentum = float(momentum)
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd")
        self.kernel_size = int(kernel_size)

    def _gradient(self, original: Video, perturbation: np.ndarray,
                  target_feature: np.ndarray) -> np.ndarray:
        phi = Tensor(perturbation, requires_grad=True)
        adv = (Tensor(original.pixels) + phi).clip(0.0, 1.0)
        batch = adv.transpose(3, 0, 1, 2).expand_dims(0)
        feature = self.surrogate(batch)[0]
        loss = ((feature - Tensor(target_feature)) ** 2).sum()
        loss.backward()
        return phi.grad if phi.grad is not None else np.zeros_like(perturbation)

    def _smooth(self, gradient: np.ndarray) -> np.ndarray:
        """Translation-invariant smoothing: uniform kernel over (H, W)."""
        return ndimage.uniform_filter(
            gradient, size=(1, self.kernel_size, self.kernel_size, 1),
            mode="nearest",
        )

    def run(self, original: Video, target: Video) -> AttackResult:
        """Craft a dense transfer AE for ``(v, v_t)`` (no queries)."""
        counter("attack.runs", attack=self.name).inc()
        self.surrogate.eval()
        target_feature = self.surrogate.embed_videos(target)[0]
        step = self.tau / self.iterations * 2.0
        perturbation = np.zeros_like(original.pixels)
        velocity = np.zeros_like(perturbation)
        l1 = 0.0

        with span("attack.timi", iterations=self.iterations):
            for _ in range(self.iterations):
                with span("attack.timi.iter"):
                    gradient = self._gradient(original, perturbation,
                                              target_feature)
                    gradient = self._smooth(gradient)
                    l1 = np.abs(gradient).sum()
                    if l1 > 0:
                        gradient = gradient / l1
                    velocity = self.momentum * velocity + gradient
                    perturbation = perturbation - step * np.sign(velocity)
                    perturbation = clip_video_range(
                        original.pixels, project_linf(perturbation, self.tau)
                    )
            gauge("attack.timi.grad_l1").set(l1)

        adversarial = original.perturbed(perturbation)
        return AttackResult(
            adversarial=adversarial,
            perturbation=adversarial.pixels - original.pixels,
            queries_used=0,
            metadata={"tau": self.tau * 255.0, "iterations": self.iterations},
        )
