"""TIMI: translation-invariant momentum-iterative transfer attack [25].

A pure transfer attack (no queries): iterative signed gradient descent on
the surrogate's targeted feature loss, with

* *momentum* accumulation of the ℓ1-normalized gradient (MI), and
* *translation invariance* via spatial smoothing of the gradient with a
  uniform kernel before each step (TI).

As in the paper's evaluation, TIMI perturbs every frame and every pixel
(``n = 16`` dense), which is why its Spa is ~×100 larger than DUO's.

The loop lives in :func:`timi_transfer` (the ``TransferFeedback``
strategy component); :class:`TIMIAttack` is a deprecated shim over the
``"timi"`` registry composition.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy import ndimage

from repro.attacks.base import Attack, AttackResult, clip_video_range, project_linf
from repro.attacks.report import AttackReport
from repro.models.feature_extractor import FeatureExtractor
from repro.nn import Tensor
from repro.obs import gauge, span
from repro.video.types import Video


def _surrogate_gradient(surrogate: FeatureExtractor, original: Video,
                        perturbation: np.ndarray,
                        target_feature: np.ndarray) -> np.ndarray:
    """∇φ of the targeted feature loss through the surrogate."""
    phi = Tensor(perturbation, requires_grad=True)
    adv = (Tensor(original.pixels) + phi).clip(0.0, 1.0)
    batch = adv.transpose(3, 0, 1, 2).expand_dims(0)
    feature = surrogate(batch)[0]
    loss = ((feature - Tensor(target_feature)) ** 2).sum()
    loss.backward()
    return phi.grad if phi.grad is not None else np.zeros_like(perturbation)


def _smooth_gradient(gradient: np.ndarray, kernel_size: int) -> np.ndarray:
    """Translation-invariant smoothing: uniform kernel over (H, W)."""
    return ndimage.uniform_filter(
        gradient, size=(1, kernel_size, kernel_size, 1), mode="nearest")


def timi_transfer(surrogate: FeatureExtractor, original: Video,
                  target: Video, tau: float, iterations: int = 20,
                  momentum: float = 1.0,
                  kernel_size: int = 5) -> AttackReport:
    """Craft a dense TIMI transfer AE for ``(v, v_t)`` (zero queries).

    ``tau`` is the ℓ∞ budget in [0, 1] pixel units.  Returns an
    :class:`~repro.attacks.report.AttackReport` with ``queries=0`` and an
    empty trace (nothing black-box is evaluated).
    """
    if kernel_size % 2 == 0:
        raise ValueError("kernel_size must be odd")
    tau = float(tau)
    iterations = int(iterations)
    surrogate.eval()
    target_feature = surrogate.embed_videos(target)[0]
    step = tau / iterations * 2.0
    perturbation = np.zeros_like(original.pixels)
    velocity = np.zeros_like(perturbation)
    l1 = 0.0

    with span("attack.timi", iterations=iterations):
        for _ in range(iterations):
            with span("attack.timi.iter"):
                gradient = _surrogate_gradient(surrogate, original,
                                               perturbation, target_feature)
                gradient = _smooth_gradient(gradient, int(kernel_size))
                l1 = np.abs(gradient).sum()
                if l1 > 0:
                    gradient = gradient / l1
                velocity = float(momentum) * velocity + gradient
                perturbation = perturbation - step * np.sign(velocity)
                perturbation = clip_video_range(
                    original.pixels, project_linf(perturbation, tau))
        gauge("attack.timi.grad_l1").set(l1)

    adversarial = original.perturbed(perturbation)
    return AttackReport(
        adversarial=adversarial,
        perturbation=adversarial.pixels - original.pixels,
        queries=0,
        metadata={"tau": tau * 255.0, "iterations": iterations})


class TIMIAttack(Attack):
    """Dense targeted transfer attack on the surrogate model.

    .. deprecated::
        Shim over the ``"timi"`` registry composition; use
        ``build_attack(AttackConfig(strategy="timi", ...),
        surrogate=...)`` instead.
    """

    name = "timi"

    def __init__(self, surrogate: FeatureExtractor, tau: float = 30.0,
                 iterations: int = 20, momentum: float = 1.0,
                 kernel_size: int = 5) -> None:
        warnings.warn(
            "TIMIAttack(surrogate, ...) is deprecated; use "
            "repro.attacks.registry.build_attack(AttackConfig("
            "strategy='timi', ...), surrogate=...) instead",
            DeprecationWarning, stacklevel=2)
        from repro.attacks.config import AttackConfig
        from repro.attacks.registry import build_attack

        self.surrogate = surrogate
        self.tau = float(tau) / 255.0
        self.iterations = int(iterations)
        self.momentum = float(momentum)
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd")
        self.kernel_size = int(kernel_size)
        self._composed = build_attack(
            AttackConfig(strategy="timi", tau=float(tau),
                         iterations=int(iterations),
                         feedback={"momentum": float(momentum),
                                   "kernel_size": int(kernel_size)}),
            surrogate=surrogate)

    def run(self, original: Video, target: Video) -> AttackResult:
        """Craft a dense transfer AE for ``(v, v_t)`` (no queries)."""
        report = self._composed.run(original, target)
        # Legacy metadata shape.
        report.metadata = {"tau": self.tau * 255.0,
                           "iterations": self.iterations}
        return report
