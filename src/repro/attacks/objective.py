"""The black-box attack objective ``T`` (paper Eq. 2).

.. math::
   T(v_{adv}, v, v_t) = H(R^m(v_{adv}), R^m(v))
                      - H(R^m(v_{adv}), R^m(v_t)) + \\eta

``H`` is the NDCG-style co-occurrence similarity; lowering ``T`` moves
``R^m(v_adv)`` away from the original's list and toward the target's.
Every evaluation costs one service query, which the objective counts and
traces.

Batched evaluation: :meth:`RetrievalObjective.values` scores many
candidates in one service ``query_batch`` (every candidate is counted and
traced, in order).  :meth:`speculate`/:meth:`commit` support loops that
may consume only a prefix of a candidate pair — speculated values are
computed batched but only committed values touch the query counter and
trace, so the observable attack state is identical to sequential
:meth:`value` calls.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.similarity import ndcg_similarity, ndcg_similarity_many
from repro.retrieval.service import RetrievalService
from repro.video.types import Video


class RetrievalObjective:
    """Stateful evaluator of ``T`` against a black-box service."""

    def __init__(self, service: RetrievalService, original: Video,
                 target: Video, eta: float = 1.0) -> None:
        self.service = service
        self.eta = float(eta)
        # Reference lists cost two queries, paid once up front.
        self.original_ids = service.query(original).ids
        self.target_ids = service.query(target).ids
        self.queries = 2
        self.trace: list[float] = []

    def _values_of(self, id_lists: list[list[str]]) -> list[float]:
        h_orig = ndcg_similarity_many(id_lists, self.original_ids)
        h_target = ndcg_similarity_many(id_lists, self.target_ids)
        return [ho - ht + self.eta for ho, ht in zip(h_orig, h_target)]

    def value(self, candidate: Video) -> float:
        """Evaluate ``T(candidate, v, v_t)``; costs one query."""
        result_ids = self.service.query(candidate).ids
        self.queries += 1
        value = (
            ndcg_similarity(result_ids, self.original_ids)
            - ndcg_similarity(result_ids, self.target_ids)
            + self.eta
        )
        self.trace.append(value)
        return value

    def values(self, candidates: list[Video]) -> list[float]:
        """Evaluate ``T`` for many candidates in one forward batch.

        Costs (and traces) one query per candidate, in order — the
        returned floats and all attack-visible state are identical to a
        sequential loop of :meth:`value` calls.
        """
        results = self.service.query_batch(candidates)
        self.queries += len(candidates)
        values = self._values_of([result.ids for result in results])
        self.trace.extend(values)
        return values

    @property
    def speculation_safe(self) -> bool:
        """Whether :meth:`speculate` is allowed against this service."""
        return self.service.speculation_safe

    def speculate(self, candidates: list[Video]) -> list[float]:
        """Compute ``T`` for candidates without counting or tracing.

        Pair with :meth:`commit` for every value actually consumed by the
        attack loop.
        """
        results = self.service.speculate(candidates)
        return self._values_of([result.ids for result in results])

    def commit(self, value: float) -> float:
        """Consume one speculated value: count the query and trace it."""
        self.service.commit_speculated(1)
        self.queries += 1
        self.trace.append(value)
        return value

    def success_ap(self, candidate: Video) -> float:
        """AP@m of the candidate's list against the target's (evaluation only).

        Not part of the attack loop; used by the harness after an attack
        finishes, so it does not count toward attack queries.
        """
        from repro.metrics.ranking import ap_at_m

        result_ids = self.service.query(candidate).ids
        return ap_at_m(result_ids, self.target_ids)


class UntargetedRetrievalObjective:
    """Untargeted variant of Eq. 2 (paper §I: "can be easily extended").

    Drops the target term: ``T_unt = H(R^m(v_adv), R^m(v)) + η``.
    Minimizing it pushes the adversarial list away from the original's —
    retrieval returns "arbitrary videos except for the correct ones".
    Duck-type compatible with :class:`RetrievalObjective`, so every query
    attack accepts it unchanged.
    """

    def __init__(self, service: RetrievalService, original: Video,
                 target: Video | None = None, eta: float = 1.0) -> None:
        self.service = service
        self.eta = float(eta)
        self.original_ids = service.query(original).ids
        # target is accepted (and ignored) for interface compatibility.
        self.target_ids: list[str] = []
        self.queries = 1
        self.trace: list[float] = []

    def _values_of(self, id_lists: list[list[str]]) -> list[float]:
        h_orig = ndcg_similarity_many(id_lists, self.original_ids)
        return [ho + self.eta for ho in h_orig]

    def value(self, candidate: Video) -> float:
        """Evaluate ``T_unt(candidate, v)``; costs one query."""
        result_ids = self.service.query(candidate).ids
        self.queries += 1
        value = ndcg_similarity(result_ids, self.original_ids) + self.eta
        self.trace.append(value)
        return value

    def values(self, candidates: list[Video]) -> list[float]:
        """Batched :meth:`value`; counts and traces every candidate."""
        results = self.service.query_batch(candidates)
        self.queries += len(candidates)
        values = self._values_of([result.ids for result in results])
        self.trace.extend(values)
        return values

    @property
    def speculation_safe(self) -> bool:
        """Whether :meth:`speculate` is allowed against this service."""
        return self.service.speculation_safe

    def speculate(self, candidates: list[Video]) -> list[float]:
        """Compute ``T_unt`` for candidates without counting or tracing."""
        results = self.service.speculate(candidates)
        return self._values_of([result.ids for result in results])

    def commit(self, value: float) -> float:
        """Consume one speculated value: count the query and trace it."""
        self.service.commit_speculated(1)
        self.queries += 1
        self.trace.append(value)
        return value

    def escape_rate(self, candidate: Video) -> float:
        """Fraction of the original list no longer returned (evaluation)."""
        result_ids = set(self.service.query(candidate).ids)
        if not self.original_ids:
            return 0.0
        escaped = sum(1 for vid in self.original_ids if vid not in result_ids)
        return escaped / len(self.original_ids)

    def success_ap(self, candidate: Video) -> float:
        """AP@m of the candidate's list against the target's (evaluation only).

        Not part of the attack loop; used by the harness after an attack
        finishes, so it does not count toward attack queries.
        """
        from repro.metrics.ranking import ap_at_m

        result_ids = self.service.query(candidate).ids
        return ap_at_m(result_ids, self.target_ids)
