"""Perturbation bases: *what space* the feedback model searches.

:class:`PixelBasis` is the legacy behaviour — the search moves pixel
coordinates of the sampled support directly (dense when the plan has no
mask).  :class:`LowRankBasis` is the new adversary substrate: a
TenAd-style rank-``r`` factorization of the perturbation cube, where the
search moves ``r·(T + H + W)`` factor coefficients and every probe is a
*structured, video-wide* perturbation instead of isolated pixels.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.strategy.protocols import AttackContext, BasisState, \
    SupportPlan
from repro.video.types import Video


class PixelBasis:
    """Search pixel coordinates directly (sparse support or dense)."""

    name = "pixel"

    def __init__(self, **_unused) -> None:
        pass

    def prepare(self, current: Video, plan: SupportPlan,
                ctx: AttackContext) -> BasisState:
        support = plan.support
        if support is None:
            support = np.ones(current.pixels.shape, dtype=bool)
        return BasisState(space="pixel", support=support,
                          initial=plan.initial,
                          project_initial=plan.project_initial)


class LowRankBasis:
    """TenAd-style low-rank factor basis over the ``(T, H, W)`` cube.

    The perturbation is parameterized as a rank-``r`` CP tensor

    .. math:: φ_{t,h,w,c} = m_t · \\sum_{i=1}^{r} U_{i,t} V_{i,h} W_{i,w}

    shared across channels, where ``m`` is an optional frame mask taken
    from the sampler's plan (so the composition "RL frames × low-rank"
    learns *which frames* while the basis shapes *how* they move).  The
    search space has ``r·(T + H + W)`` coefficients — for an 8×16×16
    clip at rank 2 that is 80 dimensions instead of 6144 pixels, which
    is the entire point: each coefficient probe perturbs a structured
    slice of the whole video, so SimBA converges in far fewer queries.

    Decoded perturbations are ℓ∞-projected and range-clipped by the
    coefficient search *after* decoding; ``epsilon_hint`` sizes the
    per-coefficient step so a fresh probe lands near the τ boundary
    (three factors of magnitude ε produce entries ≈ ε³).
    """

    name = "lowrank"

    def __init__(self, rank: int = 2, **_unused) -> None:
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.rank = int(rank)

    def prepare(self, current: Video, plan: SupportPlan,
                ctx: AttackContext) -> BasisState:
        shape = current.pixels.shape
        frames, height, width = shape[0], shape[1], shape[2]
        channels = shape[3] if len(shape) > 3 else 1
        rank = self.rank
        dim = rank * (frames + height + width)

        if plan.support is not None:
            touched = plan.support.reshape(frames, -1).any(axis=1)
            frame_mask = touched.astype(np.float64)
        else:
            frame_mask = np.ones(frames, dtype=np.float64)

        split_u = rank * frames
        split_v = split_u + rank * height

        def decode(coefficients: np.ndarray) -> np.ndarray:
            factors_t = coefficients[:split_u].reshape(rank, frames)
            factors_h = coefficients[split_u:split_v].reshape(rank, height)
            factors_w = coefficients[split_v:].reshape(rank, width)
            cube = np.einsum("rt,rh,rw->thw", factors_t, factors_h,
                             factors_w)
            cube = cube * frame_mask[:, None, None]
            return np.repeat(cube[..., None], channels, axis=-1)

        tau = ctx.config.tau_unit()
        epsilon_hint = float(np.cbrt(tau / rank))
        return BasisState(space="coeff", support=plan.support, dim=dim,
                          decode=decode, epsilon_hint=epsilon_hint,
                          metadata={"rank": rank,
                                    "frame_mask": frame_mask.copy()})


__all__ = ["LowRankBasis", "PixelBasis"]
