"""The driver that runs any {sampler × basis × feedback} composition.

:class:`ComposedAttack` is the one attack loop left in the codebase:
every legacy attack class is now a thin shim over a registered
composition (see :mod:`repro.attacks.registry`), and the matrix of
*new* adversaries (RL frame selection, low-rank bases, QAIR feedback)
falls out of the same driver for free.

The driver owns the cross-cutting machinery the legacy classes each
reimplemented:

* **budget accounting** — one objective per run counts every query;
  with :attr:`AttackConfig.budget` set, each round's iteration cap is
  trimmed with conservative per-step cost bounds so the run *finishes
  under* the budget;
* **checkpointing** — an outer
  :class:`~repro.resilience.checkpoint.CheckpointSession` marks every
  round top (pre-rng), and each round's search checkpoints to
  ``<path>.round<r>``; resume is bit-identical, including the query
  accounting and a learned sampler's policy state;
* **speculation/batching** — ``AttackConfig.batched`` flows to the
  search primitives, which auto-enable speculative pair evaluation on
  stateless services exactly like the legacy attacks;
* **observability** — ``attack.runs`` counter, ``attack.<name>`` span,
  and a per-round objective gauge, mirroring the legacy surface.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.attacks.base import Attack, clip_video_range
from repro.attacks.report import AttackReport
from repro.attacks.strategy.protocols import AttackContext, FeedbackModel, \
    PerturbationBasis, SupportSampler
from repro.errors import RetrievalUnavailable
from repro.obs import counter, gauge, span
from repro.resilience.checkpoint import CheckpointSession
from repro.utils.seeding import seeded_rng
from repro.video.types import Video

logger = logging.getLogger(__name__)


class ComposedAttack(Attack):
    """Run a {sampler × basis × feedback} composition end to end.

    Components are validated against their protocols at construction,
    so a mis-wired composition (e.g. a basis passed as a sampler) fails
    immediately with a :class:`TypeError` naming the offender.
    """

    def __init__(self, name: str, sampler: SupportSampler,
                 basis: PerturbationBasis, feedback: FeedbackModel,
                 config, *, service=None, surrogate=None,
                 rng=None) -> None:
        for role, component, protocol in (
                ("sampler", sampler, SupportSampler),
                ("basis", basis, PerturbationBasis),
                ("feedback", feedback, FeedbackModel)):
            if not isinstance(component, protocol):
                raise TypeError(
                    f"{component!r} does not implement the {role} protocol "
                    f"({protocol.__name__})")
        self.name = str(name)
        self.sampler = sampler
        self.basis = basis
        self.feedback = feedback
        self.config = config
        self.service = service
        self.surrogate = surrogate
        self.rng = seeded_rng(config.seed if rng is None else rng)

    # -------------------------------------------------------------- #
    # Budget accounting
    # -------------------------------------------------------------- #
    def _remaining(self, objective) -> int | None:
        budget = self.config.budget
        if budget is None:
            return None
        spent = objective.queries if objective is not None else 0
        return max(0, int(budget) - int(spent))

    # -------------------------------------------------------------- #
    # Driver loop
    # -------------------------------------------------------------- #
    def run(self, original: Video, target: Video | None = None,
            checkpoint_path: str | None = None) -> AttackReport:
        """Craft an AE for ``(v, v_t)`` through the composed pipeline."""
        config = self.config
        path = checkpoint_path if checkpoint_path is not None else \
            config.checkpoint_path
        rounds = int(config.rounds) if config.rounds is not None else \
            int(self.sampler.default_rounds)
        counter("attack.runs", attack=self.name).inc()

        objective = self.feedback.build_objective(self.service, original,
                                                  target, config)
        session = CheckpointSession(path, f"strategy.{self.name}", objective,
                                    self.rng)
        resumed = session.resume()
        if resumed is None:
            current = original
            trace: list[float] = []
            start_round = 0
        else:
            current = original.perturbed(resumed["perturbation"])
            trace = resumed["trace"]
            start_round = resumed["iteration"]
            if resumed.get("sampler_state") is not None and \
                    hasattr(self.sampler, "load_state"):
                self.sampler.load_state(resumed["sampler_state"])

        with span(f"attack.{self.name}", k=config.k, n=config.n,
                  rounds=rounds):
            for round_index in range(start_round, rounds):
                sampler_state = self.sampler.state_dict() \
                    if hasattr(self.sampler, "state_dict") else None
                session.mark(round_index,
                             perturbation=current.pixels - original.pixels,
                             trace=trace, sampler_state=sampler_state)
                remaining = self._remaining(objective)
                if remaining is not None and remaining < 1:
                    logger.warning("attack %s: query budget exhausted after "
                                   "%d round(s)", self.name, round_index)
                    break
                ctx = AttackContext(
                    config=config, rng=self.rng, service=self.service,
                    surrogate=self.surrogate, target=target,
                    round=round_index, rounds=rounds,
                    checkpoint_path=None if path is None
                    else f"{path}.round{round_index}",
                    max_queries=remaining)
                try:
                    plan = self.sampler.sample(current, target, ctx)
                    if plan.is_empty():
                        # SparseQuery's contract: an empty support costs
                        # no queries; the round degrades to applying the
                        # plan's initial perturbation (if any).
                        logger.warning(
                            "attack %s round %d: empty support, skipping "
                            "search", self.name, round_index)
                        perturbation = np.zeros_like(original.pixels) \
                            if plan.initial is None else \
                            clip_video_range(current.pixels, plan.initial)
                        report = AttackReport(
                            adversarial=current.perturbed(perturbation),
                            perturbation=perturbation, queries=0, trace=[])
                    else:
                        state = self.basis.prepare(current, plan, ctx)
                        report = self.feedback.optimize(current, objective,
                                                        state, ctx)
                except RetrievalUnavailable:
                    # The inner search already persisted its own state;
                    # persist the round-top mark so a retry re-enters
                    # this round with the right rng/counts and resumes
                    # the search from <path>.round<r>.
                    session.persist()
                    raise
                trace.extend(report.trace)
                current = report.adversarial
                self.sampler.update(plan, report, ctx)
                counter(f"attack.{self.name}.rounds").inc()
                if trace:
                    gauge(f"attack.{self.name}.objective").set(trace[-1])
        session.complete()

        queries = objective.queries if objective is not None else 0
        return AttackReport(
            adversarial=current,
            perturbation=current.pixels - original.pixels,
            queries=queries, trace=trace,
            metadata={"strategy": self.name, "k": config.k, "n": config.n,
                      "tau": config.tau, "rounds": rounds,
                      "budget": config.budget})


__all__ = ["ComposedAttack"]
