"""Feedback models: *how* black-box feedback drives the search.

:class:`SimbaFeedback` and :class:`NesFeedback` delegate to the shared
search primitives (:func:`~repro.attacks.search.simba_search` /
:func:`~repro.attacks.search.nes_search`) and therefore reproduce the
legacy attacks bit-for-bit.  :class:`QairFeedback` is the new
query-efficient adversary: a QAIR-style relevance objective built from
top-``m`` list overlap plus an adaptive-step search with early exit.
:class:`TransferFeedback` closes the square — a feedback model that
never queries (TIMI), so pure transfer attacks compose through the same
driver.

Every model's :meth:`optimize` honours ``ctx.max_queries`` by trimming
its iteration count with a conservative per-iteration cost bound, which
is how :class:`~repro.attacks.strategy.composed.ComposedAttack`
guarantees a run *finishes under* ``AttackConfig.budget``.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import clip_video_range, project_linf
from repro.attacks.objective import RetrievalObjective
from repro.attacks.report import AttackReport
from repro.attacks.search import default_block_size, nes_search, simba_search
from repro.attacks.strategy.protocols import AttackContext, BasisState
from repro.errors import RetrievalUnavailable
from repro.obs import counter, gauge, span
from repro.resilience.checkpoint import CheckpointSession
from repro.utils.seeding import seeded_rng
from repro.video.types import Video


def _trim_iterations(iterations: int, max_queries: int | None,
                     cost_per_iteration: int, upfront: int = 1) -> int:
    """Largest iteration count whose worst-case cost fits the budget."""
    iterations = int(iterations)
    if max_queries is None:
        return iterations
    affordable = (int(max_queries) - upfront) // max(cost_per_iteration, 1)
    return max(0, min(iterations, affordable))


# ---------------------------------------------------------------------- #
# SimBA (pixel and coefficient spaces)
# ---------------------------------------------------------------------- #
class SimbaFeedback:
    """SimBA ±ε coordinate descent on the objective ``T``.

    In the ``"pixel"`` basis this *is* the legacy search (the DUO query
    stage with ``metric_prefix="attack.duo.query"``); in a ``"coeff"``
    basis the same greedy rule runs over basis coefficients via
    :func:`coefficient_search`.
    """

    name = "simba"

    def __init__(self, tie_rule: str = "move", block_size: int | None = None,
                 epsilon_scale: float | None = None,
                 metric_prefix: str = "attack.search.simba",
                 checkpoint_algo: str = "simba", **_unused) -> None:
        self.tie_rule = tie_rule
        self.block_size = block_size
        self.epsilon_scale = epsilon_scale
        self.metric_prefix = metric_prefix
        self.checkpoint_algo = checkpoint_algo

    def build_objective(self, service, original: Video,
                        target: Video | None, config):
        return RetrievalObjective(service, original, target, eta=config.eta)

    def optimize(self, current: Video, objective, state: BasisState,
                 ctx: AttackContext) -> AttackReport:
        config = ctx.config
        tau = config.tau_unit()
        # Worst case 2 queries per iteration (+1 fresh baseline).
        iterations = _trim_iterations(config.iterations, ctx.max_queries, 2)
        epsilon = None if self.epsilon_scale is None else \
            float(self.epsilon_scale) * tau
        if state.space == "coeff":
            return coefficient_search(
                current, objective, state, tau=tau, iterations=iterations,
                rng=ctx.rng, tie_rule=self.tie_rule,
                block_size=self.block_size,
                checkpoint_path=ctx.checkpoint_path)
        return simba_search(
            current, objective, state.support, tau=tau,
            iterations=iterations, epsilon=epsilon, rng=ctx.rng,
            initial=state.initial, tie_rule=self.tie_rule,
            block_size=self.block_size, batched=config.batched,
            checkpoint_path=ctx.checkpoint_path,
            metric_prefix=self.metric_prefix,
            checkpoint_algo=self.checkpoint_algo,
            project_initial=state.project_initial)


def coefficient_search(original: Video, objective, state: BasisState,
                       tau: float, iterations: int, rng=None,
                       tie_rule: str = "move", block_size: int | None = None,
                       checkpoint_path=None, *,
                       metric_prefix: str = "attack.search.coeff",
                       checkpoint_algo: str = "coeff") -> AttackReport:
    """SimBA's greedy ±ε rule over a basis coefficient vector.

    The loop mutates a ``state.dim``-dimensional coefficient vector;
    ``state.decode`` maps it to a pixel perturbation which is then
    ℓ∞-projected and range-clipped (so the decoded AE always satisfies
    the budget no matter how the coefficients move).  Candidates whose
    decoded perturbation equals the incumbent cost no query, mirroring
    :func:`~repro.attacks.search.simba_search`'s projection-undid-it
    skip.
    """
    if state.decode is None or state.dim <= 0:
        raise ValueError("coefficient search needs a decodable basis state")
    rng = seeded_rng(rng)
    base = original.pixels
    decode = state.decode
    epsilon = float(state.epsilon_hint) if state.epsilon_hint else tau

    def decode_projected(coefficients: np.ndarray) -> np.ndarray:
        return clip_video_range(base, project_linf(decode(coefficients), tau))

    coefficients = np.zeros(state.dim, dtype=np.float64)
    perturbation = decode_projected(coefficients)
    indices = np.arange(state.dim)
    block = default_block_size(state.dim) if block_size is None else \
        max(1, int(block_size))

    session = CheckpointSession(checkpoint_path, checkpoint_algo, objective,
                                rng)
    resumed = session.resume()
    if resumed is None:
        current = original.perturbed(perturbation)
        best = objective.value(current)
        trace = [best]
        order = rng.permutation(indices)
        cursor = 0
        start_iteration = 0
    else:
        coefficients = resumed["coefficients"]
        perturbation = decode_projected(coefficients)
        best = resumed["best"]
        trace = resumed["trace"]
        order = resumed["order"]
        cursor = resumed["cursor"]
        block = int(resumed.get("block", block))
        start_iteration = resumed["iteration"]
        current = original.perturbed(perturbation)

    with span(metric_prefix, dim=int(state.dim), block=block):
        for iteration in range(start_iteration, int(iterations)):
            session.mark(iteration, coefficients=coefficients, best=best,
                         trace=trace, order=order, cursor=cursor, block=block)
            try:
                with span(f"{metric_prefix}.iter"):
                    if cursor + block > order.size:
                        order = rng.permutation(indices)
                        cursor = 0
                    chosen = order[cursor : cursor + block]
                    cursor += block
                    signs = rng.choice((-1.0, 1.0), size=chosen.size)
                    for flip in (+1.0, -1.0):
                        candidate = coefficients.copy()
                        candidate[chosen] += flip * signs * epsilon
                        decoded = decode_projected(candidate)
                        if np.array_equal(decoded, perturbation):
                            continue  # projection undid the step: no query
                        adversarial = original.perturbed(decoded)
                        value = objective.value(adversarial)
                        trace.append(value)
                        counter(f"{metric_prefix}.evaluations").inc()
                        if value < best or \
                                (tie_rule == "move" and value <= best):
                            counter(f"{metric_prefix}.accepted").inc()
                            best = value
                            coefficients = candidate
                            perturbation = decoded
                            current = adversarial
                            break
            except RetrievalUnavailable:
                session.persist()
                raise
        gauge(f"{metric_prefix}.objective").set(best)
    session.complete()
    return AttackReport(adversarial=current, perturbation=perturbation,
                        queries=len(trace), trace=trace,
                        metadata={"coefficients": coefficients})


# ---------------------------------------------------------------------- #
# NES
# ---------------------------------------------------------------------- #
class NesFeedback:
    """NES antithetic gradient estimation (the HEU-Nes optimizer)."""

    name = "nes"

    def __init__(self, samples: int = 4, sigma: float = 0.05,
                 lr: float | None = None, **_unused) -> None:
        self.samples = int(samples)
        self.sigma = float(sigma)
        self.lr = lr

    def build_objective(self, service, original: Video,
                        target: Video | None, config):
        return RetrievalObjective(service, original, target, eta=config.eta)

    def optimize(self, current: Video, objective, state: BasisState,
                 ctx: AttackContext) -> AttackReport:
        if state.space != "pixel":
            raise ValueError("NES feedback needs a pixel basis")
        config = ctx.config
        # 2·samples probes + 1 step evaluation per iteration.
        iterations = _trim_iterations(config.iterations, ctx.max_queries,
                                      2 * self.samples + 1)
        return nes_search(
            current, objective, state.support, tau=config.tau_unit(),
            iterations=iterations, samples=self.samples, sigma=self.sigma,
            lr=self.lr, rng=ctx.rng, initial=state.initial,
            batched=config.batched, checkpoint_path=ctx.checkpoint_path)


# ---------------------------------------------------------------------- #
# QAIR-style relevance feedback
# ---------------------------------------------------------------------- #
class RelevanceFeedbackObjective:
    """QAIR's signal: reciprocal-rank-weighted top-``m`` list overlap.

    QAIR attacks image retrieval with only the *returned list* as
    feedback — no similarity scores.  This objective mirrors that:
    each query scores how much of the original's list the candidate
    still *keeps* minus how much of the target's list it has *gained*,
    with ``1 / log2(rank + 2)`` position weights (high ranks dominate,
    like NDCG's discount).  Fully flipped lists reach ``η − 1``, so
    ``stop_at = η − 1`` is the natural early-exit threshold.

    Duck-type compatible with
    :class:`~repro.attacks.objective.RetrievalObjective` where the
    checkpoint layer is concerned (``service`` / ``queries`` /
    ``trace``).
    """

    def __init__(self, service, original: Video, target: Video | None,
                 eta: float = 1.0) -> None:
        self.service = service
        self.eta = float(eta)
        self.original_ids = list(service.query(original).ids)
        self.target_ids = [] if target is None else \
            list(service.query(target).ids)
        self.queries = 2 if target is not None else 1
        self.trace: list[float] = []

    def _overlap(self, ids: list[str], reference: list[str]) -> float:
        if not reference:
            return 0.0
        positions = {video_id: rank for rank, video_id
                     in enumerate(reference)}
        weights = 1.0 / np.log2(np.arange(len(reference)) + 2.0)
        gained = sum(weights[positions[video_id]] for video_id in ids
                     if video_id in positions)
        return float(gained / weights.sum())

    def value(self, candidate: Video) -> float:
        ids = list(self.service.query(candidate).ids)
        self.queries += 1
        value = (self._overlap(ids, self.original_ids)
                 - self._overlap(ids, self.target_ids) + self.eta)
        self.trace.append(value)
        return value

    @property
    def speculation_safe(self) -> bool:
        return False  # sequential on purpose: the adaptive step is stateful


def qair_search(original: Video, objective, support: np.ndarray, tau: float,
                iterations: int, rng=None,
                initial: np.ndarray | None = None,
                step_init: float | None = None, grow: float = 1.5,
                shrink: float = 0.5, patience: int = 2,
                stop_at: float | None = None, checkpoint_path=None, *,
                metric_prefix: str = "attack.search.qair",
                checkpoint_algo: str = "qair") -> AttackReport:
    """Adaptive-step ±ε search with early exit (QAIR's query economy).

    Same direction stream as :func:`~repro.attacks.search.simba_search`,
    but the step size adapts: accepted moves grow ``ε`` (capped at τ),
    ``patience`` consecutive fully-rejected iterations shrink it (floored
    at τ/16).  When ``stop_at`` is given the loop exits as soon as the
    best objective value reaches it — the attack stops paying for
    queries the moment the retrieval list has flipped.
    """
    rng = seeded_rng(rng)
    base = original.pixels
    epsilon_min = tau / 16.0
    epsilon = tau if step_init is None else float(step_init)
    perturbation = np.zeros_like(base) if initial is None else initial.copy()
    perturbation = clip_video_range(base, project_linf(perturbation, tau))

    coords = np.flatnonzero(np.asarray(support).reshape(-1))
    if coords.size == 0:
        current = original.perturbed(perturbation)
        trace = [objective.value(current)]
        return AttackReport(adversarial=current, perturbation=perturbation,
                            queries=len(trace), trace=trace)
    block = default_block_size(coords.size)

    session = CheckpointSession(checkpoint_path, checkpoint_algo, objective,
                                rng)
    resumed = session.resume()
    if resumed is None:
        current = original.perturbed(perturbation)
        best = objective.value(current)
        trace = [best]
        order = rng.permutation(coords)
        cursor = 0
        misses = 0
        start_iteration = 0
    else:
        perturbation = resumed["perturbation"]
        best = resumed["best"]
        trace = resumed["trace"]
        order = resumed["order"]
        cursor = resumed["cursor"]
        epsilon = resumed["epsilon"]
        misses = resumed["misses"]
        block = int(resumed.get("block", block))
        start_iteration = resumed["iteration"]
        current = original.perturbed(perturbation)

    with span(metric_prefix, support=int(coords.size), block=block):
        for iteration in range(start_iteration, int(iterations)):
            if stop_at is not None and best <= stop_at:
                counter(f"{metric_prefix}.early_exits").inc()
                break
            session.mark(iteration, perturbation=perturbation, best=best,
                         trace=trace, order=order, cursor=cursor,
                         epsilon=epsilon, misses=misses, block=block)
            try:
                with span(f"{metric_prefix}.iter"):
                    if cursor + block > order.size:
                        order = rng.permutation(coords)
                        cursor = 0
                    chosen = order[cursor : cursor + block]
                    cursor += block
                    signs = rng.choice((-1.0, 1.0), size=chosen.size)
                    accepted = False
                    for flip in (+1.0, -1.0):
                        candidate = perturbation.copy()
                        candidate.reshape(-1)[chosen] += flip * signs * epsilon
                        candidate = clip_video_range(
                            base, project_linf(candidate, tau))
                        if np.array_equal(candidate, perturbation):
                            continue  # projection undid the step: no query
                        adversarial = original.perturbed(candidate)
                        value = objective.value(adversarial)
                        trace.append(value)
                        counter(f"{metric_prefix}.evaluations").inc()
                        if value <= best:
                            counter(f"{metric_prefix}.accepted").inc()
                            best = value
                            perturbation = candidate
                            current = adversarial
                            accepted = True
                            break
                    if accepted:
                        epsilon = min(tau, epsilon * grow)
                        misses = 0
                    else:
                        misses += 1
                        if misses >= patience:
                            epsilon = max(epsilon_min, epsilon * shrink)
                            misses = 0
            except RetrievalUnavailable:
                session.persist()
                raise
        gauge(f"{metric_prefix}.objective").set(best)
        gauge(f"{metric_prefix}.step").set(epsilon)
    session.complete()
    return AttackReport(adversarial=current, perturbation=perturbation,
                        queries=len(trace), trace=trace)


class QairFeedback:
    """Query-efficient relevance-feedback search (QAIR-style)."""

    name = "qair"

    def __init__(self, step_init: float | None = None, grow: float = 1.5,
                 shrink: float = 0.5, patience: int = 2,
                 early_exit: bool = True, **_unused) -> None:
        self.step_init = step_init
        self.grow = float(grow)
        self.shrink = float(shrink)
        self.patience = int(patience)
        self.early_exit = bool(early_exit)

    def build_objective(self, service, original: Video,
                        target: Video | None, config):
        return RelevanceFeedbackObjective(service, original, target,
                                          eta=config.eta)

    def optimize(self, current: Video, objective, state: BasisState,
                 ctx: AttackContext) -> AttackReport:
        if state.space != "pixel":
            raise ValueError("QAIR feedback needs a pixel basis")
        config = ctx.config
        iterations = _trim_iterations(config.iterations, ctx.max_queries, 2)
        # Fully flipped lists reach η − 1 (keep 0, gain 1).
        stop_at = (config.eta - 1.0) if self.early_exit else None
        return qair_search(
            current, objective, state.support, tau=config.tau_unit(),
            iterations=iterations, rng=ctx.rng, initial=state.initial,
            step_init=self.step_init, grow=self.grow, shrink=self.shrink,
            patience=self.patience, stop_at=stop_at,
            checkpoint_path=ctx.checkpoint_path)


# ---------------------------------------------------------------------- #
# Pure transfer (no queries)
# ---------------------------------------------------------------------- #
class TransferFeedback:
    """TIMI surrogate transfer as a feedback model that never queries."""

    name = "transfer"

    def __init__(self, momentum: float = 1.0, kernel_size: int = 5,
                 **_unused) -> None:
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd")
        self.momentum = float(momentum)
        self.kernel_size = int(kernel_size)

    def build_objective(self, service, original: Video,
                        target: Video | None, config):
        return None  # transfer-only: zero black-box queries

    def optimize(self, current: Video, objective, state: BasisState,
                 ctx: AttackContext) -> AttackReport:
        from repro.attacks.timi import timi_transfer
        if ctx.surrogate is None:
            raise ValueError("the transfer feedback model needs a surrogate "
                             "model; pass surrogate=... to build_attack()")
        if ctx.target is None:
            raise ValueError("TIMI transfer is targeted; a target video is "
                             "required")
        config = ctx.config
        return timi_transfer(
            ctx.surrogate, current, ctx.target, tau=config.tau_unit(),
            iterations=config.iterations, momentum=self.momentum,
            kernel_size=self.kernel_size)


__all__ = [
    "NesFeedback",
    "QairFeedback",
    "RelevanceFeedbackObjective",
    "SimbaFeedback",
    "TransferFeedback",
    "coefficient_search",
    "qair_search",
]
