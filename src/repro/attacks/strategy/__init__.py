"""Composable attack strategies: {sampler × basis × feedback}.

See :mod:`repro.attacks.strategy.protocols` for the component contracts,
:mod:`repro.attacks.registry` for the named compositions, and DESIGN.md
§15 for the composition table mapping each paper attack onto the three
axes.
"""

from repro.attacks.strategy.bases import LowRankBasis, PixelBasis
from repro.attacks.strategy.composed import ComposedAttack
from repro.attacks.strategy.feedback import (
    NesFeedback,
    QairFeedback,
    RelevanceFeedbackObjective,
    SimbaFeedback,
    TransferFeedback,
    coefficient_search,
    qair_search,
)
from repro.attacks.strategy.protocols import (
    AttackContext,
    BasisState,
    FeedbackModel,
    PerturbationBasis,
    SupportPlan,
    SupportSampler,
)
from repro.attacks.strategy.samplers import (
    DenseSampler,
    PriorSampler,
    RandomSampler,
    RLFrameSampler,
    SaliencySampler,
    TransferSampler,
)

__all__ = [
    "AttackContext",
    "BasisState",
    "ComposedAttack",
    "DenseSampler",
    "FeedbackModel",
    "LowRankBasis",
    "NesFeedback",
    "PerturbationBasis",
    "PixelBasis",
    "PriorSampler",
    "QairFeedback",
    "RLFrameSampler",
    "RandomSampler",
    "RelevanceFeedbackObjective",
    "SaliencySampler",
    "SimbaFeedback",
    "SupportPlan",
    "SupportSampler",
    "TransferFeedback",
    "TransferSampler",
    "coefficient_search",
    "qair_search",
]
