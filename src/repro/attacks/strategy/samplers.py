"""Support samplers: *which* frames × pixels an attack round may touch.

Static samplers (:class:`RandomSampler`, :class:`SaliencySampler`,
:class:`DenseSampler`) reproduce the legacy attacks' selection rules
bit-for-bit, consuming rng from the shared context in exactly the legacy
order.  :class:`TransferSampler` wraps DUO's frame-pixel search
(:class:`~repro.attacks.duo.sparse_transfer.SparseTransfer`) and re-plans
every round, which is precisely the paper's ``iter_num_H`` loop.
:class:`RLFrameSampler` is the new adversary: an EXP3 bandit that
*learns* which frames move the retrieval list, using the round's
objective drop as reward.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import clip_video_range
from repro.attacks.heu import saliency_support
from repro.attacks.report import AttackReport
from repro.attacks.strategy.protocols import AttackContext, SupportPlan
from repro.attacks.vanilla import random_support
from repro.obs import gauge, span
from repro.video.types import Video


class RandomSampler:
    """Vanilla's selection: ``n`` random frames, ``k`` random values."""

    name = "random"
    default_rounds = 1

    def __init__(self, **_unused) -> None:
        pass

    def sample(self, current: Video, target: Video | None,
               ctx: AttackContext) -> SupportPlan:
        config = ctx.config
        support = random_support(current.pixels.shape, config.k, config.n,
                                 rng=ctx.rng)
        return SupportPlan(support=support)

    def update(self, plan: SupportPlan, report: AttackReport,
               ctx: AttackContext) -> None:
        pass


class SaliencySampler:
    """HEU's selection: top-``n`` motion frames, salient or random pixels.

    ``random_pixels=True`` is the HEU-Sim ablation (heuristic frames,
    Vanilla pixels); it is the only variant that consumes rng.
    """

    name = "saliency"
    default_rounds = 1

    def __init__(self, random_pixels: bool = False, **_unused) -> None:
        self.random_pixels = bool(random_pixels)

    def sample(self, current: Video, target: Video | None,
               ctx: AttackContext) -> SupportPlan:
        config = ctx.config
        with span("attack.heu.saliency"):
            support = saliency_support(current, config.k, config.n,
                                       random_pixels=self.random_pixels,
                                       rng=ctx.rng)
        return SupportPlan(support=support)

    def update(self, plan: SupportPlan, report: AttackReport,
               ctx: AttackContext) -> None:
        pass


class DenseSampler:
    """No sparsity: every frame and pixel may move (TIMI, low-rank)."""

    name = "dense"
    default_rounds = 1

    def __init__(self, **_unused) -> None:
        pass

    def sample(self, current: Video, target: Video | None,
               ctx: AttackContext) -> SupportPlan:
        return SupportPlan(support=None)

    def update(self, plan: SupportPlan, report: AttackReport,
               ctx: AttackContext) -> None:
        pass


class TransferSampler:
    """DUO's frame-pixel search: surrogate transfer plans each round.

    Every :meth:`sample` call runs
    :class:`~repro.attacks.duo.sparse_transfer.SparseTransfer` from the
    *current* adversarial point, exactly like
    :class:`~repro.attacks.duo.pipeline.DUOAttack`'s outer loop — the
    support is the nonzero mask of θ and the search is seeded with the
    clipped priors (not ℓ∞-projected: under the ℓ2 constraint θ may
    legitimately exceed τ per coordinate).
    """

    name = "transfer"
    default_rounds = 2  # the paper's iter_num_H

    def __init__(self, lam: float = float(np.exp(-5.0)),
                 constraint: str = "linf", outer_iters: int = 3,
                 theta_steps: int = 25, targeted: bool = True,
                 **transfer_kwargs) -> None:
        self.lam = float(lam)
        self.constraint = constraint
        self.outer_iters = int(outer_iters)
        self.theta_steps = int(theta_steps)
        self.targeted = bool(targeted)
        self.transfer_kwargs = dict(transfer_kwargs)
        self._transfer = None

    def _stage(self, ctx: AttackContext):
        if self._transfer is None:
            from repro.attacks.duo.sparse_transfer import SparseTransfer
            if ctx.surrogate is None:
                raise ValueError(
                    "the transfer sampler needs a surrogate model; pass "
                    "surrogate=... to build_attack()")
            config = ctx.config
            self._transfer = SparseTransfer(
                ctx.surrogate, k=config.k, n=config.n, tau=config.tau,
                lam=self.lam, constraint=self.constraint,
                outer_iters=self.outer_iters, theta_steps=self.theta_steps,
                targeted=self.targeted, **self.transfer_kwargs)
        return self._transfer

    def sample(self, current: Video, target: Video | None,
               ctx: AttackContext) -> SupportPlan:
        priors = self._stage(ctx).run(current, target, init=None)
        initial = clip_video_range(current.pixels, priors.perturbation())
        return SupportPlan(support=priors.support(), initial=initial,
                           project_initial=False,
                           metadata={"priors": priors})

    def update(self, plan: SupportPlan, report: AttackReport,
               ctx: AttackContext) -> None:
        pass


class PriorSampler:
    """A fixed set of transfer priors (DUO's query stage in isolation).

    Wraps a pre-computed
    :class:`~repro.attacks.duo.sparse_transfer.TransferPriors` so the
    query stage composes without a surrogate in the loop — the shape the
    :class:`~repro.attacks.duo.sparse_query.SparseQuery` shim uses.
    """

    name = "priors"
    default_rounds = 1

    def __init__(self, priors, **_unused) -> None:
        self.priors = priors

    def sample(self, current: Video, target: Video | None,
               ctx: AttackContext) -> SupportPlan:
        initial = clip_video_range(current.pixels,
                                   self.priors.perturbation())
        return SupportPlan(support=self.priors.support(), initial=initial,
                           project_initial=False,
                           metadata={"priors": self.priors})

    def update(self, plan: SupportPlan, report: AttackReport,
               ctx: AttackContext) -> None:
        pass


class RLFrameSampler:
    """EXP3 bandit that learns *which frames* shift the retrieval list.

    Each round (= bandit episode) the sampler draws ``n`` frames without
    replacement from an exploration-mixed softmax over per-frame weights,
    spreads the ``k``-pixel budget uniformly inside them (Vanilla's
    rule), and after the round's search updates the drawn frames'
    weights with the importance-weighted EXP3 rule.  The reward is the
    round's *relative objective drop* — a direct proxy for how far the
    round pushed the target up the retrieval list (rank shift), which is
    the only signal a black-box attacker observes.

    Frames that keep producing rank movement accumulate weight, so later
    episodes concentrate the sparse budget where the victim model is
    actually sensitive — without a surrogate and without saliency
    heuristics.
    """

    name = "rl-frames"
    default_rounds = 4

    def __init__(self, exploration: float = 0.25,
                 learning_rate: float = 1.0, **_unused) -> None:
        if not 0.0 < exploration <= 1.0:
            raise ValueError("exploration must be in (0, 1]")
        self.exploration = float(exploration)
        self.learning_rate = float(learning_rate)
        self._weights: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #
    def _probabilities(self, num_frames: int) -> np.ndarray:
        if self._weights is None or self._weights.size != num_frames:
            self._weights = np.ones(num_frames, dtype=np.float64)
        weights = self._weights
        mix = weights / weights.sum()
        uniform = np.full(num_frames, 1.0 / num_frames)
        return (1.0 - self.exploration) * mix + self.exploration * uniform

    def sample(self, current: Video, target: Video | None,
               ctx: AttackContext) -> SupportPlan:
        config = ctx.config
        shape = current.pixels.shape
        frames = shape[0]
        per_frame = int(np.prod(shape[1:]))
        n = min(int(config.n), frames)
        probs = self._probabilities(frames)

        # Draw n distinct frames sequentially, renormalizing after each
        # draw; record the *pre-draw* probability for the importance
        # weight (standard EXP3 with without-replacement slates).
        remaining = probs.copy()
        chosen: list[int] = []
        draw_probs: list[float] = []
        for _ in range(n):
            total = remaining.sum()
            frame = int(ctx.rng.choice(frames, p=remaining / total))
            chosen.append(frame)
            draw_probs.append(float(probs[frame]))
            remaining[frame] = 0.0

        support = np.zeros(shape, dtype=bool)
        budget = min(int(config.k), n * per_frame)
        per_frame_budget = np.full(n, budget // n)
        per_frame_budget[: budget % n] += 1
        flat = support.reshape(frames, -1)
        for frame, count in zip(chosen, per_frame_budget):
            if count == 0:
                continue
            picks = ctx.rng.choice(per_frame, size=int(count), replace=False)
            flat[frame, picks] = True
        return SupportPlan(support=support,
                           metadata={"frames": chosen, "probs": draw_probs})

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def update(self, plan: SupportPlan, report: AttackReport,
               ctx: AttackContext) -> None:
        trace = report.trace
        if not trace or self._weights is None:
            return
        start = float(trace[0])
        best = float(min(trace))
        # Relative objective drop in [0, 1]; the objective is built from
        # retrieval-list positions, so this is the episode's rank shift.
        reward = float(np.clip((start - best) / (abs(start) + 1e-9),
                               0.0, 1.0))
        scale = self.exploration * self.learning_rate / self._weights.size
        for frame, prob in zip(plan.metadata.get("frames", ()),
                               plan.metadata.get("probs", ())):
            estimate = reward / max(float(prob), 1e-6)
            self._weights[frame] *= float(np.exp(scale * estimate))
        # Keep the weights bounded; EXP3 only cares about ratios.
        self._weights /= self._weights.max()
        gauge("attack.rl.reward").set(reward)

    # ------------------------------------------------------------------ #
    # Persistence (the learned policy is part of a checkpointed run)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {"weights": None if self._weights is None
                else self._weights.copy()}

    def load_state(self, state: dict) -> None:
        weights = state.get("weights")
        self._weights = None if weights is None else \
            np.asarray(weights, dtype=np.float64).copy()


__all__ = [
    "DenseSampler",
    "PriorSampler",
    "RandomSampler",
    "RLFrameSampler",
    "SaliencySampler",
    "TransferSampler",
]
