"""The three component protocols every composed attack is built from.

DUO is one point in a design space with three independent axes:

* **which** coordinates to perturb — :class:`SupportSampler` (random,
  motion-saliency, DUO's transfer-derived frame-pixel search, an RL
  agent that *learns* frame selection from per-episode rank shifts);
* **what basis** the perturbation lives in — :class:`PerturbationBasis`
  (dense pixels, sparse pixel support, TenAd-style low-rank factors over
  the ``(T, H, W)`` cube);
* **how** retrieval feedback drives the search — :class:`FeedbackModel`
  (SimBA ±ε probes, NES gradient estimates, QAIR-style top-k
  relevance feedback, pure surrogate transfer).

All three are ``runtime_checkable`` protocols:
:class:`~repro.attacks.strategy.composed.ComposedAttack` validates its
components with ``isinstance`` at construction, so a mis-wired
composition fails fast with a clear error instead of deep inside a
search loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.attacks.report import AttackReport
from repro.video.types import Video


@dataclass
class SupportPlan:
    """One round's answer to *which coordinates may move*.

    ``support`` is a boolean mask over the video pixels (``None`` means
    dense: every coordinate).  ``initial`` optionally seeds the search
    with a perturbation (DUO's transfer priors).  ``project_initial``
    mirrors SparseQuery's contract: the initial perturbation is *not*
    ℓ∞-projected when the priors were built under an ℓ2 constraint.
    """

    support: np.ndarray | None
    initial: np.ndarray | None = None
    project_initial: bool = True
    metadata: dict = field(default_factory=dict)

    def is_empty(self) -> bool:
        """True when a mask is present but selects nothing."""
        return self.support is not None and not bool(np.any(self.support))


@dataclass
class BasisState:
    """A prepared perturbation basis for one search round.

    ``space`` is ``"pixel"`` (the search mutates pixel coordinates of
    ``support`` directly) or ``"coeff"`` (the search mutates a ``dim``-
    dimensional coefficient vector and ``decode`` maps it to a pixel
    perturbation; projection to the ℓ∞ ball and the valid pixel range
    happens *after* decoding).
    """

    space: str
    support: np.ndarray | None = None
    initial: np.ndarray | None = None
    project_initial: bool = True
    dim: int = 0
    decode: Callable[[np.ndarray], np.ndarray] | None = None
    epsilon_hint: float | None = None
    metadata: dict = field(default_factory=dict)


@runtime_checkable
class SupportSampler(Protocol):
    """Chooses the frames × pixels an attack round may touch."""

    name: str
    #: Outer rounds the sampler wants when ``AttackConfig.rounds`` is
    #: ``None`` (1 for static samplers, ``iter_num_H`` for DUO's
    #: transfer loop, the episode count for the RL agent).
    default_rounds: int

    def sample(self, current: Video, target: Video | None,
               ctx) -> SupportPlan:
        """Plan one round's support, starting from ``current``."""
        ...

    def update(self, plan: SupportPlan, report: AttackReport, ctx) -> None:
        """Learn from the finished round (no-op for static samplers)."""
        ...


@runtime_checkable
class PerturbationBasis(Protocol):
    """Maps a support plan to the space the feedback model searches."""

    name: str

    def prepare(self, current: Video, plan: SupportPlan,
                ctx) -> BasisState:
        ...


@runtime_checkable
class FeedbackModel(Protocol):
    """Drives the search from black-box retrieval feedback."""

    name: str

    def build_objective(self, service, original: Video,
                        target: Video | None, config):
        """Construct the round-shared objective (``None`` ⇒ no queries)."""
        ...

    def optimize(self, current: Video, objective, state: BasisState,
                 ctx) -> AttackReport:
        """Run one round of search from ``current`` over ``state``."""
        ...


@dataclass
class AttackContext:
    """Everything the driver threads through the components.

    ``rng`` is the single shared generator — samplers consume it before
    the feedback model each round, exactly like the legacy attacks, so
    compositions reproduce their monolithic counterparts bit-for-bit.
    """

    config: object
    rng: np.random.Generator
    service: object = None
    surrogate: object = None
    target: Video | None = None
    round: int = 0
    rounds: int = 1
    checkpoint_path: str | None = None
    #: Queries the current round may still spend (``None`` = unlimited);
    #: feedback models trim their iteration counts to stay under it.
    max_queries: int | None = None


__all__ = [
    "AttackContext",
    "BasisState",
    "FeedbackModel",
    "PerturbationBasis",
    "SupportPlan",
    "SupportSampler",
]
