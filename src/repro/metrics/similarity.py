"""NDCG-style retrieval-list similarity ``H`` (paper Eq. 2 ingredient).

``H(R^m(v), R^m(v'))`` captures "the co-occurrence probability that a
returned video shows up in both lists", discounting co-occurrences by
their rank in the first list, as in the QAIR attack objective [10].
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ndcg_similarity(list_a: Sequence[str], list_b: Sequence[str]) -> float:
    """Rank-discounted overlap between two id lists, in ``[0, 1]``.

    A video at rank ``i`` in ``list_a`` and rank ``j`` in ``list_b``
    contributes ``1 / (log2(i+1) · log2(j+1))``; the total is normalized
    by the ideal (identical lists), so identical lists score 1 and
    disjoint lists 0.  Discounting by *both* ranks makes the similarity
    sensitive to rank swaps, not just membership — the fine-grained signal
    the query attack climbs.
    """
    ids_a = list(list_a)
    ids_b = list(list_b)
    if not ids_a or not ids_b:
        return 0.0
    rank_b = {video_id: j for j, video_id in enumerate(ids_b, start=1)}
    gains = 0.0
    ideal = 0.0
    for rank, video_id in enumerate(ids_a, start=1):
        discount = 1.0 / np.log2(rank + 1.0)
        ideal += discount * discount
        j = rank_b.get(video_id)
        if j is not None:
            gains += discount / np.log2(j + 1.0)
    return float(gains / ideal)


def ndcg_similarity_many(lists_a: Sequence[Sequence[str]],
                         list_b: Sequence[str]) -> list[float]:
    """:func:`ndcg_similarity` of each list against a fixed ``list_b``.

    Hoists the ``list_b`` rank map and the per-rank discount values out of
    the per-list loop; each list's accumulation runs in the same order
    with the same operations as the scalar function, so the returned
    floats are bit-identical to per-list :func:`ndcg_similarity` calls
    (batched attack objectives rely on this).
    """
    ids_b = list(list_b)
    if not ids_b:
        return [0.0 for _ in lists_a]
    log_b = {video_id: float(np.log2(j + 1.0))
             for j, video_id in enumerate(ids_b, start=1)}
    discounts: list[float] = []
    out: list[float] = []
    for list_a in lists_a:
        ids_a = list(list_a)
        if not ids_a:
            out.append(0.0)
            continue
        while len(discounts) < len(ids_a):
            discounts.append(1.0 / np.log2(len(discounts) + 2.0))
        gains = 0.0
        ideal = 0.0
        for rank, video_id in enumerate(ids_a):
            discount = discounts[rank]
            ideal += discount * discount
            denom = log_b.get(video_id)
            if denom is not None:
                gains += discount / denom
        out.append(float(gains / ideal))
    return out
