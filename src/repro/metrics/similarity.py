"""NDCG-style retrieval-list similarity ``H`` (paper Eq. 2 ingredient).

``H(R^m(v), R^m(v'))`` captures "the co-occurrence probability that a
returned video shows up in both lists", discounting co-occurrences by
their rank in the first list, as in the QAIR attack objective [10].
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ndcg_similarity(list_a: Sequence[str], list_b: Sequence[str]) -> float:
    """Rank-discounted overlap between two id lists, in ``[0, 1]``.

    A video at rank ``i`` in ``list_a`` and rank ``j`` in ``list_b``
    contributes ``1 / (log2(i+1) · log2(j+1))``; the total is normalized
    by the ideal (identical lists), so identical lists score 1 and
    disjoint lists 0.  Discounting by *both* ranks makes the similarity
    sensitive to rank swaps, not just membership — the fine-grained signal
    the query attack climbs.
    """
    ids_a = list(list_a)
    ids_b = list(list_b)
    if not ids_a or not ids_b:
        return 0.0
    rank_b = {video_id: j for j, video_id in enumerate(ids_b, start=1)}
    gains = 0.0
    ideal = 0.0
    for rank, video_id in enumerate(ids_a, start=1):
        discount = 1.0 / np.log2(rank + 1.0)
        ideal += discount * discount
        j = rank_b.get(video_id)
        if j is not None:
            gains += discount / np.log2(j + 1.0)
    return float(gains / ideal)
