"""Ranking metrics: mAP for retrieval quality, AP@m for list agreement."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def average_precision(relevance: Sequence[bool]) -> float:
    """Paper's per-query AP: ``(1/N) Σ_i ctop(i)/i`` over the result list.

    ``relevance[i]`` says whether the ``i``-th returned video (0-indexed)
    is correct; ``N`` is the list length.
    """
    relevance = np.asarray(relevance, dtype=bool)
    if relevance.size == 0:
        return 0.0
    correct_cumulative = np.cumsum(relevance)
    ranks = np.arange(1, relevance.size + 1)
    return float((correct_cumulative / ranks).mean())


def mean_average_precision(relevances: Sequence[Sequence[bool]]) -> float:
    """Mean of :func:`average_precision` over queries."""
    if not relevances:
        return 0.0
    return float(np.mean([average_precision(r) for r in relevances]))


def evaluate_map(engine, queries, m: int = 10) -> float:
    """mAP of a retrieval engine over query videos (label = correctness).

    A returned gallery video counts as correct when it shares the query's
    label — the standard protocol for category-level video retrieval.
    """
    relevances = []
    for video in queries:
        result = engine.retrieve(video, m)
        relevances.append([entry.label == video.label for entry in result])
    return mean_average_precision(relevances)


def ap_at_m(list_a: Sequence[str], list_b: Sequence[str]) -> float:
    """Paper's AP@m between two retrieval lists (by video id).

    ``prec_i = |top-i(a) ∩ top-i(b)| / i`` and ``AP@m = Σ_i prec_i / m``.
    Lists are truncated to the shorter length.
    """
    ids_a = list(list_a)
    ids_b = list(list_b)
    m = min(len(ids_a), len(ids_b))
    if m == 0:
        return 0.0
    precisions = []
    seen_a: set[str] = set()
    seen_b: set[str] = set()
    for i in range(1, m + 1):
        seen_a.add(ids_a[i - 1])
        seen_b.add(ids_b[i - 1])
        precisions.append(len(seen_a & seen_b) / i)
    return float(np.mean(precisions))
