"""Evaluation metrics from the paper (Section V-A) plus attack internals.

* :func:`mean_average_precision` / :func:`average_precision` — retrieval
  quality of a victim system (paper's mAP).
* :func:`ap_at_m` — list agreement between ``R^m(v_adv)`` and ``R^m(v_t)``
  (paper's AP@m).
* :func:`sparsity` (Spa) and :func:`pscore` — perturbation stealthiness.
* :func:`ndcg_similarity` — the probability-style co-occurrence similarity
  ``H`` used inside the SparseQuery objective (Eq. 2).
"""

from repro.metrics.ranking import (
    average_precision,
    mean_average_precision,
    ap_at_m,
    evaluate_map,
)
from repro.metrics.perturbation import (
    sparsity,
    pscore,
    perturbed_frames,
    linf_norm,
    perturbation_summary,
    PerturbationStats,
)
from repro.metrics.similarity import ndcg_similarity

__all__ = [
    "average_precision",
    "mean_average_precision",
    "ap_at_m",
    "evaluate_map",
    "sparsity",
    "pscore",
    "perturbed_frames",
    "linf_norm",
    "perturbation_summary",
    "PerturbationStats",
    "ndcg_similarity",
]
