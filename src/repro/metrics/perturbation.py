"""Perturbation stealthiness metrics: Spa, PScore, ℓ∞, frame count."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Values below this magnitude count as "unperturbed" — absorbs float fuzz
#: from clipping at the [0, 1] boundary.
ZERO_TOLERANCE = 1e-9


def sparsity(perturbation: np.ndarray, tolerance: float = ZERO_TOLERANCE) -> int:
    """Spa: number of non-zero perturbation values ``Σ_i ‖φ_i‖₀``.

    Matches the paper's accounting where a fully dense attack on a
    16×112×112×3 video reports Spa = 602,112.
    """
    return int(np.count_nonzero(np.abs(perturbation) > tolerance))


def pscore(perturbation: np.ndarray, scale: float = 255.0) -> float:
    """PScore: mean absolute perturbation, reported in 8-bit units.

    The paper's videos live in [0, 255]; ours live in [0, 1], so the
    default ``scale=255`` makes the numbers comparable to Table II.
    """
    return float(np.abs(perturbation).mean() * scale)


def perturbed_frames(perturbation: np.ndarray,
                     tolerance: float = ZERO_TOLERANCE) -> int:
    """``‖φ‖_{2,0}``: number of frames carrying any perturbation."""
    if perturbation.ndim != 4:
        raise ValueError(f"expected (N, H, W, C) perturbation, got {perturbation.shape}")
    frame_energy = np.abs(perturbation).reshape(perturbation.shape[0], -1).max(axis=1)
    return int(np.count_nonzero(frame_energy > tolerance))


def linf_norm(perturbation: np.ndarray) -> float:
    """``‖φ‖_∞``: largest absolute per-value perturbation."""
    return float(np.abs(perturbation).max()) if perturbation.size else 0.0


@dataclass(frozen=True)
class PerturbationStats:
    """Bundle of all stealthiness numbers for one adversarial example."""

    spa: int
    pscore: float
    frames: int
    linf: float


def perturbation_summary(perturbation: np.ndarray,
                         scale: float = 255.0) -> PerturbationStats:
    """Compute every stealthiness metric at once."""
    return PerturbationStats(
        spa=sparsity(perturbation),
        pscore=pscore(perturbation, scale=scale),
        frames=perturbed_frames(perturbation),
        linf=linf_norm(perturbation),
    )
