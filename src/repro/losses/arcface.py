"""ArcFace: additive angular margin loss (Deng et al., CVPR'19)."""

from __future__ import annotations

import numpy as np

from repro.nn import Module, Tensor
from repro.nn import functional as F
from repro.nn.modules import Parameter
from repro.nn import init
from repro.utils.seeding import seeded_rng


class ArcFaceLoss(Module):
    """Classification-style metric loss with an additive angular margin.

    Holds one learnable prototype per class; embeddings and prototypes are
    ℓ2-normalized, the target logit's angle is increased by ``margin``,
    and all logits are scaled by ``scale`` before softmax cross-entropy.
    """

    def __init__(self, num_classes: int, feature_dim: int, margin: float = 0.3,
                 scale: float = 16.0, rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.num_classes = int(num_classes)
        self.feature_dim = int(feature_dim)
        self.margin = float(margin)
        self.scale = float(scale)
        self.prototypes = Parameter(
            init.xavier_uniform((num_classes, feature_dim), feature_dim,
                                num_classes, rng=rng)
        )

    def forward(self, embeddings: Tensor, labels: np.ndarray) -> Tensor:
        """Loss over a batch of ``(B, D)`` embeddings and integer labels."""
        labels = np.asarray(labels)
        normalized_emb = F.l2_normalize(embeddings, axis=1)
        normalized_proto = F.l2_normalize(self.prototypes, axis=1)
        cosine = normalized_emb @ normalized_proto.transpose(1, 0)  # (B, K)
        cosine = cosine.clip(-1.0 + 1e-7, 1.0 - 1e-7)

        # Add the angular margin only on the target logit:
        # cos(θ + m) = cosθ·cos m − sinθ·sin m.
        sine = (1.0 - cosine * cosine).clip(1e-12, None).sqrt()
        cos_margined = cosine * np.cos(self.margin) - sine * np.sin(self.margin)
        one_hot = np.zeros(cosine.shape)
        one_hot[np.arange(len(labels)), labels] = 1.0
        mask = Tensor(one_hot)
        logits = (mask * cos_margined + (1.0 - one_hot) * cosine) * self.scale
        return F.cross_entropy(logits, labels)
