"""Lifted structured embedding loss (Oh Song et al., CVPR'16)."""

from __future__ import annotations

import numpy as np

from repro.nn import Module, Tensor
from repro.nn import functional as F


class LiftedLoss(Module):
    """Smooth lifted-structure loss over all pairs in a batch.

    For every positive pair ``(i, j)`` the loss log-sum-exps the margins
    against *all* negatives of both endpoints:

    .. math::
       \\tfrac{1}{2|P|}\\sum_{(i,j)\\in P}
       \\big[\\log\\big(\\sum_{k\\in N_i} e^{m - D_{ik}}
       + \\sum_{k\\in N_j} e^{m - D_{jk}}\\big) + D_{ij}\\big]_+^2
    """

    def __init__(self, margin: float = 1.0) -> None:
        super().__init__()
        self.margin = float(margin)

    def forward(self, embeddings: Tensor, labels: np.ndarray) -> Tensor:
        labels = np.asarray(labels)
        batch = embeddings.shape[0]
        distances = F.pairwise_squared_distances(embeddings, embeddings)
        distances = (distances + 1e-12).sqrt()

        same = labels[:, None] == labels[None, :]
        positive_mask = same & ~np.eye(batch, dtype=bool)
        negative_mask = ~same

        pos_pairs = [(i, j) for i in range(batch) for j in range(i + 1, batch)
                     if positive_mask[i, j]]
        if not pos_pairs or not negative_mask.any():
            return Tensor(np.zeros(()), requires_grad=False)

        # Negative log-sum-exp terms per anchor, computed once.
        neg_terms: dict[int, Tensor] = {}
        for i in {idx for pair in pos_pairs for idx in pair}:
            columns = np.flatnonzero(negative_mask[i])
            if columns.size == 0:
                continue
            exp_margins = (self.margin - distances[i, columns]).exp()
            neg_terms[i] = exp_margins.sum()

        losses = []
        for i, j in pos_pairs:
            terms = []
            if i in neg_terms:
                terms.append(neg_terms[i])
            if j in neg_terms:
                terms.append(neg_terms[j])
            if not terms:
                continue
            total = terms[0]
            if len(terms) == 2:
                total = total + terms[1]
            hinge = ((total + 1e-12).log() + distances[i, j]).clip(0.0, None)
            losses.append(hinge * hinge)
        if not losses:
            return Tensor(np.zeros(()), requires_grad=False)
        acc = losses[0]
        for item in losses[1:]:
            acc = acc + item
        return acc / float(2 * len(losses))
