"""Triplet losses.

Two flavours are provided:

* :func:`triplet_margin_loss` — classic (anchor, positive, negative)
  margin loss on embeddings.
* :class:`RankedListTripletLoss` — the paper's surrogate-training loss
  (Section IV-B-1):

  .. math::
     \\sum_{j>i} [D(v, v_j) - D(v, v_i) + \\gamma]_+

  where ``v_i`` precedes ``v_j`` in a stolen retrieval list, so the
  surrogate learns to reproduce the victim's ranking geometry.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def triplet_margin_loss(anchor: Tensor, positive: Tensor, negative: Tensor,
                        margin: float = 0.2) -> Tensor:
    """Hinge on squared distances: ``[D(a,p) − D(a,n) + margin]_+`` averaged."""
    d_pos = ((anchor - positive) ** 2).sum(axis=1)
    d_neg = ((anchor - negative) ** 2).sum(axis=1)
    return (d_pos - d_neg + margin).clip(0.0, None).mean()


class RankedListTripletLoss:
    """Paper Eq. (surrogate): push ranked lists into distance order.

    Given the embedding of a query and the embeddings of its returned list
    (victim order, most similar first), penalizes every pair ``(i, j)``
    with ``i < j`` whose distances violate the order by margin ``γ``.
    """

    def __init__(self, margin: float = 0.2) -> None:
        self.margin = float(margin)

    def __call__(self, query_embedding: Tensor, list_embeddings: Tensor) -> Tensor:
        """Compute the loss.

        Parameters
        ----------
        query_embedding:
            ``(D,)`` or ``(1, D)`` embedding of the query video ``v``.
        list_embeddings:
            ``(m, D)`` embeddings of the returned videos, best first.
        """
        if query_embedding.ndim == 1:
            query_embedding = query_embedding.reshape(1, -1)
        diffs = list_embeddings - query_embedding
        distances = (diffs * diffs).sum(axis=1)  # (m,)
        m = distances.shape[0]
        if m < 2:
            return Tensor(np.zeros(()), requires_grad=False)
        terms = []
        for i in range(m - 1):
            # D(v, v_j) should exceed D(v, v_i) for all j > i.
            violation = distances[i] - distances[i + 1 :] + self.margin
            terms.append(violation.clip(0.0, None).sum())
        total = terms[0]
        for term in terms[1:]:
            total = total + term
        return total / float(m * (m - 1) / 2)
