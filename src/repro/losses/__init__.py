"""Metric-learning losses used to train victim and surrogate models.

The paper trains victim retrieval models with ArcFaceLoss [50],
LiftedLoss [51], or AngularLoss [52], and trains the surrogate with a
ranked triplet loss over stolen retrieval lists (Section IV-B-1).
"""

from repro.losses.triplet import RankedListTripletLoss, triplet_margin_loss
from repro.losses.arcface import ArcFaceLoss
from repro.losses.lifted import LiftedLoss
from repro.losses.angular import AngularLoss
from repro.losses.registry import create_loss, METRIC_LOSSES

__all__ = [
    "RankedListTripletLoss",
    "triplet_margin_loss",
    "ArcFaceLoss",
    "LiftedLoss",
    "AngularLoss",
    "create_loss",
    "METRIC_LOSSES",
]
