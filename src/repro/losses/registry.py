"""Loss registry mirroring the paper's victim-training options."""

from __future__ import annotations

from repro.losses.angular import AngularLoss
from repro.losses.arcface import ArcFaceLoss
from repro.losses.lifted import LiftedLoss

#: Loss names as used in the paper's tables.
METRIC_LOSSES = ("arcface", "lifted", "angular")


def create_loss(name: str, num_classes: int, feature_dim: int, rng=None):
    """Instantiate a metric loss by paper name.

    ArcFace carries learnable per-class prototypes and therefore needs
    ``num_classes``/``feature_dim``; pair-based losses ignore them.
    """
    key = name.lower().replace("loss", "")
    if key == "arcface":
        return ArcFaceLoss(num_classes, feature_dim, rng=rng)
    if key == "lifted":
        return LiftedLoss()
    if key == "angular":
        return AngularLoss()
    raise KeyError(f"unknown loss {name!r}; available: {METRIC_LOSSES}")
