"""Angular loss for deep metric learning (Wang et al. / tuplet-margin family)."""

from __future__ import annotations

import numpy as np

from repro.nn import Module, Tensor, stack
from repro.nn import functional as F


class AngularLoss(Module):
    """N-pair-style angular loss with degree bound ``alpha``.

    For each (anchor, positive) pair and every negative ``n`` of the
    anchor class:

    .. math::
       f = 4\\tan^2\\alpha\\,(a + p)^\\top n - 2(1 + \\tan^2\\alpha)\\,a^\\top p

    and the loss is ``mean log(1 + Σ_n e^f)`` over pairs.
    """

    def __init__(self, alpha_degrees: float = 40.0) -> None:
        super().__init__()
        self.alpha = float(np.deg2rad(alpha_degrees))
        self._tan_sq = float(np.tan(self.alpha) ** 2)

    def forward(self, embeddings: Tensor, labels: np.ndarray) -> Tensor:
        labels = np.asarray(labels)
        batch = embeddings.shape[0]
        normalized = F.l2_normalize(embeddings, axis=1)

        same = labels[:, None] == labels[None, :]
        positive_mask = same & ~np.eye(batch, dtype=bool)

        losses = []
        for i in range(batch):
            positives = np.flatnonzero(positive_mask[i])
            negatives = np.flatnonzero(~same[i])
            if positives.size == 0 or negatives.size == 0:
                continue
            j = int(positives[0])
            anchor = normalized[i]
            positive = normalized[j]
            neg = normalized[negatives]  # (n, D)
            ap_term = (anchor * positive).sum() * (2.0 * (1.0 + self._tan_sq))
            an_term = (neg @ (anchor + positive)) * (4.0 * self._tan_sq)
            f = an_term - ap_term
            # Stable log(1 + Σ e^f) via shift by the max exponent.
            shift = float(max(np.max(f.data), 0.0))
            shifted_sum = (f - shift).exp().sum() + float(np.exp(-shift))
            losses.append(shifted_sum.log() + shift)
        if not losses:
            return Tensor(np.zeros(()), requires_grad=False)
        return stack(losses).mean()
