"""Performance fast paths for the attack/retrieval hot loop.

Three independent optimisations, all behaviour-preserving:

* :mod:`repro.perf.gemm_conv` — im2col + GEMM kernels for conv2d/conv3d
  forward and backward with a per-shape plan cache and reusable scratch
  buffers.  Auto-selected over the strided-``einsum`` path by problem
  size; force with ``REPRO_CONV_IMPL=gemm|einsum|auto`` or
  :func:`set_conv_impl`.
* :mod:`repro.perf.cache` — content-hash LRU cache for query embeddings
  (:class:`EmbeddingCache`), used by the retrieval engine so repeated
  queries of unchanged videos skip the model forward entirely.
* Batched candidate evaluation lives where the data lives
  (``RetrievalObjective.values``, ``ShardedGallery.search_batch``); this
  package only hosts the compute kernels those paths share.

Importing this package registers the GEMM conv implementations with the
``repro.nn`` op-dispatch table (:func:`repro.nn.tensor.register_op_impl`),
which is how ``repro.nn.functional`` finds them without a hard dependency.
"""

from repro.perf.cache import EmbeddingCache
from repro.perf.gemm_conv import (
    clear_plan_cache,
    conv_impl,
    plan_cache_cap,
    plan_cache_info,
    set_conv_impl,
    should_use_gemm,
)

# Register the GEMM kernels as alternative conv implementations.  The
# import is one-way (perf → nn), so ``repro.nn`` never depends on this
# package; ``repro.nn.functional`` looks the kernels up lazily.
from repro.nn.tensor import register_op_impl as _register_op_impl
from repro.perf import gemm_conv as _gemm_conv

_register_op_impl("conv2d.gemm", _gemm_conv)
_register_op_impl("conv3d.gemm", _gemm_conv)

__all__ = [
    "EmbeddingCache",
    "clear_plan_cache",
    "conv_impl",
    "plan_cache_cap",
    "plan_cache_info",
    "set_conv_impl",
    "should_use_gemm",
]
