"""im2col + GEMM convolution kernels with a per-shape plan cache.

The seed implementation of ``conv2d``/``conv3d`` contracts a strided
``sliding_window_view`` with ``einsum``.  That avoids materialising the
im2col matrix but leaves BLAS unable to see a single large GEMM, and the
einsum path re-plans its contraction on every call.

These kernels materialise im2col in the layout ``(B, C, *K, *P)`` —
channels × kernel offsets × output positions — filled by one strided
*slab copy per kernel offset* (no element gathers: every copy's inner
run is a contiguous output row), then reduce forward and both gradients
to plain BLAS calls:

* forward:   ``out[b] = W₂ @ cols[b]``            (``W₂`` is ``(F, C·K)``)
* grad_w:    ``gW = Σ_b grad[b] @ cols[b].T``     (one ``tensordot``)
* grad_x:    ``gcols[b] = W₂.T @ grad[b]`` then the inverse slab scatter

Because the output positions are the trailing axis, the forward result
reshapes straight into ``(B, F, *out_spatial)`` with no transpose.

A :class:`ConvPlan` per ``(shape, stride, padding)`` caches the derived
geometry and owns a reusable scratch buffer for ``cols``; the buffer is
only handed out on inference calls (no autograd recording), because the
backward closure of a recorded op must keep its own ``cols`` alive.

All kernels operate on plain ``numpy`` arrays — autograd wiring stays in
``repro.nn.functional``.  Outputs and gradients match the einsum path
within ``allclose`` (same dtype, different summation order).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.obs import counter
from repro.utils.envflags import env_choice, env_int

_IMPL_CHOICES = ("auto", "gemm", "einsum")

#: ``auto`` switches to GEMM once the im2col matrix has at least this many
#: elements (``B · C · kernel_elems · out_positions``).  Measured speedups
#: are 2–3× at the model shapes used here and taper to parity around 10⁶
#: elements; only degenerate micro-convs stay on einsum.  Calibrated with
#: ``benchmarks/bench_perf_hotpath.py``.
GEMM_AUTO_THRESHOLD = 1 << 10

_forced_impl: str | None = None


def set_conv_impl(impl: str | None) -> None:
    """Force the conv implementation (``None`` returns to env/auto)."""
    if impl is not None and impl not in _IMPL_CHOICES:
        raise ValueError(
            f"unknown conv impl {impl!r}; choose from {_IMPL_CHOICES}")
    global _forced_impl
    _forced_impl = impl


def conv_impl() -> str:
    """Active implementation policy: forced > ``REPRO_CONV_IMPL`` > auto."""
    if _forced_impl is not None:
        return _forced_impl
    return env_choice("REPRO_CONV_IMPL", _IMPL_CHOICES, "auto")


def conv_size_key(gemm_elems: int) -> str:
    """Router cost-table key: log2 bucket of the im2col element count."""
    return f"e{max(int(gemm_elems), 1).bit_length()}"


def should_use_gemm(gemm_elems: int) -> bool:
    """Decide the fast path for an im2col matrix of ``gemm_elems`` elements.

    A forced/env impl always wins; under ``auto`` the active router may
    override the static size threshold with a measured per-size-bucket
    decision (cold start falls back to the threshold).  Both paths are
    equivalence-pinned by the ``conv*.einsum_vs_gemm`` oracles, so this
    is a pure latency choice.
    """
    impl = conv_impl()
    if impl == "gemm":
        return True
    if impl == "einsum":
        return False
    default = "gemm" if gemm_elems >= GEMM_AUTO_THRESHOLD else "einsum"
    from repro.router import active_router

    return active_router().decide(
        "conv", conv_size_key(gemm_elems), ("einsum", "gemm"),
        default) == "gemm"


def _kernel_offsets(kernel: tuple[int, ...]):
    """All kernel-offset index tuples, row-major (matches reshape order)."""
    return np.ndindex(*kernel)


def _slab(out_spatial, stride, offset):
    """Strided slices picking one kernel offset's input slab."""
    return tuple(
        slice(off, off + size * step, step)
        for off, size, step in zip(offset, out_spatial, stride)
    )


# ---------------------------------------------------------------------- #
# Plan cache
# ---------------------------------------------------------------------- #
class ConvPlan:
    """Cached geometry + scratch buffer for one conv problem shape."""

    __slots__ = ("x_shape", "w_shape", "stride", "padding", "out_spatial",
                 "cols_shape", "gemm_elems", "positions", "kernel_elems",
                 "padded_shape", "view_strides", "core_slices", "hits",
                 "_tls", "scratch_bytes")

    def __init__(self, x_shape, w_shape, stride, padding) -> None:
        self.x_shape = x_shape
        self.w_shape = w_shape
        self.stride = stride
        self.padding = padding
        spatial = x_shape[2:]
        kernel = w_shape[2:]
        self.out_spatial = tuple(
            (size + 2 * pad - k) // step + 1
            for size, pad, k, step in zip(spatial, padding, kernel, stride)
        )
        batch, in_ch = x_shape[0], x_shape[1]
        # cols layout: (B, C, *kernel, *out_spatial) → (B, C·K, P) for GEMM.
        self.cols_shape = (batch, in_ch, *kernel, *self.out_spatial)
        self.gemm_elems = int(np.prod(self.cols_shape))
        self.positions = int(np.prod(self.out_spatial))
        self.kernel_elems = int(np.prod(kernel))
        self.padded_shape = (batch, in_ch,
                             *(s + 2 * p for s, p in zip(spatial, padding)))
        # Element strides of the im2col window view over the (C-contiguous)
        # padded input, kernel axes ahead of position axes — so the fill is
        # a single as_strided + copyto with no per-call view construction.
        elem_strides = [1]
        for size in reversed(self.padded_shape[1:]):
            elem_strides.append(elem_strides[-1] * size)
        elem_strides.reverse()
        spatial_strides = elem_strides[2:]
        self.view_strides = tuple(elem_strides[:2]) + tuple(spatial_strides) \
            + tuple(s * step for s, step in zip(spatial_strides, stride))
        self.core_slices = (slice(None), slice(None)) + tuple(
            slice(p, p + s) for p, s in zip(padding, spatial))
        self.hits = 0
        # Scratch is per *thread*: the serving worker pool (and the
        # churn stress harness) run inference convs of the same shape
        # concurrently, and a plan-wide buffer would let one thread's
        # im2col fill tear another's mid-GEMM.
        self._tls = threading.local()
        self.scratch_bytes = 0

    def cols_buffer(self, reuse: bool) -> np.ndarray:
        """A ``cols`` buffer; the cached scratch only on inference calls."""
        if not reuse:
            return np.empty(self.cols_shape)
        scratch = getattr(self._tls, "cols", None)
        if scratch is None:
            scratch = np.empty(self.cols_shape)
            self._tls.cols = scratch
            self.scratch_bytes += scratch.nbytes
        return scratch

    def padded_buffer(self) -> np.ndarray:
        """Reusable zero-padded input buffer (inference calls only).

        The border is zeroed once at allocation; every call overwrites the
        full core, so the zeros never need refreshing.
        """
        scratch = getattr(self._tls, "padded", None)
        if scratch is None:
            scratch = np.zeros(self.padded_shape)
            self._tls.padded = scratch
            self.scratch_bytes += scratch.nbytes
        return scratch


#: Default LRU bound shared by this plan cache and the jit trace cache;
#: override with ``REPRO_PLAN_CACHE_CAP`` for shape-diverse workloads.
_MAX_PLANS = 64
_plans: OrderedDict[tuple, ConvPlan] = OrderedDict()
_plan_misses = 0


def plan_cache_cap() -> int:
    """The LRU bound for per-shape caches (plans and jit traces)."""
    return env_int("REPRO_PLAN_CACHE_CAP", _MAX_PLANS, minimum=1)


def get_plan(x_shape, w_shape, stride, padding) -> ConvPlan:
    """Fetch (or build) the plan for one problem shape, LRU-bounded."""
    global _plan_misses
    key = (x_shape, w_shape, stride, padding)
    plan = _plans.get(key)
    if plan is None:
        plan = ConvPlan(x_shape, w_shape, stride, padding)
        _plans[key] = plan
        _plan_misses += 1
        cap = plan_cache_cap()
        while len(_plans) > cap:
            _plans.popitem(last=False)
            counter("perf.plan_cache.evictions").inc()
    else:
        plan.hits += 1
        _plans.move_to_end(key)
    return plan


def plan_cache_info() -> dict:
    """Plan-cache statistics (size, cap, hits, misses, scratch bytes)."""
    return {
        "size": len(_plans),
        "cap": plan_cache_cap(),
        "hits": sum(plan.hits for plan in _plans.values()),
        "misses": _plan_misses,
        "scratch_bytes": sum(plan.scratch_bytes for plan in _plans.values()),
    }


def clear_plan_cache() -> None:
    """Drop all cached plans and scratch buffers."""
    global _plan_misses
    _plans.clear()
    _plan_misses = 0


# ---------------------------------------------------------------------- #
# Shared N-D kernels (2-D and 3-D differ only in rank)
# ---------------------------------------------------------------------- #
def _zero_pad(x: np.ndarray, padding) -> np.ndarray:
    """Symmetric spatial zero padding (``np.pad`` minus its call overhead)."""
    if not any(padding):
        return x
    padded = np.zeros(
        x.shape[:2] + tuple(s + 2 * p for s, p in zip(x.shape[2:], padding)),
        dtype=x.dtype,
    )
    core = tuple(slice(p, p + s) for p, s in zip(padding, x.shape[2:]))
    padded[(slice(None), slice(None), *core)] = x
    return padded


def _conv_forward(x: np.ndarray, weight: np.ndarray, stride, padding,
                  reuse_scratch: bool):
    plan = get_plan(x.shape, weight.shape, stride, padding)
    batch, in_ch = x.shape[0], x.shape[1]
    out_ch = weight.shape[0]

    if reuse_scratch and any(padding):
        padded = plan.padded_buffer()
        padded[plan.core_slices] = x
    else:
        padded = _zero_pad(x, padding)
        if not padded.flags.c_contiguous:  # padding (0, ...) returns x as-is
            padded = np.ascontiguousarray(padded)

    # im2col in one C-level copy: the plan pre-computes the strides of the
    # window view over the padded input (kernel axes ahead of position
    # axes, positions stepped by ``stride``), so the windowed-transposed
    # view is one ``as_strided`` and the fill is one ``copyto`` whose
    # inner runs are whole output rows (stride-1 contiguous).
    item = padded.itemsize
    windows = np.lib.stride_tricks.as_strided(
        padded, shape=plan.cols_shape,
        strides=tuple(s * item for s in plan.view_strides))
    cols = plan.cols_buffer(reuse_scratch)
    np.copyto(cols, windows)

    mat = cols.reshape(batch, in_ch * plan.kernel_elems, plan.positions)
    out = np.matmul(weight.reshape(out_ch, -1), mat)
    return out.reshape(batch, out_ch, *plan.out_spatial), mat, plan.padded_shape


def _conv_backward(grad: np.ndarray, cols: np.ndarray, weight: np.ndarray,
                   x_shape, padded_shape, stride, padding,
                   need_grad_x: bool, need_grad_w: bool):
    batch, in_ch = x_shape[0], x_shape[1]
    spatial = x_shape[2:]
    out_ch = weight.shape[0]
    kernel = weight.shape[2:]
    out_spatial = grad.shape[2:]
    positions = int(np.prod(out_spatial))

    grad_mat = grad.reshape(batch, out_ch, positions)
    grad_w = None
    if need_grad_w:
        grad_w = np.tensordot(grad_mat, cols,
                              axes=([0, 2], [0, 2])).reshape(weight.shape)
    grad_x = None
    if need_grad_x:
        gcols = np.matmul(weight.reshape(out_ch, -1).T, grad_mat)
        gcols = gcols.reshape(batch, in_ch, *kernel, *out_spatial)
        grad_padded = np.zeros(padded_shape)
        for offset in _kernel_offsets(kernel):
            grad_padded[(slice(None), slice(None),
                         *_slab(out_spatial, stride, offset))] += \
                gcols[(slice(None), slice(None), *offset)]
        crop = tuple(slice(p, p + size) for p, size in zip(padding, spatial))
        grad_x = grad_padded[(slice(None), slice(None), *crop)]
    return grad_x, grad_w


# ---------------------------------------------------------------------- #
# Rank-specific entry points (what ``repro.nn.functional`` dispatches to)
# ---------------------------------------------------------------------- #
def conv2d_forward(x: np.ndarray, weight: np.ndarray, stride, padding,
                   reuse_scratch: bool = False):
    """GEMM forward; returns ``(out, cols, padded_shape)``.

    ``cols`` is the ``(B, C·K, P)`` im2col matrix the backward pass needs
    for ``grad_w``; callers must not hold it past the op when
    ``reuse_scratch`` is set.
    """
    return _conv_forward(x, weight, stride, padding, reuse_scratch)


def conv2d_backward(grad, cols, weight, x_shape, padded_shape, stride,
                    padding, need_grad_x: bool, need_grad_w: bool):
    """GEMM backward; returns ``(grad_x, grad_w)`` (``None`` when unneeded)."""
    return _conv_backward(grad, cols, weight, x_shape, padded_shape,
                          stride, padding, need_grad_x, need_grad_w)


def conv3d_forward(x: np.ndarray, weight: np.ndarray, stride, padding,
                   reuse_scratch: bool = False):
    """GEMM forward over ``(T, H, W)``; returns ``(out, cols, padded_shape)``."""
    return _conv_forward(x, weight, stride, padding, reuse_scratch)


def conv3d_backward(grad, cols, weight, x_shape, padded_shape, stride,
                    padding, need_grad_x: bool, need_grad_w: bool):
    """GEMM backward for conv3d; returns ``(grad_x, grad_w)``."""
    return _conv_backward(grad, cols, weight, x_shape, padded_shape,
                          stride, padding, need_grad_x, need_grad_w)


# ---------------------------------------------------------------------- #
# Trace replay (repro.nn.jit)
# ---------------------------------------------------------------------- #
def bind_replay(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None,
                cols_mat: np.ndarray, out_nd: np.ndarray,
                stride, padding):
    """Pre-bind one traced GEMM conv into a replay thunk.

    Everything shape-dependent — the plan, the padded staging buffer, the
    ``as_strided`` window view, the reshaped GEMM operands — is resolved
    here, once; the returned zero-arg thunk recomputes ``out_nd`` (and
    ``cols_mat``, which grad-mode backward closures captured) in place
    from the *current* contents of ``x``.  Rank-agnostic: the same code
    serves conv2d and conv3d.
    """
    plan = get_plan(x.shape, weight.shape, stride, padding)
    w2 = weight.reshape(weight.shape[0], -1)
    if any(padding):
        base = np.zeros(plan.padded_shape, dtype=x.dtype)
        core = plan.core_slices
    elif x.flags.c_contiguous:
        base, core = x, None
    else:
        # Mirrors the eager path's ascontiguousarray staging copy.
        base = np.empty(x.shape, dtype=x.dtype)
        core = (slice(None),) * x.ndim
    item = base.itemsize
    windows = np.lib.stride_tricks.as_strided(
        base, shape=plan.cols_shape,
        strides=tuple(s * item for s in plan.view_strides))
    cols_nd = cols_mat.reshape(plan.cols_shape)
    out_mat = out_nd.reshape(out_nd.shape[0], out_nd.shape[1], plan.positions)
    bias_r = None if bias is None else \
        bias.reshape((1, -1) + (1,) * (out_nd.ndim - 2))

    def run():
        if core is not None:
            base[core] = x
        np.copyto(cols_nd, windows)
        np.matmul(w2, cols_mat, out=out_mat)
        if bias_r is not None:
            np.add(out_nd, bias_r, out=out_nd)

    return run
