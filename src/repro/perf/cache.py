"""Content-hash LRU cache for query embeddings.

Repeated queries of *unchanged* videos are common outside the inner
attack loop: defense sweeps re-query the same originals per defense,
metric recomputation re-embeds the winners, and ``run_all`` rebuilds the
same gallery per experiment.  Each of those pays a full model forward
for pixels the engine has already embedded.

:class:`EmbeddingCache` keys on a BLAKE2b digest of the raw pixel bytes
(plus shape), so any single-value perturbation — i.e. every candidate the
attacks generate — is a guaranteed miss and costs only the hash (~µs at
clip sizes used here, vs. ms for a forward).  Stored features are
private copies frozen with ``writeable=False`` and returned as-is, so
hits are bit-identical to the original forward and the caller's array is
never frozen or aliased in place.  Hit/miss/eviction counts are exported
through ``repro.obs`` under ``retrieval.embed_cache.*``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.obs import counter, gauge
from repro.utils.envflags import env_int

#: Default capacity; override per-engine or via ``REPRO_EMBED_CACHE``.
DEFAULT_CAPACITY = 256


def default_capacity() -> int:
    """Capacity from ``REPRO_EMBED_CACHE`` (``0`` disables caching)."""
    return env_int("REPRO_EMBED_CACHE", DEFAULT_CAPACITY, minimum=0)


def content_key(pixels: np.ndarray) -> bytes:
    """Digest of a pixel array's contents + geometry."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(pixels.shape).encode())
    digest.update(str(pixels.dtype).encode())
    digest.update(np.ascontiguousarray(pixels).tobytes())
    return digest.digest()


class EmbeddingCache:
    """Bounded LRU map from pixel-content digests to feature vectors.

    A ``capacity`` of 0 disables the cache (every lookup misses, nothing
    is stored), which keeps call sites branch-free.
    """

    def __init__(self, capacity: int | None = None,
                 metric_prefix: str = "retrieval.embed_cache") -> None:
        self.capacity = default_capacity() if capacity is None else int(capacity)
        if self.capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {self.capacity}")
        self.metric_prefix = metric_prefix
        self._entries: OrderedDict[bytes, np.ndarray] = OrderedDict()
        # Serializes the OrderedDict reorders; µs-scale next to the
        # hash + forward either side of it, and required once serving
        # workers embed concurrently.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: bytes) -> np.ndarray | None:
        """Look up a digest; counts a hit or miss either way."""
        # hits/misses live under the lock: pooled-worker runs increment
        # from several threads, and an unlocked read-modify-write loses
        # updates, so stats() could disagree with the obs counters (and
        # with the number of lookups actually made).
        with self._lock:
            entry = self._entries.get(key) if self.enabled else None
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is None:
            counter(f"{self.metric_prefix}.misses").inc()
            return None
        counter(f"{self.metric_prefix}.hits").inc()
        return entry

    def put(self, key: bytes, feature: np.ndarray) -> None:
        """Store a feature vector (frozen against mutation)."""
        if not self.enabled:
            return
        stored = np.asarray(feature)
        if np.shares_memory(stored, feature):
            # ``asarray`` returns the caller's array (or a view of it)
            # unchanged; freezing that in place would make the *caller's*
            # buffer read-only and leave the cache aliasing memory the
            # caller may still mutate.  Store a private copy instead.
            stored = stored.copy()
        stored.setflags(write=False)
        evicted = 0
        with self._lock:
            self._entries[key] = stored
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            size = len(self._entries)
        if evicted:
            counter(f"{self.metric_prefix}.evictions").inc(evicted)
        gauge(f"{self.metric_prefix}.size").set(size)

    def clear(self) -> None:
        """Drop every entry (e.g. after the extractor's weights change)."""
        with self._lock:
            self._entries.clear()
        gauge(f"{self.metric_prefix}.size").set(0)

    def stats(self) -> dict:
        """Hit/miss/eviction counts and current size (one atomic view)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
