"""Stateful query-pattern detection (Chen, Carlini & Wagner style [13]).

The paper's introduction notes that deployed systems "can detect certain
query accounts with 'adversarial behavior'": black-box attacks issue
long streams of *near-duplicate* queries while probing a perturbation.
:class:`StatefulQueryDetector` keeps a sliding window of recent query
fingerprints per account and flags an account once too many of its
queries fall within a small distance of an earlier one.

The fingerprint is a coarse perceptual hash (down-sampled pixel means),
so the detector needs no access to the model — it runs at the API edge.
"""

from __future__ import annotations

from collections import defaultdict, deque

import numpy as np

from repro.video.types import Video


def query_fingerprint(video: Video, grid: int = 4) -> np.ndarray:
    """Down-sampled perceptual fingerprint of a query video.

    Averages pixels over a ``grid × grid`` spatial mesh per frame and
    channel; near-duplicate queries map to nearby fingerprints while
    unrelated videos stay far apart.
    """
    frames, height, width, channels = video.pixels.shape
    row_edges = np.linspace(0, height, grid + 1, dtype=int)
    col_edges = np.linspace(0, width, grid + 1, dtype=int)
    cells = np.empty((frames, grid, grid, channels))
    for i in range(grid):
        for j in range(grid):
            block = video.pixels[:, row_edges[i]:row_edges[i + 1],
                                 col_edges[j]:col_edges[j + 1], :]
            cells[:, i, j, :] = block.mean(axis=(1, 2))
    return cells.reshape(-1)


class StatefulQueryDetector:
    """Sliding-window near-duplicate query detector per account.

    Parameters
    ----------
    window:
        Number of recent fingerprints remembered per account.
    distance_threshold:
        Mean-absolute-difference below which two queries count as
        near-duplicates (in [0,1] pixel units).
    flag_after:
        Number of near-duplicate hits before the account is flagged.
    """

    def __init__(self, window: int = 50, distance_threshold: float = 0.05,
                 flag_after: int = 10) -> None:
        if window < 1 or flag_after < 1:
            raise ValueError("window and flag_after must be positive")
        self.window = int(window)
        self.distance_threshold = float(distance_threshold)
        self.flag_after = int(flag_after)
        self._history: dict[str, deque] = defaultdict(
            lambda: deque(maxlen=self.window))
        self._hits: dict[str, int] = defaultdict(int)
        self.flagged: set[str] = set()

    def observe(self, account: str, video: Video) -> bool:
        """Record one query; returns True when the account is now flagged."""
        fingerprint = query_fingerprint(video)
        history = self._history[account]
        for previous in history:
            distance = float(np.abs(fingerprint - previous).mean())
            if distance < self.distance_threshold:
                self._hits[account] += 1
                break
        history.append(fingerprint)
        if self._hits[account] >= self.flag_after:
            self.flagged.add(account)
        return account in self.flagged

    def is_flagged(self, account: str) -> bool:
        """Whether the account has been flagged so far."""
        return account in self.flagged

    def hit_count(self, account: str) -> int:
        """Near-duplicate hits recorded for an account."""
        return self._hits[account]

    def wrap_service(self, service, account: str):
        """Return a query function that feeds the detector transparently."""
        def query(video: Video, m: int | None = None):
            self.observe(account, video)
            return service.query(video, m)
        return query
