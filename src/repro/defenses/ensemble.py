"""Ensemble retrieval defense (the paper's §V-D proposal).

"Ensemble models built from multiple backbones would be more robust
against most AE attacks, DUO included."  :class:`EnsembleEngine` fuses
the similarity rankings of several independently trained victim engines
by reciprocal-rank fusion, so an AE must fool *every* backbone at once
to steer the fused list.
"""

from __future__ import annotations

from collections import defaultdict

from repro.retrieval.engine import RetrievalEngine
from repro.retrieval.lists import RetrievalEntry, RetrievalList
from repro.video.types import Video


class EnsembleEngine:
    """Rank-fusion front over several :class:`RetrievalEngine` members.

    Duck-type compatible with :class:`RetrievalEngine` for the purposes
    of :class:`~repro.retrieval.service.RetrievalService`, detectors, and
    the evaluation harness (exposes ``retrieve``/``gallery_size``).
    """

    def __init__(self, engines: list[RetrievalEngine],
                 fusion_constant: float = 10.0) -> None:
        if not engines:
            raise ValueError("ensemble needs at least one engine")
        self.engines = list(engines)
        self.fusion_constant = float(fusion_constant)

    @property
    def gallery_size(self) -> int:
        return self.engines[0].gallery_size

    def retrieve(self, video: Video, m: int) -> RetrievalList:
        """Reciprocal-rank-fusion of every member's top-``m`` list."""
        scores: dict[str, float] = defaultdict(float)
        labels: dict[str, int] = {}
        # Ask each member for a deeper list so fused tails are stable.
        depth = 2 * int(m)
        for engine in self.engines:
            result = engine.retrieve(video, depth)
            for rank, entry in enumerate(result, start=1):
                scores[entry.video_id] += 1.0 / (self.fusion_constant + rank)
                labels[entry.video_id] = entry.label
        ranked = sorted(scores.items(), key=lambda item: -item[1])[: int(m)]
        return RetrievalList(
            [RetrievalEntry(video_id, labels[video_id], score)
             for video_id, score in ranked]
        )
