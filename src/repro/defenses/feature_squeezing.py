"""Feature squeezing (Xu et al., NDSS'18) adapted to video queries.

Two squeezers from the original paper are composed: color bit-depth
reduction and local spatial smoothing (median filter).  The detection
harness compares the retrieval list of the raw query against the list of
the squeezed query; adversarial perturbations that live in the squeezed-
away precision change the list and get flagged.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.video.types import Video


class FeatureSqueezer:
    """Squeeze a video's color depth and spatial detail."""

    def __init__(self, bits: int = 4, median_size: int = 2) -> None:
        if not 1 <= bits <= 8:
            raise ValueError("bits must be in [1, 8]")
        self.bits = int(bits)
        self.median_size = int(median_size)

    def __call__(self, video: Video) -> Video:
        """Return the squeezed copy of ``video``."""
        levels = 2**self.bits - 1
        squeezed = np.round(video.pixels * levels) / levels
        if self.median_size > 1:
            squeezed = ndimage.median_filter(
                squeezed, size=(1, self.median_size, self.median_size, 1),
                mode="nearest",
            )
        return Video(squeezed, video.label, f"{video.video_id}#squeezed",
                     dict(video.metadata))
