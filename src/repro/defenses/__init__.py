"""Defenses evaluated in the paper (Section V-D).

* :class:`~repro.defenses.feature_squeezing.FeatureSqueezer` — input
  squeezing (bit-depth reduction + spatial smoothing) per Xu et al. [26].
* :class:`~repro.defenses.noise2self.Noise2SelfDenoiser` — J-invariant
  self-supervised denoising per Batson & Royer [27].
* :class:`~repro.defenses.detector.SqueezeDetector` — the standard
  detection harness: flag a query whose retrieval list changes too much
  under the transformation, with the threshold calibrated on clean
  queries.
"""

from repro.defenses.feature_squeezing import FeatureSqueezer
from repro.defenses.noise2self import Noise2SelfDenoiser
from repro.defenses.detector import SqueezeDetector, detection_rate
from repro.defenses.ensemble import EnsembleEngine
from repro.defenses.stateful import StatefulQueryDetector, query_fingerprint

__all__ = [
    "FeatureSqueezer",
    "Noise2SelfDenoiser",
    "SqueezeDetector",
    "detection_rate",
    "EnsembleEngine",
    "StatefulQueryDetector",
    "query_fingerprint",
]
