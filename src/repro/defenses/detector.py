"""Detection harness: flag queries whose lists are unstable under a transform.

Following the feature-squeezing detection recipe [26], a query is flagged
as adversarial when the retrieval list of the raw query and the list of
the transformed (squeezed / denoised) query disagree by more than a
threshold.  The threshold is calibrated to a false-positive budget on
clean queries.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.metrics.similarity import ndcg_similarity
from repro.retrieval.engine import RetrievalEngine
from repro.video.types import Video

Transform = Callable[[Video], Video]


class SqueezeDetector:
    """List-stability detector around a retrieval engine.

    Parameters
    ----------
    engine:
        Owner-side engine (the defense runs server side and may query the
        model freely).
    transform:
        The squeezing/denoising transform to compare against.
    m:
        List length used for the stability comparison.
    """

    def __init__(self, engine: RetrievalEngine, transform: Transform,
                 m: int = 10) -> None:
        self.engine = engine
        self.transform = transform
        self.m = int(m)
        self.threshold: float | None = None

    def score(self, video: Video) -> float:
        """Instability score in [0, 1]: 1 − similarity(raw list, squeezed list)."""
        raw_ids = self.engine.retrieve(video, self.m).ids
        squeezed_ids = self.engine.retrieve(self.transform(video), self.m).ids
        return 1.0 - ndcg_similarity(raw_ids, squeezed_ids)

    def fit(self, clean_videos: list[Video],
            false_positive_rate: float = 0.05) -> float:
        """Calibrate the threshold on clean queries; returns the threshold."""
        if not clean_videos:
            raise ValueError("need clean videos to calibrate the detector")
        scores = np.asarray([self.score(video) for video in clean_videos])
        quantile = 1.0 - float(false_positive_rate)
        self.threshold = float(np.quantile(scores, quantile))
        return self.threshold

    def detect(self, video: Video) -> bool:
        """Return True when the query is flagged as adversarial."""
        if self.threshold is None:
            raise RuntimeError("call fit() before detect()")
        return self.score(video) > self.threshold


def detection_rate(detector: SqueezeDetector,
                   adversarial_videos: list[Video]) -> float:
    """Fraction of adversarial examples the detector flags (Table X)."""
    if not adversarial_videos:
        return 0.0
    flagged = sum(detector.detect(video) for video in adversarial_videos)
    return flagged / len(adversarial_videos)
