"""Noise2Self-style J-invariant denoising (Batson & Royer, ICML'19).

The defense treats adversarial perturbations as noise and removes them
with a self-supervised, J-invariant denoiser: each pixel is re-predicted
from its spatial neighbourhood *excluding itself* (donut kernel), which
is the core J-invariance construction of Noise2Self.  No training is
needed for the linear instantiation used here.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.video.types import Video


class Noise2SelfDenoiser:
    """J-invariant denoiser: donut-kernel neighbourhood re-prediction.

    Parameters
    ----------
    radius:
        Neighbourhood radius; the kernel covers ``(2r+1)²`` pixels minus
        the centre.
    strength:
        Blend factor in [0, 1]: 1 replaces each pixel entirely by its
        J-invariant prediction, smaller values interpolate.
    """

    def __init__(self, radius: int = 1, strength: float = 1.0) -> None:
        if radius < 1:
            raise ValueError("radius must be >= 1")
        if not 0.0 <= strength <= 1.0:
            raise ValueError("strength must be in [0, 1]")
        self.radius = int(radius)
        self.strength = float(strength)
        size = 2 * self.radius + 1
        kernel = np.ones((size, size), dtype=np.float64)
        kernel[self.radius, self.radius] = 0.0  # J-invariance: exclude self
        self._kernel = (kernel / kernel.sum())[None, :, :, None]

    def __call__(self, video: Video) -> Video:
        """Return the denoised copy of ``video``."""
        predicted = ndimage.convolve(video.pixels, self._kernel, mode="nearest")
        mixed = (1.0 - self.strength) * video.pixels + self.strength * predicted
        return Video(np.clip(mixed, 0.0, 1.0), video.label,
                     f"{video.video_id}#denoised", dict(video.metadata))
