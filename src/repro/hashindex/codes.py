"""Binary code learning and the packed-word Hamming kernel.

Production deep-hash retrieval (HashNet, SAAT's Hamming-code regime)
stores every gallery item as an ``nbits``-bit sign code and ranks by
Hamming distance; this module provides the CPU building blocks for that
tier:

* :func:`pack_bits` / :func:`unpack_bits` — bit-matrix ↔ ``uint64``
  words, 64 bits per word, so a 128-bit code costs 16 bytes per row;
* :func:`hamming_distances` — chunked XOR + popcount over packed words,
  vectorized via :func:`numpy.bitwise_count` with a byte-lookup-table
  fallback for older numpy;
* :class:`RandomProjectionCoder` — sign-of-random-projection LSH, the
  classic data-oblivious baseline;
* :class:`ITQCoder` — an ITQ-lite learner: PCA to ``nbits`` directions
  followed by the iterative-quantization rotation (Gong et al.), which
  balances bit variance and markedly improves recall at equal bits.

Both coders are deterministic given an rng and are ``fit`` once on the
gallery matrix; queries are encoded with the frozen projection so query
and gallery codes live in the same Hamming space.
"""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import seeded_rng

#: Bits per packed word (``uint64``).
WORD_BITS = 64

#: Popcount of every byte value — the fallback kernel when numpy has no
#: native ``bitwise_count`` (added in numpy 2.0).
_BYTE_POPCOUNT = np.array([bin(value).count("1") for value in range(256)],
                          dtype=np.uint16)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def words_for_bits(nbits: int) -> int:
    """Packed ``uint64`` words needed for an ``nbits``-bit code."""
    return -(-int(nbits) // WORD_BITS)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(n, nbits)`` matrix into ``(n, words)`` uint64.

    Bit ``j`` of row ``i`` lands in word ``j // 64`` at position
    ``j % 64`` (little-endian within the word); trailing pad bits are
    zero on both sides of a comparison and therefore never contribute to
    a Hamming distance.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 2:
        raise ValueError(f"expected a (n, nbits) bit matrix, got {bits.shape}")
    count, nbits = bits.shape
    words = words_for_bits(nbits) if nbits else 0
    padded = np.zeros((count, words * WORD_BITS), dtype=bool)
    padded[:, :nbits] = bits
    # packbits is big-endian per byte; view as uint64 after a per-byte
    # little-endian pack so bit j sits at 1 << (j % 64).
    packed_bytes = np.packbits(padded.reshape(count, -1, 8)[:, :, ::-1],
                               axis=2).reshape(count, -1)
    return packed_bytes.view("<u8").reshape(count, words)


def unpack_bits(words: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(n, words)`` uint64 → bool bits."""
    words = np.ascontiguousarray(words, dtype="<u8")
    count = words.shape[0]
    as_bytes = words.reshape(count, -1).view(np.uint8)
    bits = np.unpackbits(as_bytes.reshape(count, -1, 1), axis=2,
                         bitorder="little").reshape(count, -1)
    return bits[:, :nbits].astype(bool)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array (native or table-driven)."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    as_bytes = words.view(np.uint8).reshape(*words.shape, 8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=-1).astype(np.uint64)


#: Element budget for one ``(chunk, n)`` per-word XOR temporary: 1 << 21
#: uint64 elements is 16 MiB, comfortably cache/RAM friendly even with
#: the popcount output alongside.
_XOR_CHUNK_ELEMS = 1 << 21


def hamming_distances(query_words: np.ndarray,
                      gallery_words: np.ndarray) -> np.ndarray:
    """``(B, n)`` Hamming distances between packed code matrices.

    The scan accumulates one code word at a time: each word costs a
    ``(chunk, n)`` XOR + popcount instead of materializing the full
    ``(B, n, words)`` cube and reducing over it, which roughly halves
    the memory traffic of the hot loop.  Queries are chunked so the
    per-word temporary stays bounded regardless of batch and gallery
    size.
    """
    query_words = np.atleast_2d(np.asarray(query_words, dtype=np.uint64))
    gallery_words = np.atleast_2d(np.asarray(gallery_words, dtype=np.uint64))
    batch, words = query_words.shape
    rows = gallery_words.shape[0]
    out = np.empty((batch, rows), dtype=np.int64)
    if rows == 0 or batch == 0:
        return out
    chunk = max(1, _XOR_CHUNK_ELEMS // max(1, rows))
    for start in range(0, batch, chunk):
        stop = min(start + chunk, batch)
        # words * 64 ≤ 65535 bits keeps the accumulator in uint16.
        acc = np.zeros((stop - start, rows), dtype=np.uint16)
        for word in range(words):
            acc += popcount(query_words[start:stop, word, None]
                            ^ gallery_words[None, :, word]).astype(
                np.uint16, copy=False)
        out[start:stop] = acc
    return out


def hamming_topk(query_words: np.ndarray, gallery_words: np.ndarray,
                 k: int) -> tuple[np.ndarray, np.ndarray]:
    """Row indexes and distances of the ``k`` nearest codes per query.

    Returns ``(indexes, distances)``, both ``(B, k)``, candidates in
    ascending-distance order (ties broken by row index via a stable
    sort, so results are deterministic and identical for a batch of one
    and a scalar call).
    """
    distances = hamming_distances(query_words, gallery_words)
    rows = distances.shape[1]
    k = min(int(k), rows)
    head = np.argpartition(distances, k - 1, axis=1)[:, :k]
    head.sort(axis=1)  # canonical candidate order before the value sort
    head_distances = np.take_along_axis(distances, head, axis=1)
    order = np.argsort(head_distances, axis=1, kind="stable")
    indexes = np.take_along_axis(head, order, axis=1)
    return indexes, np.take_along_axis(head_distances, order, axis=1)


# ---------------------------------------------------------------------- #
# Coders
# ---------------------------------------------------------------------- #
class RandomProjectionCoder:
    """Sign-of-random-projection LSH codes.

    ``fit`` centers the gallery and draws ``nbits`` Gaussian directions;
    ``encode`` thresholds the centered projection at zero.  Random
    hyperplanes preserve angles in expectation (classic SimHash), so
    Hamming distance tracks cosine/ℓ2 neighbourhoods well enough for a
    rerank stage to recover the exact ranking.
    """

    name = "lsh"

    def __init__(self, nbits: int = 128, rng=None) -> None:
        if nbits < 1:
            raise ValueError("nbits must be positive")
        self.nbits = int(nbits)
        self._rng = seeded_rng(rng)
        self._projection: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self._projection is not None

    def fit(self, matrix: np.ndarray) -> "RandomProjectionCoder":
        matrix = np.asarray(matrix, dtype=np.float64)
        self._mean = matrix.mean(axis=0)
        self._projection = self._rng.normal(
            size=(matrix.shape[1], self.nbits))
        return self

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """``(n, d)`` floats → ``(n, words)`` packed codes."""
        if not self.fitted:
            raise RuntimeError("coder must be fit before encoding")
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        bits = (matrix - self._mean) @ self._projection >= 0.0
        return pack_bits(bits)


class ITQCoder:
    """ITQ-lite: PCA projection + iterative quantization rotation.

    Alternates ``B = sign(V R)`` with the orthogonal Procrustes update
    ``R = S Ŝᵀ`` from the SVD of ``Bᵀ V`` for a few iterations — the
    core of Gong et al.'s ITQ without the bells (no per-bit scaling).
    When the gallery has fewer informative directions than ``nbits``,
    the projection is padded with random Gaussian directions so codes
    always carry ``nbits`` bits.
    """

    name = "itq"

    def __init__(self, nbits: int = 128, iterations: int = 12,
                 rng=None) -> None:
        if nbits < 1:
            raise ValueError("nbits must be positive")
        self.nbits = int(nbits)
        self.iterations = int(iterations)
        self._rng = seeded_rng(rng)
        self._projection: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self._projection is not None

    def fit(self, matrix: np.ndarray) -> "ITQCoder":
        matrix = np.asarray(matrix, dtype=np.float64)
        count, dim = matrix.shape
        self._mean = matrix.mean(axis=0)
        centered = matrix - self._mean
        # PCA directions (right singular vectors), padded with random
        # directions when rank < nbits.
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        keep = min(self.nbits, vt.shape[0])
        directions = vt[:keep].T  # (dim, keep)
        if keep < self.nbits:
            extra = self._rng.normal(size=(dim, self.nbits - keep))
            directions = np.concatenate([directions, extra], axis=1)
        projected = centered @ directions  # (n, nbits)
        # Iterative quantization: learn the rotation minimizing
        # ‖sign(VR) − VR‖².
        rotation = np.linalg.qr(
            self._rng.normal(size=(self.nbits, self.nbits)))[0]
        for _ in range(self.iterations):
            signs = np.where(projected @ rotation >= 0.0, 1.0, -1.0)
            u, _, vt_r = np.linalg.svd(signs.T @ projected,
                                       full_matrices=False)
            rotation = (u @ vt_r).T
        self._projection = directions @ rotation
        return self

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """``(n, d)`` floats → ``(n, words)`` packed codes."""
        if not self.fitted:
            raise RuntimeError("coder must be fit before encoding")
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        bits = (matrix - self._mean) @ self._projection >= 0.0
        return pack_bits(bits)


#: Coder registry keyed by name (the ``coder=`` knob on the index).
CODERS = {
    RandomProjectionCoder.name: RandomProjectionCoder,
    ITQCoder.name: ITQCoder,
}


def create_coder(name: str, nbits: int, rng=None):
    """Instantiate a registered coder by name."""
    key = str(name).lower()
    if key not in CODERS:
        raise KeyError(f"unknown coder {name!r}; available: {sorted(CODERS)}")
    return CODERS[key](nbits=nbits, rng=rng)


__all__ = [
    "WORD_BITS",
    "words_for_bits",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "hamming_distances",
    "hamming_topk",
    "RandomProjectionCoder",
    "ITQCoder",
    "CODERS",
    "create_coder",
]
