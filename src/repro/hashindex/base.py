"""Shared machinery of the compressed index tier.

Both compressed indexes (:class:`~repro.hashindex.binary.BinaryHashIndex`
and :class:`~repro.hashindex.ivfpq.IVFPQIndex`) follow the same
two-stage contract:

1. a **compressed scan** ranks the whole gallery cheaply and returns an
   over-fetched candidate set (``rerank`` rows per query, ≥ ``k``);
2. an **exact rerank** rescores exactly those candidates against the
   float features with the configured similarity, so the returned
   entries carry exact scores and the final ordering is differentially
   testable against :class:`~repro.retrieval.index.FeatureIndex`
   (``hashindex.compressed_vs_exact`` oracle, recall@k floor).

This base class owns row buffering (zip semantics, identical to
``FeatureIndex.add_batch``), lazy builds, the exact-feature payload
(optionally spilled to a :class:`~repro.hashindex.store.MemmapStore`),
the rerank stage, and the obs counters every compressed search reports:
``hashindex.candidates_scanned``, ``hashindex.rerank_depth``, and the
store's ``hashindex.bytes_mapped``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs import counter, histogram
from repro.retrieval.lists import RetrievalEntry
from repro.retrieval.similarity import SimilarityFn, negative_l2
from repro.hashindex.store import MemmapStore

#: Rerank depths observed per query, bucketed for the obs histogram.
RERANK_DEPTH_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096)


class CompressedIndex:
    """Base class: buffered rows + compressed scan + exact rerank.

    Parameters
    ----------
    similarity:
        Exact similarity used by the rerank stage (scores returned to
        callers are exact, never compressed approximations).
    rerank:
        Candidate depth the compressed scan over-fetches per query; the
        effective depth is ``min(len(index), max(k, rerank))``.
    store:
        Optional :class:`MemmapStore`; when set (or ``memmap=True``
        builds an owned temp store), codes and the exact float payload
        are memory-mapped instead of resident.
    """

    #: Metric label identifying the concrete tier in obs counters.
    tier = "compressed"

    def __init__(self, similarity: SimilarityFn = negative_l2,
                 rerank: int = 64, *,
                 store: MemmapStore | None = None,
                 memmap: bool = False) -> None:
        if rerank < 1:
            raise ValueError("rerank depth must be positive")
        self.similarity = similarity
        self.rerank = int(rerank)
        self.store = store if store is not None else (
            MemmapStore() if memmap else None)
        self._features: list[np.ndarray] = []
        self._ids: list[str] = []
        self._labels: list[int] = []
        self._exact: np.ndarray | None = None
        self._dirty = True

    # ------------------------------------------------------------------ #
    # Ingest (zip semantics, mirroring FeatureIndex)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ids)

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Buffer one row; the compressed payload rebuilds lazily."""
        feature = np.asarray(feature, dtype=np.float64).reshape(-1)
        if self._features and feature.shape != self._features[0].shape:
            raise ValueError(
                f"feature dim mismatch: {feature.shape} vs "
                f"{self._features[0].shape}")
        self._features.append(feature)
        self._ids.append(str(video_id))
        self._labels.append(int(label))
        self._dirty = True

    def add_batch(self, ids: Sequence[str], labels: Sequence[int],
                  features: np.ndarray) -> None:
        """Buffer many rows (row count is the min of the three lengths)."""
        count = min(len(ids), len(labels), len(features))
        if count == 0:
            return
        features = np.asarray(features[:count], dtype=np.float64)
        features = features.reshape(count, -1)
        if self._features and features.shape[1:] != self._features[0].shape:
            raise ValueError(
                f"feature dim mismatch: {features.shape[1:]} vs "
                f"{self._features[0].shape}")
        self._features.extend(features)
        self._ids.extend(str(video_id) for video_id in ids[:count])
        self._labels.extend(int(label) for label in labels[:count])
        self._dirty = True

    def labels_of(self) -> list[int]:
        """All stored labels."""
        return list(self._labels)

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def build(self) -> None:
        """(Re)build the compressed payload from the buffered rows."""
        if not self._dirty:
            return
        if not self._features:
            self._exact = None
            self._dirty = False
            return
        matrix = np.stack(self._features)
        if self.store is not None:
            self._exact = self.store.put("exact_features", matrix)
        else:
            self._exact = matrix
        self._build_compressed(matrix)
        self._dirty = False

    def _ensure_built(self) -> None:
        if self._dirty:
            self.build()

    def _build_compressed(self, matrix: np.ndarray) -> None:
        """Train/encode the compressed representation of ``matrix``."""
        raise NotImplementedError

    def _candidates(self, queries: np.ndarray, depth: int) -> list[np.ndarray]:
        """Per-query candidate row indexes from the compressed scan.

        Must return at most ``depth`` rows per query, already ranked by
        the compressed metric (ties broken deterministically).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Search = compressed scan + exact rerank
    # ------------------------------------------------------------------ #
    def effective_rerank(self, k: int) -> int:
        """Candidate depth used for a top-``k`` query."""
        return min(len(self), max(int(k), self.rerank))

    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Exact-reranked top-``k``; an empty index returns ``[]``.

        Delegates to :meth:`search_batch` so the scalar and batched
        paths are the same code — batch parity holds by construction.
        """
        query = np.asarray(query, dtype=np.float64).reshape(1, -1)
        return self.search_batch(query, k)[0]

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> list[list[RetrievalEntry]]:
        """Top-``k`` for each row of a ``(B, d)`` query matrix."""
        queries = np.asarray(queries, dtype=np.float64)
        queries = queries.reshape(queries.shape[0], -1) if queries.ndim > 1 \
            else queries.reshape(1, -1)
        if not self._ids:
            return [[] for _ in range(queries.shape[0])]
        self._ensure_built()
        depth = self.effective_rerank(k)
        candidate_rows = self._candidates(queries, depth)
        scanned = int(sum(rows.size for rows in candidate_rows))
        counter("hashindex.candidates_scanned", tier=self.tier).inc(scanned)
        depth_histogram = histogram("hashindex.rerank_depth",
                                    buckets=RERANK_DEPTH_BUCKETS,
                                    tier=self.tier)
        results = []
        for query, rows in zip(queries, candidate_rows):
            depth_histogram.observe(rows.size)
            results.append(self._rerank_one(query, rows, int(k)))
        counter("hashindex.searches", tier=self.tier).inc(queries.shape[0])
        return results

    def _rerank_one(self, query: np.ndarray, rows: np.ndarray,
                    k: int) -> list[RetrievalEntry]:
        """Rescore candidate ``rows`` exactly and return the top ``k``."""
        if rows.size == 0:
            return []
        gathered = np.asarray(self._exact[rows], dtype=np.float64)
        scores = self.similarity(query, gathered)
        k = min(k, rows.size)
        head = np.argpartition(-scores, k - 1)[:k]
        order = head[np.argsort(-scores[head], kind="stable")]
        return [
            RetrievalEntry(self._ids[rows[i]], self._labels[rows[i]],
                           float(scores[i]))
            for i in order
        ]

    # ------------------------------------------------------------------ #
    # Memory accounting (BENCH_ann)
    # ------------------------------------------------------------------ #
    def _resident_payload_bytes(self) -> int:
        """Bytes of compressed payload held in RAM (subclass-specific)."""
        raise NotImplementedError

    def memory_stats(self) -> dict:
        """Resident vs mapped bytes, plus the float-footprint baseline."""
        self._ensure_built()
        float_bytes = 0 if self._exact is None else int(self._exact.nbytes)
        exact_resident = 0 if (self._exact is None or self.store is not None) \
            else float_bytes
        return {
            "rows": len(self),
            "float_feature_bytes": float_bytes,
            "resident_bytes": self._resident_payload_bytes() + exact_resident,
            "mapped_bytes": 0 if self.store is None else self.store.mapped_bytes,
        }

    def recall_at_k(self, exact_index, queries: np.ndarray, k: int) -> float:
        """Mean fraction of the exact top-k this index also returns."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if not len(queries):
            return 0.0
        total = 0.0
        mine = self.search_batch(queries, k)
        for query, approx in zip(queries, mine):
            exact = {entry.video_id for entry in exact_index.search(query, k)}
            total += len(exact & {entry.video_id for entry in approx}) \
                / max(len(exact), 1)
        return total / len(queries)


__all__ = ["CompressedIndex", "RERANK_DEPTH_BUCKETS"]
