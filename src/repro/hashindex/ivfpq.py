"""IVF-PQ: coarse cells + product quantization with ADC lookup tables.

The second compressed tier: features are partitioned into coarse
k-means cells (the IVF part, sharing the chunked clustering helpers
with :class:`~repro.retrieval.ann.IVFIndex`) and each row is stored as
``M`` uint8 sub-quantizer codes (the PQ part) — 8–16 bytes per row
instead of 8·d.  A query probes its ``nprobe`` nearest cells, builds a
per-subvector **asymmetric distance** table (exact query subvector vs
every sub-centroid), ranks the probed rows by summed table lookups, and
hands the best ``rerank`` candidates to the exact rescoring stage of
:class:`~repro.hashindex.base.CompressedIndex`.
"""

from __future__ import annotations

import numpy as np

from repro.hashindex.base import CompressedIndex
from repro.hashindex.store import MemmapStore
from repro.retrieval.ann import _kmeans, assign_clusters, squared_distances
from repro.retrieval.similarity import SimilarityFn, negative_l2
from repro.utils.seeding import seeded_rng


class ProductQuantizer:
    """Per-subvector k-means codebooks with ADC table construction.

    The feature space is split into ``num_subvectors`` contiguous
    slices (zero-padded up to a multiple when ``d`` does not divide
    evenly — padding is constant across rows, so it never changes
    relative distances); each slice gets its own ``ksub``-centroid
    codebook, and a row is stored as the uint8 index of its nearest
    sub-centroid per slice.
    """

    def __init__(self, num_subvectors: int = 8, ksub: int = 256,
                 iterations: int = 10, rng=None) -> None:
        if num_subvectors < 1:
            raise ValueError("num_subvectors must be positive")
        if not 1 <= ksub <= 256:
            raise ValueError("ksub must be in [1, 256] (codes are uint8)")
        self.num_subvectors = int(num_subvectors)
        self.ksub = int(ksub)
        self.iterations = int(iterations)
        self._rng = seeded_rng(rng)
        self.dim: int | None = None
        self.subdim: int | None = None
        self.codebooks: np.ndarray | None = None  # (M, ksub, subdim)

    @property
    def fitted(self) -> bool:
        return self.codebooks is not None

    def _pad(self, matrix: np.ndarray) -> np.ndarray:
        padded_dim = self.num_subvectors * self.subdim
        if matrix.shape[1] == padded_dim:
            return matrix
        out = np.zeros((matrix.shape[0], padded_dim))
        out[:, : matrix.shape[1]] = matrix
        return out

    def fit(self, matrix: np.ndarray) -> "ProductQuantizer":
        matrix = np.asarray(matrix, dtype=np.float64)
        count, self.dim = matrix.shape
        self.subdim = -(-self.dim // self.num_subvectors)
        matrix = self._pad(matrix)
        ksub = min(self.ksub, count)
        books = np.empty((self.num_subvectors, ksub, self.subdim))
        for m in range(self.num_subvectors):
            sub = matrix[:, m * self.subdim:(m + 1) * self.subdim]
            books[m] = _kmeans(sub, ksub, iterations=self.iterations,
                               rng=self._rng)
        self.codebooks = books
        return self

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """``(n, d)`` floats → ``(n, M)`` uint8 codes."""
        if not self.fitted:
            raise RuntimeError("quantizer must be fit before encoding")
        matrix = self._pad(np.atleast_2d(np.asarray(matrix,
                                                    dtype=np.float64)))
        codes = np.empty((matrix.shape[0], self.num_subvectors),
                         dtype=np.uint8)
        for m in range(self.num_subvectors):
            sub = matrix[:, m * self.subdim:(m + 1) * self.subdim]
            codes[:, m] = assign_clusters(sub, self.codebooks[m])
        return codes

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """``(M, ksub)`` squared distances: exact query vs sub-centroids."""
        query = self._pad(np.asarray(query, dtype=np.float64).reshape(1, -1))
        table = np.empty(self.codebooks.shape[:2])
        for m in range(self.num_subvectors):
            sub = query[:, m * self.subdim:(m + 1) * self.subdim]
            table[m] = squared_distances(sub, self.codebooks[m])[0]
        return table

    def adc_distances(self, table: np.ndarray, codes: np.ndarray
                      ) -> np.ndarray:
        """Approximate squared distances for ``(n, M)`` codes via lookup."""
        return table[np.arange(self.num_subvectors)[None, :], codes].sum(axis=1)


class IVFPQIndex(CompressedIndex):
    """Coarse IVF cells + PQ codes + ADC ranking + exact rerank.

    Parameters
    ----------
    num_cells / nprobe:
        The inverted-file partition and the probe width (classic ANN
        speed/recall knob — more probed cells, better recall).
    num_subvectors / ksub:
        PQ geometry: rows cost ``num_subvectors`` bytes each.
    rerank:
        Candidate depth handed to the exact rescoring stage.
    """

    tier = "ivfpq"

    def __init__(self, num_cells: int = 16, nprobe: int = 4,
                 num_subvectors: int = 8, ksub: int = 256,
                 similarity: SimilarityFn = negative_l2, rerank: int = 64,
                 rng=None, *, store: MemmapStore | None = None,
                 memmap: bool = False) -> None:
        if num_cells < 1 or nprobe < 1:
            raise ValueError("num_cells and nprobe must be positive")
        super().__init__(similarity=similarity, rerank=rerank, store=store,
                         memmap=memmap)
        self.num_cells = int(num_cells)
        self.nprobe = int(nprobe)
        self._rng = seeded_rng(rng)
        self.quantizer = ProductQuantizer(num_subvectors=num_subvectors,
                                          ksub=ksub, rng=self._rng)
        self._centroids: np.ndarray | None = None
        self._cells: list[np.ndarray] = []
        self._codes: np.ndarray | None = None  # (n, M) uint8

    # ------------------------------------------------------------------ #
    def _build_compressed(self, matrix: np.ndarray) -> None:
        cells = min(self.num_cells, len(matrix))
        self._centroids = _kmeans(matrix, cells, rng=self._rng)
        assignment = assign_clusters(matrix, self._centroids)
        self._cells = [np.flatnonzero(assignment == c)
                       for c in range(self._centroids.shape[0])]
        self.quantizer.fit(matrix)
        codes = self.quantizer.encode(matrix)
        if self.store is not None:
            codes = self.store.put("pq_codes", codes)
            # Codebooks persist alongside the codes; ADC tables index
            # straight into the read-only mapping.
            self.quantizer.codebooks = self.store.put(
                "pq_codebooks", self.quantizer.codebooks)
        self._codes = codes

    def _candidates(self, queries: np.ndarray, depth: int) -> list[np.ndarray]:
        cell_distances = squared_distances(queries, self._centroids)
        probe_orders = np.argsort(cell_distances, axis=1)[:, : self.nprobe]
        out = []
        for query, probes in zip(queries, probe_orders):
            members = np.concatenate([self._cells[c] for c in probes])
            if members.size == 0:
                # Every probed cell is empty — widen to the full gallery
                # so the rerank contract (≥ k candidates when available)
                # still holds.
                members = np.arange(len(self._ids))
            table = self.quantizer.adc_table(query)
            approx = self.quantizer.adc_distances(
                table, np.asarray(self._codes[members]))
            take = min(int(depth), members.size)
            head = np.argpartition(approx, take - 1)[:take]
            head.sort()  # canonical order before the value sort
            order = head[np.argsort(approx[head], kind="stable")]
            out.append(members[order])
        return out

    def _resident_payload_bytes(self) -> int:
        payload = 0
        if self._codes is not None and self.store is None:
            payload += int(self._codes.nbytes)
        if self._centroids is not None:
            payload += int(self._centroids.nbytes)
        if self.quantizer.fitted and self.store is None:
            payload += int(self.quantizer.codebooks.nbytes)
        return payload


__all__ = ["IVFPQIndex", "ProductQuantizer"]
