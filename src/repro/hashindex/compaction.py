"""Compaction policy for mutated index shards.

Deletes and re-embeds tombstone rows logically but leave them in the
per-node indexes (exact and compressed tiers alike) until a compaction
rebuilds the shard from live rows only.  :class:`CompactionPolicy`
decides *when* a shard has accumulated enough garbage to be worth the
rebuild; the gallery owns the *how* (it re-ingests live rows through
the current tier factory and swaps the index object atomically, so
readers pinned to older snapshots keep their old index).

The policy is pure arithmetic over ``(physical_rows, dead_rows)`` so it
can be evaluated identically by the sequential reference replay and the
pooled frontend — compaction points must match exactly for the
mutating-timeline oracle to hold bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompactionPolicy:
    """Compact a shard once tombstones pass both thresholds."""

    #: Minimum fraction of physical rows that are dead.
    min_dead_fraction: float = 0.25
    #: Minimum absolute number of dead rows (avoids churning tiny shards).
    min_dead_rows: int = 4

    def should_compact(self, physical_rows: int, dead_rows: int) -> bool:
        if dead_rows < self.min_dead_rows:
            return False
        if physical_rows <= 0:
            return False
        return (dead_rows / physical_rows) >= self.min_dead_fraction


#: Policy used by the serving frontend when churn is enabled and no
#: explicit policy is configured.
DEFAULT_COMPACTION = CompactionPolicy()

__all__ = ["CompactionPolicy", "DEFAULT_COMPACTION"]
