"""Binary Hamming-code index with exact rerank.

The gallery is stored as ``nbits``-bit sign codes packed into ``uint64``
words (16 bytes per row at 128 bits, vs 8·d bytes of float features); a
search XOR+popcounts the whole code table, over-fetches the ``rerank``
nearest codes, and rescores exactly those rows against the float
features.  This is the compressed tier production deep-hash retrieval
runs on (HashNet-style), and the surface QAIR/SAAT-style hash attacks
target.
"""

from __future__ import annotations

import numpy as np

from repro.hashindex.base import CompressedIndex
from repro.hashindex.codes import create_coder, hamming_topk
from repro.hashindex.store import MemmapStore
from repro.retrieval.similarity import SimilarityFn, negative_l2
from repro.utils.seeding import seeded_rng


class BinaryHashIndex(CompressedIndex):
    """Packed binary codes + popcount Hamming top-k + exact rerank.

    Parameters
    ----------
    nbits:
        Code length; packed into ``ceil(nbits / 64)`` uint64 words.
    coder:
        ``"lsh"`` (sign of random projection) or ``"itq"`` (PCA + ITQ
        rotation, better recall at equal bits).
    rerank:
        Candidate depth the Hamming scan over-fetches for exact rescoring.
    """

    tier = "hamming"

    def __init__(self, nbits: int = 128, coder: str = "lsh",
                 similarity: SimilarityFn = negative_l2, rerank: int = 64,
                 rng=None, *, store: MemmapStore | None = None,
                 memmap: bool = False) -> None:
        super().__init__(similarity=similarity, rerank=rerank, store=store,
                         memmap=memmap)
        self.nbits = int(nbits)
        self.coder_name = str(coder)
        self._rng = seeded_rng(rng)
        self._coder = None
        self._codes: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def _build_compressed(self, matrix: np.ndarray) -> None:
        self._coder = create_coder(self.coder_name, self.nbits,
                                   rng=self._rng)
        self._coder.fit(matrix)
        codes = self._coder.encode(matrix)
        if self.store is not None:
            codes = self.store.put("hamming_codes", codes)
        self._codes = codes

    def _candidates(self, queries: np.ndarray, depth: int) -> list[np.ndarray]:
        query_codes = self._coder.encode(queries)
        indexes, _ = hamming_topk(query_codes, self._codes, depth)
        return list(indexes)

    def _resident_payload_bytes(self) -> int:
        payload = 0
        if self._codes is not None and self.store is None:
            payload += int(self._codes.nbytes)
        if self._coder is not None and self._coder.fitted:
            payload += int(self._coder._projection.nbytes)
            payload += int(self._coder._mean.nbytes)
        return payload

    def code_matrix(self) -> np.ndarray:
        """The packed ``(n, words)`` gallery codes (built on demand)."""
        self._ensure_built()
        if self._codes is None:
            raise RuntimeError("index is empty; no codes to expose")
        return self._codes


__all__ = ["BinaryHashIndex"]
