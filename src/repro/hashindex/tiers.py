"""Index-tier registry: name → index factory, plus the env default.

Every :class:`~repro.retrieval.nodes.DataNode` builds its local index
through this registry, so the whole retrieval plane — nodes, the
sharded gallery, the engine, the attacker-facing service — switches
tiers with one knob:

* programmatically, via ``ServiceConfig(index_tier=...)`` /
  ``RetrievalEngine(..., index_tier=...)``;
* globally, via the ``REPRO_INDEX_TIER`` environment variable
  (``exact`` | ``ivf`` | ``hamming`` | ``ivfpq``).

Tiers:

``exact``
    Brute-force :class:`~repro.retrieval.index.FeatureIndex` (seed
    behaviour, the differential reference).
``ivf``
    :class:`~repro.retrieval.ann.IVFIndex` — coarse cells over float
    features.
``hamming``
    :class:`~repro.hashindex.binary.BinaryHashIndex` — packed binary
    codes, popcount top-k, exact rerank.
``ivfpq``
    :class:`~repro.hashindex.ivfpq.IVFPQIndex` — coarse cells + product
    quantization with ADC tables, exact rerank.
"""

from __future__ import annotations

from typing import Callable

from repro.hashindex.binary import BinaryHashIndex
from repro.hashindex.ivfpq import IVFPQIndex
from repro.retrieval.ann import IVFIndex
from repro.retrieval.index import FeatureIndex
from repro.retrieval.similarity import SimilarityFn
from repro.utils.envflags import env_choice

#: Name of the environment variable selecting the default tier.
INDEX_TIER_ENV = "REPRO_INDEX_TIER"

#: The tier used when nothing selects one (seed behaviour).
DEFAULT_TIER = "exact"


#: Rerank depths the router may choose between for compressed tiers.
RERANK_CHOICES = ("32", "64", "128")

#: Depth used when nothing routes one (the index constructors' default).
DEFAULT_RERANK = 64


def routed_rerank(tier: str) -> int:
    """Rerank depth for ``tier``: the router's pick, else the default.

    Unlike the other routed knobs this one trades recall for scan cost,
    so :meth:`Router.decide` only admits depths whose *measured* recall
    (recorded by the calibration CLI next to the cost) clears the
    router's recall floor; cold start keeps the constructor default.
    """
    from repro.router import active_router

    return int(active_router().decide(
        "rerank", tier, RERANK_CHOICES, str(DEFAULT_RERANK)))


def _exact(similarity: SimilarityFn) -> FeatureIndex:
    return FeatureIndex(similarity)


def _ivf(similarity: SimilarityFn) -> IVFIndex:
    return IVFIndex(similarity=similarity, rng=0)


def _hamming(similarity: SimilarityFn) -> BinaryHashIndex:
    return BinaryHashIndex(similarity=similarity, rng=0,
                           rerank=routed_rerank("hamming"))


def _ivfpq(similarity: SimilarityFn) -> IVFPQIndex:
    return IVFPQIndex(similarity=similarity, rng=0,
                      rerank=routed_rerank("ivfpq"))


#: tier name → ``factory(similarity) -> Index``.  Factories are seeded
#: so two nodes built for the same tier behave identically run to run.
INDEX_TIERS: dict[str, Callable[[SimilarityFn], object]] = {
    "exact": _exact,
    "ivf": _ivf,
    "hamming": _hamming,
    "ivfpq": _ivfpq,
}


def resolve_index_tier(name: str) -> Callable[[SimilarityFn], object]:
    """The index factory registered under ``name`` (case-insensitive)."""
    key = str(name).strip().lower()
    if key not in INDEX_TIERS:
        raise KeyError(
            f"unknown index tier {name!r}; available: {sorted(INDEX_TIERS)}")
    return INDEX_TIERS[key]


def default_index_tier() -> str:
    """``REPRO_INDEX_TIER`` when set (and valid), else ``"exact"``."""
    return env_choice(INDEX_TIER_ENV, tuple(INDEX_TIERS), DEFAULT_TIER)


__all__ = [
    "INDEX_TIER_ENV",
    "DEFAULT_TIER",
    "INDEX_TIERS",
    "resolve_index_tier",
    "default_index_tier",
]
