"""Memory-mapped payload storage for compressed indexes.

A million-row gallery must not live in resident RAM on a
:class:`~repro.retrieval.nodes.DataNode`: packed codes, PQ code tables,
and the exact float features used by the rerank stage are spilled to
``.npy`` files and reopened as read-only ``np.memmap`` views.  The OS
pages in only what a search touches — Hamming scans stream the (tiny)
code payload, and the rerank gathers a few dozen float rows per query —
so the resident footprint of a memory-mapped index stays a small
fraction of the float-feature matrix it replaces.

The store tracks mapped bytes in the ``hashindex.bytes_mapped`` gauge
and exposes them for the BENCH_ann memory accounting.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import uuid

import numpy as np

from repro.obs import counter, gauge

#: Total bytes currently memory-mapped across live stores (obs gauge
#: value mirrors this).
_TOTAL_MAPPED_BYTES = 0


def _adjust_mapped(delta: int) -> None:
    global _TOTAL_MAPPED_BYTES
    _TOTAL_MAPPED_BYTES = max(0, _TOTAL_MAPPED_BYTES + int(delta))
    gauge("hashindex.bytes_mapped").set(_TOTAL_MAPPED_BYTES)


def total_mapped_bytes() -> int:
    """Bytes currently mapped across every live :class:`MemmapStore`."""
    return _TOTAL_MAPPED_BYTES


class MemmapStore:
    """A directory of named, read-only memory-mapped arrays.

    ``put`` persists an array and returns a read-only memmap view;
    re-``put`` with the same name atomically replaces the payload (the
    old mapping is unaccounted first).  Stores created without an
    explicit directory own a temp directory that is removed on
    :meth:`close` (and, as a backstop, at interpreter exit).
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._owns_dir = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-hashindex-")
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._arrays: dict[str, np.ndarray] = {}
        self._closed = False
        if self._owns_dir:
            atexit.register(self.close)

    # ------------------------------------------------------------------ #
    def _path(self, name: str) -> str:
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_"
                       for ch in str(name))
        return os.path.join(self.directory, f"{safe}.npy")

    def put(self, name: str, array: np.ndarray) -> np.ndarray:
        """Persist ``array`` under ``name``; returns a read-only memmap."""
        if self._closed:
            raise RuntimeError("store is closed")
        array = np.ascontiguousarray(array)
        path = self._path(name)
        tmp_path = f"{path}.{uuid.uuid4().hex}.tmp"
        with open(tmp_path, "wb") as handle:
            np.save(handle, array)
        os.replace(tmp_path, path)
        self._drop(name)
        mapped = np.load(path, mmap_mode="r")
        self._arrays[name] = mapped
        _adjust_mapped(mapped.nbytes)
        counter("hashindex.memmap_writes").inc()
        return mapped

    def get(self, name: str) -> np.ndarray:
        """The read-only memmap stored under ``name``."""
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    @property
    def mapped_bytes(self) -> int:
        """Bytes this store currently has mapped."""
        return sum(view.nbytes for view in self._arrays.values())

    def _drop(self, name: str) -> None:
        existing = self._arrays.pop(name, None)
        if existing is not None:
            _adjust_mapped(-existing.nbytes)
            # Release the mapping promptly (memmap closes with its mmap
            # object when the last view is garbage-collected).
            del existing

    def close(self) -> None:
        """Unaccount all mappings and delete an owned temp directory."""
        if self._closed:
            return
        for name in list(self._arrays):
            self._drop(name)
        self._closed = True
        if self._owns_dir:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


__all__ = ["MemmapStore", "total_mapped_bytes"]
