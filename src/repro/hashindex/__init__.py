"""Compressed index tier: binary Hamming codes and IVF-PQ with rerank.

Production video retrieval over millions of rows does not brute-force
float features; it scans compressed codes and rescores a small
candidate set exactly.  This package provides that tier:

* :mod:`repro.hashindex.codes` — LSH / ITQ binary coders, uint64 bit
  packing, and the chunked popcount Hamming kernel;
* :class:`BinaryHashIndex` — packed-code Hamming top-k + exact rerank;
* :class:`IVFPQIndex` — coarse cells + product quantization with
  asymmetric-distance tables + exact rerank;
* :class:`MemmapStore` — ``np.memmap`` payload spill so a data node
  holds 10^6 rows without resident RAM;
* :mod:`repro.hashindex.tiers` — the ``REPRO_INDEX_TIER`` registry that
  drops any tier into ``DataNode`` / ``ShardedGallery`` /
  ``RetrievalService``.

Both indexes satisfy :class:`repro.retrieval.protocol.Index` and return
exact similarity scores (the rerank contract), so the compressed tier
stays differential-testable against ``FeatureIndex`` — the
``hashindex.compressed_vs_exact`` qa oracle holds recall@k above a
floor on seeded galleries.
"""

from repro.hashindex.codes import (
    CODERS,
    ITQCoder,
    RandomProjectionCoder,
    create_coder,
    hamming_distances,
    hamming_topk,
    pack_bits,
    popcount,
    unpack_bits,
    words_for_bits,
)
from repro.hashindex.base import CompressedIndex
from repro.hashindex.binary import BinaryHashIndex
from repro.hashindex.ivfpq import IVFPQIndex, ProductQuantizer
from repro.hashindex.compaction import DEFAULT_COMPACTION, CompactionPolicy
from repro.hashindex.store import MemmapStore, total_mapped_bytes
from repro.hashindex.tiers import (
    DEFAULT_TIER,
    INDEX_TIER_ENV,
    INDEX_TIERS,
    default_index_tier,
    resolve_index_tier,
)

__all__ = [
    "BinaryHashIndex",
    "CompactionPolicy",
    "CompressedIndex",
    "DEFAULT_COMPACTION",
    "IVFPQIndex",
    "ProductQuantizer",
    "MemmapStore",
    "total_mapped_bytes",
    "RandomProjectionCoder",
    "ITQCoder",
    "CODERS",
    "create_coder",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "words_for_bits",
    "hamming_distances",
    "hamming_topk",
    "INDEX_TIERS",
    "INDEX_TIER_ENV",
    "DEFAULT_TIER",
    "default_index_tier",
    "resolve_index_tier",
]
