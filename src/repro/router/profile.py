"""Calibration profiles: measured per-(domain, key, option) costs on disk.

A profile is the distilled form of the ``router.cost_s`` histograms and
``router.recall`` gauges (see :mod:`repro.router.costmodel`): for every
routing *domain* (``conv``, ``search``, ``embed_cache``, ``fuse``,
``speculate``, ``serving_batch``, ``rerank``) and *key* (a shape/load
bucket such as ``e18`` or ``b3``) it stores each candidate option's mean
measured cost in seconds, the sample count behind it, and — for options
that trade accuracy for speed — the measured recall.

Profiles are plain JSON with a ``schema`` version stamp.  Saving is
atomic (temp file + ``os.replace``) so a crashed calibration run can
never leave a half-written profile for the next process to load; loading
a profile with an unknown schema raises instead of silently routing on
garbage, matching the :mod:`repro.utils.envflags` philosophy.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

#: Environment variable overriding the default profile location.
PROFILE_ENV = "REPRO_ROUTER_PROFILE"

#: Where profiles live when ``REPRO_ROUTER_PROFILE`` is unset.
DEFAULT_PROFILE_PATH = "results/router_profile.json"


class ProfileError(ReproError):
    """A calibration profile could not be read or failed validation."""


def default_profile_path() -> Path:
    """``REPRO_ROUTER_PROFILE`` when set, else ``results/router_profile.json``."""
    from repro.utils.envflags import env_str

    return Path(env_str(PROFILE_ENV, DEFAULT_PROFILE_PATH))


@dataclass(frozen=True)
class CostEntry:
    """One option's measurements within a (domain, key) cell."""

    mean_s: float
    count: int = 1
    recall: float | None = None

    def to_json(self) -> dict:
        entry: dict = {"mean_s": self.mean_s, "count": self.count}
        if self.recall is not None:
            entry["recall"] = self.recall
        return entry

    @classmethod
    def from_json(cls, data: dict) -> "CostEntry":
        if not isinstance(data, dict) or "mean_s" not in data:
            raise ProfileError(f"malformed cost entry: {data!r}")
        recall = data.get("recall")
        return cls(mean_s=float(data["mean_s"]),
                   count=int(data.get("count", 1)),
                   recall=None if recall is None else float(recall))


@dataclass
class CalibrationProfile:
    """``domain → key → option → CostEntry`` plus provenance metadata.

    ``meta`` holds free-form provenance (hostname, calibration seed,
    probe repetitions); it never influences routing decisions, so two
    profiles with equal ``entries`` route identically.
    """

    entries: dict[str, dict[str, dict[str, CostEntry]]] = \
        field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    # -------------------------------------------------------------- #
    # Building / querying
    # -------------------------------------------------------------- #
    def record(self, domain: str, key: str, option: str,
               entry: CostEntry) -> None:
        """Insert (or overwrite) one measurement cell."""
        self.entries.setdefault(domain, {}).setdefault(key, {})[option] = entry

    def cell(self, domain: str, key: str) -> dict[str, CostEntry]:
        """All measured options for ``(domain, key)`` (empty when cold)."""
        return self.entries.get(domain, {}).get(key, {})

    def cost(self, domain: str, key: str, option: str) -> float | None:
        entry = self.cell(domain, key).get(option)
        return None if entry is None else entry.mean_s

    @property
    def num_cells(self) -> int:
        return sum(len(keys) for keys in self.entries.values())

    # -------------------------------------------------------------- #
    # Serialization
    # -------------------------------------------------------------- #
    def to_json(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "entries": {
                domain: {
                    key: {opt: entry.to_json()
                          for opt, entry in sorted(options.items())}
                    for key, options in sorted(keys.items())
                }
                for domain, keys in sorted(self.entries.items())
            },
        }

    def save(self, path: str | os.PathLike) -> Path:
        """Write the profile atomically (temp file + ``os.replace``)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return target

    @classmethod
    def from_json(cls, data: dict) -> "CalibrationProfile":
        if not isinstance(data, dict):
            raise ProfileError(f"profile root must be an object, "
                               f"got {type(data).__name__}")
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ProfileError(
                f"profile schema {schema!r} is not supported "
                f"(this build reads schema {SCHEMA_VERSION}); re-run "
                f"`python -m repro.router.calibrate`")
        raw_entries = data.get("entries", {})
        if not isinstance(raw_entries, dict):
            raise ProfileError("profile 'entries' must be an object")
        entries: dict[str, dict[str, dict[str, CostEntry]]] = {}
        for domain, keys in raw_entries.items():
            if not isinstance(keys, dict):
                raise ProfileError(f"domain {domain!r} must map keys")
            entries[str(domain)] = {
                str(key): {str(opt): CostEntry.from_json(entry)
                           for opt, entry in options.items()}
                for key, options in keys.items()
            }
        return cls(entries=entries, meta=dict(data.get("meta", {})))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "CalibrationProfile":
        """Read and validate a profile; raises :class:`ProfileError`."""
        target = Path(path)
        try:
            data = json.loads(target.read_text())
        except FileNotFoundError:
            raise
        except (OSError, json.JSONDecodeError) as exc:
            raise ProfileError(
                f"could not read router profile {target}: {exc}") from exc
        return cls.from_json(data)


__all__ = [
    "SCHEMA_VERSION",
    "PROFILE_ENV",
    "DEFAULT_PROFILE_PATH",
    "ProfileError",
    "CostEntry",
    "CalibrationProfile",
    "default_profile_path",
]
