"""``python -m repro.router.calibrate`` — measure costs, write a profile.

Each probe times the *real* production code path for every option of one
routing domain on this machine, records the samples into a private
metrics registry (calibration never pollutes the process-wide obs
registry), and the distilled :class:`CalibrationProfile` is written
atomically to ``--out`` (default: :func:`default_profile_path`).

Probes:

* ``conv`` — :func:`repro.nn.functional.conv2d` with the implementation
  forced to einsum / GEMM, across shapes spanning several im2col size
  buckets;
* ``search`` — per-video :meth:`RetrievalEngine.retrieve` loop vs one
  :meth:`retrieve_batch` call, per batch-size bucket (the batch-size-2
  leg doubles as the ``speculate`` probe: SimBA/NES speculation is
  exactly a paired retrieval batch);
* ``embed_cache`` — repeated re-embedding with the content-hash cache
  enabled vs disabled;
* ``fuse`` — repeated embedding with trace-and-fuse replay on vs off
  (first ``on`` pass traces and is discarded as warm-up);
* ``serving_batch`` — per-item cost of batched retrieval at each
  admissible frontend batch size;
* ``rerank`` — compressed-tier query cost at each candidate depth, with
  recall measured against the exact index (the router refuses depths
  whose recall undercuts its floor).

Timings are machine-specific by design — that is the point of a
calibration profile.  Everything *else* (shapes, seeds, probe order) is
deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.router.costmodel import (
    profile_from_registry,
    record_cost,
    record_recall,
)
from repro.router.core import batch_size_key
from repro.router.profile import CalibrationProfile, default_profile_path


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ---------------------------------------------------------------------- #
# Probes
# ---------------------------------------------------------------------- #
def probe_conv(registry: MetricsRegistry, reps: int, seed: int) -> None:
    from repro.nn.functional import conv2d
    from repro.nn.tensor import Tensor, no_grad
    from repro.perf.gemm_conv import conv_size_key, set_conv_impl

    rng = np.random.default_rng(seed)
    # (batch, in_ch, size, out_ch, k): spans buckets from micro-convs
    # (einsum territory) to model-backbone shapes (GEMM territory).
    shapes = [(1, 3, 8, 4, 3), (2, 8, 16, 8, 3), (4, 16, 16, 16, 3)]
    try:
        for batch, in_ch, size, out_ch, k in shapes:
            x = Tensor(rng.standard_normal((batch, in_ch, size, size)))
            w = Tensor(rng.standard_normal((out_ch, in_ch, k, k)))
            out = size - k + 1
            key = conv_size_key(batch * out * out * in_ch * k * k)
            for impl in ("einsum", "gemm"):
                set_conv_impl(impl)
                with no_grad():
                    conv2d(x, w)  # warm caches/plans outside the clock
                    for _ in range(reps):
                        record_cost("conv", key, impl,
                                    _timed(lambda: conv2d(x, w)), registry)
    finally:
        set_conv_impl(None)


def probe_search(registry: MetricsRegistry, reps: int, seed: int) -> None:
    from repro.qa.world import build_world, tiny_videos

    world = build_world(seed, cache_size=0)
    engine = world.engine
    for batch in (2, 4, 8):
        queries = tiny_videos(seed + batch, batch, label_base=3)
        key = batch_size_key(batch)
        for _ in range(reps):
            scalar = _timed(lambda: [engine.retrieve(v, 5) for v in queries])
            batched = _timed(lambda: engine.retrieve_batch(queries, 5))
            record_cost("search", key, "scalar", scalar, registry)
            record_cost("search", key, "batched", batched, registry)
            if batch == 2:
                # A speculated SimBA/NES pair IS a 2-batch retrieval:
                # "on" pays one batched call, "off" two scalar calls.
                for spec_key in ("simba", "nes"):
                    record_cost("speculate", spec_key, "on", batched,
                                registry)
                    record_cost("speculate", spec_key, "off", scalar,
                                registry)


def probe_embed_cache(registry: MetricsRegistry, reps: int,
                      seed: int) -> None:
    from repro.qa.world import build_world, tiny_videos

    videos = tiny_videos(seed + 1, 4, label_base=3)
    worlds = {"on": build_world(seed, cache_size=32),
              "off": build_world(seed, cache_size=0)}
    for option, world in worlds.items():
        world.engine.embed_queries(videos)  # warm (fills the cache on-leg)
        for _ in range(reps):
            record_cost("embed_cache", "default", option,
                        _timed(lambda: world.engine.embed_queries(videos)),
                        registry)


def probe_fuse(registry: MetricsRegistry, reps: int, seed: int) -> None:
    from repro.qa.world import build_world, tiny_videos

    world = build_world(seed, cache_size=0)
    videos = tiny_videos(seed + 2, 4, label_base=3)
    for option, fuse in (("off", False), ("on", True)):
        world.engine.configure_fuse(fuse)
        world.engine.embed_queries(videos)  # the on-leg traces here
        for _ in range(reps):
            record_cost("fuse", "default", option,
                        _timed(lambda: world.engine.embed_queries(videos)),
                        registry)
    world.engine.configure_fuse(None)


def probe_serving_batch(registry: MetricsRegistry, reps: int, seed: int,
                        sizes: tuple[int, ...] = (1, 2, 4, 8, 16)) -> None:
    from repro.qa.world import build_world, tiny_videos

    world = build_world(seed, cache_size=0)
    engine = world.engine
    pool = tiny_videos(seed + 3, max(sizes), label_base=3)
    for size in sizes:
        queries = pool[:size]
        engine.retrieve_batch(queries, 5)  # warm
        for _ in range(reps):
            elapsed = _timed(lambda: engine.retrieve_batch(queries, 5))
            # The frontend decision is per-request: normalise to per-item.
            record_cost("serving_batch", "default", str(size),
                        elapsed / size, registry)


def probe_rerank(registry: MetricsRegistry, reps: int, seed: int,
                 rows: int = 256, dim: int = 32, k: int = 10) -> None:
    from repro.hashindex.binary import BinaryHashIndex
    from repro.hashindex.ivfpq import IVFPQIndex
    from repro.hashindex.tiers import RERANK_CHOICES
    from repro.retrieval.index import FeatureIndex

    rng = np.random.default_rng(seed)
    features = rng.standard_normal((rows, dim))
    ids = [f"cal-{i}" for i in range(rows)]
    labels = [i % 5 for i in range(rows)]
    queries = features[rng.integers(0, rows, size=8)] + \
        0.05 * rng.standard_normal((8, dim))

    exact = FeatureIndex()
    exact.add_batch(ids, labels, features)
    truth = [{e.video_id for e in exact.search(q, k)} for q in queries]

    factories = {
        "hamming": lambda r: BinaryHashIndex(rng=0, rerank=r),
        "ivfpq": lambda r: IVFPQIndex(rng=0, rerank=r),
    }
    for tier, make in factories.items():
        for choice in RERANK_CHOICES:
            index = make(int(choice))
            index.add_batch(ids, labels, features)
            matched = total = 0
            for q, expected in zip(queries, truth):
                got = {e.video_id for e in index.search(q, k)}
                matched += len(got & expected)
                total += len(expected)
            record_recall("rerank", tier, choice,
                          matched / total if total else 1.0, registry)
            for _ in range(reps):
                record_cost("rerank", tier, choice, _timed(
                    lambda: [index.search(q, k) for q in queries]), registry)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def run_calibration(reps: int = 5, seed: int = 7,
                    quick: bool = False) -> CalibrationProfile:
    """Run every probe; return the distilled profile (not yet saved)."""
    registry = MetricsRegistry()
    reps = max(1, int(reps) if not quick else 1)
    probe_conv(registry, reps, seed)
    probe_search(registry, reps, seed)
    probe_embed_cache(registry, reps, seed)
    probe_fuse(registry, reps, seed)
    probe_serving_batch(registry, reps, seed,
                        sizes=(1, 2, 4) if quick else (1, 2, 4, 8, 16))
    probe_rerank(registry, reps, seed, rows=64 if quick else 256)
    return profile_from_registry(registry, meta={
        "tool": "repro.router.calibrate",
        "seed": int(seed),
        "reps": reps,
        "quick": bool(quick),
    })


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.router.calibrate",
        description="Measure per-option costs and write a router profile.")
    parser.add_argument("--out", default=None,
                        help="profile path (default: REPRO_ROUTER_PROFILE "
                             "or results/router_profile.json)")
    parser.add_argument("--quick", action="store_true",
                        help="single-rep smoke calibration (noisy, fast)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--reps", type=int, default=5,
                        help="timing repetitions per (domain, key, option)")
    opts = parser.parse_args(argv)

    profile = run_calibration(reps=opts.reps, seed=opts.seed,
                              quick=opts.quick)
    target = opts.out if opts.out is not None else default_profile_path()
    path = profile.save(target)
    print(f"wrote {profile.num_cells} calibration cells to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
