"""Cost-model adaptive routing: pick the cheapest equivalent impl per call.

The repo has grown several pairs (or families) of semantically
equivalent implementations — einsum vs GEMM convs, scalar vs batched
search, embed-cache on/off, trace-and-fuse replay on/off, speculated vs
sequential attack evaluation, serving batch sizes, compressed-tier
rerank depths.  Each used to be picked by a hard-coded heuristic or a
hand-set env flag.  The router replaces those static choices with
*measured* ones: ``python -m repro.router.calibrate`` times every option
on the current machine and writes a
:class:`~repro.router.profile.CalibrationProfile`; with ``REPRO_ROUTER=1``
(or ``ServiceConfig(router=...)``) every call site asks
:func:`active_router` which option is cheapest for its shape bucket.

Routing never changes results: every routed pair is pinned by a
differential oracle (``router.routed_vs_pinned`` end to end, plus the
per-pair oracles), and a cold or disabled router always returns the
caller's historical default.
"""

from repro.router.core import (
    DISABLED,
    RECALL_FLOOR,
    ROUTER_ENV,
    Router,
    active_router,
    batch_size_key,
    set_router,
)
from repro.router.costmodel import (
    profile_from_registry,
    record_cost,
    record_recall,
)
from repro.router.profile import (
    PROFILE_ENV,
    SCHEMA_VERSION,
    CalibrationProfile,
    CostEntry,
    ProfileError,
    default_profile_path,
)

__all__ = [
    "DISABLED",
    "RECALL_FLOOR",
    "ROUTER_ENV",
    "PROFILE_ENV",
    "SCHEMA_VERSION",
    "Router",
    "CalibrationProfile",
    "CostEntry",
    "ProfileError",
    "active_router",
    "batch_size_key",
    "set_router",
    "default_profile_path",
    "profile_from_registry",
    "record_cost",
    "record_recall",
]
