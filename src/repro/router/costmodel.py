"""Cost bookkeeping: obs histograms in, calibration profiles out.

Costs live in the same metrics registry everything else uses
(:mod:`repro.obs.metrics`), under two instrument families:

* ``router.cost_s{domain=,key=,option=}`` — histogram of measured
  wall-clock seconds for one implementation option on one shape/load
  bucket;
* ``router.recall{domain=,key=,option=}`` — gauge holding the measured
  recall of that option against the exact reference (only recorded for
  accuracy-trading options such as rerank depths).

:func:`profile_from_registry` distills the live instruments into a
:class:`~repro.router.profile.CalibrationProfile` — this is the bridge
the calibration CLI (and any online recalibration) runs across.
"""

from __future__ import annotations

import math

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.router.profile import CalibrationProfile, CostEntry

COST_METRIC = "router.cost_s"
RECALL_METRIC = "router.recall"

#: Cost buckets: routed operations span ~1 µs (a cache probe) to ~100 ms
#: (a cold conv batch); finer-than-default spacing keeps means honest.
COST_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)


def record_cost(domain: str, key: str, option: str, seconds: float,
                registry: MetricsRegistry | None = None) -> None:
    """Observe one cost sample for ``(domain, key, option)``."""
    registry = registry or get_registry()
    registry.histogram(COST_METRIC, buckets=COST_BUCKETS, domain=domain,
                       key=key, option=option).observe(float(seconds))


def record_recall(domain: str, key: str, option: str, recall: float,
                  registry: MetricsRegistry | None = None) -> None:
    """Record the measured recall of ``(domain, key, option)``."""
    registry = registry or get_registry()
    registry.gauge(RECALL_METRIC, domain=domain, key=key,
                   option=option).set(float(recall))


def profile_from_registry(registry: MetricsRegistry | None = None,
                          min_samples: int = 1,
                          meta: dict | None = None) -> CalibrationProfile:
    """Distill ``router.*`` instruments into a calibration profile.

    Cells with fewer than ``min_samples`` observations are dropped — a
    single noisy timing must not flip a routing decision for the life of
    a profile.
    """
    registry = registry or get_registry()
    recalls: dict[tuple[str, str, str], float] = {}
    for _name, labels, instrument in registry.iter_gauges(RECALL_METRIC):
        if _name != RECALL_METRIC or math.isnan(instrument.value):
            continue
        recalls[(labels.get("domain", ""), labels.get("key", ""),
                 labels.get("option", ""))] = instrument.value

    profile = CalibrationProfile(meta=dict(meta or {}))
    for _name, labels, instrument in registry.iter_histograms(COST_METRIC):
        if _name != COST_METRIC or instrument.count < min_samples:
            continue
        domain = labels.get("domain", "")
        key = labels.get("key", "")
        option = labels.get("option", "")
        if not (domain and key and option):
            continue
        profile.record(domain, key, option, CostEntry(
            mean_s=instrument.mean,
            count=instrument.count,
            recall=recalls.get((domain, key, option))))
    return profile


__all__ = [
    "COST_METRIC",
    "RECALL_METRIC",
    "COST_BUCKETS",
    "record_cost",
    "record_recall",
    "profile_from_registry",
]
