"""The adaptive router: per-call implementation choice from measured cost.

:class:`Router` answers one question — *given semantically equivalent
implementations of this operation, which is cheapest on this machine for
this shape/load?* — using a :class:`~repro.router.profile.CalibrationProfile`
of measured mean costs.  The call sites it serves:

========================  ===========================  ==================
domain                    options                      call site
========================  ===========================  ==================
``conv``                  ``einsum`` / ``gemm``        perf.gemm_conv
``search``                ``scalar`` / ``batched``     retrieval.engine
``embed_cache``           ``off`` / ``on``             retrieval.engine
``fuse``                  ``off`` / ``on``             nn.jit.compiled
``speculate``             ``off`` / ``on``             attacks.search
``serving_batch``         ``1``..``32``                serving.config
``rerank``                ``32`` / ``64`` / ``128``    hashindex.tiers
========================  ===========================  ==================

Decision rules, in order:

1. A disabled router, or one without a profile, returns the caller's
   default — cold start never changes behaviour.
2. Options whose profile entry carries a *measured recall* below the
   router's recall floor are excluded (this is how rerank depth routing
   stays honest: speed never buys a recall regression).
3. Among options with measurements, the lowest mean cost wins; ties
   break deterministically by the caller's option order.
4. If nothing measured survives, the default wins.

The router only ever chooses among implementations whose equivalence is
pinned by a registered differential oracle (see ``DESIGN.md`` §17) —
routing is a latency decision, never a semantics decision.
"""

from __future__ import annotations

import os
import threading
import time

from repro.router.profile import (
    CalibrationProfile,
    ProfileError,
    default_profile_path,
)

#: Environment switch enabling routing process-wide.
ROUTER_ENV = "REPRO_ROUTER"

#: Options with measured recall below this floor are never chosen.
RECALL_FLOOR = 0.95


def batch_size_key(n: int) -> str:
    """Router cost-table key: log2 bucket of a batch size (``b3`` = 4–7)."""
    return f"b{max(int(n), 1).bit_length()}"


class Router:
    """Cost-model decision maker over a calibration profile."""

    def __init__(self, profile: CalibrationProfile | None = None,
                 enabled: bool = True,
                 recall_floor: float = RECALL_FLOOR) -> None:
        self.profile = profile
        self.enabled = bool(enabled)
        self.recall_floor = float(recall_floor)

    # -------------------------------------------------------------- #
    # Deciding
    # -------------------------------------------------------------- #
    def decide(self, domain: str, key: str, options: tuple[str, ...],
               default: str) -> str:
        """Pick one of ``options`` for ``(domain, key)``; see module doc."""
        profile = self.profile
        if not self.enabled or profile is None:
            return default
        cell = profile.cell(domain, key)
        if not cell:
            choice = default
        else:
            best: str | None = None
            best_cost = float("inf")
            for option in options:
                entry = cell.get(option)
                if entry is None:
                    continue
                if (entry.recall is not None
                        and entry.recall < self.recall_floor):
                    continue
                if entry.mean_s < best_cost:
                    best = option
                    best_cost = entry.mean_s
            choice = default if best is None else best
        from repro.obs import counter

        counter("router.decisions", domain=domain, choice=choice).inc()
        return choice

    # -------------------------------------------------------------- #
    # Observing (online cost measurement)
    # -------------------------------------------------------------- #
    def observe(self, domain: str, key: str, option: str,
                seconds: float) -> None:
        """Record one measured cost sample into the obs registry."""
        from repro.router.costmodel import record_cost

        record_cost(domain, key, option, seconds)

    def timed(self, domain: str, key: str, option: str) -> "_Timed":
        """Context manager: times the body and records it via observe."""
        return _Timed(self, domain, key, option)


class _Timed:
    __slots__ = ("_router", "_labels", "_start")

    def __init__(self, router: Router, domain: str, key: str,
                 option: str) -> None:
        self._router = router
        self._labels = (domain, key, option)
        self._start = 0.0

    def __enter__(self) -> "_Timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._router.observe(*self._labels,
                             time.perf_counter() - self._start)


#: A shared always-default router, returned whenever routing is off.
DISABLED = Router(profile=None, enabled=False)

_LOCK = threading.Lock()
_OVERRIDE: Router | None = None
#: ``(raw REPRO_ROUTER, raw REPRO_ROUTER_PROFILE) → Router`` cache so the
#: hot path pays two env reads + a dict probe, not a JSON load per call.
_CACHE: dict[tuple[str | None, str | None], Router] = {}


def set_router(router: Router | None) -> None:
    """Install a programmatic router (``None`` reverts to the env)."""
    global _OVERRIDE
    with _LOCK:
        _OVERRIDE = router
        _CACHE.clear()


def active_router() -> Router:
    """The process-wide router: override > env-configured > disabled.

    With ``REPRO_ROUTER`` truthy the profile at
    :func:`~repro.router.profile.default_profile_path` is loaded once and
    cached against the *raw* env values, so flipping either variable at
    runtime takes effect on the next call.  A missing profile file is a
    normal cold start (routing enabled, every decision the default); a
    corrupt or wrong-schema profile raises loudly.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    environ = os.environ
    cache_key = (environ.get(ROUTER_ENV), environ.get("REPRO_ROUTER_PROFILE"))
    router = _CACHE.get(cache_key)
    if router is not None:
        return router
    from repro.utils.envflags import env_bool
    with _LOCK:
        router = _CACHE.get(cache_key)
        if router is not None:
            return router
        if not env_bool(ROUTER_ENV, False):
            router = DISABLED
        else:
            try:
                profile = CalibrationProfile.load(default_profile_path())
            except FileNotFoundError:
                profile = None  # cold start: route everything to defaults
            except ProfileError:
                raise
            router = Router(profile=profile, enabled=True)
        _CACHE[cache_key] = router
        return router


__all__ = [
    "ROUTER_ENV",
    "RECALL_FLOOR",
    "batch_size_key",
    "Router",
    "DISABLED",
    "active_router",
    "set_router",
]
