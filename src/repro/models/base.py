"""Common interface for video backbones."""

from __future__ import annotations

from repro.nn import Module, Tensor


class VideoBackbone(Module):
    """A network mapping a video batch ``(B, C, T, H, W)`` to ``(B, D)``.

    Subclasses must set :attr:`out_features` at construction time so heads
    can be wired without a dry-run forward pass.
    """

    out_features: int

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def validate_input(self, x: Tensor) -> None:
        """Raise a clear error for mis-shaped inputs."""
        if x.ndim != 5:
            raise ValueError(
                f"{type(self).__name__} expects (B, C, T, H, W); got shape {x.shape}"
            )
