"""Feature head: backbone features flattened to the retrieval embedding.

The paper: "The features are flattened as a vector with a size of 768×1"
— a fully-connected projection on top of the backbone.  The embedding
dimension is a parameter (the paper sweeps [256, 512, 768, 1024] for the
surrogate in Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, Module, Tensor, no_grad
from repro.nn import functional as F
from repro.models.base import VideoBackbone
from repro.utils.seeding import seeded_rng
from repro.video.types import Video, to_model_input


class FeatureExtractor(Module):
    """``Fea_ρ(v)``: backbone + linear projection (+ optional ℓ2 normalize)."""

    def __init__(self, backbone: VideoBackbone, feature_dim: int = 768,
                 normalize: bool = True, rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.backbone = backbone
        self.feature_dim = int(feature_dim)
        self.normalize = bool(normalize)
        self.projection = Linear(backbone.out_features, self.feature_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Embed a batch ``(B, C, T, H, W)`` into ``(B, feature_dim)``."""
        features = self.projection(self.backbone(x))
        if self.normalize:
            features = F.l2_normalize(features, axis=1)
        return features

    # -------------------------------------------------------------- #
    # Video-level conveniences
    # -------------------------------------------------------------- #
    def embed_videos(self, videos: Video | list[Video],
                     batch_size: int = 16) -> np.ndarray:
        """Embed videos without building a graph; returns ``(B, D)`` array."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if isinstance(videos, Video):
            videos = [videos]
        if not videos:
            return np.zeros((0, self.feature_dim))
        # Convert pixels once up front; chunks are views of one array.
        inputs = to_model_input(videos)
        was_training = self.training
        if was_training:
            self.eval()
        chunks = []
        try:
            with no_grad():
                for start in range(0, len(videos), batch_size):
                    batch = inputs[start : start + batch_size]
                    chunks.append(self.forward(Tensor(batch)).data)
        finally:
            if was_training:
                self.train()
        return np.concatenate(chunks, axis=0)

    def embed_tensor(self, x: Tensor) -> Tensor:
        """Differentiable embedding of an already-built input tensor."""
        return self.forward(x)
