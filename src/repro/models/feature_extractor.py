"""Feature head: backbone features flattened to the retrieval embedding.

The paper: "The features are flattened as a vector with a size of 768×1"
— a fully-connected projection on top of the backbone.  The embedding
dimension is a parameter (the paper sweeps [256, 512, 768, 1024] for the
surrogate in Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, Module, Tensor, no_grad
from repro.nn import functional as F
from repro.models.base import VideoBackbone
from repro.utils.seeding import seeded_rng
from repro.video.types import Video, to_model_input


class FeatureExtractor(Module):
    """``Fea_ρ(v)``: backbone + linear projection (+ optional ℓ2 normalize)."""

    def __init__(self, backbone: VideoBackbone, feature_dim: int = 768,
                 normalize: bool = True, rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.backbone = backbone
        self.feature_dim = int(feature_dim)
        self.normalize = bool(normalize)
        self.projection = Linear(backbone.out_features, self.feature_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Embed a batch ``(B, C, T, H, W)`` into ``(B, feature_dim)``."""
        features = self.projection(self.backbone(x))
        if self.normalize:
            features = F.l2_normalize(features, axis=1)
        return features

    # -------------------------------------------------------------- #
    # Video-level conveniences
    # -------------------------------------------------------------- #
    def embed_videos(self, videos: Video | list[Video],
                     batch_size: int = 16,
                     fuse: bool | None = None) -> np.ndarray:
        """Embed videos without building a graph; returns ``(B, D)`` array.

        ``fuse=True`` routes each forward through the trace-and-fuse
        replay engine (:mod:`repro.nn.jit`): the first call per batch
        shape records a replay schedule, later calls skip graph
        construction entirely.  Replays are bit-identical to eager;
        ``None`` follows the global ``REPRO_NN_FUSE`` switch.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if isinstance(videos, Video):
            videos = [videos]
        if not videos:
            return np.zeros((0, self.feature_dim))
        # Convert pixels once up front; chunks are views of one array.
        inputs = to_model_input(videos)
        was_training = self.training
        if was_training:
            self.eval()
        run = self._fused_forward() if self._resolve_fuse(fuse) \
            else self.forward
        chunks = []
        try:
            with no_grad():
                for start in range(0, len(videos), batch_size):
                    batch = inputs[start : start + batch_size]
                    chunks.append(run(Tensor(batch)).data)
        finally:
            if was_training:
                self.train()
        return np.concatenate(chunks, axis=0)

    @staticmethod
    def _resolve_fuse(fuse: bool | None) -> bool:
        if fuse is not None:
            return bool(fuse)
        from repro.nn import jit

        return jit.enabled()

    def _fused_forward(self):
        """The lazily-built :class:`~repro.nn.jit.CompiledModule` wrapper."""
        compiled = self.__dict__.get("_jit_compiled")
        if compiled is None:
            from repro.nn import jit

            compiled = jit.compile(self)
            self.__dict__["_jit_compiled"] = compiled
        return compiled

    def embed_tensor(self, x: Tensor) -> Tensor:
        """Differentiable embedding of an already-built input tensor."""
        return self.forward(x)
