"""C3D: plain stacked 3-D convolutions (Tran et al., ICCV'15).

The paper uses C3D as the default surrogate backbone ("a typical video
retrieval backbone from [43]").  This implementation keeps the C3D motif —
homogeneous 3×3×3 convolutions with interleaved pooling — at configurable
width.
"""

from __future__ import annotations

from repro.nn import (
    AdaptiveAvgPool3d,
    BatchNorm,
    Conv3d,
    Flatten,
    MaxPool3d,
    ReLU,
    Sequential,
    Tensor,
)
from repro.models.base import VideoBackbone
from repro.utils.seeding import seeded_rng


class C3D(VideoBackbone):
    """Stacked 3×3×3 convolutional video encoder."""

    def __init__(self, in_channels: int = 3, width: int = 8, rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        w = width
        self.features = Sequential(
            Conv3d(in_channels, w, 3, padding=1, rng=rng),
            BatchNorm(w),
            ReLU(),
            MaxPool3d((1, 2, 2)),
            Conv3d(w, 2 * w, 3, padding=1, rng=rng),
            BatchNorm(2 * w),
            ReLU(),
            MaxPool3d((2, 2, 2)),
            Conv3d(2 * w, 4 * w, 3, padding=1, rng=rng),
            BatchNorm(4 * w),
            ReLU(),
            MaxPool3d((2, 2, 2)),
            AdaptiveAvgPool3d(),
            Flatten(),
        )
        self.out_features = 4 * w

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        return self.features(x)
