"""TPN: temporal pyramid network (Yang et al., CVPR'20).

The defining motif is a *pyramid of temporal rates*: the same spatial
encoder output is aggregated at several temporal resolutions (here rates
1, 2 and 4 via temporal average pooling), each refined by its own 3-D
convolution, then fused by concatenation.
"""

from __future__ import annotations

from repro.nn import (
    AdaptiveAvgPool3d,
    BatchNorm,
    Conv3d,
    Flatten,
    MaxPool3d,
    ReLU,
    Sequential,
    Tensor,
    concatenate,
)
from repro.nn import functional as F
from repro.models.base import VideoBackbone
from repro.utils.seeding import seeded_rng


class TPN(VideoBackbone):
    """Temporal-pyramid video encoder."""

    def __init__(self, in_channels: int = 3, width: int = 8,
                 rates: tuple[int, ...] = (1, 2, 4), rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.rates = tuple(int(r) for r in rates)
        self.stem = Sequential(
            Conv3d(in_channels, width, 3, padding=1, bias=False, rng=rng),
            BatchNorm(width),
            ReLU(),
            MaxPool3d((1, 2, 2)),
            Conv3d(width, 2 * width, 3, padding=1, bias=False, rng=rng),
            BatchNorm(2 * width),
            ReLU(),
            MaxPool3d((1, 2, 2)),
        )
        self.branches = []
        for i, rate in enumerate(self.rates):
            branch = Sequential(
                Conv3d(2 * width, 2 * width, (3, 1, 1), padding=(1, 0, 0),
                       bias=False, rng=rng),
                BatchNorm(2 * width),
                ReLU(),
                AdaptiveAvgPool3d(),
                Flatten(),
            )
            setattr(self, f"branch{i}", branch)
            self.branches.append(branch)
        self.out_features = 2 * width * len(self.rates)

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        base = self.stem(x)
        levels = []
        for rate, branch in zip(self.rates, self.branches):
            level = base
            if rate > 1:
                level = F.avg_pool3d(level, (rate, 1, 1), (rate, 1, 1))
            levels.append(branch(level))
        return concatenate(levels, axis=1)
