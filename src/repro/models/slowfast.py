"""SlowFast: dual-pathway video encoder (Feichtenhofer et al., ICCV'19).

The defining motif is the asymmetric two-pathway design: a *slow* pathway
sees temporally sub-sampled frames with wide channels (semantic content),
a *fast* pathway sees every frame with narrow channels (motion), and the
pathways are fused before the head.
"""

from __future__ import annotations

from repro.nn import (
    AdaptiveAvgPool3d,
    BatchNorm,
    Conv3d,
    Flatten,
    MaxPool3d,
    ReLU,
    Sequential,
    Tensor,
    concatenate,
)
from repro.models.base import VideoBackbone
from repro.utils.seeding import seeded_rng


class SlowFast(VideoBackbone):
    """Two-pathway slow/fast video encoder."""

    def __init__(self, in_channels: int = 3, width: int = 8, alpha: int = 4,
                 rng=None) -> None:
        super().__init__()
        if alpha < 1:
            raise ValueError("alpha (slow-path temporal stride) must be >= 1")
        rng = seeded_rng(rng)
        self.alpha = int(alpha)
        slow_width = 2 * width
        fast_width = width // 2 or 1
        self.slow_path = Sequential(
            Conv3d(in_channels, slow_width, (1, 3, 3), padding=(0, 1, 1),
                   bias=False, rng=rng),
            BatchNorm(slow_width),
            ReLU(),
            MaxPool3d((1, 2, 2)),
            Conv3d(slow_width, 2 * slow_width, (1, 3, 3), padding=(0, 1, 1),
                   bias=False, rng=rng),
            BatchNorm(2 * slow_width),
            ReLU(),
            AdaptiveAvgPool3d(),
            Flatten(),
        )
        self.fast_path = Sequential(
            Conv3d(in_channels, fast_width, (3, 3, 3), padding=1, bias=False,
                   rng=rng),
            BatchNorm(fast_width),
            ReLU(),
            MaxPool3d((1, 2, 2)),
            Conv3d(fast_width, 2 * fast_width, (3, 3, 3), padding=1, bias=False,
                   rng=rng),
            BatchNorm(2 * fast_width),
            ReLU(),
            AdaptiveAvgPool3d(),
            Flatten(),
        )
        self.out_features = 2 * slow_width + 2 * fast_width

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        slow_input = x[:, :, :: self.alpha]
        slow = self.slow_path(slow_input)
        fast = self.fast_path(x)
        return concatenate([slow, fast], axis=1)
