"""Deep-hashing retrieval head (HashNet-style, paper ref [42]).

The paper's Figure-1 system is modeled on HashNet: embeddings are driven
toward binary codes and retrieval uses Hamming distance.  This module
provides the continuation-based head: at train time codes pass through a
``tanh(β·x)`` relaxation whose sharpness β can be scheduled upward; at
retrieval time codes are binarized to ±1 and compared with
:func:`repro.retrieval.similarity.hamming`.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import VideoBackbone
from repro.models.feature_extractor import FeatureExtractor
from repro.nn import Linear, Module, Tensor, no_grad
from repro.utils.seeding import seeded_rng
from repro.video.types import Video, to_model_input


class HashingHead(FeatureExtractor):
    """Backbone + projection + tanh continuation toward binary codes.

    Subclasses :class:`FeatureExtractor` so it slots into every trainer,
    engine, and attack unchanged; ``feature_dim`` becomes the code length
    in bits.
    """

    def __init__(self, backbone: VideoBackbone, code_bits: int = 32,
                 beta: float = 1.0, rng=None) -> None:
        super().__init__(backbone, feature_dim=code_bits, normalize=False,
                         rng=rng)
        self.code_bits = int(code_bits)
        self.beta = float(beta)

    def forward(self, x: Tensor) -> Tensor:
        """Relaxed codes in ``(−1, 1)``: ``tanh(β · proj(backbone(x)))``."""
        logits = self.projection(self.backbone(x))
        return (logits * self.beta).tanh()

    def sharpen(self, factor: float = 2.0) -> None:
        """Continuation step: increase β so codes approach ±1."""
        self.beta *= float(factor)

    def binary_codes(self, videos: Video | list[Video],
                     batch_size: int = 16) -> np.ndarray:
        """Hard ±1 codes for retrieval-time indexing."""
        relaxed = self.embed_videos(videos, batch_size=batch_size)
        codes = np.sign(relaxed)
        codes[codes == 0] = 1.0
        return codes
