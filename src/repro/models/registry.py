"""Backbone registry and factory helpers."""

from __future__ import annotations

from typing import Callable

from repro.models.base import VideoBackbone
from repro.models.c3d import C3D
from repro.models.feature_extractor import FeatureExtractor
from repro.models.i3d import I3D
from repro.models.resnet import resnet18, resnet34
from repro.models.slowfast import SlowFast
from repro.models.tpn import TPN

#: name → constructor accepting (in_channels=…, width=…, rng=…).
BACKBONES: dict[str, Callable[..., VideoBackbone]] = {
    "c3d": C3D,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "i3d": I3D,
    "tpn": TPN,
    "slowfast": SlowFast,
}

#: Backbones the paper uses as victims / surrogates.
VICTIM_BACKBONES = ("i3d", "tpn", "slowfast", "resnet34")
SURROGATE_BACKBONES = ("c3d", "resnet18")


def create_backbone(name: str, **kwargs) -> VideoBackbone:
    """Instantiate a backbone by its paper name (case-insensitive)."""
    key = name.lower()
    if key not in BACKBONES:
        raise KeyError(f"unknown backbone {name!r}; available: {sorted(BACKBONES)}")
    return BACKBONES[key](**kwargs)


def create_feature_extractor(name: str, feature_dim: int = 768,
                             normalize: bool = True, width: int = 8,
                             rng=None, **backbone_kwargs) -> FeatureExtractor:
    """Build backbone + projection head in one call."""
    backbone = create_backbone(name, width=width, rng=rng, **backbone_kwargs)
    return FeatureExtractor(backbone, feature_dim=feature_dim,
                            normalize=normalize, rng=rng)
