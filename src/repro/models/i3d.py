"""I3D: inflated 3-D inception-style encoder (Carreira & Zisserman, CVPR'17).

The defining motif kept here is the *mixed temporal receptive field*:
each block runs parallel 3-D convolution branches with different temporal
kernel extents (1 and 3), concatenating their outputs — the "inflated
Inception" idea at reduced width.
"""

from __future__ import annotations

from repro.nn import (
    AdaptiveAvgPool3d,
    BatchNorm,
    Conv3d,
    Flatten,
    MaxPool3d,
    Module,
    ReLU,
    Sequential,
    Tensor,
    concatenate,
)
from repro.models.base import VideoBackbone
from repro.utils.seeding import seeded_rng


class InflatedMixedBlock(Module):
    """Two parallel 3-D conv branches with temporal extents 1 and 3."""

    def __init__(self, in_channels: int, branch_channels: int, rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.branch_spatial = Sequential(
            Conv3d(in_channels, branch_channels, (1, 3, 3), padding=(0, 1, 1),
                   bias=False, rng=rng),
            BatchNorm(branch_channels),
            ReLU(),
        )
        self.branch_temporal = Sequential(
            Conv3d(in_channels, branch_channels, (3, 3, 3), padding=1,
                   bias=False, rng=rng),
            BatchNorm(branch_channels),
            ReLU(),
        )
        self.out_channels = 2 * branch_channels

    def forward(self, x: Tensor) -> Tensor:
        return concatenate(
            [self.branch_spatial(x), self.branch_temporal(x)], axis=1
        )


class I3D(VideoBackbone):
    """Reduced-width inflated-3D encoder."""

    def __init__(self, in_channels: int = 3, width: int = 8, rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.stem = Sequential(
            Conv3d(in_channels, width, (3, 3, 3), padding=1, bias=False, rng=rng),
            BatchNorm(width),
            ReLU(),
            MaxPool3d((1, 2, 2)),
        )
        self.mixed1 = InflatedMixedBlock(width, width, rng=rng)
        self.pool1 = MaxPool3d((2, 2, 2))
        self.mixed2 = InflatedMixedBlock(self.mixed1.out_channels, 2 * width, rng=rng)
        self.head = Sequential(AdaptiveAvgPool3d(), Flatten())
        self.out_features = self.mixed2.out_channels

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        out = self.stem(x)
        out = self.pool1(self.mixed1(out))
        out = self.mixed2(out)
        return self.head(out)
