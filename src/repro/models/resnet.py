"""ResNet-18/34 frame encoders with an LSTM temporal head.

Mirrors the paper's Figure-1 retrieval model ("a long short-term memory
and a stacked convolution neural network for temporal and spatial feature
extraction"): a residual 2-D CNN encodes each frame, an LSTM aggregates
the frame features over time, and the final hidden state is the video
feature.  ResNet-34 differs from ResNet-18 by stage depth, as in He et
al. (CVPR'16).
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BatchNorm,
    Conv2d,
    Identity,
    LSTM,
    Module,
    ReLU,
    Sequential,
    Tensor,
)
from repro.models.base import VideoBackbone
from repro.utils.seeding import seeded_rng


class BasicBlock(Module):
    """Standard two-convolution residual block with optional downsample."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride,
                            padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False,
                       rng=rng),
                BatchNorm(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class ResNetLSTM(VideoBackbone):
    """Per-frame residual CNN + temporal LSTM video encoder.

    Parameters
    ----------
    stage_depths:
        Number of :class:`BasicBlock`s per stage; ``(2, 2)`` gives the
        ResNet-18-flavoured encoder, ``(3, 4)`` the ResNet-34 flavour.
    """

    def __init__(self, stage_depths: tuple[int, ...] = (2, 2),
                 in_channels: int = 3, width: int = 8, hidden: int | None = None,
                 rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.stem = Sequential(
            Conv2d(in_channels, width, 3, stride=2, padding=1, bias=False, rng=rng),
            BatchNorm(width),
            ReLU(),
        )
        blocks: list[Module] = []
        channels = width
        for stage, depth in enumerate(stage_depths):
            out_channels = width * (2**stage)
            for block_index in range(depth):
                stride = 2 if (stage > 0 and block_index == 0) else 1
                blocks.append(BasicBlock(channels, out_channels, stride, rng=rng))
                channels = out_channels
        self.blocks = Sequential(*blocks)
        hidden = hidden if hidden is not None else 2 * channels
        self.temporal = LSTM(channels, hidden, rng=rng)
        self._frame_channels = channels
        self.out_features = hidden

    def _encode_frames(self, x: Tensor) -> Tensor:
        """Run the 2-D encoder on every frame: (B,C,T,H,W) → (B,T,D)."""
        batch, channels, frames, height, width = x.shape
        per_frame = x.transpose(0, 2, 1, 3, 4).reshape(batch * frames, channels,
                                                       height, width)
        encoded = self.blocks(self.stem(per_frame))
        pooled = encoded.mean(axis=(2, 3))  # (B*T, C')
        return pooled.reshape(batch, frames, self._frame_channels)

    def forward(self, x: Tensor) -> Tensor:
        self.validate_input(x)
        frame_features = self._encode_frames(x)
        _, (h_final, _) = self.temporal(frame_features)
        return h_final


def resnet18(in_channels: int = 3, width: int = 8, rng=None) -> ResNetLSTM:
    """ResNet-18-flavoured CNN+LSTM encoder (surrogate backbone in the paper)."""
    return ResNetLSTM((2, 2), in_channels=in_channels, width=width, rng=rng)


def resnet34(in_channels: int = 3, width: int = 8, rng=None) -> ResNetLSTM:
    """ResNet-34-flavoured CNN+LSTM encoder (victim backbone in the paper)."""
    return ResNetLSTM((3, 4), in_channels=in_channels, width=width, rng=rng)
