"""Video feature-extraction backbones and the retrieval feature head.

The paper evaluates four victim backbones (I3D, TPN, SlowFast, ResNet34)
and two surrogate backbones (C3D, ResNet18).  Each is implemented here at
configurable width, preserving its defining architectural motif — see
DESIGN.md §2 for the scale substitution.
"""

from repro.models.base import VideoBackbone
from repro.models.c3d import C3D
from repro.models.resnet import ResNetLSTM, resnet18, resnet34
from repro.models.i3d import I3D
from repro.models.tpn import TPN
from repro.models.slowfast import SlowFast
from repro.models.feature_extractor import FeatureExtractor
from repro.models.hashing import HashingHead
from repro.models.registry import create_backbone, create_feature_extractor, BACKBONES

__all__ = [
    "VideoBackbone",
    "C3D",
    "ResNetLSTM",
    "resnet18",
    "resnet34",
    "I3D",
    "TPN",
    "SlowFast",
    "FeatureExtractor",
    "HashingHead",
    "create_backbone",
    "create_feature_extractor",
    "BACKBONES",
]
