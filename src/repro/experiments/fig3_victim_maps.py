"""Figure 3: mAPs of victim retrieval systems (backbone × loss × dataset)."""

from __future__ import annotations

from repro.experiments import fixtures
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.report import TableResult
from repro.losses.registry import METRIC_LOSSES
from repro.metrics.ranking import evaluate_map
from repro.models.registry import VICTIM_BACKBONES


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        backbones: tuple[str, ...] = VICTIM_BACKBONES,
        losses: tuple[str, ...] = METRIC_LOSSES,
        max_queries: int | None = None) -> TableResult:
    """Train every victim combination and measure retrieval mAP.

    ``max_queries`` limits the number of test queries per cell (speed).
    """
    table = TableResult(
        "Figure 3 — victim mAP by backbone and loss",
        ["dataset", "backbone", "loss", "mAP"],
    )
    from repro.experiments.plotting import ascii_bar_chart

    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        queries = dataset.test if max_queries is None else \
            dataset.test[:max_queries]
        labels, values = [], []
        for backbone in backbones:
            for loss in losses:
                victim = fixtures.victim_for(dataset, backbone, loss, scale)
                value = evaluate_map(victim.engine, queries, m=scale.m)
                table.add_row(dataset_name, backbone, loss, value)
                labels.append(f"{backbone}/{loss}")
                values.append(value)
        table.appendix.append(
            ascii_bar_chart(labels, values, title=f"mAP — {dataset_name}")
        )
    return table
