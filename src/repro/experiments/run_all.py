"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.experiments.run_all                # full grid
    python -m repro.experiments.run_all --quick        # smoke scale
    python -m repro.experiments.run_all table2 fig5    # subset
    python -m repro.experiments.run_all --out results  # output directory

Formatted tables are printed and written to ``<out>/<name>.txt``.  Each
run also emits an observability sidecar under ``<out>/obs/``: a metrics
JSON (query counts, span aggregates) and a ``chrome://tracing`` event
file, both scoped to that one experiment (``--no-obs`` disables them).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import DEFAULT_SCALE, QUICK_SCALE
from repro.obs import (
    get_registry,
    get_tracer,
    span,
    write_chrome_trace,
    write_metrics_json,
)
from repro.experiments import (
    fig3_victim_maps,
    fig4_surrogate_maps,
    fig5_query_curves,
    table2_attack_comparison,
    table3_surrogate_size,
    table4_victim_loss,
    table5_k_sweep,
    table6_n_sweep,
    table7_tau_sweep,
    table8_iternumh,
    table9_transferability,
    table10_defenses,
)

RUNNERS = {
    "fig3": fig3_victim_maps.run,
    "fig4": fig4_surrogate_maps.run,
    "table2": table2_attack_comparison.run,
    "table3": table3_surrogate_size.run,
    "table4": table4_victim_loss.run,
    "table5": table5_k_sweep.run,
    "table6": table6_n_sweep.run,
    "fig5": fig5_query_curves.run,
    "table7": table7_tau_sweep.run,
    "table8": table8_iternumh.run,
    "table9": table9_transferability.run,
    "table10": table10_defenses.run,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help=f"subset to run (default: all of {sorted(RUNNERS)})")
    parser.add_argument("--quick", action="store_true",
                        help="use the smoke-test scale")
    parser.add_argument("--out", default="results",
                        help="output directory for formatted tables")
    parser.add_argument("--no-obs", action="store_true",
                        help="skip the per-experiment metrics/trace sidecars")
    args = parser.parse_args(argv)

    names = args.experiments or list(RUNNERS)
    unknown = [name for name in names if name not in RUNNERS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; "
                     f"available: {sorted(RUNNERS)}")

    scale = QUICK_SCALE if args.quick else DEFAULT_SCALE
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    for name in names:
        # Scope the sidecar to this one experiment: zero the counters and
        # restart the trace before each runner.
        get_registry().reset()
        get_tracer().reset()
        start = time.perf_counter()
        with span(f"experiment.{name}", quick=args.quick):
            table = RUNNERS[name](scale)
        elapsed = time.perf_counter() - start
        text = table.format()
        print(f"\n{text}\n[{name} finished in {elapsed:.1f}s]")
        (out_dir / f"{name}.txt").write_text(text + "\n")
        if not args.no_obs:
            obs_out = out_dir / "obs"
            metrics_path = write_metrics_json(
                obs_out / f"{name}.metrics.json",
                extra={"experiment": name, "quick": args.quick,
                       "elapsed_s": elapsed},
            )
            trace_path = write_chrome_trace(obs_out / f"{name}.trace.json")
            print(f"[obs] {metrics_path} {trace_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
