"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.experiments.run_all                # full grid
    python -m repro.experiments.run_all --quick        # smoke scale
    python -m repro.experiments.run_all table2 fig5    # subset
    python -m repro.experiments.run_all --out results  # output directory

Formatted tables are printed and written to ``<out>/<name>.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import DEFAULT_SCALE, QUICK_SCALE
from repro.experiments import (
    fig3_victim_maps,
    fig4_surrogate_maps,
    fig5_query_curves,
    table2_attack_comparison,
    table3_surrogate_size,
    table4_victim_loss,
    table5_k_sweep,
    table6_n_sweep,
    table7_tau_sweep,
    table8_iternumh,
    table9_transferability,
    table10_defenses,
)

RUNNERS = {
    "fig3": fig3_victim_maps.run,
    "fig4": fig4_surrogate_maps.run,
    "table2": table2_attack_comparison.run,
    "table3": table3_surrogate_size.run,
    "table4": table4_victim_loss.run,
    "table5": table5_k_sweep.run,
    "table6": table6_n_sweep.run,
    "fig5": fig5_query_curves.run,
    "table7": table7_tau_sweep.run,
    "table8": table8_iternumh.run,
    "table9": table9_transferability.run,
    "table10": table10_defenses.run,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help=f"subset to run (default: all of {sorted(RUNNERS)})")
    parser.add_argument("--quick", action="store_true",
                        help="use the smoke-test scale")
    parser.add_argument("--out", default="results",
                        help="output directory for formatted tables")
    args = parser.parse_args(argv)

    names = args.experiments or list(RUNNERS)
    unknown = [name for name in names if name not in RUNNERS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; "
                     f"available: {sorted(RUNNERS)}")

    scale = QUICK_SCALE if args.quick else DEFAULT_SCALE
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    for name in names:
        start = time.perf_counter()
        table = RUNNERS[name](scale)
        elapsed = time.perf_counter() - start
        text = table.format()
        print(f"\n{text}\n[{name} finished in {elapsed:.1f}s]")
        (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
