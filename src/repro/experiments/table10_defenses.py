"""Table X: attack detection rate (%) of two defenses.

Feature squeezing [26] and Noise2Self [27] detectors are calibrated on
clean queries at a fixed false-positive budget, then applied to the AEs
each attack produces.  Paper finding: sparse attacks (DUO, HEU) evade
feature squeezing far better than Vanilla; TIMI's smooth dense
perturbations evade Noise2Self best.
"""

from __future__ import annotations

from repro.defenses.detector import SqueezeDetector, detection_rate
from repro.defenses.feature_squeezing import FeatureSqueezer
from repro.defenses.noise2self import Noise2SelfDenoiser
from repro.experiments import fixtures
from repro.experiments.attack_zoo import ATTACK_ROWS, attack_factory
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import attack_pairs, evaluate_attack
from repro.experiments.report import TableResult


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        attacks: tuple[str, ...] = ATTACK_ROWS,
        victim_backbone: str = "i3d", victim_loss: str = "arcface",
        calibration_queries: int = 12,
        false_positive_rate: float = 0.05) -> TableResult:
    """Measure per-attack detection rates under both defenses."""
    table = TableResult(
        "Table X — attack detection rate of two defenses",
        ["dataset", "attack", "feature_squeezing", "noise2self"],
    )
    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        victim = fixtures.victim_for(dataset, victim_backbone, victim_loss,
                                     scale)
        pairs = attack_pairs(dataset, scale)
        k = scale.k_for(pairs[0][0].pixels.size)
        surrogates = {
            "c3d": fixtures.surrogate_for(dataset, victim, "c3d", scale),
            "resnet18": fixtures.surrogate_for(dataset, victim, "resnet18",
                                               scale),
        }
        clean = dataset.test[:calibration_queries]
        detectors = {
            "feature_squeezing": SqueezeDetector(
                victim.engine, FeatureSqueezer(), m=scale.m),
            "noise2self": SqueezeDetector(
                victim.engine, Noise2SelfDenoiser(), m=scale.m),
        }
        for detector in detectors.values():
            detector.fit(clean, false_positive_rate=false_positive_rate)

        for attack_name in attacks:
            overrides = {}
            if attack_name.startswith("timi-"):
                overrides["n"] = scale.num_frames
            factory = attack_factory(attack_name, victim, surrogates, scale,
                                     k, **overrides)
            outcome = evaluate_attack(factory, victim, pairs,
                                      keep_results=True)
            adversarials = [result.adversarial for result in outcome.results]
            table.add_row(
                dataset_name, attack_name,
                100.0 * detection_rate(detectors["feature_squeezing"],
                                       adversarials),
                100.0 * detection_rate(detectors["noise2self"], adversarials),
            )
    table.notes.append("rates in percent; detectors calibrated at "
                       "5% false-positive rate on clean queries")
    return table
