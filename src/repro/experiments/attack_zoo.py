"""Attack factories shared by the experiment runners.

Centralizes how each named attack of the paper's tables is instantiated
from an :class:`ExperimentScale`, a victim, and surrogates, so that every
table compares identically configured attacks.

Since the strategy redesign every row resolves through
:func:`repro.attacks.registry.build_attack` with an
:class:`~repro.attacks.config.AttackConfig` — the table runners no
longer know the legacy per-attack constructors.  The configurations are
bit-identical to the pre-redesign classes (see the
``attacks.composed_vs_legacy`` qa oracle).
"""

from __future__ import annotations

from typing import Callable

from repro.attacks.base import Attack
from repro.attacks.config import AttackConfig
from repro.attacks.registry import build_attack
from repro.experiments.config import ExperimentScale
from repro.models.feature_extractor import FeatureExtractor
from repro.training.victim import VictimSystem
from repro.utils.seeding import SeedSequence

#: Row order used by Table II.
ATTACK_ROWS = (
    "timi-c3d",
    "timi-res18",
    "heu-nes",
    "heu-sim",
    "vanilla",
    "duo-c3d",
    "duo-res18",
)


def attack_factory(name: str, victim: VictimSystem,
                   surrogates: dict[str, FeatureExtractor],
                   scale: ExperimentScale, k: int,
                   **overrides) -> Callable[[int], Attack]:
    """Return a per-pair factory for the named attack.

    ``surrogates`` maps surrogate backbone names (``"c3d"``, ``"resnet18"``)
    to trained extractors.  ``overrides`` tweak individual attack knobs
    (used by the sweep tables, e.g. ``n=…``, ``tau=…``, ``iter_num_h=…``).
    """
    seeds = SeedSequence(scale.seed)
    params = dict(
        n=scale.n, tau=scale.tau, k=k,
        iter_num_q=scale.iter_num_q, iter_num_h=scale.iter_num_h,
        constraint="linf",
    )
    params.update(overrides)

    def rng_for(pair: int):
        return seeds.rng("attack", name, pair)

    if name.startswith("duo-"):
        surrogate = surrogates[_surrogate_key(name)]
        config = AttackConfig(
            strategy="duo", k=params["k"], n=params["n"], tau=params["tau"],
            iterations=params["iter_num_q"], rounds=params["iter_num_h"],
            sampler={"constraint": params["constraint"],
                     "outer_iters": scale.transfer_outer_iters,
                     "theta_steps": scale.theta_steps})

        def make(pair: int) -> Attack:
            return build_attack(config, service=victim.service,
                                surrogate=surrogate, rng=rng_for(pair))
        return make

    if name.startswith("timi-"):
        surrogate = surrogates[_surrogate_key(name)]
        config = AttackConfig(strategy="timi", tau=params["tau"],
                              iterations=scale.timi_iterations)

        def make(pair: int) -> Attack:
            return build_attack(config, surrogate=surrogate)
        return make

    if name == "vanilla":
        config = AttackConfig(strategy="vanilla", k=params["k"],
                              n=params["n"], tau=params["tau"],
                              iterations=scale.query_iterations)

        def make(pair: int) -> Attack:
            return build_attack(config, service=victim.service,
                                rng=rng_for(pair))
        return make

    if name == "heu-nes":
        config = AttackConfig(strategy="heu-nes", k=params["k"],
                              n=params["n"], tau=params["tau"],
                              iterations=scale.nes_iterations,
                              feedback={"samples": scale.nes_samples})

        def make(pair: int) -> Attack:
            return build_attack(config, service=victim.service,
                                rng=rng_for(pair))
        return make

    if name == "heu-sim":
        config = AttackConfig(strategy="heu-sim", k=params["k"],
                              n=params["n"], tau=params["tau"],
                              iterations=scale.query_iterations)

        def make(pair: int) -> Attack:
            return build_attack(config, service=victim.service,
                                rng=rng_for(pair))
        return make

    raise KeyError(f"unknown attack {name!r}; known: {ATTACK_ROWS}")


def _surrogate_key(attack_name: str) -> str:
    suffix = attack_name.split("-", 1)[1]
    return {"c3d": "c3d", "res18": "resnet18"}[suffix]
