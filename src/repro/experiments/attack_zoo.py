"""Attack factories shared by the experiment runners.

Centralizes how each named attack of the paper's tables is instantiated
from an :class:`ExperimentScale`, a victim, and surrogates, so that every
table compares identically configured attacks.
"""

from __future__ import annotations

from typing import Callable

from repro.attacks.base import Attack
from repro.attacks.duo import DUOAttack
from repro.attacks.heu import HeuNesAttack, HeuSimAttack
from repro.attacks.timi import TIMIAttack
from repro.attacks.vanilla import VanillaAttack
from repro.experiments.config import ExperimentScale
from repro.models.feature_extractor import FeatureExtractor
from repro.training.victim import VictimSystem
from repro.utils.seeding import SeedSequence

#: Row order used by Table II.
ATTACK_ROWS = (
    "timi-c3d",
    "timi-res18",
    "heu-nes",
    "heu-sim",
    "vanilla",
    "duo-c3d",
    "duo-res18",
)


def attack_factory(name: str, victim: VictimSystem,
                   surrogates: dict[str, FeatureExtractor],
                   scale: ExperimentScale, k: int,
                   **overrides) -> Callable[[int], Attack]:
    """Return a per-pair factory for the named attack.

    ``surrogates`` maps surrogate backbone names (``"c3d"``, ``"resnet18"``)
    to trained extractors.  ``overrides`` tweak individual attack knobs
    (used by the sweep tables, e.g. ``n=…``, ``tau=…``, ``iter_num_h=…``).
    """
    seeds = SeedSequence(scale.seed)
    params = dict(
        n=scale.n, tau=scale.tau, k=k,
        iter_num_q=scale.iter_num_q, iter_num_h=scale.iter_num_h,
        constraint="linf",
    )
    params.update(overrides)

    def rng_for(pair: int):
        return seeds.rng("attack", name, pair)

    if name.startswith("duo-"):
        surrogate = surrogates[_surrogate_key(name)]

        def make(pair: int) -> Attack:
            return DUOAttack(
                surrogate, victim.service, k=params["k"], n=params["n"],
                tau=params["tau"], iter_num_q=params["iter_num_q"],
                iter_num_h=params["iter_num_h"],
                constraint=params["constraint"],
                transfer_outer_iters=scale.transfer_outer_iters,
                theta_steps=scale.theta_steps, rng=rng_for(pair),
            )
        return make

    if name.startswith("timi-"):
        surrogate = surrogates[_surrogate_key(name)]

        def make(pair: int) -> Attack:
            return TIMIAttack(surrogate, tau=params["tau"],
                              iterations=scale.timi_iterations)
        return make

    if name == "vanilla":
        def make(pair: int) -> Attack:
            return VanillaAttack(
                victim.service, k=params["k"], n=params["n"],
                tau=params["tau"], iterations=scale.query_iterations,
                rng=rng_for(pair),
            )
        return make

    if name == "heu-nes":
        def make(pair: int) -> Attack:
            return HeuNesAttack(
                victim.service, k=params["k"], n=params["n"],
                tau=params["tau"], iterations=scale.nes_iterations,
                samples=scale.nes_samples, rng=rng_for(pair),
            )
        return make

    if name == "heu-sim":
        def make(pair: int) -> Attack:
            return HeuSimAttack(
                victim.service, k=params["k"], n=params["n"],
                tau=params["tau"], iterations=scale.query_iterations,
                rng=rng_for(pair),
            )
        return make

    raise KeyError(f"unknown attack {name!r}; known: {ATTACK_ROWS}")


def _surrogate_key(attack_name: str) -> str:
    suffix = attack_name.split("-", 1)[1]
    return {"c3d": "c3d", "res18": "resnet18"}[suffix]
