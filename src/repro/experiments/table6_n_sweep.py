"""Table VI: DUO attack performance vs the frame budget ``n``.

Paper shape (n ∈ {2,3,4,5} of 16): AP@m rises with ``n`` then flattens;
Spa rises with ``n``.  At our 8-frame scale the sweep spans the same
relative range.
"""

from __future__ import annotations

from repro.experiments import fixtures
from repro.experiments.attack_zoo import attack_factory
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import attack_pairs, evaluate_attack
from repro.experiments.report import TableResult

N_SWEEP = (2, 4, 6, 8)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        attacks: tuple[str, ...] = ("duo-c3d", "duo-res18"),
        n_sweep: tuple[int, ...] = N_SWEEP,
        victim_backbone: str = "i3d", victim_loss: str = "arcface") -> TableResult:
    """Sweep ``n`` with the scale's ``k`` fixed (paper: k = 40K)."""
    table = TableResult(
        "Table VI — DUO vs frame budget n",
        ["dataset", "attack", "n", "AP@m", "Spa", "PScore"],
    )
    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        victim = fixtures.victim_for(dataset, victim_backbone, victim_loss,
                                     scale)
        pairs = attack_pairs(dataset, scale)
        k = scale.k_for(pairs[0][0].pixels.size)
        surrogates = {
            "c3d": fixtures.surrogate_for(dataset, victim, "c3d", scale),
            "resnet18": fixtures.surrogate_for(dataset, victim, "resnet18",
                                               scale),
        }
        for n in n_sweep:
            for attack_name in attacks:
                factory = attack_factory(attack_name, victim, surrogates,
                                         scale, k, n=n)
                outcome = evaluate_attack(factory, victim, pairs)
                table.add_row(dataset_name, attack_name, n,
                              outcome.ap_at_m, int(outcome.spa),
                              outcome.pscore)
    table.notes.append("expected shape: AP@m rises with n then flattens")
    return table
