"""Table VIII: DUO attack performance vs the outer loop count iter_numH.

Paper shape: AP@m rises with iter_numH; Spa/PScore also rise (each loop
adds perturbation support).
"""

from __future__ import annotations

from repro.experiments import fixtures
from repro.experiments.attack_zoo import attack_factory
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import attack_pairs, evaluate_attack
from repro.experiments.report import TableResult

ITER_NUM_H_SWEEP = (1, 2, 3, 4)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        attacks: tuple[str, ...] = ("duo-c3d", "duo-res18"),
        sweep: tuple[int, ...] = ITER_NUM_H_SWEEP,
        victim_backbone: str = "i3d", victim_loss: str = "arcface") -> TableResult:
    """Sweep the number of SparseTransfer↔SparseQuery loops."""
    table = TableResult(
        "Table VIII — DUO vs iter_numH",
        ["dataset", "attack", "iter_numH", "AP@m", "Spa", "PScore", "queries"],
    )
    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        victim = fixtures.victim_for(dataset, victim_backbone, victim_loss,
                                     scale)
        pairs = attack_pairs(dataset, scale)
        k = scale.k_for(pairs[0][0].pixels.size)
        surrogates = {
            "c3d": fixtures.surrogate_for(dataset, victim, "c3d", scale),
            "resnet18": fixtures.surrogate_for(dataset, victim, "resnet18",
                                               scale),
        }
        for loops in sweep:
            for attack_name in attacks:
                factory = attack_factory(attack_name, victim, surrogates,
                                         scale, k, iter_num_h=loops)
                outcome = evaluate_attack(factory, victim, pairs)
                table.add_row(dataset_name, attack_name, loops,
                              outcome.ap_at_m, int(outcome.spa),
                              outcome.pscore, int(outcome.queries))
    table.notes.append("expected shape: AP@m and Spa rise with iter_numH")
    return table
