"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TableResult:
    """A named result table: headers plus ordered rows of cells."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Verbatim blocks rendered after the table (e.g. ASCII charts).
    appendix: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def column(self, header: str) -> list[object]:
        """Extract one column by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def format(self) -> str:
        """Render the table as aligned plain text."""
        def render(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.3f}"
            return str(cell)

        grid = [self.headers] + [[render(c) for c in row] for row in self.rows]
        widths = [max(len(row[i]) for row in grid) for i in range(len(self.headers))]
        lines = [self.title, "-" * len(self.title)]
        for row_index, row in enumerate(grid):
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
            if row_index == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        for block in self.appendix:
            lines.append("")
            lines.append(block)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()
