"""Figure 4: surrogate mAP vs stolen-dataset size and feature dimension.

The paper's surrogate-dataset sizes [165, 1111, 3616, 8421] map to
stealing rounds (each round expands the crawl) and the output feature
sizes [256, 512, 768, 1024] map to scaled dimensions.  Surrogate quality
is measured, as in the paper, by the surrogate's own retrieval mAP over
the gallery.
"""

from __future__ import annotations

from repro.experiments import fixtures
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.report import TableResult
from repro.metrics.ranking import evaluate_map
from repro.retrieval.engine import RetrievalEngine

#: Scaled analogues of the paper's sweep axes.
ROUNDS_SWEEP = (1, 2, 4, 8)
FEATURE_SWEEP = (16, 32, 64)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        backbone: str = "c3d",
        rounds_sweep: tuple[int, ...] = ROUNDS_SWEEP,
        feature_sweep: tuple[int, ...] = FEATURE_SWEEP,
        victim_backbone: str = "i3d", victim_loss: str = "arcface",
        max_queries: int = 16) -> TableResult:
    """Sweep stealing rounds × feature size; report surrogate mAP."""
    table = TableResult(
        "Figure 4 — surrogate mAP vs stolen-set size and feature size",
        ["dataset", "rounds", "stolen_samples", "feature_dim", "mAP"],
    )
    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        victim = fixtures.victim_for(dataset, victim_backbone, victim_loss, scale)
        queries = dataset.test[:max_queries]
        for rounds in rounds_sweep:
            for feature_dim in feature_sweep:
                surrogate = fixtures.surrogate_for(
                    dataset, victim, backbone, scale,
                    rounds=rounds, feature_dim=feature_dim,
                )
                engine = RetrievalEngine(surrogate, num_nodes=1)
                engine.index_videos(dataset.train)
                value = evaluate_map(engine, queries, m=scale.m)
                # Approximate sample count: each crawl round touches
                # 1 + branch queries of m results each.
                samples = rounds * (1 + scale.surrogate_branch) * scale.m
                table.add_row(dataset_name, rounds, samples, feature_dim, value)
    return table
