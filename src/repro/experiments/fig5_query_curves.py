"""Figure 5: the objective ``T`` vs number of queries in SparseQuery.

Returns the (down-sampled) per-query traces of ``T`` for DUO and the
query-based baselines; a decreasing ``T`` shows the query phase
rectifying ``v_adv``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fixtures
from repro.experiments.attack_zoo import attack_factory
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import attack_pairs
from repro.experiments.report import TableResult

CURVE_ATTACKS = ("duo-c3d", "duo-res18", "vanilla", "heu-sim")


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        attacks: tuple[str, ...] = CURVE_ATTACKS,
        victim_backbone: str = "tpn", victim_loss: str = "arcface",
        checkpoints: int = 6) -> TableResult:
    """Run each attack on one pair and sample its ``T`` trace.

    ``checkpoints`` evenly spaced points of each trace become columns, so
    the table reads like the figure's series.
    """
    from repro.experiments.plotting import ascii_line_chart

    header_points = [f"T@{i}" for i in range(checkpoints)]
    table = TableResult(
        "Figure 5 — objective T vs queries (per attack)",
        ["dataset", "attack", "queries", *header_points],
    )
    for dataset_name in datasets:
        curves: dict[str, list[float]] = {}
        dataset = fixtures.dataset_for(dataset_name, scale)
        victim = fixtures.victim_for(dataset, victim_backbone, victim_loss,
                                     scale)
        pairs = attack_pairs(dataset, scale)[:1]
        k = scale.k_for(pairs[0][0].pixels.size)
        surrogates = {
            "c3d": fixtures.surrogate_for(dataset, victim, "c3d", scale),
            "resnet18": fixtures.surrogate_for(dataset, victim, "resnet18",
                                               scale),
        }
        for attack_name in attacks:
            factory = attack_factory(attack_name, victim, surrogates, scale, k)
            result = factory(0).run(*pairs[0])
            trace = result.objective_trace or [float("nan")]
            # Running minimum, as the figure plots the achieved objective.
            running = np.minimum.accumulate(np.asarray(trace, dtype=float))
            positions = np.linspace(0, len(running) - 1, checkpoints)
            sampled = [float(running[int(round(p))]) for p in positions]
            table.add_row(dataset_name, attack_name, len(running), *sampled)
            curves[attack_name] = list(running)
        table.appendix.append(
            ascii_line_chart(curves, title=f"T vs queries — {dataset_name}",
                             y_label="objective T")
        )
    table.notes.append("columns are evenly spaced checkpoints of min-so-far T")
    return table
