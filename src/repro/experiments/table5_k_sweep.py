"""Table V: DUO attack performance vs the pixel budget ``k``.

Paper shape: AP@m grows with ``k`` and saturates; Spa grows with ``k``.
The paper's k ∈ {20K, 30K, 40K, 50K} over 602K values maps to fractions
of the (scaled) video volume.
"""

from __future__ import annotations

from repro.experiments import fixtures
from repro.experiments.attack_zoo import attack_factory
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import attack_pairs, evaluate_attack
from repro.experiments.report import TableResult

K_FRACTIONS = (0.2, 0.3, 0.4, 0.5)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        attacks: tuple[str, ...] = ("duo-c3d", "duo-res18"),
        k_fractions: tuple[float, ...] = K_FRACTIONS,
        victim_backbone: str = "i3d", victim_loss: str = "arcface") -> TableResult:
    """Sweep ``k`` with the scale's ``n`` fixed (paper: n = 4)."""
    table = TableResult(
        "Table V — DUO vs pixel budget k",
        ["dataset", "attack", "k_fraction", "k", "AP@m", "Spa", "PScore"],
    )
    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        victim = fixtures.victim_for(dataset, victim_backbone, victim_loss,
                                     scale)
        pairs = attack_pairs(dataset, scale)
        total = pairs[0][0].pixels.size
        surrogates = {
            "c3d": fixtures.surrogate_for(dataset, victim, "c3d", scale),
            "resnet18": fixtures.surrogate_for(dataset, victim, "resnet18",
                                               scale),
        }
        for fraction in k_fractions:
            k = max(1, int(round(fraction * total)))
            for attack_name in attacks:
                factory = attack_factory(attack_name, victim, surrogates,
                                         scale, k)
                outcome = evaluate_attack(factory, victim, pairs)
                table.add_row(dataset_name, attack_name, fraction, k,
                              outcome.ap_at_m, int(outcome.spa),
                              outcome.pscore)
    table.notes.append("expected shape: AP@m rises with k then saturates")
    return table
