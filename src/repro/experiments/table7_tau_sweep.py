"""Table VII: DUO attack performance vs the per-value budget τ.

Paper shape: AP@m rises markedly with τ; Spa stays roughly flat while
PScore grows (magnitude, not support, scales with τ).
"""

from __future__ import annotations

from repro.experiments import fixtures
from repro.experiments.attack_zoo import attack_factory
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import attack_pairs, evaluate_attack
from repro.experiments.report import TableResult

TAU_SWEEP = (15.0, 30.0, 40.0, 50.0)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        attacks: tuple[str, ...] = ("duo-c3d", "duo-res18"),
        tau_sweep: tuple[float, ...] = TAU_SWEEP,
        victim_backbone: str = "i3d", victim_loss: str = "arcface") -> TableResult:
    """Sweep τ (8-bit units, as in Eq. 1)."""
    table = TableResult(
        "Table VII — DUO vs perturbation budget τ",
        ["dataset", "attack", "tau", "AP@m", "Spa", "PScore"],
    )
    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        victim = fixtures.victim_for(dataset, victim_backbone, victim_loss,
                                     scale)
        pairs = attack_pairs(dataset, scale)
        k = scale.k_for(pairs[0][0].pixels.size)
        surrogates = {
            "c3d": fixtures.surrogate_for(dataset, victim, "c3d", scale),
            "resnet18": fixtures.surrogate_for(dataset, victim, "resnet18",
                                               scale),
        }
        for tau in tau_sweep:
            for attack_name in attacks:
                factory = attack_factory(attack_name, victim, surrogates,
                                         scale, k, tau=tau)
                outcome = evaluate_attack(factory, victim, pairs)
                table.add_row(dataset_name, attack_name, tau,
                              outcome.ap_at_m, int(outcome.spa),
                              outcome.pscore)
    table.notes.append("expected shape: AP@m and PScore rise with tau; "
                       "Spa roughly flat")
    return table
