"""Table IX: transferability of SparseTransfer-only AEs (ℓ2 vs ℓ∞).

The AEs are generated on the surrogate *without* any queries and
evaluated against each victim backbone — isolating the transfer
component.  TIMI rows are included as the dense-transfer reference.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.duo import DUOAttack
from repro.attacks.timi import TIMIAttack
from repro.experiments import fixtures
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import attack_pairs
from repro.experiments.report import TableResult
from repro.metrics.perturbation import perturbation_summary
from repro.metrics.ranking import ap_at_m
from repro.models.registry import VICTIM_BACKBONES


def run(scale: ExperimentScale = DEFAULT_SCALE,
        dataset_name: str = "ucf101",
        victims: tuple[str, ...] = VICTIM_BACKBONES,
        surrogate_backbones: tuple[str, ...] = ("c3d", "resnet18"),
        constraints: tuple[str, ...] = ("l2", "linf"),
        victim_loss: str = "arcface") -> TableResult:
    """Generate transfer-only AEs once per surrogate and test all victims."""
    table = TableResult(
        "Table IX — SparseTransfer transferability (UCF101)",
        ["victim", "attack", "constraint", "AP@m", "Spa", "PScore"],
    )
    dataset = fixtures.dataset_for(dataset_name, scale)
    victims_built = {
        name: fixtures.victim_for(dataset, name, victim_loss, scale)
        for name in victims
    }
    reference = victims_built[victims[0]]
    pairs = attack_pairs(dataset, scale)
    k = scale.k_for(pairs[0][0].pixels.size)
    surrogates = {
        name: fixtures.surrogate_for(dataset, reference, name, scale)
        for name in surrogate_backbones
    }

    # TIMI reference rows (dense transfer).
    for surrogate_name, surrogate in surrogates.items():
        attack = TIMIAttack(surrogate, tau=scale.tau,
                            iterations=scale.timi_iterations)
        adversarials = [attack.run(v, vt) for v, vt in pairs]
        for victim_name, victim in victims_built.items():
            aps, spas, pscores = _evaluate(adversarials, victim, pairs)
            table.add_row(victim_name, f"timi-{surrogate_name}", "linf",
                          aps, spas, pscores)

    # DUO transfer-only rows under both constraints.
    for constraint in constraints:
        for surrogate_name, surrogate in surrogates.items():
            attack = DUOAttack(
                surrogate, reference.service, k=k, n=scale.n, tau=scale.tau,
                constraint=constraint,
                transfer_outer_iters=scale.transfer_outer_iters,
                theta_steps=scale.theta_steps, rng=scale.seed,
            )
            adversarials = [attack.transfer_only(v, vt) for v, vt in pairs]
            for victim_name, victim in victims_built.items():
                aps, spas, pscores = _evaluate(adversarials, victim, pairs)
                table.add_row(victim_name, f"duo-{surrogate_name}", constraint,
                              aps, spas, pscores)
    table.notes.append("transfer-only: zero queries; DUO Spa ≪ TIMI Spa")
    return table


def _evaluate(adversarials, victim, pairs):
    aps, spas, pscores = [], [], []
    for result, (original, target) in zip(adversarials, pairs):
        target_ids = victim.service.query(target).ids
        adv_ids = victim.service.query(result.adversarial).ids
        stats = perturbation_summary(result.perturbation)
        aps.append(ap_at_m(adv_ids, target_ids))
        spas.append(stats.spa)
        pscores.append(stats.pscore)
    return float(np.mean(aps)), int(np.mean(spas)), float(np.mean(pscores))
