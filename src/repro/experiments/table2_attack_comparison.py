"""Table II: attack performance of all AE attacks across victims/datasets."""

from __future__ import annotations

from repro.experiments import fixtures
from repro.experiments.attack_zoo import ATTACK_ROWS, attack_factory
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import (
    attack_pairs,
    evaluate_attack,
    without_attack_ap,
)
from repro.experiments.report import TableResult
from repro.models.registry import VICTIM_BACKBONES


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        victims: tuple[str, ...] = VICTIM_BACKBONES,
        attacks: tuple[str, ...] = ATTACK_ROWS,
        victim_loss: str = "arcface") -> TableResult:
    """Run the full attack grid and report AP@m / Spa / PScore per cell.

    TIMI rows use ``n = num_frames`` (dense over frames, as in the paper);
    the sparse attacks use the scale's ``n``.
    """
    table = TableResult(
        "Table II — attack performance of different AE attacks",
        ["dataset", "victim", "attack", "AP@m", "Spa", "PScore", "queries"],
    )
    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        surrogate_cache: dict[str, object] = {}
        for victim_name in victims:
            victim = fixtures.victim_for(dataset, victim_name, victim_loss,
                                         scale)
            pairs = attack_pairs(dataset, scale)
            k = scale.k_for(pairs[0][0].pixels.size)
            baseline = without_attack_ap(victim, pairs)
            table.add_row(dataset_name, victim_name, "w/o attack", baseline,
                          0, 0.0, 0)
            if not surrogate_cache:
                surrogate_cache["c3d"] = fixtures.surrogate_for(
                    dataset, victim, "c3d", scale)
                surrogate_cache["resnet18"] = fixtures.surrogate_for(
                    dataset, victim, "resnet18", scale)
            for attack_name in attacks:
                overrides = {}
                if attack_name.startswith("timi-"):
                    overrides["n"] = scale.num_frames
                factory = attack_factory(attack_name, victim, surrogate_cache,
                                         scale, k, **overrides)
                outcome = evaluate_attack(factory, victim, pairs)
                table.add_row(dataset_name, victim_name, attack_name,
                              outcome.ap_at_m, int(outcome.spa),
                              outcome.pscore, int(outcome.queries))
        surrogate_cache.clear()
    table.notes.append(
        "expected shape: sparse attacks beat 'w/o attack'; DUO rows highest "
        "AP@m; TIMI Spa is the dense upper bound (~N·H·W·C)"
    )
    return table
