"""Table IV: DUO attack performance vs the victim's training loss.

Paper finding: ArcFaceLoss is the most robust victim loss (lowest AP@m
for the attacker); Lifted/Angular are easier to attack.
"""

from __future__ import annotations

from repro.experiments import fixtures
from repro.experiments.attack_zoo import attack_factory
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import attack_pairs, evaluate_attack
from repro.experiments.report import TableResult
from repro.losses.registry import METRIC_LOSSES


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        attacks: tuple[str, ...] = ("duo-c3d", "duo-res18"),
        losses: tuple[str, ...] = METRIC_LOSSES,
        victim_backbone: str = "i3d") -> TableResult:
    """Re-train the victim with each loss and rerun DUO."""
    table = TableResult(
        "Table IV — DUO vs victim training loss",
        ["dataset", "attack", "victim_loss", "AP@m", "Spa", "PScore"],
    )
    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        for loss in losses:
            victim = fixtures.victim_for(dataset, victim_backbone, loss, scale)
            pairs = attack_pairs(dataset, scale)
            k = scale.k_for(pairs[0][0].pixels.size)
            surrogates = {
                "c3d": fixtures.surrogate_for(dataset, victim, "c3d", scale),
                "resnet18": fixtures.surrogate_for(dataset, victim, "resnet18",
                                                   scale),
            }
            for attack_name in attacks:
                factory = attack_factory(attack_name, victim, surrogates,
                                         scale, k)
                outcome = evaluate_attack(factory, victim, pairs)
                table.add_row(dataset_name, attack_name, loss,
                              outcome.ap_at_m, int(outcome.spa),
                              outcome.pscore)
    return table
