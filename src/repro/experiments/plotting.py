"""Dependency-free ASCII rendering of the paper's figures.

No matplotlib is available offline, so the figure runners can render
their series as terminal plots: :func:`ascii_line_chart` for Figure 5's
T-vs-queries curves and :func:`ascii_bar_chart` for Figure 3/4's grouped
bars.  Output is deterministic and fits a standard terminal.
"""

from __future__ import annotations

import numpy as np

_GLYPHS = "ox+*#@%&"


def ascii_bar_chart(labels: list[str], values: list[float], width: int = 50,
                    title: str = "") -> str:
    """Horizontal bar chart; one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return title
    peak = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.3f}")
    return "\n".join(lines)


def ascii_line_chart(series: dict[str, list[float]], height: int = 12,
                     width: int = 64, title: str = "",
                     y_label: str = "") -> str:
    """Multi-series line chart on a character grid.

    Each named series is resampled to ``width`` columns and drawn with
    its own glyph; a legend maps glyphs to names.
    """
    if not series:
        return title
    flat = [v for values in series.values() for v in values if np.isfinite(v)]
    if not flat:
        return title
    low, high = min(flat), max(flat)
    if high - low < 1e-12:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            continue
        columns = np.linspace(0, values.size - 1, width)
        resampled = np.interp(columns, np.arange(values.size), values)
        for x, value in enumerate(resampled):
            if not np.isfinite(value):
                continue
            y = int(round((high - value) / (high - low) * (height - 1)))
            grid[min(max(y, 0), height - 1)][x] = glyph

    lines = [title] if title else []
    if y_label:
        lines.append(f"{y_label}: {low:.3f} (bottom) … {high:.3f} (top)")
    top_axis = f"{high:8.3f} ┤"
    bottom_axis = f"{low:8.3f} ┤"
    pad = " " * 9 + "│"
    for row_index, row in enumerate(grid):
        prefix = top_axis if row_index == 0 else (
            bottom_axis if row_index == height - 1 else pad)
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "└" + "─" * width)
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
