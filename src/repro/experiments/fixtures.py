"""Disk-cached experiment fixtures: datasets, victims, surrogates.

Training a victim takes seconds-to-minutes; the benchmark grid reuses the
same victims across many tables.  Fixtures are cached under
``$REPRO_CACHE`` (default ``./.repro_cache``): model weights as ``.npz``
state dicts and gallery features as arrays, keyed by a configuration
hash.  Datasets are regenerated deterministically from their seed, so
only learned state is stored.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentScale
from repro.losses.registry import create_loss
from repro.models.registry import create_feature_extractor
from repro.retrieval.engine import RetrievalEngine
from repro.retrieval.service import RetrievalService
from repro.surrogate.stealing import steal_training_set
from repro.surrogate.trainer import SurrogateTrainer
from repro.training.trainer import MetricTrainer, TrainingHistory
from repro.training.victim import VictimSystem
from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequence
from repro.video.datasets import SyntheticVideoDataset, load_dataset

logger = get_logger("experiments.fixtures")


def cache_dir() -> Path:
    """Return (and create) the fixture cache directory."""
    path = Path(os.environ.get("REPRO_CACHE", ".repro_cache"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def dataset_for(name: str, scale: ExperimentScale) -> SyntheticVideoDataset:
    """Deterministically build the scaled dataset (no caching needed)."""
    classes, train, test = scale.dataset_size(name)
    return load_dataset(
        name,
        seed=scale.seed,
        num_classes=classes,
        train_videos=train,
        test_videos=test,
        height=scale.height,
        width=scale.width,
        num_frames=scale.num_frames,
    )


def _build_victim(dataset: SyntheticVideoDataset, backbone: str, loss: str,
                  scale: ExperimentScale) -> VictimSystem:
    seeds = SeedSequence(scale.seed)
    extractor = create_feature_extractor(
        backbone, feature_dim=scale.feature_dim, width=scale.model_width,
        rng=seeds.rng("victim", dataset.name, backbone),
    )
    loss_fn = create_loss(loss, dataset.num_classes, scale.feature_dim,
                          rng=seeds.rng("victim-loss", dataset.name, loss))
    trainer = MetricTrainer(loss_fn, epochs=scale.victim_epochs,
                            rng=seeds.rng("victim-trainer", dataset.name,
                                          backbone, loss))
    history = trainer.train(extractor, dataset.train)
    extractor.requires_grad_(False)
    engine = RetrievalEngine(extractor, num_nodes=scale.num_nodes)
    engine.index_videos(dataset.train)
    service = RetrievalService.build(engine, m=scale.m)
    return VictimSystem(engine=engine, service=service,
                        gallery_videos=list(dataset.train), history=history)


def victim_for(dataset: SyntheticVideoDataset, backbone: str, loss: str,
               scale: ExperimentScale) -> VictimSystem:
    """Return a trained victim system, loading weights from cache if present."""
    key = scale.cache_key("victim", dataset.name, backbone, loss)
    weights_path = cache_dir() / f"victim-{key}.npz"
    meta_path = cache_dir() / f"victim-{key}.json"
    seeds = SeedSequence(scale.seed)

    if weights_path.exists():
        logger.info("loading cached victim %s/%s/%s", dataset.name, backbone, loss)
        extractor = create_feature_extractor(
            backbone, feature_dim=scale.feature_dim, width=scale.model_width,
            rng=seeds.rng("victim", dataset.name, backbone),
        )
        with np.load(weights_path) as archive:
            state = {name: archive[name] for name in archive.files}
        gallery_features = state.pop("__gallery_features__")
        extractor.load_state_dict(state)
        extractor.eval()
        extractor.requires_grad_(False)
        engine = RetrievalEngine(extractor, num_nodes=scale.num_nodes)
        engine.gallery.add_batch(
            [v.video_id for v in dataset.train],
            [v.label for v in dataset.train],
            gallery_features,
        )
        service = RetrievalService.build(engine, m=scale.m)
        history = TrainingHistory(json.loads(meta_path.read_text())["losses"]) \
            if meta_path.exists() else TrainingHistory()
        return VictimSystem(engine=engine, service=service,
                            gallery_videos=list(dataset.train), history=history)

    victim = _build_victim(dataset, backbone, loss, scale)
    state = victim.engine.extractor.state_dict()
    features = victim.engine.extractor.embed_videos(dataset.train)
    np.savez(weights_path, __gallery_features__=features, **state)
    meta_path.write_text(json.dumps({"losses": victim.history.losses}))
    return victim


def surrogate_for(dataset: SyntheticVideoDataset, victim: VictimSystem,
                  backbone: str, scale: ExperimentScale,
                  rounds: int | None = None,
                  feature_dim: int | None = None):
    """Return a trained surrogate (stolen-data training), cached on disk."""
    rounds = scale.surrogate_rounds if rounds is None else int(rounds)
    feature_dim = scale.surrogate_feature_dim if feature_dim is None else \
        int(feature_dim)
    key = scale.cache_key("surrogate", dataset.name, backbone, rounds,
                          feature_dim, victim.engine.extractor.backbone.__class__.__name__)
    weights_path = cache_dir() / f"surrogate-{key}.npz"
    seeds = SeedSequence(scale.seed)
    surrogate = create_feature_extractor(
        backbone, feature_dim=feature_dim, width=scale.model_width,
        rng=seeds.rng("surrogate", dataset.name, backbone),
    )
    if weights_path.exists():
        logger.info("loading cached surrogate %s/%s", dataset.name, backbone)
        with np.load(weights_path) as archive:
            surrogate.load_state_dict(
                {name: archive[name] for name in archive.files}
            )
        surrogate.eval()
        surrogate.requires_grad_(False)
        return surrogate

    stolen = steal_training_set(
        victim.service, dataset.test, victim.video_lookup,
        rounds=rounds, branch=scale.surrogate_branch,
        rng=seeds.rng("stealing", dataset.name, backbone, rounds),
    )
    trainer = SurrogateTrainer(
        epochs=scale.surrogate_epochs,
        rng=seeds.rng("surrogate-trainer", dataset.name, backbone),
    )
    trainer.train(surrogate, stolen)
    surrogate.requires_grad_(False)
    np.savez(weights_path, **surrogate.state_dict())
    return surrogate
