"""Shared attack-evaluation protocol (Section V-A).

"We randomly choose ten pairs of two videos from the training dataset:
one as the original video and the other as the target video.  The
experimental results ... are the average from all experiments on one of
the ten pairs."  The scaled protocol averages over ``scale.pairs`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.experiments.config import ExperimentScale
from repro.metrics.perturbation import perturbation_summary
from repro.metrics.ranking import ap_at_m
from repro.training.victim import VictimSystem
from repro.video.datasets import SyntheticVideoDataset
from repro.video.types import Video

#: Builds a fresh attack for pair index ``i`` (so per-pair rngs differ).
AttackFactory = Callable[[int], Attack]


@dataclass
class AttackOutcome:
    """Averages over the evaluation pairs, Table-II style."""

    ap_at_m: float
    spa: float
    pscore: float
    queries: float
    per_pair_ap: list[float] = field(default_factory=list)
    results: list[AttackResult] = field(default_factory=list)


def attack_pairs(dataset: SyntheticVideoDataset,
                 scale: ExperimentScale) -> list[tuple[Video, Video]]:
    """The evaluation pairs for a dataset at this scale (deterministic)."""
    return dataset.sample_attack_pairs(scale.pairs, rng_or_seed=scale.seed)


def without_attack_ap(victim: VictimSystem,
                      pairs: list[tuple[Video, Video]]) -> float:
    """Mean AP@m between ``R^m(v)`` and ``R^m(v_t)`` — the "w/o attack" row."""
    values = []
    for original, target in pairs:
        original_ids = victim.service.query(original).ids
        target_ids = victim.service.query(target).ids
        values.append(ap_at_m(original_ids, target_ids))
    return float(np.mean(values))


def evaluate_attack(factory: AttackFactory, victim: VictimSystem,
                    pairs: list[tuple[Video, Video]],
                    keep_results: bool = False) -> AttackOutcome:
    """Run an attack on every pair and average the paper's metrics."""
    aps, spas, pscores, queries = [], [], [], []
    per_pair: list[float] = []
    results: list[AttackResult] = []
    for index, (original, target) in enumerate(pairs):
        target_ids = victim.service.query(target).ids
        attack = factory(index)
        result = attack.run(original, target)
        adversarial_ids = victim.service.query(result.adversarial).ids
        ap = ap_at_m(adversarial_ids, target_ids)
        stats = perturbation_summary(result.perturbation)
        aps.append(ap)
        per_pair.append(ap)
        spas.append(stats.spa)
        pscores.append(stats.pscore)
        queries.append(result.queries_used)
        if keep_results:
            results.append(result)
    return AttackOutcome(
        ap_at_m=float(np.mean(aps)),
        spa=float(np.mean(spas)),
        pscore=float(np.mean(pscores)),
        queries=float(np.mean(queries)),
        per_pair_ap=per_pair,
        results=results,
    )
