"""Experiment runners — one per table/figure of the paper's evaluation.

Each runner builds (or loads from the on-disk fixture cache) the victim
systems and surrogates it needs, executes the attack grid, and returns a
:class:`~repro.experiments.report.TableResult` whose ``format()`` prints
rows shaped like the paper's tables.  See DESIGN.md §4 for the
experiment ↔ module ↔ bench mapping and §5 for the scale mapping.
"""

from repro.experiments.config import ExperimentScale, DEFAULT_SCALE, QUICK_SCALE
from repro.experiments.report import TableResult
from repro.experiments import fixtures
from repro.experiments import paper_reference
from repro.experiments.protocol import (
    AttackOutcome,
    evaluate_attack,
    without_attack_ap,
)

__all__ = [
    "ExperimentScale",
    "DEFAULT_SCALE",
    "QUICK_SCALE",
    "TableResult",
    "fixtures",
    "paper_reference",
    "AttackOutcome",
    "evaluate_attack",
    "without_attack_ap",
]
