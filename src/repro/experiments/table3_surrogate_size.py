"""Table III: DUO attack performance vs surrogate-dataset size.

The paper's finding: growing the stolen set barely changes AP@m/Spa —
"DUO works even with only a handful of samples".
"""

from __future__ import annotations

from repro.experiments import fixtures
from repro.experiments.attack_zoo import attack_factory
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.protocol import attack_pairs, evaluate_attack
from repro.experiments.report import TableResult

ROUNDS_SWEEP = (1, 2, 4, 8)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        datasets: tuple[str, ...] = ("ucf101", "hmdb51"),
        attacks: tuple[str, ...] = ("duo-c3d", "duo-res18"),
        rounds_sweep: tuple[int, ...] = ROUNDS_SWEEP,
        victim_backbone: str = "i3d", victim_loss: str = "arcface") -> TableResult:
    """Sweep stealing rounds (≈ surrogate-set size) and rerun DUO."""
    table = TableResult(
        "Table III — DUO vs surrogate-dataset size",
        ["dataset", "attack", "rounds", "AP@m", "Spa", "PScore"],
    )
    for dataset_name in datasets:
        dataset = fixtures.dataset_for(dataset_name, scale)
        victim = fixtures.victim_for(dataset, victim_backbone, victim_loss,
                                     scale)
        pairs = attack_pairs(dataset, scale)
        k = scale.k_for(pairs[0][0].pixels.size)
        for rounds in rounds_sweep:
            surrogates = {
                "c3d": fixtures.surrogate_for(dataset, victim, "c3d", scale,
                                              rounds=rounds),
                "resnet18": fixtures.surrogate_for(dataset, victim, "resnet18",
                                                   scale, rounds=rounds),
            }
            for attack_name in attacks:
                factory = attack_factory(attack_name, victim, surrogates,
                                         scale, k)
                outcome = evaluate_attack(factory, victim, pairs)
                table.add_row(dataset_name, attack_name, rounds,
                              outcome.ap_at_m, int(outcome.spa),
                              outcome.pscore)
    table.notes.append("expected shape: AP@m roughly flat across rounds")
    return table
