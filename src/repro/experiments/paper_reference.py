"""The paper's reported numbers, as data.

Encodes the headline values of Tables II–X (ICDCS 2023 print) so that
the reproduction's qualitative claims — who wins, what grows, what
saturates — can be checked programmatically against the source instead
of by eye.  Only the values used by the shape checks are transcribed.

All AP@m values are percentages as printed; Spa is a raw count; PScore
is in 8-bit units.
"""

from __future__ import annotations

#: Table II, UCF101 block: attack → victim → (AP@m, Spa, PScore).
PAPER_TABLE2_UCF101: dict[str, dict[str, tuple[float, int, float]]] = {
    "w/o attack": {
        "tpn": (67.84, 0, 0.0), "slowfast": (40.06, 0, 0.0),
        "i3d": (48.67, 0, 0.0), "resnet34": (52.12, 0, 0.0),
    },
    "timi-c3d": {
        "tpn": (68.34, 602100, 10.00), "slowfast": (40.16, 588726, 9.55),
        "i3d": (49.04, 601371, 9.87), "resnet34": (52.40, 597127, 9.63),
    },
    "heu-nes": {
        "tpn": (69.85, 2880, 0.14), "slowfast": (40.92, 2076, 0.10),
        "i3d": (51.19, 3000, 0.15), "resnet34": (64.19, 3456, 0.17),
    },
    "heu-sim": {
        "tpn": (74.36, 2136, 0.11), "slowfast": (41.14, 417, 0.02),
        "i3d": (53.48, 1920, 0.09), "resnet34": (63.61, 1900, 0.09),
    },
    "vanilla": {
        "tpn": (72.54, 2885, 0.14), "slowfast": (41.26, 1549, 0.08),
        "i3d": (52.84, 2806, 0.14), "resnet34": (61.87, 2645, 0.13),
    },
    "duo-c3d": {
        "tpn": (79.29, 2884, 0.14), "slowfast": (48.34, 2077, 0.10),
        "i3d": (56.40, 2800, 0.14), "resnet34": (67.40, 3466, 0.17),
    },
    "duo-res18": {
        "tpn": (76.07, 2138, 0.11), "slowfast": (42.58, 873, 0.04),
        "i3d": (55.73, 2404, 0.12), "resnet34": (68.50, 2797, 0.14),
    },
}

#: Table III (UCF101, DUO-C3D): surrogate size → (AP@m, Spa).
PAPER_TABLE3_DUO_C3D = {
    165: (58.08, 2903), 1111: (56.40, 2800),
    3616: (56.28, 2832), 8421: (55.19, 2184),
}

#: Table V (UCF101, DUO-C3D): k → AP@m.
PAPER_TABLE5_DUO_C3D = {20000: 52.81, 30000: 54.97, 40000: 56.40,
                        50000: 56.93}

#: Table VI (UCF101, DUO-C3D): n → AP@m.
PAPER_TABLE6_DUO_C3D = {2: 53.35, 3: 54.18, 4: 56.40, 5: 56.45}

#: Table VII (UCF101, DUO-C3D): τ → (AP@m, PScore).
PAPER_TABLE7_DUO_C3D = {15: (51.62, 0.06), 30: (56.40, 0.14),
                        40: (57.33, 0.17), 50: (57.88, 0.20)}

#: Table VIII (UCF101, DUO-C3D): iter_numH → (AP@m, Spa).
PAPER_TABLE8_DUO_C3D = {1: (53.04, 1712), 2: (56.40, 2800),
                        3: (56.94, 2942), 4: (56.12, 3007)}

#: Table X (UCF101): attack → (feature-squeezing %, Noise2Self %).
PAPER_TABLE10_UCF101 = {
    "vanilla": (82.68, 25.01),
    "timi-c3d": (24.31, 3.94),
    "timi-res18": (28.56, 4.84),
    "heu-nes": (21.67, 21.96),
    "heu-sim": (8.74, 23.29),
    "duo-c3d": (8.25, 26.22),
    "duo-res18": (17.96, 21.85),
}


def duo_beats_every_baseline_in_paper() -> bool:
    """Table-II shape: DUO-C3D's AP@m tops all baselines on every victim."""
    for victim in PAPER_TABLE2_UCF101["w/o attack"]:
        duo = PAPER_TABLE2_UCF101["duo-c3d"][victim][0]
        for attack, cells in PAPER_TABLE2_UCF101.items():
            if attack.startswith("duo"):
                continue
            if cells[victim][0] > duo:
                return False
    return True


def paper_sparsity_factor(victim: str = "i3d") -> float:
    """How many × sparser DUO-C3D is than TIMI in the paper's Table II."""
    timi_spa = PAPER_TABLE2_UCF101["timi-c3d"][victim][1]
    duo_spa = PAPER_TABLE2_UCF101["duo-c3d"][victim][1]
    return timi_spa / duo_spa


def paper_k_curve_saturates(tolerance: float = 1.0) -> bool:
    """Table-V shape: AP@m gains flatten at the top of the k sweep."""
    values = [PAPER_TABLE5_DUO_C3D[k] for k in sorted(PAPER_TABLE5_DUO_C3D)]
    early_gain = values[1] - values[0]
    late_gain = values[-1] - values[-2]
    return late_gain < early_gain + tolerance
